// Quickstart: build a small table, diff-encode one column against
// another, compress into self-contained blocks, serialize, reload, and
// run a selective query — the whole Corra pipeline in ~80 lines.
//
// Run: ./quickstart

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/corra_compressor.h"
#include "query/scan.h"
#include "query/selection_vector.h"

int main() {
  using namespace corra;

  // 1. Two correlated columns: order timestamps and their delivery
  //    timestamps, always 1 to 72 hours later.
  constexpr size_t kRows = 100000;
  Rng rng(7);
  std::vector<int64_t> ordered(kRows);
  std::vector<int64_t> delivered(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    ordered[i] = 1700000000 + rng.Uniform(0, 30 * 86400);
    delivered[i] = ordered[i] + rng.Uniform(3600, 72 * 3600);
  }
  Table table;
  if (!table.AddColumn(Column::Timestamp("ordered", ordered)).ok() ||
      !table.AddColumn(Column::Timestamp("delivered", delivered)).ok()) {
    return 1;
  }

  // 2. Plan: `ordered` auto-selects its best vertical scheme; `delivered`
  //    is diff-encoded against it (Corra's non-hierarchical scheme).
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;

  auto compressed = CorraCompressor::Compress(table, plan);
  if (!compressed.ok()) {
    std::printf("compression failed: %s\n",
                compressed.status().ToString().c_str());
    return 1;
  }

  // Compare against the all-vertical baseline.
  auto baseline =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(2));
  std::printf("delivered column: baseline %zu bytes, Corra %zu bytes "
              "(%.1f%% saving)\n",
              baseline.value().ColumnSizeBytes(1),
              compressed.value().ColumnSizeBytes(1),
              100.0 * (1.0 - static_cast<double>(
                                 compressed.value().ColumnSizeBytes(1)) /
                                 static_cast<double>(
                                     baseline.value().ColumnSizeBytes(1))));

  // 3. Blocks are self-contained: serialize, reload from bytes alone.
  const std::vector<uint8_t> bytes = compressed.value().block(0).Serialize();
  auto reloaded = Block::Deserialize(bytes);
  if (!reloaded.ok()) {
    std::printf("reload failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("serialized block: %zu bytes, %zu rows\n", bytes.size(),
              reloaded.value().rows());

  // 4. Query: materialize `delivered` at 1%% random positions.
  const auto rows =
      query::GenerateSelectionVector(reloaded.value().rows(), 0.01, &rng);
  const auto values = query::ScanColumn(reloaded.value(), 1, rows);
  size_t mismatches = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    mismatches += values[i] != delivered[rows[i]] ? 1 : 0;
  }
  std::printf("queried %zu rows at 1%% selectivity, %zu mismatches\n",
              rows.size(), mismatches);
  return mismatches == 0 ? 0 : 1;
}
