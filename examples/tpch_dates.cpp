// TPC-H lineitem dates, fully automated: let the Fig. 2 optimizer decide
// which date columns become references and which get diff-encoded, then
// compress and report the per-column sizes.
//
// Run: ./tpch_dates [rows]

#include <cstdio>
#include <cstdlib>

#include "common/date.h"
#include "core/corra_compressor.h"
#include "datagen/tpch.h"

int main(int argc, char** argv) {
  using namespace corra;

  const size_t rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  std::printf("generating %zu lineitem rows (dbgen date rules)...\n", rows);
  auto table = datagen::MakeLineitemTable(rows).value();

  // Ask the optimizer for the best configuration of the three
  // shipping-related date columns (orderdate is left to the baseline).
  const std::vector<size_t> candidates = {1, 2, 3};
  auto plan = CorraCompressor::PlanFromOptimizer(table, candidates);
  if (!plan.ok()) {
    std::printf("optimizer failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  for (size_t c : candidates) {
    const ColumnPlan& cp = plan.value().columns[c];
    if (cp.auto_vertical) {
      std::printf("  %-14s -> best vertical scheme\n",
                  table.column(c).name().c_str());
    } else {
      std::printf("  %-14s -> diff-encoded w.r.t. %s\n",
                  table.column(c).name().c_str(),
                  table.column(static_cast<size_t>(cp.reference))
                      .name()
                      .c_str());
    }
  }

  auto corra = CorraCompressor::Compress(table, plan.value()).value();
  auto baseline =
      CorraCompressor::Compress(table,
                                CompressionPlan::AllAuto(4)).value();
  std::printf("\n%-16s %14s %14s %9s\n", "column", "baseline", "Corra",
              "saving");
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const size_t b = baseline.ColumnSizeBytes(c);
    const size_t k = corra.ColumnSizeBytes(c);
    std::printf("%-16s %12zu B %12zu B %8.1f%%\n",
                table.column(c).name().c_str(), b, k,
                100.0 * (1.0 - static_cast<double>(k) /
                                   static_cast<double>(b)));
  }

  // Round-trip sanity: the diff-encoded receiptdate must decode exactly.
  const auto decoded = corra.DecodeColumn(3);
  for (size_t i = 0; i < rows; i += rows / 17 + 1) {
    if (decoded[i] != table.column(3).values()[i]) {
      std::printf("MISMATCH at row %zu\n", i);
      return 1;
    }
  }
  std::printf("\nround-trip verified (sampled rows), e.g. row 0: ship=%s "
              "receipt=%s\n",
              FormatDate(table.column(1).values()[0]).c_str(),
              FormatDate(decoded[0]).c_str());
  return 0;
}
