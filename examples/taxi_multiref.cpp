// NYC Taxi: total_amount compressed with multiple reference columns
// (Sec. 2.3). Shows both the paper's hand-specified formula table and the
// automatic derivation, plus the outlier store in action.
//
// Run: ./taxi_multiref [rows]

#include <cstdio>
#include <cstdlib>

#include "core/corra_compressor.h"
#include "datagen/taxi.h"

int main(int argc, char** argv) {
  using namespace corra;
  using C = datagen::TaxiColumns;

  const size_t rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  std::printf("generating %zu taxi trips...\n", rows);
  auto table = datagen::MakeTaxiTable(rows).value();

  // The paper's Table 1 configuration: groups A, B, C and four formulas.
  FormulaTable formulas;
  formulas.groups = {
      {C::kMtaTax, C::kFareAmount, C::kImprovementSurcharge, C::kExtra,
       C::kTipAmount, C::kTollsAmount},
      {C::kCongestionSurcharge},
      {C::kAirportFee}};
  formulas.formulas = {0b001, 0b011, 0b101, 0b111};
  formulas.code_bits = 2;

  CompressionPlan plan = CompressionPlan::AllAuto(11);
  plan.columns[C::kDropoff].auto_vertical = false;
  plan.columns[C::kDropoff].scheme = enc::Scheme::kDiff;
  plan.columns[C::kDropoff].reference = C::kPickup;
  plan.columns[C::kTotalAmount].auto_vertical = false;
  plan.columns[C::kTotalAmount].scheme = enc::Scheme::kMultiRef;
  plan.columns[C::kTotalAmount].formulas = formulas;
  plan.columns[C::kTotalAmount].max_outlier_fraction = 0.02;

  auto corra = CorraCompressor::Compress(table, plan).value();
  auto baseline =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(11))
          .value();

  std::printf("\n%-22s %14s %14s %9s\n", "column", "baseline", "Corra",
              "saving");
  for (size_t c : {static_cast<size_t>(C::kDropoff),
                   static_cast<size_t>(C::kTotalAmount)}) {
    const size_t b = baseline.ColumnSizeBytes(c);
    const size_t k = corra.ColumnSizeBytes(c);
    std::printf("%-22s %12zu B %12zu B %8.1f%%\n",
                table.column(c).name().c_str(), b, k,
                100.0 * (1.0 - static_cast<double>(k) /
                                   static_cast<double>(b)));
  }

  // Inspect the multi-ref column of block 0: measured Table 1.
  const auto* multi = dynamic_cast<const MultiRefColumn*>(
      &corra.block(0).column(C::kTotalAmount));
  if (multi == nullptr) {
    std::printf("unexpected: total_amount is not multi-ref encoded\n");
    return 1;
  }
  const auto stats = multi->ComputeCodeStats();
  const double n = static_cast<double>(multi->size());
  const char* names[] = {"A", "A+B", "A+C", "A+B+C"};
  std::printf("\nmeasured formula mix (block 0):\n");
  for (size_t c = 0; c < stats.code_counts.size(); ++c) {
    std::printf("  %-7s %6.2f%%\n", names[c],
                100.0 * static_cast<double>(stats.code_counts[c]) / n);
  }
  std::printf("  %-7s %6.2f%%  (%zu rows in the outlier store)\n",
              "outlier",
              100.0 * static_cast<double>(stats.outlier_count) / n,
              multi->outliers().size());

  // Round-trip: every reconstructed total matches, including outliers.
  const auto decoded = corra.DecodeColumn(C::kTotalAmount);
  size_t mismatches = 0;
  for (size_t i = 0; i < rows; ++i) {
    mismatches +=
        decoded[i] != table.column(C::kTotalAmount).values()[i] ? 1 : 0;
  }
  std::printf("\nround-trip over %zu rows: %zu mismatches\n", rows,
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
