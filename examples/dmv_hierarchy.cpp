// DMV registrations: hierarchical encoding of (city -> zip_code) and
// (state -> city), with string dictionaries travelling inside the
// self-contained blocks. Demonstrates Alg. 1's decompression path and
// rendering logical values back to text.
//
// Run: ./dmv_hierarchy [rows]

#include <cstdio>
#include <cstdlib>

#include "core/corra_compressor.h"
#include "datagen/dmv.h"
#include "query/scan.h"
#include "query/selection_vector.h"

int main(int argc, char** argv) {
  using namespace corra;

  const size_t rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  std::printf("generating %zu DMV registrations...\n", rows);
  auto table = datagen::MakeDmvTableFromCodes(rows).value();

  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.columns[1].auto_vertical = false;  // city w.r.t. state
  plan.columns[1].scheme = enc::Scheme::kHierarchical;
  plan.columns[1].reference = 0;
  plan.columns[2].auto_vertical = false;  // zip w.r.t. city
  plan.columns[2].scheme = enc::Scheme::kHierarchical;
  plan.columns[2].reference = 1;

  auto corra = CorraCompressor::Compress(table, plan).value();
  auto baseline =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(3)).value();

  std::printf("\n%-10s %14s %14s %9s\n", "column", "baseline", "Corra",
              "saving");
  for (size_t c = 0; c < 3; ++c) {
    const size_t b = baseline.ColumnSizeBytes(c);
    const size_t k = corra.ColumnSizeBytes(c);
    std::printf("%-10s %12zu B %12zu B %8.1f%%\n",
                table.column(c).name().c_str(), b, k,
                100.0 * (1.0 - static_cast<double>(k) /
                                   static_cast<double>(b)));
  }

  // Serialize block 0, reload, and render a few sampled registrations
  // through the reloaded string dictionaries (full self-containment).
  const auto bytes = corra.block(0).Serialize();
  auto block = Block::Deserialize(bytes, /*verify=*/true).value();
  Rng rng(3);
  const auto sample =
      query::GenerateSelectionVector(block.rows(), 10.0 / block.rows(),
                                     &rng);
  std::printf("\nsampled registrations (decoded from serialized bytes):\n");
  for (uint32_t row : sample) {
    const auto* state_dict = block.dictionary(0);
    const auto* city_dict = block.dictionary(1);
    const int64_t state_code = block.column(0).Get(row);
    const int64_t city_code = block.column(1).Get(row);
    const int64_t zip = block.column(2).Get(row);
    std::printf("  row %8u: %s, %-18s %05lld\n", row,
                std::string((*state_dict)[state_code]).c_str(),
                std::string((*city_dict)[city_code]).c_str(),
                static_cast<long long>(zip));
  }
  return 0;
}
