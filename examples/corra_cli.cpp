// corra_cli: a small operational tool over the library's public API.
//
//   corra_cli gen <dataset> <rows> <file>   generate + compress + save
//   corra_cli info <file>                   schema, blocks, column sizes
//   corra_cli query <file> <col> <sel>      timed materializing scan
//   corra_cli filter <file> <col> <lo> <hi> range-predicate count
//
// Datasets: lineitem, dmv, ldbc, taxi (each saved with its paper
// compression plan: diff / hierarchical / multi-ref as in Table 2).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/corra_compressor.h"
#include "datagen/dmv.h"
#include "datagen/ldbc.h"
#include "datagen/taxi.h"
#include "datagen/tpch.h"
#include "query/filter.h"
#include "query/latency.h"
#include "query/selection_vector.h"
#include "query/table_scan.h"
#include "storage/file_io.h"

namespace {

using namespace corra;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  corra_cli gen <lineitem|dmv|ldbc|taxi> <rows> <file>\n"
               "  corra_cli info <file>\n"
               "  corra_cli query <file> <column> <selectivity>\n"
               "  corra_cli filter <file> <column> <lo> <hi>\n");
  return 2;
}

Result<CompressedTable> BuildDataset(const std::string& name, size_t rows) {
  if (name == "lineitem") {
    CORRA_ASSIGN_OR_RETURN(Table table, datagen::MakeLineitemTable(rows));
    CompressionPlan plan = CompressionPlan::AllAuto(4);
    for (size_t target : {size_t{2}, size_t{3}}) {
      plan.columns[target].auto_vertical = false;
      plan.columns[target].scheme = enc::Scheme::kDiff;
      plan.columns[target].reference = 1;
    }
    return CorraCompressor::Compress(table, plan);
  }
  if (name == "dmv") {
    CORRA_ASSIGN_OR_RETURN(Table table,
                           datagen::MakeDmvTableFromCodes(rows));
    CompressionPlan plan = CompressionPlan::AllAuto(3);
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kHierarchical;
    plan.columns[1].reference = 0;
    plan.columns[2].auto_vertical = false;
    plan.columns[2].scheme = enc::Scheme::kHierarchical;
    plan.columns[2].reference = 1;
    return CorraCompressor::Compress(table, plan);
  }
  if (name == "ldbc") {
    CORRA_ASSIGN_OR_RETURN(Table table, datagen::MakeLdbcTable(rows));
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kHierarchical;
    plan.columns[1].reference = 0;
    return CorraCompressor::Compress(table, plan);
  }
  if (name == "taxi") {
    CORRA_ASSIGN_OR_RETURN(Table table, datagen::MakeTaxiTable(rows));
    using C = datagen::TaxiColumns;
    CompressionPlan plan = CompressionPlan::AllAuto(11);
    plan.columns[C::kDropoff].auto_vertical = false;
    plan.columns[C::kDropoff].scheme = enc::Scheme::kDiff;
    plan.columns[C::kDropoff].reference = C::kPickup;
    auto& total = plan.columns[C::kTotalAmount];
    total.auto_vertical = false;
    total.scheme = enc::Scheme::kMultiRef;
    total.formulas.groups = {
        {C::kMtaTax, C::kFareAmount, C::kImprovementSurcharge, C::kExtra,
         C::kTipAmount, C::kTollsAmount},
        {C::kCongestionSurcharge},
        {C::kAirportFee}};
    total.formulas.formulas = {0b001, 0b011, 0b101, 0b111};
    total.formulas.code_bits = 2;
    total.max_outlier_fraction = 0.02;
    return CorraCompressor::Compress(table, plan);
  }
  return Status::InvalidArgument("unknown dataset: " + name);
}

int CmdGen(const std::string& dataset, size_t rows,
           const std::string& path) {
  query::Stopwatch watch;
  auto compressed = BuildDataset(dataset, rows);
  if (!compressed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const double gen_seconds = watch.ElapsedSeconds();
  watch.Reset();
  const Status written = WriteCompressedTable(compressed.value(), path);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu rows, %zu blocks, %.2f MB compressed "
              "(generate+compress %.2fs, write %.2fs)\n",
              path.c_str(), compressed.value().num_rows(),
              compressed.value().num_blocks(),
              static_cast<double>(compressed.value().TotalSizeBytes()) / 1e6,
              gen_seconds, watch.ElapsedSeconds());
  return 0;
}

int CmdInfo(const std::string& path) {
  // info doubles as an integrity check: verify payload checksums.
  auto table = ReadCompressedTable(path, /*verify=*/true);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("schema : %s\n", table.value().schema().ToString().c_str());
  std::printf("rows   : %zu in %zu blocks\n", table.value().num_rows(),
              table.value().num_blocks());
  std::printf("%-24s %14s %10s %s\n", "column", "bytes", "bits/row",
              "scheme (block 0)");
  for (size_t c = 0; c < table.value().schema().num_fields(); ++c) {
    const size_t bytes = table.value().ColumnSizeBytes(c);
    std::printf("%-24s %14zu %10.2f %s\n",
                table.value().schema().field(c).name.c_str(), bytes,
                8.0 * static_cast<double>(bytes) /
                    static_cast<double>(table.value().num_rows()),
                std::string(enc::SchemeToString(
                                table.value().block(0).column(c).scheme()))
                    .c_str());
  }
  std::printf("%-24s %14zu\n", "total",
              table.value().TotalSizeBytes());
  return 0;
}

int CmdQuery(const std::string& path, const std::string& column,
             double selectivity) {
  auto table = ReadCompressedTable(path);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  auto col = table.value().schema().FieldIndex(column);
  if (!col.ok()) {
    std::fprintf(stderr, "error: %s\n", col.status().ToString().c_str());
    return 1;
  }
  Rng rng(42);
  const auto rows = query::GenerateSelectionVector(
      table.value().num_rows(), selectivity, &rng);
  query::Stopwatch watch;
  auto out = query::ScanTableColumn(table.value(), col.value(), rows);
  const double seconds = watch.ElapsedSeconds();
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
    return 1;
  }
  int64_t checksum = 0;
  for (int64_t v : out.value()) {
    checksum ^= v;
  }
  std::printf("materialized %zu rows in %.3f ms (%.1f Mrows/s), "
              "checksum %lld\n",
              out.value().size(), seconds * 1e3,
              static_cast<double>(out.value().size()) / seconds / 1e6,
              static_cast<long long>(checksum));
  return 0;
}

int CmdFilter(const std::string& path, const std::string& column,
              int64_t lo, int64_t hi) {
  auto table = ReadCompressedTable(path);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  auto col = table.value().schema().FieldIndex(column);
  if (!col.ok()) {
    std::fprintf(stderr, "error: %s\n", col.status().ToString().c_str());
    return 1;
  }
  query::Stopwatch watch;
  size_t count = 0;
  for (size_t b = 0; b < table.value().num_blocks(); ++b) {
    count += query::CountInRange(table.value().block(b).column(col.value()),
                                 lo, hi);
  }
  std::printf("%zu of %zu rows in [%lld, %lld] (%.3f ms)\n", count,
              table.value().num_rows(), static_cast<long long>(lo),
              static_cast<long long>(hi), watch.ElapsedSeconds() * 1e3);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "gen" && argc == 5) {
    return CmdGen(argv[2], std::strtoull(argv[3], nullptr, 10), argv[4]);
  }
  if (command == "info" && argc == 3) {
    return CmdInfo(argv[2]);
  }
  if (command == "query" && argc == 5) {
    return CmdQuery(argv[2], argv[3], std::strtod(argv[4], nullptr));
  }
  if (command == "filter" && argc == 6) {
    return CmdFilter(argv[2], argv[3],
                     std::strtoll(argv[4], nullptr, 10),
                     std::strtoll(argv[5], nullptr, 10));
  }
  return Usage();
}
