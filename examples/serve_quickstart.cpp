// Serving quickstart: query a CORF file without ever loading it whole.
//
// Compresses a correlated table to disk, then serves filtered scans and
// aggregates through the out-of-core stack — TableReader (lazy block
// loads) + BlockCache (bounded memory) + ScanService (worker pool) —
// prints the cache behaviour along the way, demonstrates degraded
// (allow_partial) serving around an injected block failure, and
// finishes with the full telemetry snapshot every serving component
// feeds (see README, "Observability").
//
// Run: ./serve_quickstart

#include <cstdio>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/corra_compressor.h"
#include "obs/metrics.h"
#include "serve/scan_service.h"
#include "serve/table_reader.h"
#include "storage/file_io.h"

int main() {
  using namespace corra;

  // 1. A 4-block table: order dates, correlated delivery dates, amounts.
  constexpr size_t kRows = 400000;
  Rng rng(7);
  std::vector<int64_t> ordered(kRows);
  std::vector<int64_t> delivered(kRows);
  std::vector<int64_t> amount(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    ordered[i] = 18000 + rng.Uniform(0, 1200);
    delivered[i] = ordered[i] + rng.Uniform(1, 45);
    amount[i] = rng.Uniform(100, 90000);
  }
  Table table;
  if (!table.AddColumn(Column::Date("ordered", ordered)).ok() ||
      !table.AddColumn(Column::Date("delivered", delivered)).ok() ||
      !table.AddColumn(Column::Money("amount", amount)).ok()) {
    return 1;
  }
  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.block_rows = 100000;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan);
  if (!compressed.ok()) {
    return 1;
  }
  const std::string path = "/tmp/corra_serve_quickstart.corf";
  if (!WriteCompressedTable(compressed.value(), path).ok()) {
    return 1;
  }

  // 2. Open lazily: schema and row layout come from the directory alone.
  auto cache = std::make_shared<serve::BlockCache>(
      serve::BlockCacheOptions{.capacity_blocks = 2,  // < 4 blocks on disk
                               .capacity_bytes = 0,
                               .shards = 2});
  auto reader = serve::TableReader::Open(path, cache);
  if (!reader.ok()) {
    std::printf("open failed: %s\n", reader.status().ToString().c_str());
    return 1;
  }
  std::printf("opened %s: %zu blocks, %llu rows, schema [%s] — 0 blocks "
              "loaded so far\n",
              path.c_str(), reader.value()->num_blocks(),
              static_cast<unsigned long long>(reader.value()->num_rows()),
              reader.value()->schema().ToString().c_str());

  // 3. A filtered scan with projection + aggregate, executed block by
  //    block on the service's worker pool. collect_trace asks for a
  //    per-request breakdown of where the latency went.
  serve::ScanService service(serve::ScanService::Options{.num_threads = 2});
  serve::ScanRequest request;
  request.collect_trace = true;
  request.filter_column = 0;           // ordered
  request.filter_lo = 18400;
  request.filter_hi = 18500;
  request.project_columns = {1};       // delivered
  request.aggregate = serve::AggregateOp::kSum;
  request.aggregate_column = 2;        // amount
  auto result = service.Execute(*reader.value(), request);
  if (!result.ok()) {
    std::printf("scan failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("scan: %llu of %llu rows matched, sum(amount) = %lld cents\n",
              static_cast<unsigned long long>(result.value().rows_matched),
              static_cast<unsigned long long>(result.value().rows_scanned),
              static_cast<long long>(result.value().agg_sum));
  if (result.value().trace.has_value()) {
    std::printf("trace: %s\n", result.value().trace->ToJson().c_str());
  }

  // 4. Re-run: with capacity 2 of 4 blocks, the cache can only help
  //    partially — watch hits, misses, evictions move.
  for (int round = 0; round < 3; ++round) {
    if (!service.Execute(*reader.value(), request).ok()) {
      return 1;
    }
  }
  const serve::BlockCacheStats stats = cache->GetStats();
  std::printf("cache after 4 scans: %.0f%% hit rate, %llu misses, "
              "%llu evictions, %zu blocks resident\n",
              100.0 * stats.HitRate(),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions),
              stats.cached_blocks);

  // 5. Point lookups touch only the owning blocks.
  const std::vector<size_t> cols = {0, 1, 2};
  const std::vector<uint64_t> rows = {5, 150000, 399999};
  auto gathered = service.Gather(*reader.value(), cols, rows);
  if (!gathered.ok()) {
    return 1;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("row %llu: ordered=%lld delivered=%lld amount=%lld\n",
                static_cast<unsigned long long>(rows[i]),
                static_cast<long long>(gathered.value()[0][i]),
                static_cast<long long>(gathered.value()[1][i]),
                static_cast<long long>(gathered.value()[2][i]));
  }

  // 6. Degraded serving: when a block goes bad (media error, detected
  //    corruption), a strict scan fails whole — but a request that sets
  //    allow_partial gets the rows from every healthy block plus a
  //    manifest naming the blocks that failed and why. Here a failpoint
  //    stands in for the bad medium (see README, "Failure model").
  if (fail::CompiledIn()) {
    fail::ScopedFailpoint storm("cache.load_error", "times:1");
    serve::ScanRequest degraded = request;
    degraded.collect_trace = false;
    degraded.allow_partial = true;
    auto partial = service.Execute(*reader.value(), degraded);
    if (!partial.ok()) {
      std::printf("degraded scan failed: %s\n",
                  partial.status().ToString().c_str());
      return 1;
    }
    std::printf("\ndegraded scan: %llu rows matched from healthy blocks, "
                "%zu block(s) failed:\n",
                static_cast<unsigned long long>(
                    partial.value().rows_matched),
                partial.value().failed_blocks.size());
    for (const serve::ScanResult::BlockError& fb :
         partial.value().failed_blocks) {
      std::printf("  block %llu: %s\n",
                  static_cast<unsigned long long>(fb.block),
                  fb.status.ToString().c_str());
    }
    // The failed block is quarantined: repeat offenders fail fast
    // instead of hammering the device. Once the operator clears the
    // quarantine (or the TTL lapses) the block serves again.
    cache->ClearQuarantine();
    auto healed = service.Execute(*reader.value(), degraded);
    if (!healed.ok()) {
      return 1;
    }
    std::printf("after quarantine clear: %llu rows matched, %zu failed "
                "blocks\n",
                static_cast<unsigned long long>(healed.value().rows_matched),
                healed.value().failed_blocks.size());
  }

  // 7. Everything above also fed the process-wide telemetry registry:
  //    cache counters/gauges, per-request latency and phase histograms,
  //    per-scheme decode row counts. One snapshot exports it all.
  std::printf("\nend-of-run metrics snapshot:\n%s\n",
              obs::Registry::Default().ToJson().c_str());

  std::remove(path.c_str());
  return 0;
}
