// Correlation advisor: point the detector (the paper's future-work
// "automatic correlation detection") at a table it has never seen and get
// a ranked list of horizontal-encoding opportunities, then apply the top
// suggestions and report the realized savings.
//
// Run: ./correlation_advisor [rows]

#include <cstdio>
#include <cstdlib>

#include "core/corra_compressor.h"
#include "core/correlation_detector.h"
#include "datagen/taxi.h"

int main(int argc, char** argv) {
  using namespace corra;
  using C = datagen::TaxiColumns;

  const size_t rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500000;
  std::printf("generating %zu taxi trips...\n", rows);
  auto table = datagen::MakeTaxiTable(rows).value();

  // Hand every column to the detector.
  std::vector<CandidateColumn> columns;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    columns.push_back({table.column(c).name(), table.column(c).values()});
  }
  // Estimates come from a strided sample; a generous threshold keeps
  // marginal (noise-level) suggestions out.
  DetectorOptions options;
  options.min_saving_rate = 0.15;
  auto suggestions = DetectCorrelations(columns, options).value();

  std::printf("\nranked suggestions (>= 15%% estimated saving):\n");
  std::printf("%-22s %-22s %-18s %9s\n", "target", "reference", "scheme",
              "est.saving");
  size_t shown = 0;
  for (const auto& s : suggestions) {
    std::printf("%-22s %-22s %-18s %8.1f%%\n",
                columns[s.target].name.c_str(),
                columns[s.reference].name.c_str(),
                std::string(enc::SchemeToString(s.scheme)).c_str(),
                s.saving_rate * 100);
    if (++shown >= 10) {
      break;
    }
  }
  if (suggestions.empty()) {
    std::printf("  (none)\n");
    return 0;
  }

  // Apply the best suggestion per target column (greedy, references must
  // stay vertical — the paper's configuration rule).
  CompressionPlan plan =
      CompressionPlan::AllAuto(table.num_columns());
  std::vector<bool> is_reference(table.num_columns(), false);
  std::vector<bool> assigned(table.num_columns(), false);
  for (const auto& s : suggestions) {
    if (assigned[s.target] || is_reference[s.target] ||
        assigned[s.reference]) {
      continue;
    }
    plan.columns[s.target].auto_vertical = false;
    plan.columns[s.target].scheme = s.scheme;
    plan.columns[s.target].reference = static_cast<int>(s.reference);
    assigned[s.target] = true;
    is_reference[s.reference] = true;
  }

  auto corra = CorraCompressor::Compress(table, plan).value();
  auto baseline = CorraCompressor::Compress(
                      table, CompressionPlan::AllAuto(table.num_columns()))
                      .value();
  std::printf("\nrealized sizes after applying suggestions:\n");
  std::printf("%-22s %14s %14s %9s\n", "column", "baseline", "advised",
              "saving");
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (plan.columns[c].auto_vertical) {
      continue;
    }
    const size_t b = baseline.ColumnSizeBytes(c);
    const size_t k = corra.ColumnSizeBytes(c);
    std::printf("%-22s %12zu B %12zu B %8.1f%%\n",
                table.column(c).name().c_str(), b, k,
                100.0 * (1.0 - static_cast<double>(k) /
                                   static_cast<double>(b)));
  }
  std::printf("\ntotal: baseline %.2f MB -> advised %.2f MB\n",
              static_cast<double>(baseline.TotalSizeBytes()) / 1e6,
              static_cast<double>(corra.TotalSizeBytes()) / 1e6);
  (void)C::kPickup;
  return 0;
}
