// Reproduces the paper's Fig. 6: absolute query latency of the
// non-hierarchical encoding at selectivities {0.005, 0.01, 0.05, 0.1} on
// TPC-H lineitem, including the "uncompressed" configuration.
//
// Expected shape: uncompressed < single-column < Corra when querying the
// diff-encoded column alone; the gap (mostly) closes when querying both
// columns, because the reference must be read anyway.

#include <cstdio>

#include "bench_util.h"
#include "datagen/tpch.h"
#include "latency_common.h"

namespace corra::bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const size_t n = flags.rows > 0 ? flags.rows : kLatencyDefaultRows;
  std::fprintf(stderr, "[fig6] lineitem pair: %zu rows\n", n);

  auto table = datagen::MakeLineitemTable(n).value();
  CompressionPlan plan = CompressionPlan::AllAuto(4);
  plan.columns[2].auto_vertical = false;
  plan.columns[2].scheme = enc::Scheme::kDiff;
  plan.columns[2].reference = 1;
  const Contenders contenders = BuildContenders(table, plan);

  PrintHeader(
      "Figure 6: non-hierarchical encoding zoom-in, absolute times "
      "(ms per query, " +
      std::to_string(n) + " rows per block)");
  std::printf("%11s %12s | %13s %13s %13s | %13s %13s %13s\n",
              "Selectivity", "", "uncompressed", "single-col", "Corra",
              "uncompressed", "single-col", "Corra");
  std::printf("%11s %12s | %41s | %41s\n", "", "",
              "query on diff-encoded column", "query on both columns");
  PrintRule();
  Rng rng(1);
  for (double selectivity : query::ZoomSelectivities()) {
    const auto selections = query::GenerateSelectionVectors(
        n, selectivity, flags.runs, &rng);
    const PairTimes plain =
        MeasurePair(contenders.uncompressed->block(0), 1, 2, selections);
    const PairTimes base =
        MeasurePair(contenders.baseline->block(0), 1, 2, selections);
    const PairTimes ours =
        MeasurePair(contenders.corra->block(0), 1, 2, selections);
    std::printf(
        "%11.3f %12s | %10.3f ms %10.3f ms %10.3f ms | %10.3f ms "
        "%10.3f ms %10.3f ms\n",
        selectivity, "", plain.target_only * 1e3, base.target_only * 1e3,
        ours.target_only * 1e3, plain.both * 1e3, base.both * 1e3,
        ours.both * 1e3);
  }
  PrintRule();
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
