// Failpoint overhead gate: a miss-heavy serve loop with failpoint
// sites armed-but-parked must stay within a small bound of the same
// loop with nothing armed.
//
// What the two sides measure:
//   * "unarmed" — the release-mode configuration: every site costs one
//     relaxed atomic load of the global armed count.
//   * "armed"   — every hot read-path site configured "off": each
//     evaluation takes the full slow path (mutex + table lookup) but
//     never fires, so the work performed is identical.
// Armed-but-parked is strictly more expensive than unarmed, which is
// itself strictly more expensive than compiled-out; holding the bound
// on the armed side therefore bounds the release-mode site cost too.
//
// The loop is deliberately miss-heavy (cache far smaller than the
// table) so every scan re-crosses the CorfFile pread sites and the
// BlockCache loader site — a cache-hit loop would never evaluate them.
//
// Methodology: identical to bench_obs_overhead — one process, one warm
// ScanService, interleaved A/B sampling (arm/disarm between batches),
// overhead = median of per-pair ratios, and under --assert up to two
// re-measurements before failing.
//
// Flags (besides the shared --rows/--runs/--json):
//   --assert R   exit nonzero when overhead exceeds R (e.g. 0.01 for
//                the CI bound of 1%); without it the bench only reports.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/corra_compressor.h"
#include "serve/scan_service.h"
#include "serve/table_reader.h"
#include "storage/file_io.h"

namespace {

using namespace corra;
using Clock = std::chrono::steady_clock;

constexpr size_t kBlockRows = 250000;

// Every site on the serve read path, parked: evaluated each crossing,
// never firing.
constexpr const char* kSites[] = {
    "corf.pread.eio",     "corf.pread.eintr", "corf.pread.short",
    "corf.payload.bitflip", "cache.load_error",
};

void ArmParked() {
  for (const char* site : kSites) {
    if (!fail::Configure(site, "off").ok()) {
      std::fprintf(stderr, "failed to arm %s\n", site);
      std::exit(1);
    }
  }
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double TimeScans(serve::ScanService& service,
                 const serve::TableReader& reader,
                 const serve::ScanRequest& request, size_t scans) {
  const auto begin = Clock::now();
  for (size_t i = 0; i < scans; ++i) {
    auto result = service.Execute(reader, request);
    if (!result.ok()) {
      std::fprintf(stderr, "scan failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  const auto end = Clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  if (!fail::CompiledIn()) {
    // Nothing to compare when the framework is compiled out.
    std::printf("failpoints compiled out (CORRA_FAILPOINTS_OFF); "
                "overhead 0\n");
    return 0;
  }
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  double assert_bound = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert") == 0 && i + 1 < argc) {
      assert_bound = std::strtod(argv[i + 1], nullptr);
    } else if (std::strncmp(argv[i], "--assert=", 9) == 0) {
      assert_bound = std::strtod(argv[i] + 9, nullptr);
    }
  }
  const size_t rows = bench::ResolveRows(flags, 8000000, 4);
  const size_t samples = flags.runs > 2 ? flags.runs : 10;

  // The bench_serve table: correlated dates plus a fare column.
  Rng rng(17);
  std::vector<int64_t> ship(rows), receipt(rows), fare(rows);
  for (size_t i = 0; i < rows; ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
    fare[i] = rng.Uniform(100, 25000);
  }
  Table table;
  if (!table.AddColumn(Column::Date("ship", std::move(ship))).ok() ||
      !table.AddColumn(Column::Date("receipt", std::move(receipt))).ok() ||
      !table.AddColumn(Column::Money("fare", std::move(fare))).ok()) {
    return 1;
  }
  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.block_rows = kBlockRows;
  plan.num_threads = 4;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compress failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const size_t num_blocks = compressed.value().num_blocks();
  const std::string path = "/tmp/corra_bench_failpoint_overhead.corf";
  if (!WriteCompressedTable(compressed.value(), path).ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }

  // Cache far smaller than the table: every scan misses on most blocks
  // and crosses the pread + loader failpoint sites afresh.
  auto cache = std::make_shared<serve::BlockCache>(
      serve::BlockCacheOptions{.capacity_blocks = num_blocks / 4 + 1,
                               .capacity_bytes = 0,
                               .shards = 4});
  auto reader = serve::TableReader::Open(path, cache);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  // Inline execution, dense scan: the per-block site evaluations land
  // on the timed path with no pool scheduling noise around them.
  serve::ScanService service(serve::ScanService::Options{.num_threads = 0});
  serve::ScanRequest request;
  request.project_columns = {0, 1, 2};

  // Warm both code paths before sampling.
  constexpr size_t kScansPerSample = 3;
  ArmParked();
  TimeScans(service, *reader.value(), request, 1);
  fail::ClearAll();
  TimeScans(service, *reader.value(), request, 1);

  // Interleaved pairs, median of per-pair ratios; see
  // bench_obs_overhead.cc for why this is robust on shared runners.
  struct Measurement {
    double armed_med, unarmed_med, overhead;
  };
  const auto measure = [&]() -> Measurement {
    std::vector<double> armed_s, unarmed_s, ratios;
    armed_s.reserve(samples);
    unarmed_s.reserve(samples);
    ratios.reserve(samples);
    for (size_t r = 0; r < samples; ++r) {
      const bool armed_first = r % 2 == 0;
      double pair[2];
      for (int half = 0; half < 2; ++half) {
        const bool armed = (half == 0) == armed_first;
        if (armed) {
          ArmParked();
        } else {
          fail::ClearAll();
        }
        pair[armed ? 0 : 1] =
            TimeScans(service, *reader.value(), request, kScansPerSample);
      }
      armed_s.push_back(pair[0] / kScansPerSample);
      unarmed_s.push_back(pair[1] / kScansPerSample);
      ratios.push_back(pair[0] / pair[1]);
    }
    fail::ClearAll();
    return {Median(armed_s), Median(unarmed_s), Median(ratios) - 1.0};
  };

  Measurement m = measure();
  int attempts = 1;
  while (assert_bound >= 0 && m.overhead > assert_bound && attempts < 3) {
    std::fprintf(stderr,
                 "attempt %d read %.2f%% (> %.2f%%); re-measuring\n",
                 attempts, m.overhead * 100.0, assert_bound * 100.0);
    m = measure();
    ++attempts;
  }
  const double mrows_armed =
      static_cast<double>(rows) / m.armed_med / 1e6;
  const double mrows_unarmed =
      static_cast<double>(rows) / m.unarmed_med / 1e6;

  if (flags.json) {
    std::printf("{\"rows\": %zu, \"samples\": %zu, "
                "\"armed_median_ms\": %.3f, \"unarmed_median_ms\": %.3f, "
                "\"mrows_per_s_armed\": %.1f, "
                "\"mrows_per_s_unarmed\": %.1f, "
                "\"overhead\": %.4f}\n",
                rows, samples, m.armed_med * 1e3, m.unarmed_med * 1e3,
                mrows_armed, mrows_unarmed, m.overhead);
  } else {
    bench::PrintHeader("Failpoint overhead on miss-heavy scans (" +
                       std::to_string(rows) + " rows, " +
                       std::to_string(samples) + " interleaved samples)");
    std::printf("%-10s %12s %12s\n", "sites", "median ms", "Mrows/s");
    bench::PrintRule();
    std::printf("%-10s %12.3f %12.1f\n", "armed", m.armed_med * 1e3,
                mrows_armed);
    std::printf("%-10s %12.3f %12.1f\n", "unarmed", m.unarmed_med * 1e3,
                mrows_unarmed);
    std::printf("overhead (median pair ratio): %.2f%%\n",
                m.overhead * 100.0);
  }

  std::remove(path.c_str());
  if (assert_bound >= 0 && m.overhead > assert_bound) {
    std::fprintf(stderr,
                 "FAIL: failpoint overhead %.2f%% exceeds bound %.2f%% "
                 "on all %d attempts\n",
                 m.overhead * 100.0, assert_bound * 100.0, attempts);
    return 1;
  }
  return 0;
}
