// Reproduces the paper's Table 2: compressed size of each evaluated column
// with and without Corra's horizontal encodings, plus the saving rate.
//
// Row counts default to paper-scale divided by a per-dataset factor
// (override with --scale/--rows); sizes are normalized back to the paper's
// full row counts. Payload bits per row are scale-exact; per-block
// metadata normalizes approximately (noted in EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.h"
#include "core/corra_compressor.h"
#include "datagen/dmv.h"
#include "datagen/ldbc.h"
#include "datagen/taxi.h"
#include "datagen/tpch.h"

namespace corra::bench {
namespace {

struct Table2Row {
  const char* dataset;
  const char* column;
  double without_mb;
  const char* encoding;
  const char* reference;
  double with_mb;
  double paper_without_mb;
  double paper_with_mb;
  double paper_saving;
};

void PrintRow(const Table2Row& row) {
  const double saving = 1.0 - row.with_mb / row.without_mb;
  std::printf(
      "%-16s %-14s %9.2f MB  %-16s %-18s %9.2f MB  %5.1f%%  |  paper: "
      "%7.2f -> %7.2f MB (%4.1f%%)\n",
      row.dataset, row.column, row.without_mb, row.encoding, row.reference,
      row.with_mb, saving * 100.0, row.paper_without_mb, row.paper_with_mb,
      row.paper_saving * 100.0);
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  std::vector<Table2Row> rows;

  // ---- TPC-H lineitem (SF 10) -------------------------------------------
  {
    const size_t n = ResolveRows(flags, datagen::kLineitemRowsSf10, 12);
    std::fprintf(stderr, "[table2] lineitem: %zu rows\n", n);
    auto table = datagen::MakeLineitemTable(n).value();
    auto baseline =
        CorraCompressor::Compress(table, CompressionPlan::AllAuto(4))
            .value();
    CompressionPlan plan = CompressionPlan::AllAuto(4);
    for (size_t target : {size_t{2}, size_t{3}}) {
      plan.columns[target].auto_vertical = false;
      plan.columns[target].scheme = enc::Scheme::kDiff;
      plan.columns[target].reference = 1;  // l_shipdate
    }
    auto corra = CorraCompressor::Compress(table, plan).value();
    rows.push_back({"lineitem (SF10)", "l_receiptdate",
                    NormalizedMb(baseline.ColumnSizeBytes(3), n,
                                 datagen::kLineitemRowsSf10),
                    "Non-hierarchical", "l_shipdate",
                    NormalizedMb(corra.ColumnSizeBytes(3), n,
                                 datagen::kLineitemRowsSf10),
                    89.99, 37.49, 0.583});
    rows.push_back({"lineitem (SF10)", "l_commitdate",
                    NormalizedMb(baseline.ColumnSizeBytes(2), n,
                                 datagen::kLineitemRowsSf10),
                    "Non-hierarchical", "l_shipdate",
                    NormalizedMb(corra.ColumnSizeBytes(2), n,
                                 datagen::kLineitemRowsSf10),
                    89.99, 59.99, 0.333});
  }

  // ---- Taxi ---------------------------------------------------------------
  {
    const size_t n = ResolveRows(flags, datagen::kTaxiRows, 8);
    std::fprintf(stderr, "[table2] taxi: %zu rows\n", n);
    auto table = datagen::MakeTaxiTable(n).value();
    using C = datagen::TaxiColumns;
    auto baseline =
        CorraCompressor::Compress(table, CompressionPlan::AllAuto(11))
            .value();
    CompressionPlan plan = CompressionPlan::AllAuto(11);
    plan.columns[C::kDropoff].auto_vertical = false;
    plan.columns[C::kDropoff].scheme = enc::Scheme::kDiff;
    plan.columns[C::kDropoff].reference = C::kPickup;
    auto& total = plan.columns[C::kTotalAmount];
    total.auto_vertical = false;
    total.scheme = enc::Scheme::kMultiRef;
    total.formulas.groups = {
        {C::kMtaTax, C::kFareAmount, C::kImprovementSurcharge, C::kExtra,
         C::kTipAmount, C::kTollsAmount},
        {C::kCongestionSurcharge},
        {C::kAirportFee}};
    total.formulas.formulas = {0b001, 0b011, 0b101, 0b111};
    total.formulas.code_bits = 2;
    total.max_outlier_fraction = 0.02;
    auto corra = CorraCompressor::Compress(table, plan).value();
    rows.push_back({"Taxi", "dropoff",
                    NormalizedMb(baseline.ColumnSizeBytes(C::kDropoff), n,
                                 datagen::kTaxiRows),
                    "Non-hierarchical", "pickup",
                    NormalizedMb(corra.ColumnSizeBytes(C::kDropoff), n,
                                 datagen::kTaxiRows),
                    136.64, 94.7, 0.306});
    rows.push_back(
        {"Taxi", "total_amount",
         NormalizedMb(baseline.ColumnSizeBytes(C::kTotalAmount), n,
                      datagen::kTaxiRows),
         "Non-hierarchical", "multiple (8 refs)",
         NormalizedMb(corra.ColumnSizeBytes(C::kTotalAmount), n,
                      datagen::kTaxiRows),
         66.32, 9.84, 0.8516});
  }

  // ---- DMV (full scale by default: metadata amortization matters) --------
  {
    const size_t n = ResolveRows(flags, datagen::kDmvRows, 1);
    std::fprintf(stderr, "[table2] dmv: %zu rows\n", n);
    auto table = datagen::MakeDmvTableFromCodes(n).value();
    auto baseline =
        CorraCompressor::Compress(table, CompressionPlan::AllAuto(3))
            .value();
    CompressionPlan plan = CompressionPlan::AllAuto(3);
    plan.columns[1].auto_vertical = false;  // city w.r.t. state
    plan.columns[1].scheme = enc::Scheme::kHierarchical;
    plan.columns[1].reference = 0;
    plan.columns[2].auto_vertical = false;  // zip w.r.t. city
    plan.columns[2].scheme = enc::Scheme::kHierarchical;
    plan.columns[2].reference = 1;
    auto corra = CorraCompressor::Compress(table, plan).value();
    rows.push_back({"DMV", "zip_code",
                    NormalizedMb(baseline.ColumnSizeBytes(2), n,
                                 datagen::kDmvRows),
                    "Hierarchical", "city",
                    NormalizedMb(corra.ColumnSizeBytes(2), n,
                                 datagen::kDmvRows),
                    25.88, 11.96, 0.537});
    rows.push_back({"DMV", "city",
                    NormalizedMb(baseline.ColumnSizeBytes(1), n,
                                 datagen::kDmvRows),
                    "Hierarchical", "state",
                    NormalizedMb(corra.ColumnSizeBytes(1), n,
                                 datagen::kDmvRows),
                    21.45, 21.05, 0.018});
  }

  // ---- LDBC message (SF 30) -----------------------------------------------
  {
    const size_t n = ResolveRows(flags, datagen::kMessageRowsSf30, 8);
    std::fprintf(stderr, "[table2] ldbc: %zu rows\n", n);
    auto table = datagen::MakeLdbcTable(n).value();
    auto baseline =
        CorraCompressor::Compress(table, CompressionPlan::AllAuto(2))
            .value();
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kHierarchical;
    plan.columns[1].reference = 0;
    auto corra = CorraCompressor::Compress(table, plan).value();
    rows.push_back({"message (SF30)", "ip",
                    NormalizedMb(baseline.ColumnSizeBytes(1), n,
                                 datagen::kMessageRowsSf30),
                    "Hierarchical", "countryid",
                    NormalizedMb(corra.ColumnSizeBytes(1), n,
                                 datagen::kMessageRowsSf30),
                    195.14, 161.76, 0.171});
  }

  PrintHeader(
      "Table 2: space saving over single-column encoding schemes "
      "(sizes normalized to paper row counts)");
  std::printf(
      "%-16s %-14s %12s  %-16s %-18s %12s  %6s  |  %s\n", "Dataset",
      "Column", "w/o diff-enc", "Encoding", "Ref. column", "w/ diff-enc",
      "Saving", "Paper reference");
  PrintRule();
  for (const auto& row : rows) {
    PrintRow(row);
  }
  PrintRule();
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
