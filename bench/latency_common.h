// Shared setup for the latency benchmarks (paper Figs. 5-8): builds the
// three competing configurations of a (reference, target) column pair —
// uncompressed, best single-column baseline, and Corra — as single
// self-contained blocks, and measures materializing queries over them.

#ifndef CORRA_BENCH_LATENCY_COMMON_H_
#define CORRA_BENCH_LATENCY_COMMON_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/corra_compressor.h"
#include "query/latency.h"
#include "query/scan.h"
#include "query/selection_vector.h"

namespace corra::bench {

// Global sink defeating dead-code elimination of materialized values.
inline volatile int64_t g_sink = 0;

inline void Consume(const std::vector<int64_t>& values) {
  int64_t acc = 0;
  for (int64_t v : values) {
    acc += v;
  }
  g_sink = g_sink + acc;
}

/// The three competing physical layouts of one logical table.
struct Contenders {
  std::optional<CompressedTable> uncompressed;
  std::optional<CompressedTable> baseline;
  std::optional<CompressedTable> corra;
};

/// Compresses `table` three ways with a single block covering all rows.
/// `corra_plan` must already contain the horizontal assignments.
inline Contenders BuildContenders(const Table& table,
                                  CompressionPlan corra_plan) {
  Contenders out;
  CompressionPlan plain = CompressionPlan::AllPlain(table.num_columns());
  plain.block_rows = table.num_rows();
  CompressionPlan auto_plan = CompressionPlan::AllAuto(table.num_columns());
  auto_plan.block_rows = table.num_rows();
  corra_plan.block_rows = table.num_rows();
  out.uncompressed.emplace(
      CorraCompressor::Compress(table, plain).value());
  out.baseline.emplace(
      CorraCompressor::Compress(table, auto_plan).value());
  out.corra.emplace(CorraCompressor::Compress(table, corra_plan).value());
  return out;
}

/// Mean seconds to materialize the target column alone, and the
/// (reference, target) pair, over the given selection vectors.
struct PairTimes {
  double target_only = 0;
  double both = 0;
};

// Timed passes per configuration: one warm-up pass (cold caches would
// otherwise penalize whichever contender runs first), then the minimum of
// the timed passes (robust against scheduler noise). Small selections are
// microsecond-scale, so they get more passes.
inline int PassesForSelections(
    const std::vector<std::vector<uint32_t>>& selections) {
  const size_t rows =
      selections.empty() ? 0 : selections.front().size();
  if (rows < 10'000) {
    return 9;
  }
  if (rows < 200'000) {
    return 5;
  }
  return 2;
}

inline double MinOfPasses(
    const std::vector<std::vector<uint32_t>>& selections,
    const std::function<void(std::span<const uint32_t>)>& body) {
  const int passes = PassesForSelections(selections);
  double best = 0;
  for (int pass = -1; pass < passes; ++pass) {
    const double seconds = query::MeanRunSeconds(selections, body);
    if (pass == -1) {
      continue;  // Warm-up.
    }
    best = pass == 0 ? seconds : std::min(best, seconds);
  }
  return best;
}

inline PairTimes MeasurePair(
    const Block& block, size_t ref_col, size_t target_col,
    const std::vector<std::vector<uint32_t>>& selections) {
  PairTimes times;
  std::vector<int64_t> out_target;
  std::vector<int64_t> out_ref;
  times.target_only =
      MinOfPasses(selections, [&](std::span<const uint32_t> rows) {
        out_target.resize(rows.size());
        query::ScanColumn(block, target_col, rows, out_target.data());
        Consume(out_target);
      });
  times.both =
      MinOfPasses(selections, [&](std::span<const uint32_t> rows) {
        out_ref.resize(rows.size());
        out_target.resize(rows.size());
        query::ScanPair(block, ref_col, target_col, rows, out_ref.data(),
                        out_target.data());
        Consume(out_ref);
        Consume(out_target);
      });
  return times;
}

/// Default rows for the latency benches: large enough that the packed
/// columns exceed the last-level cache (the paper's 60M-row runs are
/// memory-bound; a 1M-row block would be cache-resident and overstate
/// Corra's relative overhead).
inline constexpr size_t kLatencyDefaultRows = 4'000'000;

}  // namespace corra::bench

#endif  // CORRA_BENCH_LATENCY_COMMON_H_
