#!/usr/bin/env python3
"""Diff BENCH_*.json files and fail on per-kernel perf regressions.

Usage:
    compare_bench.py BASELINE.json CANDIDATE.json [CANDIDATE2.json ...]
        [--threshold 0.15] [--override PATTERN=THRESHOLD ...]

All files are JSON arrays of {name, rows, ns_per_row, gb_per_s} objects
as emitted by any bench binary's --json flag (see bench_util.h). The
script matches kernels by name and exits non-zero when any kernel's
ns_per_row regressed by more than its threshold (a fraction; the default
0.15 fails on >15% regression).

Multiple candidate files implement a min-of-N gate: each kernel's
candidate time is the minimum across the files. Memory-bandwidth-bound
kernels (the RLE decode family) swing +-20% run to run on a shared VM,
so CI runs the bench twice and gates on the better run — a real
regression shows up in both, noise rarely does.

--override narrows or widens the gate per kernel: the PATTERN is an
fnmatch glob over kernel names and THRESHOLD a fraction, e.g.
    --override 'decode_*/rle=0.50' --override 'point_access/delta=0.10'
The last matching override wins; unmatched kernels use --threshold.

Kernels present only in the candidate are listed as new; kernels present
only in the baseline are warned about but do not fail the run (use
--fail-missing to make dropped kernels fatal). The default threshold is
meant for same-machine comparisons; CI comparing against a baseline
measured on different hardware should pass a wider --threshold.
"""

import argparse
import fnmatch
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of results")
    results = {}
    for entry in data:
        name = entry.get("name")
        ns = entry.get("ns_per_row")
        if not isinstance(name, str) or not isinstance(ns, (int, float)):
            raise ValueError(f"{path}: bad entry {entry!r}")
        results[name] = float(ns)
    return results


def load_min_of(paths):
    """Per-kernel minimum ns_per_row across candidate files."""
    merged = {}
    for path in paths:
        for name, ns in load(path).items():
            if name not in merged or ns < merged[name]:
                merged[name] = ns
    return merged


def parse_overrides(specs):
    overrides = []
    for spec in specs:
        pattern, sep, value = spec.rpartition("=")
        if not sep or not pattern:
            raise ValueError(f"bad --override {spec!r}; want PATTERN=FRACTION")
        overrides.append((pattern, float(value)))
    return overrides


def threshold_for(name, default, overrides):
    chosen = default
    for pattern, value in overrides:
        if fnmatch.fnmatch(name, pattern):
            chosen = value
    return chosen


def main():
    parser = argparse.ArgumentParser(
        description="Fail on per-kernel ns_per_row regressions between "
        "a baseline and one or more candidate bench JSON files.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument(
        "candidates", nargs="+",
        help="candidate BENCH_*.json files; with several, each kernel "
        "is gated on its minimum across them (min-of-N re-run)")
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed fractional ns_per_row regression per kernel "
        "(default 0.15 = 15%%)")
    parser.add_argument(
        "--override", action="append", default=[],
        metavar="PATTERN=FRACTION",
        help="per-kernel threshold override; PATTERN is an fnmatch glob "
        "over kernel names, last match wins (repeatable)")
    parser.add_argument(
        "--fail-missing", action="store_true",
        help="also fail when a baseline kernel is missing from the "
        "candidate")
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load_min_of(args.candidates)
    overrides = parse_overrides(args.override)

    regressions = []
    missing = sorted(set(baseline) - set(candidate))
    new = sorted(set(candidate) - set(baseline))

    width = max((len(n) for n in baseline), default=4)
    print(f"{'kernel':<{width}}  {'base ns':>10}  {'cand ns':>10}  "
          f"{'delta':>8}  {'gate':>6}")
    for name in sorted(set(baseline) & set(candidate)):
        base = baseline[name]
        cand = candidate[name]
        gate = threshold_for(name, args.threshold, overrides)
        delta = (cand - base) / base if base > 0 else 0.0
        flag = ""
        if delta > gate:
            regressions.append((name, base, cand, delta, gate))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {base:>10.4f}  {cand:>10.4f}  "
              f"{delta:>+7.1%}  {gate:>5.0%}{flag}")

    for name in new:
        print(f"{name:<{width}}  {'-':>10}  {candidate[name]:>10.4f}  "
              f"   (new)")
    for name in missing:
        print(f"{name:<{width}}  {baseline[name]:>10.4f}  {'-':>10}  "
              f"   (missing from candidate)", file=sys.stderr)

    if regressions:
        print(f"\nFAIL: {len(regressions)} kernel(s) regressed past their "
              f"gate in ns_per_row:", file=sys.stderr)
        for name, base, cand, delta, gate in regressions:
            print(f"  {name}: {base:.4f} -> {cand:.4f} ({delta:+.1%}, "
                  f"gate {gate:.0%})", file=sys.stderr)
        return 1
    if missing and args.fail_missing:
        print(f"\nFAIL: {len(missing)} baseline kernel(s) missing from "
              f"candidate", file=sys.stderr)
        return 1
    print(f"\nOK: no kernel regressed past its gate "
          f"(default {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
