#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on per-kernel perf regressions.

Usage:
    compare_bench.py BASELINE.json CANDIDATE.json [--threshold 0.15]

Both files are JSON arrays of {name, rows, ns_per_row, gb_per_s} objects
as emitted by any bench binary's --json flag (see bench_util.h). The
script matches kernels by name and exits non-zero when any kernel's
ns_per_row regressed by more than --threshold (a fraction; the default
0.15 fails on >15% regression).

Kernels present only in the candidate are listed as new; kernels present
only in the baseline are warned about but do not fail the run (use
--fail-missing to make dropped kernels fatal). The default threshold is
meant for same-machine comparisons; CI comparing against a baseline
measured on different hardware should pass a wider --threshold.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of results")
    results = {}
    for entry in data:
        name = entry.get("name")
        ns = entry.get("ns_per_row")
        if not isinstance(name, str) or not isinstance(ns, (int, float)):
            raise ValueError(f"{path}: bad entry {entry!r}")
        results[name] = float(ns)
    return results


def main():
    parser = argparse.ArgumentParser(
        description="Fail on per-kernel ns_per_row regressions between "
        "two bench JSON files.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed fractional ns_per_row regression per kernel "
        "(default 0.15 = 15%%)")
    parser.add_argument(
        "--fail-missing", action="store_true",
        help="also fail when a baseline kernel is missing from the "
        "candidate")
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    regressions = []
    missing = sorted(set(baseline) - set(candidate))
    new = sorted(set(candidate) - set(baseline))

    width = max((len(n) for n in baseline), default=4)
    print(f"{'kernel':<{width}}  {'base ns':>10}  {'cand ns':>10}  "
          f"{'delta':>8}")
    for name in sorted(set(baseline) & set(candidate)):
        base = baseline[name]
        cand = candidate[name]
        delta = (cand - base) / base if base > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, base, cand, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {base:>10.4f}  {cand:>10.4f}  "
              f"{delta:>+7.1%}{flag}")

    for name in new:
        print(f"{name:<{width}}  {'-':>10}  {candidate[name]:>10.4f}  "
              f"   (new)")
    for name in missing:
        print(f"{name:<{width}}  {baseline[name]:>10.4f}  {'-':>10}  "
              f"   (missing from candidate)", file=sys.stderr)

    if regressions:
        print(f"\nFAIL: {len(regressions)} kernel(s) regressed more than "
              f"{args.threshold:.0%} in ns_per_row:", file=sys.stderr)
        for name, base, cand, delta in regressions:
            print(f"  {name}: {base:.4f} -> {cand:.4f} ({delta:+.1%})",
                  file=sys.stderr)
        return 1
    if missing and args.fail_missing:
        print(f"\nFAIL: {len(missing)} baseline kernel(s) missing from "
              f"candidate", file=sys.stderr)
        return 1
    print(f"\nOK: no kernel regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
