// Reproduces the paper's Table 1: how often each arithmetic formula over
// the Taxi reference groups reconstructs total_amount, measured from the
// encoded column's code statistics. Also demonstrates the automatic
// formula derivation (the paper's future-work extension).

#include <cstdio>

#include "bench_util.h"
#include "core/multi_ref_encoding.h"
#include "datagen/taxi.h"

namespace corra::bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const size_t n = ResolveRows(flags, datagen::kTaxiRows, 16);
  std::fprintf(stderr, "[table1] taxi: %zu rows\n", n);
  const auto trips = datagen::GenerateTaxiTrips(n);

  std::vector<std::span<const int64_t>> columns = {
      trips.mta_tax,           trips.fare_amount,
      trips.improvement_surcharge, trips.extra,
      trips.tip_amount,        trips.tolls_amount,
      trips.congestion_surcharge,  trips.airport_fee,
  };
  const ColumnResolver resolver =
      [&columns](uint32_t col) -> std::span<const int64_t> {
    return columns[col];
  };
  FormulaTable table;
  table.groups = {{0, 1, 2, 3, 4, 5}, {6}, {7}};  // A, B, C.
  table.formulas = {0b001, 0b011, 0b101, 0b111};
  table.code_bits = 2;

  auto encoded =
      MultiRefColumn::Encode(trips.total_amount, resolver, table, 0.02)
          .value();
  const auto stats = encoded->ComputeCodeStats();
  const double total = static_cast<double>(encoded->size());

  PrintHeader("Table 1: formula mix for Taxi total_amount");
  std::printf("%-14s %-10s %10s   %s\n", "Representation", "Binary",
              "Measured", "Paper");
  PrintRule();
  const char* names[] = {"A", "A + B", "A + C", "A + B + C"};
  const char* codes[] = {"00", "01", "10", "11"};
  const double paper[] = {31.19, 62.44, 2.69, 3.33};
  // The encoder assigns code c to formula table order {A, A+B, A+C, A+B+C}.
  for (size_t c = 0; c < 4; ++c) {
    std::printf("%-14s %-10s %9.2f%%   %5.2f%%\n", names[c], codes[c],
                100.0 * static_cast<double>(stats.code_counts[c]) / total,
                paper[c]);
  }
  std::printf("%-14s %-10s %9.2f%%   %5.2f%%\n", "None", "outlier",
              100.0 * static_cast<double>(stats.outlier_count) / total,
              0.32);
  PrintRule();

  // Future-work demo: derive the formulas from the data alone.
  auto derived = MultiRefColumn::DeriveFormulas(
      trips.total_amount, resolver, table.groups, /*code_bits=*/2);
  std::printf("\nDerived formulas (auto-detection, most frequent first):");
  if (derived.ok()) {
    for (uint8_t mask : derived.value().formulas) {
      std::string repr;
      const char* group_names[] = {"A", "B", "C"};
      for (int g = 0; g < 3; ++g) {
        if (mask & (1 << g)) {
          if (!repr.empty()) {
            repr += " + ";
          }
          repr += group_names[g];
        }
      }
      std::printf("  [%s]", repr.c_str());
    }
    std::printf("\n");
  } else {
    std::printf("  (failed: %s)\n", derived.status().ToString().c_str());
  }
  std::printf("Compressed size: %.2f MB for %zu rows (2-bit codes + %zu "
              "outliers)\n",
              ToMb(encoded->SizeBytes()), encoded->size(),
              encoded->outliers().size());
  PrintRule();
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
