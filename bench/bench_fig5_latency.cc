// Reproduces the paper's Fig. 5: query latency ratio of Corra over the
// single-column baseline across selectivities {0.001 ... 1.0}, for
//   * non-hierarchical encoding on TPC-H lineitem
//     (l_shipdate reference, l_commitdate diff-encoded), and
//   * hierarchical encoding on LDBC message (countryid -> ip),
// each querying (i) only the diff-encoded column and (ii) both columns.
//
// Expected shape: diff-only peaks at ~1.4-1.7x at low selectivity and
// shrinks as locality improves; both-columns stays near 1x for
// non-hierarchical and slightly above 1x for hierarchical (metadata
// lookups are not fully amortized).

#include <cstdio>

#include "bench_util.h"
#include "datagen/ldbc.h"
#include "datagen/tpch.h"
#include "latency_common.h"

namespace corra::bench {
namespace {

struct SweepResult {
  std::vector<double> ratio_target_only;
  std::vector<double> ratio_both;
};

SweepResult Sweep(const Contenders& contenders, size_t ref_col,
                  size_t target_col, const std::vector<double>& sweep,
                  size_t runs, uint64_t seed) {
  SweepResult result;
  Rng rng(seed);
  const Block& baseline = contenders.baseline->block(0);
  const Block& corra = contenders.corra->block(0);
  for (double selectivity : sweep) {
    const auto selections = query::GenerateSelectionVectors(
        baseline.rows(), selectivity, runs, &rng);
    const PairTimes base = MeasurePair(baseline, ref_col, target_col,
                                       selections);
    const PairTimes ours = MeasurePair(corra, ref_col, target_col,
                                       selections);
    result.ratio_target_only.push_back(
        base.target_only > 0 ? ours.target_only / base.target_only : 0);
    result.ratio_both.push_back(base.both > 0 ? ours.both / base.both : 0);
  }
  return result;
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const size_t n = flags.rows > 0 ? flags.rows : kLatencyDefaultRows;
  const auto sweep = query::PaperSelectivitySweep();

  // Non-hierarchical: lineitem (ship -> commit), as in the paper's text.
  std::fprintf(stderr, "[fig5] lineitem pair: %zu rows\n", n);
  auto lineitem = datagen::MakeLineitemTable(n).value();
  CompressionPlan lineitem_plan = CompressionPlan::AllAuto(4);
  lineitem_plan.columns[2].auto_vertical = false;
  lineitem_plan.columns[2].scheme = enc::Scheme::kDiff;
  lineitem_plan.columns[2].reference = 1;
  const Contenders nonhier = BuildContenders(lineitem, lineitem_plan);
  const SweepResult nonhier_result =
      Sweep(nonhier, 1, 2, sweep, flags.runs, 1);

  // Hierarchical: LDBC (countryid -> ip).
  std::fprintf(stderr, "[fig5] ldbc pair: %zu rows\n", n);
  auto ldbc = datagen::MakeLdbcTable(n).value();
  CompressionPlan ldbc_plan = CompressionPlan::AllAuto(2);
  ldbc_plan.columns[1].auto_vertical = false;
  ldbc_plan.columns[1].scheme = enc::Scheme::kHierarchical;
  ldbc_plan.columns[1].reference = 0;
  const Contenders hier = BuildContenders(ldbc, ldbc_plan);
  const SweepResult hier_result = Sweep(hier, 0, 1, sweep, flags.runs, 2);

  PrintHeader(
      "Figure 5: latency ratio over single-column compression "
      "(rows per block: " +
      std::to_string(n) + ", " + std::to_string(flags.runs) +
      " selection vectors per point)");
  std::printf("%11s | %32s | %32s\n", "",
              "Non-hierarchical (ship->commit)",
              "Hierarchical (countryid->ip)");
  std::printf("%11s | %15s %16s | %15s %16s\n", "Selectivity", "diff-col",
              "both-cols", "diff-col", "both-cols");
  PrintRule();
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%11.3f | %14.2fx %15.2fx | %14.2fx %15.2fx\n", sweep[i],
                nonhier_result.ratio_target_only[i],
                nonhier_result.ratio_both[i],
                hier_result.ratio_target_only[i], hier_result.ratio_both[i]);
  }
  PrintRule();
  std::printf("Paper shape: diff-col max slow-down 1.66x (non-hier), "
              "1.39-1.56x (hier); both-cols ~1x (non-hier), slightly above "
              "1x (hier).\n");
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
