// Reproduces the paper's Fig. 2: the edge-weighted graph over TPC-H's
// three date columns and the greedy optimal diff-encoding configuration.
//
// Expected shape (SF 10, paper numbers in MB): vertices 90/90/90;
// ship->commit 60, commit->ship 60, ship->receipt 45, receipt->ship 37.5,
// commit<->receipt 60; chosen: shipdate reference, commitdate and
// receiptdate diff-encoded, saving 82.5 MB over bit-packing.

#include <cstdio>

#include "bench_util.h"
#include "core/config_optimizer.h"
#include "datagen/tpch.h"

namespace corra::bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const size_t n = ResolveRows(flags, datagen::kLineitemRowsSf10, 30);
  std::fprintf(stderr, "[fig2] lineitem: %zu rows\n", n);
  const auto dates = datagen::GenerateLineitemDates(n);
  const std::vector<CandidateColumn> candidates = {
      {"l_shipdate", dates.shipdate},
      {"l_commitdate", dates.commitdate},
      {"l_receiptdate", dates.receiptdate},
  };
  OptimizerOptions options;
  options.sample_limit = 1 << 18;
  const DiffConfig config = OptimizeDiffConfig(candidates, options).value();

  PrintHeader("Figure 2: optimal diff-encoding configuration (TPC-H SF 10)");
  std::printf("Vertex weights (best single-column size, normalized MB):\n");
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::printf("  %-14s %7.1f MB\n", candidates[i].name.c_str(),
                NormalizedMb(config.assignments[i].vertical_size, n,
                             datagen::kLineitemRowsSf10));
  }
  std::printf("\nEdge weights (size of row diff-encoded w.r.t. column):\n");
  std::printf("  %-14s", "");
  for (const auto& c : candidates) {
    std::printf(" %14s", c.name.c_str());
  }
  std::printf("\n");
  for (size_t a = 0; a < candidates.size(); ++a) {
    std::printf("  %-14s", candidates[a].name.c_str());
    for (size_t b = 0; b < candidates.size(); ++b) {
      if (config.edge_sizes[a][b] == SIZE_MAX) {
        std::printf(" %14s", "-");
      } else {
        std::printf(" %11.1f MB",
                    NormalizedMb(config.edge_sizes[a][b], n,
                                 datagen::kLineitemRowsSf10));
      }
    }
    std::printf("\n");
  }
  std::printf("\nGreedy assignment:\n");
  for (size_t i = 0; i < candidates.size(); ++i) {
    const auto& a = config.assignments[i];
    if (a.role == ColumnRole::kDiffEncoded) {
      std::printf("  %-14s %-12s ref=%s  %7.1f MB\n",
                  candidates[i].name.c_str(),
                  std::string(ColumnRoleToString(a.role)).c_str(),
                  candidates[static_cast<size_t>(a.reference)].name.c_str(),
                  NormalizedMb(a.assigned_size, n,
                               datagen::kLineitemRowsSf10));
    } else {
      std::printf("  %-14s %-12s %16s %7.1f MB\n",
                  candidates[i].name.c_str(),
                  std::string(ColumnRoleToString(a.role)).c_str(), "",
                  NormalizedMb(a.assigned_size, n,
                               datagen::kLineitemRowsSf10));
    }
  }
  std::printf(
      "\nTotal: %7.1f MB -> %7.1f MB, saving %.1f MB "
      "(paper: 270 -> 187.5, saving 82.5 MB)\n",
      NormalizedMb(config.total_vertical_bytes, n,
                   datagen::kLineitemRowsSf10),
      NormalizedMb(config.total_assigned_bytes, n,
                   datagen::kLineitemRowsSf10),
      NormalizedMb(config.saving_bytes(), n, datagen::kLineitemRowsSf10));
  PrintRule();
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
