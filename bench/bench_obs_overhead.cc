// Observability overhead gate: dense scans with telemetry ON must stay
// within a small bound of the same scans with telemetry OFF.
//
// Methodology: one process, one warm ScanService, and interleaved A/B
// sampling via obs::SetEnabled — sample r measures one dense scan with
// the layer enabled, then the identical scan disabled, back to back.
// Interleaving inside a single process cancels machine-level drift
// (frequency scaling, cache state, page placement) that plagues
// cross-run comparisons; the reported overhead is the ratio of the two
// *medians*, robust to stray outlier samples.
//
// Flags (besides the shared --rows/--runs/--json):
//   --assert R   exit nonzero when overhead exceeds R (e.g. 0.02 for
//                the CI bound of 2%); without it the bench only reports.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/corra_compressor.h"
#include "obs/metrics.h"
#include "serve/scan_service.h"
#include "serve/table_reader.h"
#include "storage/file_io.h"

namespace {

using namespace corra;
using Clock = std::chrono::steady_clock;

constexpr size_t kBlockRows = 250000;

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// Time for `scans` back-to-back executions: batching several ~50ms
// scans per timing absorbs single-scan scheduler jitter.
double TimeScans(serve::ScanService& service,
                 const serve::TableReader& reader,
                 const serve::ScanRequest& request, size_t scans) {
  const auto begin = Clock::now();
  for (size_t i = 0; i < scans; ++i) {
    auto result = service.Execute(reader, request);
    if (!result.ok()) {
      std::fprintf(stderr, "scan failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  const auto end = Clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
#ifdef CORRA_OBS_OFF
  // Nothing to compare when the layer is compiled out.
  std::printf("observability compiled out (CORRA_OBS_OFF); overhead 0\n");
  return 0;
#else
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  double assert_bound = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert") == 0 && i + 1 < argc) {
      assert_bound = std::strtod(argv[i + 1], nullptr);
    } else if (std::strncmp(argv[i], "--assert=", 9) == 0) {
      assert_bound = std::strtod(argv[i] + 9, nullptr);
    }
  }
  const size_t rows = bench::ResolveRows(flags, 8000000, 4);
  const size_t samples = flags.runs > 2 ? flags.runs : 10;

  // The bench_serve table: correlated dates plus a fare column.
  Rng rng(17);
  std::vector<int64_t> ship(rows), receipt(rows), fare(rows);
  for (size_t i = 0; i < rows; ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
    fare[i] = rng.Uniform(100, 25000);
  }
  Table table;
  if (!table.AddColumn(Column::Date("ship", std::move(ship))).ok() ||
      !table.AddColumn(Column::Date("receipt", std::move(receipt))).ok() ||
      !table.AddColumn(Column::Money("fare", std::move(fare))).ok()) {
    return 1;
  }
  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.block_rows = kBlockRows;
  plan.num_threads = 4;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compress failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const size_t num_blocks = compressed.value().num_blocks();
  const std::string path = "/tmp/corra_bench_obs_overhead.corf";
  if (!WriteCompressedTable(compressed.value(), path).ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }

  auto cache = std::make_shared<serve::BlockCache>(
      serve::BlockCacheOptions{.capacity_blocks = num_blocks + 8,
                               .capacity_bytes = 0,
                               .shards = 4});
  auto reader = serve::TableReader::Open(path, cache);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  // Inline execution: the measurement is pure per-block scan cost, no
  // pool scheduling noise, and it is the configuration most sensitive
  // to instrumentation (every clock read lands on the timed path).
  serve::ScanService service(serve::ScanService::Options{.num_threads = 0});

  // Dense scan: no filter, all columns projected — the hot path the
  // 2% bound is stated for (per-block instrumentation cost amortizes
  // over the most rows).
  serve::ScanRequest request;
  request.project_columns = {0, 1, 2};

  // Warm the cache and both code paths before sampling.
  constexpr size_t kScansPerSample = 3;
  obs::SetEnabled(true);
  TimeScans(service, *reader.value(), request, 1);
  obs::SetEnabled(false);
  TimeScans(service, *reader.value(), request, 1);

  // Each sample is one enabled and one disabled batch back to back (the
  // order alternates per sample so any first-runner advantage cancels),
  // and contributes one on/off *ratio*. Two adjacent batches see the
  // same machine state, so per-pair ratios are immune to the slow drift
  // (thermal throttling, background load ramping) that makes whole-run
  // aggregates like global medians or minima unstable; the median of
  // the pair ratios is then robust to stray outlier pairs.
  //
  // Under --assert, a reading over the bound triggers up to two fresh
  // measurements: ambient noise that inflated one run is uncorrelated
  // with the next, while a real instrumentation regression fails all
  // three. This keeps the CI gate tight (2%) without flaking on shared
  // runners whose noise floor can exceed the bound being asserted.
  struct Measurement {
    double on_med, off_med, overhead;
  };
  const auto measure = [&]() -> Measurement {
    std::vector<double> on_s, off_s, ratios;
    on_s.reserve(samples);
    off_s.reserve(samples);
    ratios.reserve(samples);
    for (size_t r = 0; r < samples; ++r) {
      const bool on_first = r % 2 == 0;
      double pair[2];
      for (int half = 0; half < 2; ++half) {
        const bool enabled = (half == 0) == on_first;
        obs::SetEnabled(enabled);
        pair[enabled ? 0 : 1] =
            TimeScans(service, *reader.value(), request, kScansPerSample);
      }
      on_s.push_back(pair[0] / kScansPerSample);  // Per-scan time.
      off_s.push_back(pair[1] / kScansPerSample);
      ratios.push_back(pair[0] / pair[1]);
    }
    obs::SetEnabled(true);
    return {Median(on_s), Median(off_s), Median(ratios) - 1.0};
  };

  Measurement m = measure();
  int attempts = 1;
  while (assert_bound >= 0 && m.overhead > assert_bound && attempts < 3) {
    std::fprintf(stderr,
                 "attempt %d read %.2f%% (> %.2f%%); re-measuring\n",
                 attempts, m.overhead * 100.0, assert_bound * 100.0);
    m = measure();
    ++attempts;
  }
  const double mrows_on = static_cast<double>(rows) / m.on_med / 1e6;
  const double mrows_off = static_cast<double>(rows) / m.off_med / 1e6;

  if (flags.json) {
    std::printf("{\"rows\": %zu, \"samples\": %zu, "
                "\"on_median_ms\": %.3f, \"off_median_ms\": %.3f, "
                "\"mrows_per_s_on\": %.1f, \"mrows_per_s_off\": %.1f, "
                "\"overhead\": %.4f}\n",
                rows, samples, m.on_med * 1e3, m.off_med * 1e3, mrows_on,
                mrows_off, m.overhead);
  } else {
    bench::PrintHeader("Telemetry overhead on dense scans (" +
                       std::to_string(rows) + " rows, " +
                       std::to_string(samples) + " interleaved samples)");
    std::printf("%-10s %12s %12s\n", "obs", "median ms", "Mrows/s");
    bench::PrintRule();
    std::printf("%-10s %12.3f %12.1f\n", "on", m.on_med * 1e3, mrows_on);
    std::printf("%-10s %12.3f %12.1f\n", "off", m.off_med * 1e3, mrows_off);
    std::printf("overhead (median pair ratio): %.2f%%\n",
                m.overhead * 100.0);
  }

  std::remove(path.c_str());
  if (assert_bound >= 0 && m.overhead > assert_bound) {
    std::fprintf(stderr,
                 "FAIL: telemetry overhead %.2f%% exceeds bound %.2f%% "
                 "on all %d attempts\n",
                 m.overhead * 100.0, assert_bound * 100.0, attempts);
    return 1;
  }
  return 0;
#endif  // CORRA_OBS_OFF
}
