// Shared helpers for the paper-reproduction benchmarks: flag parsing,
// size formatting/normalization, a fixed-width table printer, and a
// machine-readable JSON reporter for the perf trajectory.
//
// Every bench accepts:
//   --scale N   divide the paper's row count by N (default varies)
//   --rows N    absolute row override (wins over --scale)
//   --runs N    selection vectors per selectivity (default 10, as in
//               the paper)
//   --json      emit results as a JSON array of
//               {name, rows, ns_per_row, gb_per_s} objects instead of
//               the human-readable table (CI archives these as
//               BENCH_*.json artifacts to track perf across PRs)

#ifndef CORRA_BENCH_BENCH_UTIL_H_
#define CORRA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace corra::bench {

struct Flags {
  size_t scale = 0;  // 0 = bench default.
  size_t rows = 0;   // 0 = derive from scale.
  size_t runs = 10;
  bool json = false;
};

inline Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        return argv[++i];
      }
      return nullptr;
    };
    if (const char* scale = value("--scale")) {
      flags.scale = static_cast<size_t>(std::strtoull(scale, nullptr, 10));
    } else if (const char* rows = value("--rows")) {
      flags.rows = static_cast<size_t>(std::strtoull(rows, nullptr, 10));
    } else if (const char* runs = value("--runs")) {
      flags.runs = static_cast<size_t>(std::strtoull(runs, nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      flags.json = true;
    }
  }
  return flags;
}

/// Rows to generate: --rows wins, then full_rows / --scale, then
/// full_rows / default_scale.
inline size_t ResolveRows(const Flags& flags, size_t full_rows,
                          size_t default_scale) {
  if (flags.rows > 0) {
    return flags.rows;
  }
  const size_t scale = flags.scale > 0 ? flags.scale : default_scale;
  return full_rows / scale;
}

inline double ToMb(size_t bytes) {
  return static_cast<double>(bytes) / 1e6;
}

/// Scales a measured size at `actual_rows` to the paper's `full_rows`
/// (per-row payloads scale exactly; metadata approximately — the caller
/// should note when metadata dominates).
inline double NormalizedMb(size_t bytes, size_t actual_rows,
                           size_t full_rows) {
  if (actual_rows == 0) {
    return 0;
  }
  return ToMb(bytes) * static_cast<double>(full_rows) /
         static_cast<double>(actual_rows);
}

/// One measured data point of a benchmark run.
struct BenchResult {
  std::string name;
  size_t rows = 0;          // Logical rows processed per repetition.
  double ns_per_row = 0;    // Mean wall-clock nanoseconds per row.
  double gb_per_s = 0;      // Decoded-value throughput (rows * 8 bytes).
};

/// Collects results and renders them either as a fixed-width table or —
/// with --json — as a machine-readable JSON array on stdout, so the
/// perf trajectory (BENCH_*.json) can accumulate across PRs.
class Reporter {
 public:
  explicit Reporter(const Flags& flags) : json_(flags.json) {}

  /// Records one measurement: `seconds` of wall clock for `reps`
  /// repetitions over `rows` logical rows each.
  void Add(const std::string& name, size_t rows, double seconds,
           size_t reps) {
    BenchResult result;
    result.name = name;
    result.rows = rows;
    const double rows_total =
        static_cast<double>(rows) * static_cast<double>(reps);
    result.ns_per_row = rows_total > 0 ? seconds / rows_total * 1e9 : 0;
    result.gb_per_s =
        seconds > 0 ? rows_total * sizeof(int64_t) / seconds / 1e9 : 0;
    results_.push_back(std::move(result));
    if (!json_) {
      std::printf("%-36s %12zu rows %10.3f ns/row %8.2f GB/s\n",
                  results_.back().name.c_str(), rows,
                  results_.back().ns_per_row, results_.back().gb_per_s);
    }
  }

  /// Emits the JSON array (no-op without --json).
  void Finish() const {
    if (!json_) {
      return;
    }
    std::printf("[\n");
    for (size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      std::printf("  {\"name\": \"%s\", \"rows\": %zu, "
                  "\"ns_per_row\": %.4f, \"gb_per_s\": %.4f}%s\n",
                  r.name.c_str(), r.rows, r.ns_per_row, r.gb_per_s,
                  i + 1 < results_.size() ? "," : "");
    }
    std::printf("]\n");
  }

  const std::vector<BenchResult>& results() const { return results_; }

 private:
  bool json_;
  std::vector<BenchResult> results_;
};

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace corra::bench

#endif  // CORRA_BENCH_BENCH_UTIL_H_
