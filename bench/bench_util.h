// Shared helpers for the paper-reproduction benchmarks: flag parsing,
// size formatting/normalization, and a fixed-width table printer.
//
// Every bench accepts:
//   --scale N   divide the paper's row count by N (default varies)
//   --rows N    absolute row override (wins over --scale)
//   --runs N    selection vectors per selectivity (default 10, as in
//               the paper)

#ifndef CORRA_BENCH_BENCH_UTIL_H_
#define CORRA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace corra::bench {

struct Flags {
  size_t scale = 0;  // 0 = bench default.
  size_t rows = 0;   // 0 = derive from scale.
  size_t runs = 10;
};

inline Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        return argv[++i];
      }
      return nullptr;
    };
    if (const char* v = value("--scale")) {
      flags.scale = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--rows")) {
      flags.rows = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--runs")) {
      flags.runs = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    }
  }
  return flags;
}

/// Rows to generate: --rows wins, then full_rows / --scale, then
/// full_rows / default_scale.
inline size_t ResolveRows(const Flags& flags, size_t full_rows,
                          size_t default_scale) {
  if (flags.rows > 0) {
    return flags.rows;
  }
  const size_t scale = flags.scale > 0 ? flags.scale : default_scale;
  return full_rows / scale;
}

inline double ToMb(size_t bytes) {
  return static_cast<double>(bytes) / 1e6;
}

/// Scales a measured size at `actual_rows` to the paper's `full_rows`
/// (per-row payloads scale exactly; metadata approximately — the caller
/// should note when metadata dominates).
inline double NormalizedMb(size_t bytes, size_t actual_rows,
                           size_t full_rows) {
  if (actual_rows == 0) {
    return 0;
  }
  return ToMb(bytes) * static_cast<double>(full_rows) /
         static_cast<double>(actual_rows);
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace corra::bench

#endif  // CORRA_BENCH_BENCH_UTIL_H_
