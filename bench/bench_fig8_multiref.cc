// Reproduces the paper's Fig. 8: latency ratio of the multi-reference
// encoding over the single-column baseline when querying Taxi's
// total_amount across selectivities {0.001 ... 1.0}.
//
// Expected shape: high ratio at low selectivity (scattered fetches over
// eight reference columns, poor cache hit rate), decreasing and
// stabilizing around ~2x as locality improves, with a slight uptick at
// full range caused by outlier handling.

#include <cstdio>

#include "bench_util.h"
#include "datagen/taxi.h"
#include "latency_common.h"

namespace corra::bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const size_t n = flags.rows > 0 ? flags.rows : kLatencyDefaultRows;
  std::fprintf(stderr, "[fig8] taxi: %zu rows\n", n);

  auto table = datagen::MakeTaxiTable(n).value();
  using C = datagen::TaxiColumns;
  CompressionPlan plan = CompressionPlan::AllAuto(11);
  auto& total = plan.columns[C::kTotalAmount];
  total.auto_vertical = false;
  total.scheme = enc::Scheme::kMultiRef;
  total.formulas.groups = {
      {C::kMtaTax, C::kFareAmount, C::kImprovementSurcharge, C::kExtra,
       C::kTipAmount, C::kTollsAmount},
      {C::kCongestionSurcharge},
      {C::kAirportFee}};
  total.formulas.formulas = {0b001, 0b011, 0b101, 0b111};
  total.formulas.code_bits = 2;
  total.max_outlier_fraction = 0.02;
  const Contenders contenders = BuildContenders(table, plan);

  PrintHeader(
      "Figure 8: multi-reference encoding (8 refs), latency ratio over "
      "single-column compression, query on diff-encoded column (" +
      std::to_string(n) + " rows per block)");
  std::printf("%11s %12s\n", "Selectivity", "Ratio");
  PrintRule();
  Rng rng(3);
  std::vector<int64_t> out;
  for (double selectivity : query::PaperSelectivitySweep()) {
    const auto selections = query::GenerateSelectionVectors(
        n, selectivity, flags.runs, &rng);
    const double base_time =
        MinOfPasses(selections, [&](std::span<const uint32_t> rows) {
          out.resize(rows.size());
          query::ScanColumn(contenders.baseline->block(0),
                            C::kTotalAmount, rows, out.data());
          Consume(out);
        });
    const double corra_time =
        MinOfPasses(selections, [&](std::span<const uint32_t> rows) {
          out.resize(rows.size());
          query::ScanColumn(contenders.corra->block(0), C::kTotalAmount,
                            rows, out.data());
          Consume(out);
        });
    std::printf("%11.3f %11.2fx\n", selectivity,
                base_time > 0 ? corra_time / base_time : 0.0);
  }
  PrintRule();
  std::printf("Paper shape: high at low selectivity, stabilizing around "
              "~2x, slight increase at selectivity 1.0 (outlier "
              "handling).\n");
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
