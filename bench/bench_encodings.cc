// Micro-benchmarks (google-benchmark) for the encoding substrate and the
// Corra schemes: encode, full decode, point access, and selective gather
// throughput. Not a paper figure — used to sanity-check that the O(1)
// random-access claims behind the baseline choice hold.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/diff_encoding.h"
#include "core/hierarchical_encoding.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/rle.h"
#include "query/selection_vector.h"

namespace corra {
namespace {

constexpr size_t kRows = 1 << 20;

std::vector<int64_t> DateLikeValues(size_t n) {
  Rng rng(42);
  std::vector<int64_t> values(n);
  for (auto& v : values) {
    v = rng.Uniform(8035, 10591);
  }
  return values;
}

std::vector<int64_t> OffsetValues(const std::vector<int64_t>& base,
                                  int64_t lo, int64_t hi) {
  Rng rng(43);
  std::vector<int64_t> values(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    values[i] = base[i] + rng.Uniform(lo, hi);
  }
  return values;
}

void BM_ForEncode(benchmark::State& state) {
  const auto values = DateLikeValues(kRows);
  for (auto _ : state) {
    auto column = enc::ForColumn::Encode(values).value();
    benchmark::DoNotOptimize(column);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_ForEncode);

void BM_ForDecodeAll(benchmark::State& state) {
  const auto values = DateLikeValues(kRows);
  auto column = enc::ForColumn::Encode(values).value();
  std::vector<int64_t> out(kRows);
  for (auto _ : state) {
    column->DecodeAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_ForDecodeAll);

void BM_DictDecodeAll(benchmark::State& state) {
  const auto values = DateLikeValues(kRows);
  auto column = enc::DictColumn::Encode(values).value();
  std::vector<int64_t> out(kRows);
  for (auto _ : state) {
    column->DecodeAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_DictDecodeAll);

// Point access: FOR is O(1); Delta pays its checkpoint scan. This is the
// paper's argument for restricting the baseline to FOR/Dict.
void BM_PointAccessFor(benchmark::State& state) {
  const auto values = DateLikeValues(kRows);
  auto column = enc::ForColumn::Encode(values).value();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        column->Get(static_cast<size_t>(rng.Uniform(0, kRows - 1))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointAccessFor);

void BM_PointAccessDelta(benchmark::State& state) {
  const auto values = DateLikeValues(kRows);
  auto column = enc::DeltaColumn::Encode(values).value();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        column->Get(static_cast<size_t>(rng.Uniform(0, kRows - 1))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointAccessDelta);

void BM_GatherFor(benchmark::State& state) {
  const auto values = DateLikeValues(kRows);
  auto column = enc::ForColumn::Encode(values).value();
  Rng rng(8);
  const auto rows = query::GenerateSelectionVector(
      kRows, static_cast<double>(state.range(0)) / 1000.0, &rng);
  std::vector<int64_t> out(rows.size());
  for (auto _ : state) {
    column->Gather(rows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * rows.size()));
}
BENCHMARK(BM_GatherFor)->Arg(1)->Arg(10)->Arg(100);

void BM_GatherDiff(benchmark::State& state) {
  const auto reference = DateLikeValues(kRows);
  const auto target = OffsetValues(reference, 1, 30);
  auto ref_column = enc::ForColumn::Encode(reference).value();
  auto diff_column =
      DiffEncodedColumn::Encode(target, reference, 0).value();
  const enc::EncodedColumn* refs[] = {ref_column.get()};
  (void)diff_column->BindReferences(refs);
  Rng rng(8);
  const auto rows = query::GenerateSelectionVector(
      kRows, static_cast<double>(state.range(0)) / 1000.0, &rng);
  std::vector<int64_t> out(rows.size());
  for (auto _ : state) {
    diff_column->Gather(rows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * rows.size()));
}
BENCHMARK(BM_GatherDiff)->Arg(1)->Arg(10)->Arg(100);

void BM_GatherDiffWithReference(benchmark::State& state) {
  const auto reference = DateLikeValues(kRows);
  const auto target = OffsetValues(reference, 1, 30);
  auto ref_column = enc::ForColumn::Encode(reference).value();
  auto diff_column =
      DiffEncodedColumn::Encode(target, reference, 0).value();
  const enc::EncodedColumn* refs[] = {ref_column.get()};
  (void)diff_column->BindReferences(refs);
  Rng rng(8);
  const auto rows = query::GenerateSelectionVector(
      kRows, static_cast<double>(state.range(0)) / 1000.0, &rng);
  std::vector<int64_t> ref_values(rows.size());
  ref_column->Gather(rows, ref_values.data());
  std::vector<int64_t> out(rows.size());
  for (auto _ : state) {
    diff_column->GatherWithReference(rows, ref_values.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * rows.size()));
}
BENCHMARK(BM_GatherDiffWithReference)->Arg(1)->Arg(10)->Arg(100);

void BM_HierarchicalGather(benchmark::State& state) {
  Rng data_rng(9);
  std::vector<int64_t> city(kRows);
  std::vector<int64_t> zip(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    city[i] = data_rng.Uniform(0, 2499);
    zip[i] = 10000 + city[i] * 30 + data_rng.Uniform(0, 29);
  }
  auto ref_column = enc::ForColumn::Encode(city).value();
  auto hier_column = HierarchicalColumn::Encode(zip, city, 0).value();
  const enc::EncodedColumn* refs[] = {ref_column.get()};
  (void)hier_column->BindReferences(refs);
  Rng rng(10);
  const auto rows = query::GenerateSelectionVector(
      kRows, static_cast<double>(state.range(0)) / 1000.0, &rng);
  std::vector<int64_t> out(rows.size());
  for (auto _ : state) {
    hier_column->Gather(rows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * rows.size()));
}
BENCHMARK(BM_HierarchicalGather)->Arg(1)->Arg(10)->Arg(100);

void BM_RleDecodeAll(benchmark::State& state) {
  Rng rng(11);
  std::vector<int64_t> values(kRows);
  int64_t current = 0;
  size_t remaining = 0;
  for (auto& v : values) {
    if (remaining == 0) {
      current = rng.Uniform(0, 100);
      remaining = static_cast<size_t>(rng.Uniform(10, 200));
    }
    v = current;
    --remaining;
  }
  auto column = enc::RleColumn::Encode(values).value();
  std::vector<int64_t> out(kRows);
  for (auto _ : state) {
    column->DecodeAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_RleDecodeAll);

}  // namespace
}  // namespace corra

BENCHMARK_MAIN();
