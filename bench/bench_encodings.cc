// Micro-benchmarks for the encoding substrate, the Corra schemes, and
// the morsel-based query kernels: full decode, ranged decode, point
// access, selective gather, filter, and aggregate throughput. Not a
// paper figure — used to sanity-check the O(1) random-access claims
// behind the baseline choice and to track the decode pipeline's
// throughput across PRs (run with --json; CI archives the output).
//
// Flags: --rows N (default 1M), --runs N (min repetitions), --json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/diff_encoding.h"
#include "core/hierarchical_encoding.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/rle.h"
#include "query/aggregate.h"
#include "query/filter.h"
#include "query/latency.h"
#include "query/morsel.h"
#include "query/selection_vector.h"

namespace corra {
namespace {

// Repeats `fn` until at least 0.25s of wall clock and `min_reps`
// repetitions have elapsed, then reports the mean.
template <typename Fn>
void RunBench(bench::Reporter* reporter, const std::string& name,
              size_t rows, size_t min_reps, Fn&& fn) {
  fn();  // Warm-up (first-touch pages, caches).
  query::Stopwatch watch;
  size_t reps = 0;
  double elapsed = 0;
  do {
    fn();
    ++reps;
    elapsed = watch.ElapsedSeconds();
  } while (elapsed < 0.25 || reps < min_reps);
  reporter->Add(name, rows, elapsed, reps);
}

std::vector<int64_t> DateLikeValues(size_t n) {
  Rng rng(42);
  std::vector<int64_t> values(n);
  for (auto& v : values) {
    v = rng.Uniform(8035, 10591);
  }
  return values;
}

std::vector<int64_t> OffsetValues(const std::vector<int64_t>& base,
                                  int64_t lo, int64_t hi) {
  Rng rng(43);
  std::vector<int64_t> values(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    values[i] = base[i] + rng.Uniform(lo, hi);
  }
  return values;
}

std::vector<int64_t> RunLengthValues(size_t n) {
  Rng rng(11);
  std::vector<int64_t> values(n);
  int64_t current = 0;
  size_t remaining = 0;
  for (auto& v : values) {
    if (remaining == 0) {
      current = rng.Uniform(0, 100);
      remaining = static_cast<size_t>(rng.Uniform(10, 200));
    }
    v = current;
    --remaining;
  }
  return values;
}

// Sweeps the whole column through DecodeRange in morsel-sized windows —
// the access pattern of every generic query kernel.
void DecodeRangeSweep(const enc::EncodedColumn& column, int64_t* sink) {
  int64_t buffer[query::kMorselRows];
  int64_t acc = 0;
  query::ForEachMorsel(0, column.size(), [&](size_t begin, size_t len) {
    column.DecodeRange(begin, len, buffer);
    acc += buffer[0] + buffer[len - 1];
  });
  *sink = acc;
}

void RunAll(const bench::Flags& flags) {
  const size_t rows = flags.rows > 0 ? flags.rows : (size_t{1} << 20);
  const size_t reps = flags.runs;
  bench::Reporter reporter(flags);

  const auto reference = DateLikeValues(rows);
  const auto target = OffsetValues(reference, 1, 30);
  const auto runs_data = RunLengthValues(rows);

  auto for_column = enc::ForColumn::Encode(reference).value();
  auto dict_column = enc::DictColumn::Encode(reference).value();
  auto delta_column = enc::DeltaColumn::Encode(reference).value();
  auto delta_inline_column =
      enc::DeltaColumn::Encode(
          reference, enc::DeltaColumn::kDefaultInlineCheckpointInterval,
          enc::DeltaLayout::kInline)
          .value();
  auto rle_column = enc::RleColumn::Encode(runs_data).value();
  auto diff_column = DiffEncodedColumn::Encode(target, reference, 0).value();
  const enc::EncodedColumn* diff_refs[] = {for_column.get()};
  (void)diff_column->BindReferences(diff_refs);

  Rng hier_rng(9);
  std::vector<int64_t> city(rows);
  std::vector<int64_t> zip(rows);
  for (size_t i = 0; i < rows; ++i) {
    city[i] = hier_rng.Uniform(0, 2499);
    zip[i] = 10000 + city[i] * 30 + hier_rng.Uniform(0, 29);
  }
  auto city_column = enc::ForColumn::Encode(city).value();
  auto hier_column = HierarchicalColumn::Encode(zip, city, 0).value();
  const enc::EncodedColumn* hier_refs[] = {city_column.get()};
  (void)hier_column->BindReferences(hier_refs);

  std::vector<int64_t> out(rows);
  int64_t sink = 0;

  // Encode.
  RunBench(&reporter, "encode/for", rows, reps, [&] {
    sink += static_cast<int64_t>(enc::ForColumn::Encode(reference)
                                     .value()
                                     ->SizeBytes());
  });

  // Full decode (DecodeAll == one DecodeRange over the column).
  RunBench(&reporter, "decode_all/for", rows, reps,
           [&] { for_column->DecodeAll(out.data()); });
  RunBench(&reporter, "decode_all/dict", rows, reps,
           [&] { dict_column->DecodeAll(out.data()); });
  RunBench(&reporter, "decode_all/delta", rows, reps,
           [&] { delta_column->DecodeAll(out.data()); });
  RunBench(&reporter, "decode_all/rle", rows, reps,
           [&] { rle_column->DecodeAll(out.data()); });
  RunBench(&reporter, "decode_all/diff", rows, reps,
           [&] { diff_column->DecodeAll(out.data()); });
  RunBench(&reporter, "decode_all/hierarchical", rows, reps,
           [&] { hier_column->DecodeAll(out.data()); });

  // Morsel-wise ranged decode (the generic kernel access pattern).
  RunBench(&reporter, "decode_range/for", rows, reps,
           [&] { DecodeRangeSweep(*for_column, &sink); });
  RunBench(&reporter, "decode_range/dict", rows, reps,
           [&] { DecodeRangeSweep(*dict_column, &sink); });
  RunBench(&reporter, "decode_range/delta", rows, reps,
           [&] { DecodeRangeSweep(*delta_column, &sink); });
  // The inline layout's dense-decode cost (one re-anchor per interval):
  // the price point-heavy workloads pay for single-window point access.
  RunBench(&reporter, "decode_range_inline/delta", rows, reps,
           [&] { DecodeRangeSweep(*delta_inline_column, &sink); });
  RunBench(&reporter, "decode_range/rle", rows, reps,
           [&] { DecodeRangeSweep(*rle_column, &sink); });
  RunBench(&reporter, "decode_range/diff", rows, reps,
           [&] { DecodeRangeSweep(*diff_column, &sink); });
  RunBench(&reporter, "decode_range/hierarchical", rows, reps,
           [&] { DecodeRangeSweep(*hier_column, &sink); });

  // Point access: FOR is O(1); Delta pays its checkpoint scan — the
  // paper's argument for restricting the baseline to FOR/Dict.
  {
    Rng rng(7);
    std::vector<uint32_t> points(1 << 16);
    for (auto& p : points) {
      p = static_cast<uint32_t>(rng.Uniform(0, static_cast<int64_t>(rows) - 1));
    }
    RunBench(&reporter, "point_access/for", points.size(), reps, [&] {
      int64_t acc = 0;
      for (uint32_t p : points) {
        acc += for_column->Get(p);
      }
      sink += acc;
    });
    RunBench(&reporter, "point_access/delta", points.size(), reps, [&] {
      int64_t acc = 0;
      for (uint32_t p : points) {
        acc += delta_column->Get(p);
      }
      sink += acc;
    });
    RunBench(&reporter, "point_access_inline/delta", points.size(), reps,
             [&] {
               int64_t acc = 0;
               for (uint32_t p : points) {
                 acc += delta_inline_column->Get(p);
               }
               sink += acc;
             });
    RunBench(&reporter, "point_access/rle", points.size(), reps, [&] {
      int64_t acc = 0;
      for (uint32_t p : points) {
        acc += rle_column->Get(p);
      }
      sink += acc;
    });
  }

  // Selective gather at 10% selectivity — the sparse-decode fast path
  // (EncodedColumn::GatherRange) of every scheme family.
  {
    Rng rng(8);
    const auto selection =
        query::GenerateSelectionVector(rows, 0.1, &rng);
    std::vector<int64_t> gathered(selection.size());
    std::vector<int64_t> ref_values(selection.size());
    for_column->Gather(selection, ref_values.data());
    RunBench(&reporter, "gather_0.1/for", selection.size(), reps,
             [&] { for_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.1/dict", selection.size(), reps,
             [&] { dict_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.1/rle", selection.size(), reps,
             [&] { rle_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.1/diff", selection.size(), reps,
             [&] { diff_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.1/diff_with_ref", selection.size(), reps,
             [&] {
               diff_column->GatherWithReference(selection, ref_values.data(),
                                                gathered.data());
             });
    RunBench(&reporter, "gather_0.1/hierarchical", selection.size(), reps,
             [&] { hier_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.1/delta", selection.size(), reps,
             [&] { delta_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.1_inline/delta", selection.size(), reps,
             [&] {
               delta_inline_column->Gather(selection, gathered.data());
             });
  }

  // Sparse gather at 1% — positioned kernels with long gaps (Delta takes
  // its cursor path here, bit-packed schemes the vpgatherqq path).
  {
    Rng rng(12);
    const auto selection =
        query::GenerateSelectionVector(rows, 0.01, &rng);
    std::vector<int64_t> gathered(selection.size());
    RunBench(&reporter, "gather_0.01/for", selection.size(), reps,
             [&] { for_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.01/diff", selection.size(), reps,
             [&] { diff_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.01/delta", selection.size(), reps,
             [&] { delta_column->Gather(selection, gathered.data()); });
    RunBench(&reporter, "gather_0.01_inline/delta", selection.size(), reps,
             [&] {
               delta_inline_column->Gather(selection, gathered.data());
             });
  }

  // Query kernels: range filter (~20% selectivity) and aggregates, all
  // morsel-pipelined.
  RunBench(&reporter, "filter/for", rows, reps, [&] {
    sink += static_cast<int64_t>(
        query::FilterToSelection(*for_column, 9000, 9500).size());
  });
  RunBench(&reporter, "filter/dict", rows, reps, [&] {
    sink += static_cast<int64_t>(
        query::FilterToSelection(*dict_column, 9000, 9500).size());
  });
  RunBench(&reporter, "filter/diff", rows, reps, [&] {
    sink += static_cast<int64_t>(
        query::FilterToSelection(*diff_column, 9040, 9560).size());
  });
  RunBench(&reporter, "sum/for", rows, reps,
           [&] { sink += query::SumColumn(*for_column); });
  RunBench(&reporter, "sum/dict", rows, reps,
           [&] { sink += query::SumColumn(*dict_column); });
  RunBench(&reporter, "sum/diff", rows, reps,
           [&] { sink += query::SumColumn(*diff_column); });
  RunBench(&reporter, "min/diff", rows, reps, [&] {
    sink += query::MinColumn(*diff_column).value_or(0);
  });

  reporter.Finish();
  if (sink == 42) {  // Defeat dead-code elimination; never true in practice.
    std::fprintf(stderr, "sink %lld\n", static_cast<long long>(sink));
  }
}

}  // namespace
}  // namespace corra

int main(int argc, char** argv) {
  const corra::bench::Flags flags = corra::bench::ParseFlags(argc, argv);
  if (!flags.json) {
    corra::bench::PrintHeader("bench_encodings: encode/decode/scan kernels");
  }
  corra::RunAll(flags);
  return 0;
}
