// Ablation studies for the design choices DESIGN.md calls out:
//   A. Outlier budget sweep: compressed size of a heavy-tailed diff column
//      as max_outlier_fraction grows (Sec. 2.1 "Outlier Detection").
//   B. Block-size sweep: hierarchical metadata amortization across block
//      granularities (the paper fixes 1M-tuple blocks).
//   C. Greedy vs. exhaustive configuration search on the TPC-H dates
//      (the greedy of Fig. 2 is optimal here; exhaustive confirms it).
//   D. Baseline policy: what Delta/RLE would save if the baseline allowed
//      checkpointed schemes (why the paper's baseline is FOR/Dict).
//   E. Reference chains: what the paper's future-work "diff-encoded
//      column becomes itself a reference" buys on chain-shaped data.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/config_optimizer.h"
#include "core/corra_compressor.h"
#include "core/diff_encoding.h"
#include "datagen/dmv.h"
#include "datagen/tpch.h"
#include "encoding/selector.h"

namespace corra::bench {
namespace {

void OutlierSweep(size_t n) {
  PrintHeader("Ablation A: outlier budget vs. diff-encoded size");
  Rng rng(1);
  std::vector<int64_t> reference(n);
  std::vector<int64_t> target(n);
  for (size_t i = 0; i < n; ++i) {
    reference[i] = rng.Uniform(0, 1 << 20);
    // 1% heavy tail: diffs usually in [0, 255], rarely in [0, 2^24].
    const int64_t diff = rng.Bernoulli(0.01)
                             ? rng.Uniform(0, 1 << 24)
                             : rng.Uniform(0, 255);
    target[i] = reference[i] + diff;
  }
  std::printf("%22s %14s %14s\n", "max_outlier_fraction", "size (KB)",
              "vs no-outlier");
  DiffOptions off;
  const size_t base_size =
      DiffEncodedColumn::EstimateSizeBytes(target, reference, off);
  std::printf("%22s %14.1f %13.2fx\n", "disabled",
              static_cast<double>(base_size) / 1024.0, 1.0);
  for (double fraction : {0.0001, 0.001, 0.005, 0.01, 0.02, 0.05}) {
    DiffOptions options;
    options.use_outliers = true;
    options.max_outlier_fraction = fraction;
    const size_t size =
        DiffEncodedColumn::EstimateSizeBytes(target, reference, options);
    std::printf("%22.4f %14.1f %13.2fx\n", fraction,
                static_cast<double>(size) / 1024.0,
                static_cast<double>(size) / static_cast<double>(base_size));
  }
  PrintRule();
}

void BlockSizeSweep(size_t n) {
  PrintHeader(
      "Ablation B: block granularity vs. hierarchical metadata "
      "amortization (DMV zip w.r.t. city)");
  auto table = datagen::MakeDmvTableFromCodes(n).value();
  std::printf("%14s %14s %16s\n", "block rows", "zip size (KB)",
              "blocks");
  for (size_t block_rows :
       {size_t{62500}, size_t{125000}, size_t{250000}, size_t{500000},
        size_t{1000000}}) {
    if (block_rows > n) {
      continue;
    }
    CompressionPlan plan = CompressionPlan::AllAuto(3);
    plan.block_rows = block_rows;
    plan.columns[2].auto_vertical = false;
    plan.columns[2].scheme = enc::Scheme::kHierarchical;
    plan.columns[2].reference = 1;
    auto compressed = CorraCompressor::Compress(table, plan).value();
    std::printf("%14zu %14.1f %16zu\n", block_rows,
                static_cast<double>(compressed.ColumnSizeBytes(2)) / 1024.0,
                compressed.num_blocks());
  }
  PrintRule();
}

void GreedyVsExhaustive(size_t n) {
  PrintHeader(
      "Ablation C: greedy vs. exhaustive diff-encoding configuration "
      "(TPC-H dates)");
  const auto dates = datagen::GenerateLineitemDates(n);
  const std::vector<CandidateColumn> candidates = {
      {"ship", dates.shipdate},
      {"commit", dates.commitdate},
      {"receipt", dates.receiptdate},
  };
  const DiffConfig greedy = OptimizeDiffConfig(candidates).value();

  // Exhaustive: every column picks vertical or one non-diff-encoded
  // reference; enumerate all 4^3 role vectors and keep valid minima.
  size_t best_total = SIZE_MAX;
  const size_t k = candidates.size();
  std::vector<int> choice(k);  // -1 vertical, else reference index.
  size_t combos = 1;
  for (size_t i = 0; i < k; ++i) {
    combos *= k + 1;
  }
  for (size_t mask = 0; mask < combos; ++mask) {
    size_t m = mask;
    bool valid = true;
    size_t total = 0;
    for (size_t i = 0; i < k; ++i, m /= (k + 1)) {
      const int c = static_cast<int>(m % (k + 1)) - 1;
      choice[i] = c;
      if (c == static_cast<int>(i)) {
        valid = false;
      }
    }
    if (!valid) {
      continue;
    }
    for (size_t i = 0; i < k && valid; ++i) {
      if (choice[i] >= 0 &&
          choice[static_cast<size_t>(choice[i])] >= 0) {
        valid = false;  // Paper mode: references must stay vertical.
      }
    }
    if (!valid) {
      continue;
    }
    for (size_t i = 0; i < k; ++i) {
      total += choice[i] < 0
                   ? greedy.assignments[i].vertical_size
                   : greedy.edge_sizes[i][static_cast<size_t>(choice[i])];
    }
    best_total = std::min(best_total, total);
  }
  std::printf("greedy total:     %10.1f KB\n",
              static_cast<double>(greedy.total_assigned_bytes) / 1024.0);
  std::printf("exhaustive total: %10.1f KB\n",
              static_cast<double>(best_total) / 1024.0);
  std::printf("greedy is %s\n",
              greedy.total_assigned_bytes == best_total
                  ? "optimal on this instance"
                  : "suboptimal on this instance");
  PrintRule();
}

void BaselinePolicy(size_t n) {
  PrintHeader(
      "Ablation D: baseline scheme pool (why FOR/Dict, not Delta/RLE)");
  const auto dates = datagen::GenerateLineitemDates(n);
  std::printf("%-14s %16s %16s\n", "column", "O(1) pool (KB)",
              "with Delta/RLE (KB)");
  for (const auto& [name, values] :
       std::initializer_list<std::pair<const char*,
                                       std::span<const int64_t>>>{
           {"shipdate", dates.shipdate},
           {"commitdate", dates.commitdate},
           {"receiptdate", dates.receiptdate}}) {
    size_t fast = SIZE_MAX;
    for (const auto& e : enc::EstimateSchemes(
             values, enc::SelectionPolicy::kConstantTimeAccessOnly)) {
      fast = std::min(fast, e.size_bytes);
    }
    size_t all = SIZE_MAX;
    for (const auto& e : enc::EstimateSchemes(
             values, enc::SelectionPolicy::kAllowCheckpointedSchemes)) {
      all = std::min(all, e.size_bytes);
    }
    std::printf("%-14s %16.1f %16.1f\n", name,
                static_cast<double>(fast) / 1024.0,
                static_cast<double>(all) / 1024.0);
  }
  std::printf("Checkpointed schemes buy little on unsorted data and lose "
              "O(1) access — the paper's baseline rationale.\n");
  PrintRule();
}

void ChainSweep(size_t n) {
  PrintHeader(
      "Ablation E: reference chains (future work in the paper's Sec. 2.1 "
      "footnote)");
  // Chain-shaped correlation: b tightly follows a, c tightly follows b,
  // but c only loosely follows a. Chains should capture the extra hop.
  Rng rng(2);
  std::vector<int64_t> a(n);
  std::vector<int64_t> b(n);
  std::vector<int64_t> c(n);
  int64_t walk = 0;
  for (size_t i = 0; i < n; ++i) {
    walk += rng.Uniform(-1000000, 1000000);
    a[i] = walk;
    b[i] = a[i] + rng.Uniform(0, 7);
    c[i] = b[i] + rng.Uniform(0, 7);
  }
  const std::vector<CandidateColumn> candidates = {
      {"a", a}, {"b", b}, {"c", c}};
  std::printf("%18s %16s %14s\n", "max_chain_depth", "total (KB)",
              "vs depth 1");
  size_t depth1_total = 0;
  for (int depth : {1, 2, 3}) {
    OptimizerOptions options;
    options.max_chain_depth = depth;
    const DiffConfig config =
        OptimizeDiffConfig(candidates, options).value();
    if (depth == 1) {
      depth1_total = config.total_assigned_bytes;
    }
    std::printf("%18d %16.1f %13.2fx\n", depth,
                static_cast<double>(config.total_assigned_bytes) / 1024.0,
                static_cast<double>(config.total_assigned_bytes) /
                    static_cast<double>(depth1_total));
  }
  PrintRule();
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const size_t n = flags.rows > 0 ? flags.rows : 1000000;
  std::fprintf(stderr, "[ablation] %zu rows\n", n);
  OutlierSweep(n);
  BlockSizeSweep(n);
  GreedyVsExhaustive(std::min<size_t>(n, 250000));
  BaselinePolicy(std::min<size_t>(n, 250000));
  ChainSweep(std::min<size_t>(n, 250000));
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
