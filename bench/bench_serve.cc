// Out-of-core serving: cache hit rate and scan throughput, hot vs cold.
//
// Writes a multi-block CORF file, then drives ScanService over a
// TableReader under two cache configurations:
//   hot   cache capacity >= file block count (steady state: all hits)
//   cold  cache capacity = 1 block (every scan thrashes the cache)
// and for each reports the block-cache hit rate, eviction count, and
// end-to-end scan throughput, single-client and with 8 concurrent
// clients sharing the reader.
//
// Flags: --rows N (default 2M), --runs N scan repetitions (default 10),
// --json for machine-readable output including a "metrics" object with
// the full telemetry registry snapshot (counters, gauges, latency
// histograms) accumulated across every configuration.
//
// --closed-loop switches to the front-door benchmark instead: N
// concurrent clients (1/4/16/64) in a closed loop of point-heavy
// gathers against a hot cache, once with cross-request coalescing on
// and once off, with admission control bounding in-flight requests.
// Reports per-config p50/p99/p999 latency and the rejected-request
// rate; --json then emits a compare_bench.py-compatible array
// (closed_loop/<mode>/c<N>/{p50_us,p99_us,p999_us,rejected_rate}).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/corra_compressor.h"
#include "obs/metrics.h"
#include "serve/scan_service.h"
#include "serve/table_reader.h"
#include "storage/file_io.h"

namespace {

using namespace corra;
using Clock = std::chrono::steady_clock;

constexpr size_t kBlockRows = 250000;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct RunStats {
  double seconds = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  serve::BlockCacheStats cache;
};

// Runs `runs` filtered scans (rotating predicate ranges) on `clients`
// threads sharing one reader, against a fresh cache of `capacity`.
RunStats RunConfig(const std::string& path, size_t capacity_blocks,
                   size_t runs, size_t clients) {
  auto cache = std::make_shared<serve::BlockCache>(
      serve::BlockCacheOptions{.capacity_blocks = capacity_blocks,
                               .capacity_bytes = 0,
                               .shards = 4});
  auto reader = serve::TableReader::Open(path, cache);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    std::exit(1);
  }
  serve::ScanService service(
      serve::ScanService::Options{.num_threads = 4});

  std::vector<uint64_t> scanned(clients, 0);
  std::vector<uint64_t> matched(clients, 0);
  const auto run_client = [&](size_t client) {
    for (size_t r = 0; r < runs; ++r) {
      serve::ScanRequest request;
      request.filter_column = 0;
      request.filter_lo = 8035 + static_cast<int64_t>(
                                     (client * runs + r) * 97 % 1500);
      request.filter_hi = request.filter_lo + 600;
      request.project_columns = {1, 2};
      auto result = service.Execute(*reader.value(), request);
      if (!result.ok()) {
        std::fprintf(stderr, "scan failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      scanned[client] += result.value().rows_scanned;
      matched[client] += result.value().rows_matched;
    }
  };

  const auto begin = Clock::now();
  if (clients <= 1) {
    run_client(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back(run_client, c);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  RunStats stats;
  stats.seconds = Seconds(begin, Clock::now());
  for (size_t c = 0; c < clients; ++c) {
    stats.rows_scanned += scanned[c];
    stats.rows_matched += matched[c];
  }
  stats.cache = cache->GetStats();
  return stats;
}

void PrintRow(const char* config, size_t clients, const RunStats& s) {
  std::printf("%-6s %8zu %12.1f%% %10llu %10llu %12.1f %14llu\n", config,
              clients, 100.0 * s.cache.HitRate(),
              static_cast<unsigned long long>(s.cache.misses),
              static_cast<unsigned long long>(s.cache.evictions),
              static_cast<double>(s.rows_scanned) / s.seconds / 1e6,
              static_cast<unsigned long long>(s.rows_matched));
}

void PrintJsonRow(const char* config, size_t clients, const RunStats& s,
                  bool last) {
  std::printf("    {\"cache\": \"%s\", \"clients\": %zu, "
              "\"hit_rate\": %.4f, \"misses\": %llu, \"evictions\": %llu, "
              "\"mrows_per_s\": %.1f, \"rows_matched\": %llu}%s\n",
              config, clients, s.cache.HitRate(),
              static_cast<unsigned long long>(s.cache.misses),
              static_cast<unsigned long long>(s.cache.evictions),
              static_cast<double>(s.rows_scanned) / s.seconds / 1e6,
              static_cast<unsigned long long>(s.rows_matched),
              last ? "" : ",");
}

// --- Closed-loop front-door benchmark ---------------------------------------

struct ClosedLoopStats {
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double rejected_rate = 0;
  size_t ok_ops = 0;
  size_t rejected_ops = 0;
};

double PercentileUs(std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) {
    return 0;
  }
  const size_t idx = std::min(
      sorted_ns.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ns.size())));
  return static_cast<double>(sorted_ns[idx]) / 1000.0;
}

// `clients` threads each run `ops` point gathers against one shared
// service with a hot cache. Every op gathers two columns at 128 strided
// positions inside one of kHotWindows shared hot windows — the
// point-serving shape coalescing targets: concurrent clients keep
// re-reading the same hot row ranges, so batched requests dedup to one
// decode of the union instead of one per caller. Rejected requests
// (admission control) are counted, not retried.
constexpr size_t kHotWindows = 16;
constexpr size_t kWindowRows = 128;
constexpr size_t kWindowStride = 3;

ClosedLoopStats RunClosedLoopConfig(const std::string& path, size_t rows,
                                    size_t num_blocks, size_t clients,
                                    bool coalescing, size_t ops) {
  obs::Registry registry;
  auto cache = std::make_shared<serve::BlockCache>(
      serve::BlockCacheOptions{.capacity_blocks = num_blocks + 8,
                               .capacity_bytes = 0,
                               .shards = 4,
                               .registry = &registry});
  auto reader = serve::TableReader::Open(path, cache);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    std::exit(1);
  }
  serve::ScanService service(
      serve::ScanService::Options{.num_threads = 4,
                                  .registry = &registry,
                                  .coalescing = coalescing,
                                  .max_inflight_requests = 48});

  // Warm the cache so the loop measures front-door contention, not disk.
  {
    std::vector<uint64_t> probe;
    for (size_t b = 0; b < num_blocks; ++b) {
      probe.push_back(reader.value()->block_row_offsets()[b]);
    }
    const std::vector<size_t> cols = {1};
    auto warm = service.Gather(*reader.value(), cols, probe);
    if (!warm.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n",
                   warm.status().ToString().c_str());
      std::exit(1);
    }
  }

  std::vector<std::vector<uint64_t>> latencies(clients);
  std::vector<size_t> rejected(clients, 0);
  std::atomic<bool> failed{false};
  const auto run_client = [&](size_t client) {
    Rng rng(40 + client * 1315423911u);
    const std::vector<size_t> cols = {1, 2};
    std::vector<uint64_t> positions(kWindowRows);
    latencies[client].reserve(ops);
    for (size_t op = 0; op < ops; ++op) {
      // All clients draw from the same window pool, so concurrent ops
      // frequently request identical row sets — the coalescer's case.
      const uint64_t window = static_cast<uint64_t>(
          rng.Uniform(0, static_cast<int64_t>(kHotWindows) - 1));
      const uint64_t start = window * (rows / kHotWindows);
      for (size_t i = 0; i < kWindowRows; ++i) {
        // Clamp keeps tiny --rows runs valid (duplicates are allowed in
        // a sorted selection).
        positions[i] =
            std::min<uint64_t>(start + i * kWindowStride, rows - 1);
      }
      const auto op_begin = Clock::now();
      auto result = service.Gather(*reader.value(), cols, positions);
      const auto op_end = Clock::now();
      if (result.ok()) {
        latencies[client].push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(op_end -
                                                                 op_begin)
                .count()));
      } else if (result.status().IsResourceExhausted()) {
        ++rejected[client];
      } else {
        std::fprintf(stderr, "gather failed: %s\n",
                     result.status().ToString().c_str());
        failed.store(true);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back(run_client, c);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (failed.load()) {
    std::exit(1);
  }

  ClosedLoopStats stats;
  std::vector<uint64_t> all;
  for (size_t c = 0; c < clients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    stats.rejected_ops += rejected[c];
  }
  std::sort(all.begin(), all.end());
  stats.ok_ops = all.size();
  stats.p50_us = PercentileUs(all, 0.50);
  stats.p99_us = PercentileUs(all, 0.99);
  stats.p999_us = PercentileUs(all, 0.999);
  const size_t attempts = stats.ok_ops + stats.rejected_ops;
  stats.rejected_rate =
      attempts == 0 ? 0
                    : static_cast<double>(stats.rejected_ops) /
                          static_cast<double>(attempts);
  return stats;
}

int RunClosedLoop(const std::string& path, size_t rows, size_t num_blocks,
                  const bench::Flags& flags) {
  const size_t ops_per_client = 150 * flags.runs;
  struct Config {
    const char* mode;
    size_t clients;
    ClosedLoopStats stats;
  };
  std::vector<Config> configs;
  if (!flags.json) {
    bench::PrintHeader(
        "Closed-loop front door: point gathers, 4 workers, "
        "max_inflight=48, " +
        std::to_string(ops_per_client) + " ops/client");
    std::printf("%-10s %8s %10s %10s %10s %10s %9s\n", "mode", "clients",
                "p50 us", "p99 us", "p999 us", "ok ops", "rej rate");
    bench::PrintRule();
  }
  for (size_t clients : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    for (bool coalescing : {true, false}) {
      Config config;
      config.mode = coalescing ? "coalesce" : "solo";
      config.clients = clients;
      config.stats = RunClosedLoopConfig(path, rows, num_blocks, clients,
                                         coalescing, ops_per_client);
      if (!flags.json) {
        std::printf("%-10s %8zu %10.1f %10.1f %10.1f %10zu %8.2f%%\n",
                    config.mode, config.clients, config.stats.p50_us,
                    config.stats.p99_us, config.stats.p999_us,
                    config.stats.ok_ops,
                    100.0 * config.stats.rejected_rate);
      }
      configs.push_back(config);
    }
  }
  if (flags.json) {
    // compare_bench.py-compatible array: percentiles in microseconds
    // carried in ns_per_row (the field the gate diffs).
    std::printf("[\n");
    for (size_t i = 0; i < configs.size(); ++i) {
      const Config& config = configs[i];
      const std::string prefix = "closed_loop/" + std::string(config.mode) +
                                 "/c" + std::to_string(config.clients);
      std::printf(
          "  {\"name\": \"%s/p50_us\", \"rows\": %zu, \"ns_per_row\": %.3f},\n"
          "  {\"name\": \"%s/p99_us\", \"rows\": %zu, \"ns_per_row\": %.3f},\n"
          "  {\"name\": \"%s/p999_us\", \"rows\": %zu, \"ns_per_row\": %.3f},\n"
          "  {\"name\": \"%s/rejected_rate\", \"rows\": %zu, "
          "\"ns_per_row\": %.6f}%s\n",
          prefix.c_str(), config.stats.ok_ops, config.stats.p50_us,
          prefix.c_str(), config.stats.ok_ops, config.stats.p99_us,
          prefix.c_str(), config.stats.ok_ops, config.stats.p999_us,
          prefix.c_str(), config.stats.rejected_ops,
          config.stats.rejected_rate,
          i + 1 == configs.size() ? "" : ",");
    }
    std::printf("]\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bool closed_loop = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--closed-loop") == 0) {
      closed_loop = true;
    }
  }
  const size_t rows = bench::ResolveRows(flags, 8000000, 4);
  const size_t runs = flags.runs;

  // Correlated shipdate/receiptdate plus a fare column, diff plan.
  Rng rng(17);
  std::vector<int64_t> ship(rows);
  std::vector<int64_t> receipt(rows);
  std::vector<int64_t> fare(rows);
  for (size_t i = 0; i < rows; ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
    fare[i] = rng.Uniform(100, 25000);
  }
  Table table;
  if (!table.AddColumn(Column::Date("ship", std::move(ship))).ok() ||
      !table.AddColumn(Column::Date("receipt", std::move(receipt))).ok() ||
      !table.AddColumn(Column::Money("fare", std::move(fare))).ok()) {
    return 1;
  }
  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.block_rows = kBlockRows;
  plan.num_threads = 4;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compress failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const size_t num_blocks = compressed.value().num_blocks();
  const Block::Stats block_stats = compressed.value().block(0).GetStats();
  if (!flags.json) {
    std::printf("block profile: %zu rows x %zu columns, %.2f MB encoded\n",
                block_stats.rows, block_stats.columns,
                bench::ToMb(block_stats.encoded_bytes));
  }

  const std::string path = "/tmp/corra_bench_serve.corf";
  if (!WriteCompressedTable(compressed.value(), path).ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }

  if (closed_loop) {
    const int rc = RunClosedLoop(path, rows, num_blocks, flags);
    std::remove(path.c_str());
    return rc;
  }

  // Every cache and service below shares the default registry; reset it
  // so the JSON "metrics" object covers exactly this invocation.
  obs::Registry::Default().Reset();

  if (!flags.json) {
    bench::PrintHeader("Out-of-core serving: ScanService over " +
                       std::to_string(num_blocks) + " blocks (" +
                       std::to_string(rows) + " rows, " +
                       std::to_string(runs) + " scans/client)");
    std::printf("%-6s %8s %13s %10s %10s %12s %14s\n", "cache", "clients",
                "hit rate", "misses", "evictions", "Mrows/s", "matched");
    bench::PrintRule();
  }

  struct NamedRun {
    const char* config;
    size_t clients;
    RunStats stats;
  };
  std::vector<NamedRun> results;
  for (size_t clients : {size_t{1}, size_t{8}}) {
    // Hot: every block fits; after the first pass everything hits.
    results.push_back({"hot", clients,
                       RunConfig(path, num_blocks + 8, runs, clients)});
    // Cold: one resident block; every scan reloads the whole file.
    results.push_back({"cold", clients, RunConfig(path, 1, runs, clients)});
    if (!flags.json) {
      PrintRow("hot", clients, results[results.size() - 2].stats);
      PrintRow("cold", clients, results[results.size() - 1].stats);
    }
  }

  if (flags.json) {
    std::printf("{\n  \"rows\": %zu, \"blocks\": %zu, \"runs\": %zu,\n"
                "  \"results\": [\n",
                rows, num_blocks, runs);
    for (size_t i = 0; i < results.size(); ++i) {
      PrintJsonRow(results[i].config, results[i].clients, results[i].stats,
                   i + 1 == results.size());
    }
    std::printf("  ],\n  \"metrics\": %s\n}\n",
                obs::Registry::Default().ToJson().c_str());
  }

  std::remove(path.c_str());
  return 0;
}
