// Out-of-core serving: cache hit rate and scan throughput, hot vs cold.
//
// Writes a multi-block CORF file, then drives ScanService over a
// TableReader under two cache configurations:
//   hot   cache capacity >= file block count (steady state: all hits)
//   cold  cache capacity = 1 block (every scan thrashes the cache)
// and for each reports the block-cache hit rate, eviction count, and
// end-to-end scan throughput, single-client and with 8 concurrent
// clients sharing the reader.
//
// Flags: --rows N (default 2M), --runs N scan repetitions (default 10),
// --json for machine-readable output including a "metrics" object with
// the full telemetry registry snapshot (counters, gauges, latency
// histograms) accumulated across every configuration.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/corra_compressor.h"
#include "obs/metrics.h"
#include "serve/scan_service.h"
#include "serve/table_reader.h"
#include "storage/file_io.h"

namespace {

using namespace corra;
using Clock = std::chrono::steady_clock;

constexpr size_t kBlockRows = 250000;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct RunStats {
  double seconds = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  serve::BlockCacheStats cache;
};

// Runs `runs` filtered scans (rotating predicate ranges) on `clients`
// threads sharing one reader, against a fresh cache of `capacity`.
RunStats RunConfig(const std::string& path, size_t capacity_blocks,
                   size_t runs, size_t clients) {
  auto cache = std::make_shared<serve::BlockCache>(
      serve::BlockCacheOptions{.capacity_blocks = capacity_blocks,
                               .capacity_bytes = 0,
                               .shards = 4});
  auto reader = serve::TableReader::Open(path, cache);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    std::exit(1);
  }
  serve::ScanService service(
      serve::ScanService::Options{.num_threads = 4});

  std::vector<uint64_t> scanned(clients, 0);
  std::vector<uint64_t> matched(clients, 0);
  const auto run_client = [&](size_t client) {
    for (size_t r = 0; r < runs; ++r) {
      serve::ScanRequest request;
      request.filter_column = 0;
      request.filter_lo = 8035 + static_cast<int64_t>(
                                     (client * runs + r) * 97 % 1500);
      request.filter_hi = request.filter_lo + 600;
      request.project_columns = {1, 2};
      auto result = service.Execute(*reader.value(), request);
      if (!result.ok()) {
        std::fprintf(stderr, "scan failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      scanned[client] += result.value().rows_scanned;
      matched[client] += result.value().rows_matched;
    }
  };

  const auto begin = Clock::now();
  if (clients <= 1) {
    run_client(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back(run_client, c);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  RunStats stats;
  stats.seconds = Seconds(begin, Clock::now());
  for (size_t c = 0; c < clients; ++c) {
    stats.rows_scanned += scanned[c];
    stats.rows_matched += matched[c];
  }
  stats.cache = cache->GetStats();
  return stats;
}

void PrintRow(const char* config, size_t clients, const RunStats& s) {
  std::printf("%-6s %8zu %12.1f%% %10llu %10llu %12.1f %14llu\n", config,
              clients, 100.0 * s.cache.HitRate(),
              static_cast<unsigned long long>(s.cache.misses),
              static_cast<unsigned long long>(s.cache.evictions),
              static_cast<double>(s.rows_scanned) / s.seconds / 1e6,
              static_cast<unsigned long long>(s.rows_matched));
}

void PrintJsonRow(const char* config, size_t clients, const RunStats& s,
                  bool last) {
  std::printf("    {\"cache\": \"%s\", \"clients\": %zu, "
              "\"hit_rate\": %.4f, \"misses\": %llu, \"evictions\": %llu, "
              "\"mrows_per_s\": %.1f, \"rows_matched\": %llu}%s\n",
              config, clients, s.cache.HitRate(),
              static_cast<unsigned long long>(s.cache.misses),
              static_cast<unsigned long long>(s.cache.evictions),
              static_cast<double>(s.rows_scanned) / s.seconds / 1e6,
              static_cast<unsigned long long>(s.rows_matched),
              last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const size_t rows = bench::ResolveRows(flags, 8000000, 4);
  const size_t runs = flags.runs;

  // Correlated shipdate/receiptdate plus a fare column, diff plan.
  Rng rng(17);
  std::vector<int64_t> ship(rows);
  std::vector<int64_t> receipt(rows);
  std::vector<int64_t> fare(rows);
  for (size_t i = 0; i < rows; ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
    fare[i] = rng.Uniform(100, 25000);
  }
  Table table;
  if (!table.AddColumn(Column::Date("ship", std::move(ship))).ok() ||
      !table.AddColumn(Column::Date("receipt", std::move(receipt))).ok() ||
      !table.AddColumn(Column::Money("fare", std::move(fare))).ok()) {
    return 1;
  }
  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.block_rows = kBlockRows;
  plan.num_threads = 4;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compress failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const size_t num_blocks = compressed.value().num_blocks();
  const Block::Stats block_stats = compressed.value().block(0).GetStats();
  if (!flags.json) {
    std::printf("block profile: %zu rows x %zu columns, %.2f MB encoded\n",
                block_stats.rows, block_stats.columns,
                bench::ToMb(block_stats.encoded_bytes));
  }

  const std::string path = "/tmp/corra_bench_serve.corf";
  if (!WriteCompressedTable(compressed.value(), path).ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }

  // Every cache and service below shares the default registry; reset it
  // so the JSON "metrics" object covers exactly this invocation.
  obs::Registry::Default().Reset();

  if (!flags.json) {
    bench::PrintHeader("Out-of-core serving: ScanService over " +
                       std::to_string(num_blocks) + " blocks (" +
                       std::to_string(rows) + " rows, " +
                       std::to_string(runs) + " scans/client)");
    std::printf("%-6s %8s %13s %10s %10s %12s %14s\n", "cache", "clients",
                "hit rate", "misses", "evictions", "Mrows/s", "matched");
    bench::PrintRule();
  }

  struct NamedRun {
    const char* config;
    size_t clients;
    RunStats stats;
  };
  std::vector<NamedRun> results;
  for (size_t clients : {size_t{1}, size_t{8}}) {
    // Hot: every block fits; after the first pass everything hits.
    results.push_back({"hot", clients,
                       RunConfig(path, num_blocks + 8, runs, clients)});
    // Cold: one resident block; every scan reloads the whole file.
    results.push_back({"cold", clients, RunConfig(path, 1, runs, clients)});
    if (!flags.json) {
      PrintRow("hot", clients, results[results.size() - 2].stats);
      PrintRow("cold", clients, results[results.size() - 1].stats);
    }
  }

  if (flags.json) {
    std::printf("{\n  \"rows\": %zu, \"blocks\": %zu, \"runs\": %zu,\n"
                "  \"results\": [\n",
                rows, num_blocks, runs);
    for (size_t i = 0; i < results.size(); ++i) {
      PrintJsonRow(results[i].config, results[i].clients, results[i].stats,
                   i + 1 == results.size());
    }
    std::printf("  ],\n  \"metrics\": %s\n}\n",
                obs::Registry::Default().ToJson().c_str());
  }

  std::remove(path.c_str());
  return 0;
}
