// Reproduces the paper's Table 3: saving rates of Corra versus the
// reimplemented C3 schemes (Glas et al.) on the four column pairs. As in
// the paper, C3 is allowed to choose its best applicable scheme per pair.

#include <cstdio>

#include "bench_util.h"
#include "core/c3/dfor.h"
#include "core/c3/numerical.h"
#include "core/c3/one_to_one.h"
#include "core/diff_encoding.h"
#include "core/hierarchical_encoding.h"
#include "datagen/dmv.h"
#include "datagen/taxi.h"
#include "datagen/tpch.h"
#include "encoding/selector.h"

namespace corra::bench {
namespace {

size_t BaselineBytes(std::span<const int64_t> values) {
  size_t best = SIZE_MAX;
  for (const auto& e : enc::EstimateSchemes(
           values, enc::SelectionPolicy::kConstantTimeAccessOnly)) {
    best = std::min(best, e.size_bytes);
  }
  return best;
}

struct C3Choice {
  const char* scheme;
  size_t bytes;
};

C3Choice BestC3(std::span<const int64_t> target,
                std::span<const int64_t> reference) {
  C3Choice choice{"DFOR", c3::DforColumn::EstimateSizeBytes(target,
                                                            reference)};
  const size_t numerical =
      c3::NumericalColumn::EstimateSizeBytes(target, reference);
  if (numerical < choice.bytes) {
    choice = {"Numerical", numerical};
  }
  const size_t one_to_one =
      c3::OneToOneColumn::EstimateSizeBytes(target, reference, 0.05);
  if (one_to_one < choice.bytes) {
    choice = {"1-to-1", one_to_one};
  }
  return choice;
}

void PrintPair(const char* pair, size_t baseline, size_t corra_bytes,
               const char* corra_scheme, const C3Choice& c3_choice,
               double paper_corra, double paper_c3,
               const char* paper_c3_scheme) {
  const double corra_saving =
      1.0 - static_cast<double>(corra_bytes) / static_cast<double>(baseline);
  const double c3_saving =
      1.0 -
      static_cast<double>(c3_choice.bytes) / static_cast<double>(baseline);
  std::printf(
      "%-26s %6.1f%% (%-16s) %6.1f%% (%-10s) | paper: %5.1f%% vs %5.1f%% "
      "(%s)\n",
      pair, corra_saving * 100, corra_scheme, c3_saving * 100,
      c3_choice.scheme, paper_corra * 100, paper_c3 * 100, paper_c3_scheme);
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  PrintHeader("Table 3: saving rates, Corra (ours) vs C3 (reimplemented)");
  std::printf("%-26s %-27s %-20s | %s\n", "Column pair", "Corra",
              "C3 (best scheme)", "Paper (Corra vs C3)");
  PrintRule();

  // TPC-H pairs.
  {
    const size_t n = ResolveRows(flags, datagen::kLineitemRowsSf10, 30);
    std::fprintf(stderr, "[table3] lineitem: %zu rows\n", n);
    const auto dates = datagen::GenerateLineitemDates(n);
    {
      const size_t base = BaselineBytes(dates.commitdate);
      const size_t ours = DiffEncodedColumn::EstimateSizeBytes(
          dates.commitdate, dates.shipdate);
      const C3Choice c3_choice = BestC3(dates.commitdate, dates.shipdate);
      PrintPair("(shipdate, commitdate)", base, ours, "Non-hierarchical",
                c3_choice, 0.333, 0.315, "DFOR");
    }
    {
      const size_t base = BaselineBytes(dates.receiptdate);
      const size_t ours = DiffEncodedColumn::EstimateSizeBytes(
          dates.receiptdate, dates.shipdate);
      const C3Choice c3_choice = BestC3(dates.receiptdate, dates.shipdate);
      PrintPair("(shipdate, receiptdate)", base, ours, "Non-hierarchical",
                c3_choice, 0.583, 0.561, "DFOR");
    }
  }

  // Taxi (pickup, dropoff).
  {
    const size_t n = ResolveRows(flags, datagen::kTaxiRows, 30);
    std::fprintf(stderr, "[table3] taxi: %zu rows\n", n);
    const auto trips = datagen::GenerateTaxiTrips(n);
    const size_t base = BaselineBytes(trips.dropoff);
    const size_t ours =
        DiffEncodedColumn::EstimateSizeBytes(trips.dropoff, trips.pickup);
    const C3Choice c3_choice = BestC3(trips.dropoff, trips.pickup);
    PrintPair("(pickup, dropoff)", base, ours, "Non-hierarchical",
              c3_choice, 0.306, 0.529, "Numerical");
  }

  // DMV (city, zip).
  {
    const size_t n = ResolveRows(flags, datagen::kDmvRows, 4);
    std::fprintf(stderr, "[table3] dmv: %zu rows\n", n);
    const auto data = datagen::GenerateDmvCodes(n);
    const size_t base = BaselineBytes(data.zip);
    const size_t ours =
        HierarchicalColumn::EstimateSizeBytes(data.zip, data.city);
    const C3Choice c3_choice = BestC3(data.zip, data.city);
    PrintPair("(city, zip-code)", base, ours, "Hierarchical", c3_choice,
              0.537, 0.591, "1-to-1");
  }

  PrintRule();
  std::printf(
      "Note: C3's published 1-to-1 result on (city, zip-code) and its\n"
      "Numerical result on (pickup, dropoff) rely on implementation\n"
      "details beyond the paper's description; our reimplementation\n"
      "follows the description only (see EXPERIMENTS.md).\n");
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
