// Reproduces the paper's Fig. 7: absolute query latency of the
// hierarchical encoding at selectivities {0.005, 0.01, 0.05, 0.1} on the
// LDBC message (countryid, ip) pair, including "uncompressed".
//
// Expected shape: like Fig. 6, but the both-columns case retains a small
// overhead — the un-prefetchable lookup into the flattened values array
// is metadata the non-hierarchical scheme does not have.

#include <cstdio>

#include "bench_util.h"
#include "datagen/ldbc.h"
#include "latency_common.h"

namespace corra::bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const size_t n = flags.rows > 0 ? flags.rows : kLatencyDefaultRows;
  std::fprintf(stderr, "[fig7] ldbc pair: %zu rows\n", n);

  auto table = datagen::MakeLdbcTable(n).value();
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kHierarchical;
  plan.columns[1].reference = 0;
  const Contenders contenders = BuildContenders(table, plan);

  PrintHeader(
      "Figure 7: hierarchical encoding zoom-in, absolute times "
      "(ms per query, " +
      std::to_string(n) + " rows per block)");
  std::printf("%11s %12s | %13s %13s %13s | %13s %13s %13s\n",
              "Selectivity", "", "uncompressed", "single-col", "Corra",
              "uncompressed", "single-col", "Corra");
  std::printf("%11s %12s | %41s | %41s\n", "", "",
              "query on diff-encoded column", "query on both columns");
  PrintRule();
  Rng rng(2);
  for (double selectivity : query::ZoomSelectivities()) {
    const auto selections = query::GenerateSelectionVectors(
        n, selectivity, flags.runs, &rng);
    const PairTimes plain =
        MeasurePair(contenders.uncompressed->block(0), 0, 1, selections);
    const PairTimes base =
        MeasurePair(contenders.baseline->block(0), 0, 1, selections);
    const PairTimes ours =
        MeasurePair(contenders.corra->block(0), 0, 1, selections);
    std::printf(
        "%11.3f %12s | %10.3f ms %10.3f ms %10.3f ms | %10.3f ms "
        "%10.3f ms %10.3f ms\n",
        selectivity, "", plain.target_only * 1e3, base.target_only * 1e3,
        ours.target_only * 1e3, plain.both * 1e3, base.both * 1e3,
        ours.both * 1e3);
  }
  PrintRule();
  return 0;
}

}  // namespace
}  // namespace corra::bench

int main(int argc, char** argv) { return corra::bench::Run(argc, argv); }
