#!/usr/bin/env python3
"""Repo-invariant linter for Corra.

Enforces invariants that the compilers cannot (or that only hold under
special build configurations the default build skips):

  no-dynamic-cast   dynamic_cast is banned in src/ — hot paths dispatch
                    on scheme() and the no-rtti CI build must keep
                    linking. The gcc/clang default builds compile
                    dynamic_cast fine, so only this lint (and the
                    no-rtti job) catch a reintroduction early.
  no-raw-io         raw POSIX I/O calls (::open, ::pread, ::close, ...)
                    and C stdio file opens are confined to
                    src/storage/file_io.cc, the single choke point the
                    failpoint fault-injection sites instrument. An I/O
                    call added anywhere else silently escapes the chaos
                    suite.
  no-bare-mutex     std::mutex / std::lock_guard / std::condition_variable
                    and friends are banned in src/ outside
                    src/common/mutex.h: code must use corra::Mutex /
                    MutexLock / CondVar so Clang Thread Safety Analysis
                    sees every lock.
  status-discard    a statement consisting solely of an expression
                    ending in .status(); discards the error it asked
                    for — either propagate it or branch on it.

Per-line opt-out, for the rare deliberate exception (justify it in an
adjacent comment):

    some_code();  // corra-lint: allow(no-raw-io)

Usage: corra_lint.py [file-or-dir ...]
With no arguments, lints <repo-root>/src. Exits 0 when clean, 1 with
"path:line: [rule] message" findings on stdout otherwise.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Raw I/O calls must go through src/storage/file_io.cc so fault
# injection and retry accounting see them.
RAW_IO_ALLOWED = {os.path.join("src", "storage", "file_io.cc")}

RAW_IO_RE = re.compile(
    r"::(open|openat|creat|pread|pwrite|read|write|close|fsync"
    r"|fdatasync|lseek|fstat|stat|unlink|ftruncate)\s*\("
    r"|std::(fopen|freopen)\s*\("
    r"|[^:\w](fopen|freopen)\s*\("
)

BARE_MUTEX_RE = re.compile(
    r"std::(recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_timed_mutex|shared_mutex|mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable_any|condition_variable)\b"
)
MUTEX_ALLOWED = {os.path.join("src", "common", "mutex.h")}

DYNAMIC_CAST_RE = re.compile(r"\bdynamic_cast\s*<")

# A statement that is exactly "<expr>.status();" (optionally wrapped in
# (void)) — the Status was computed and dropped on the floor. Returning
# it ("return x.status();") propagates it and is fine.
STATUS_DISCARD_RE = re.compile(
    r"^\s*(\(void\)\s*)?[\w\(][\w\.\->\(\)\[\]:, ]*\.status\(\)\s*;\s*$"
)
RETURN_RE = re.compile(r"^\s*(co_)?return\b")

ALLOW_RE = re.compile(r"corra-lint:\s*allow\(([a-z-]+)\)")


def strip_comments_and_strings(text):
    """Blanks out comments, string literals, and char literals while
    preserving the line structure, so line numbers in findings match the
    file. Returns (stripped_lines, raw_lines)."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            # Char literal: require something that actually opens one
            # (not a digit separator like 1'000'000).
            if c == "'" and not (i > 0 and text[i - 1].isalnum()):
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
            i += 1
    stripped = "".join(out)
    return stripped.split("\n"), text.split("\n")


def lint_file(path, rel=None):
    """Lints one file; returns a list of (rel, line_no, rule, message)."""
    if rel is None:
        rel = os.path.relpath(path, REPO_ROOT)
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    stripped_lines, raw_lines = strip_comments_and_strings(text)
    findings = []
    for idx, line in enumerate(stripped_lines):
        raw = raw_lines[idx] if idx < len(raw_lines) else ""
        allowed = set(ALLOW_RE.findall(raw))
        no = idx + 1

        def report(rule, message):
            if rule not in allowed:
                findings.append((rel, no, rule, message))

        if DYNAMIC_CAST_RE.search(line):
            report("no-dynamic-cast",
                   "dynamic_cast is banned (breaks the no-rtti build; "
                   "dispatch on scheme() instead)")
        if RAW_IO_RE.search(line) and rel not in RAW_IO_ALLOWED:
            report("no-raw-io",
                   "raw I/O call outside src/storage/file_io.cc "
                   "(bypasses fault injection and retry accounting)")
        if BARE_MUTEX_RE.search(line) and rel not in MUTEX_ALLOWED:
            report("no-bare-mutex",
                   "bare std synchronization primitive; use corra::Mutex"
                   "/MutexLock/CondVar (common/mutex.h) so thread safety "
                   "analysis sees the lock")
        if STATUS_DISCARD_RE.match(line) and not RETURN_RE.match(line):
            report("status-discard",
                   "statement computes a Status and discards it; "
                   "propagate or branch on it")
    return findings


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".h", ".cc", ".cpp")):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return files


def main(argv):
    targets = argv[1:] or [os.path.join(REPO_ROOT, "src")]
    findings = []
    for path in collect_files(targets):
        findings.extend(lint_file(path))
    for rel, line_no, rule, message in findings:
        print(f"{rel}:{line_no}: [{rule}] {message}")
    if findings:
        print(f"corra_lint: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
