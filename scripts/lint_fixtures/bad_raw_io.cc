// Lint self-test fixture: every finding in here is intentional.
// Not part of any build (outside the CMake source globs).

#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

// "::pread in a comment" must not fire; neither must this line.

long BadRead(int fd, char* buf, unsigned long n, long off) {
  return ::pread(fd, buf, n, off);  // expect: no-raw-io
}

int BadOpen(const char* path) {
  return ::open(path, O_RDONLY);  // expect: no-raw-io
}

void* BadFopen(const char* path) {
  return std::fopen(path, "rb");  // expect: no-raw-io
}

long AllowedRead(int fd, char* buf, unsigned long n, long off) {
  return ::pread(fd, buf, n, off);  // corra-lint: allow(no-raw-io)
}
