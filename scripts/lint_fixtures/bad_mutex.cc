// Lint self-test fixture: every finding in here is intentional.
// Not part of any build (outside the CMake source globs).

#include <condition_variable>
#include <mutex>

// std::mutex in this comment must not fire the lint.

struct BadQueue {
  std::mutex mu;               // expect: no-bare-mutex
  std::condition_variable cv;  // expect: no-bare-mutex

  void Touch() {
    std::lock_guard<std::mutex> lock(mu);  // expect: no-bare-mutex
    cv.notify_one();
  }
};
