// Lint self-test fixture: every finding in here is intentional.
// Not part of any build (outside the CMake source globs).

struct Base {
  virtual ~Base() = default;
};
struct Derived : Base {};

// A comment mentioning dynamic_cast must NOT fire the lint.
const char* kDoc = "dynamic_cast in a string must not fire either";

Derived* Bad(Base* base) {
  return dynamic_cast<Derived*>(base);  // expect: no-dynamic-cast
}
