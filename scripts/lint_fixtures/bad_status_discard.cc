// Lint self-test fixture: every finding in here is intentional.
// Not part of any build (outside the CMake source globs).

struct Status {
  bool ok() const { return true; }
};

struct Result {
  Status status() const { return {}; }
};

Result Load();

void Bad() {
  Load().status();         // expect: status-discard
  (void)Load().status();   // expect: status-discard
}

Status Good() {
  Status status = Load().status();  // Binding it is fine.
  if (!Load().status().ok()) {      // Branching on it is fine.
    return status;
  }
  return status;
}
