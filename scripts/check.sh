#!/usr/bin/env bash
# One-shot local static analysis: mirrors the CI static-analysis job.
#
#   scripts/check.sh [build-dir]
#
# Runs, in order, skipping what the host toolchain lacks:
#   1. the repo-invariant linter (scripts/corra_lint.py) + its self-test
#   2. a clang build with -Wthread-safety -Werror (when clang is found)
#   3. clang-tidy over the compilation database (when found)
#
# Exits non-zero on the first failure.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build-check}"

echo "== corra_lint =="
python3 "$ROOT/scripts/lint_test.py"
python3 "$ROOT/scripts/corra_lint.py"

if command -v clang++ >/dev/null 2>&1; then
  echo "== clang -Wthread-safety build =="
  cmake -B "$BUILD" -S "$ROOT" \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DCORRA_WERROR=ON >/dev/null
  cmake --build "$BUILD" -j "$(nproc)"
else
  echo "== clang not found; skipping thread-safety build =="
fi

if command -v clang-tidy >/dev/null 2>&1 && [ -f "$BUILD/compile_commands.json" ]; then
  echo "== clang-tidy =="
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD" -quiet "$ROOT/src/.*"
  else
    # Fallback: tidy every library source serially.
    find "$ROOT/src" -name '*.cc' -print0 |
      xargs -0 -n 1 -P "$(nproc)" clang-tidy -p "$BUILD" --quiet
  fi
else
  echo "== clang-tidy not found; skipping =="
fi

echo "check.sh: all available checks passed"
