#!/usr/bin/env python3
"""Self-test for scripts/corra_lint.py.

Two halves:
  1. The seeded fixtures in scripts/lint_fixtures/ must produce exactly
     the findings their "// expect: <rule>" markers declare — same rule,
     same line — proving each rule fires and that comments, strings, and
     the allow() opt-out suppress correctly.
  2. The real tree (src/) must lint clean, so the lint stays an
     invariant and not an aspiration.

Runs under ctest (corra_lint_selftest) and the static-analysis CI job.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import corra_lint  # noqa: E402

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "lint_fixtures")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")


def expected_findings(path):
    """(line_no, rule) pairs declared by the fixture's expect markers."""
    expected = set()
    with open(path, "r", encoding="utf-8") as f:
        for no, line in enumerate(f, start=1):
            m = EXPECT_RE.search(line)
            if m:
                expected.add((no, m.group(1)))
    return expected


def main():
    failures = []

    # Half 1: fixtures fire exactly as declared.
    fixture_count = 0
    for name in sorted(os.listdir(FIXTURE_DIR)):
        if not name.endswith((".h", ".cc", ".cpp")):
            continue
        fixture_count += 1
        path = os.path.join(FIXTURE_DIR, name)
        expected = expected_findings(path)
        actual = {(line_no, rule)
                  for _rel, line_no, rule, _msg in corra_lint.lint_file(path)}
        for missing in sorted(expected - actual):
            failures.append(f"{name}:{missing[0]}: expected [{missing[1]}] "
                            "to fire, it did not")
        for extra in sorted(actual - expected):
            failures.append(f"{name}:{extra[0]}: unexpected [{extra[1]}] "
                            "finding")
    if fixture_count == 0:
        failures.append("no fixtures found in scripts/lint_fixtures/")

    # Half 2: the real tree is clean.
    src = os.path.join(corra_lint.REPO_ROOT, "src")
    tree_findings = []
    for path in corra_lint.collect_files([src]):
        tree_findings.extend(corra_lint.lint_file(path))
    for rel, line_no, rule, _msg in tree_findings:
        failures.append(f"tree not clean: {rel}:{line_no}: [{rule}]")

    if failures:
        for failure in failures:
            print(failure)
        print(f"lint_test: FAILED ({len(failures)} problem(s))")
        return 1
    print(f"lint_test: OK ({fixture_count} fixtures, clean tree)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
