// Delta and RLE: the checkpointed schemes the paper's baseline excludes.

#include <gtest/gtest.h>

#include "encoding/delta.h"
#include "encoding/rle.h"
#include "test_util.h"

namespace corra::enc {
namespace {

using test::Dist;
using test::ExpectColumnMatches;
using test::MakeValues;
using test::SerializeRoundTrip;

class CheckpointedSchemeTest
    : public ::testing::TestWithParam<std::tuple<Dist, size_t>> {
 protected:
  std::vector<int64_t> Values() const {
    const auto [dist, n] = GetParam();
    return MakeValues(dist, n, 0xBEEF);
  }
};

TEST_P(CheckpointedSchemeTest, DeltaRoundTrip) {
  const auto values = Values();
  auto result = DeltaColumn::Encode(values);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()->scheme(), Scheme::kDelta);
  ExpectColumnMatches(*result.value(), values);
  auto reloaded = SerializeRoundTrip(*result.value());
  ASSERT_NE(reloaded, nullptr);
  ExpectColumnMatches(*reloaded, values);
}

TEST_P(CheckpointedSchemeTest, DeltaInlineRoundTrip) {
  const auto values = Values();
  auto result = DeltaColumn::Encode(
      values, DeltaColumn::kDefaultCheckpointInterval, DeltaLayout::kInline);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()->layout(), DeltaLayout::kInline);
  ExpectColumnMatches(*result.value(), values);
  auto reloaded = SerializeRoundTrip(*result.value());
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(static_cast<const DeltaColumn&>(*reloaded).layout(),
            DeltaLayout::kInline);
  ExpectColumnMatches(*reloaded, values);
}

TEST_P(CheckpointedSchemeTest, RleRoundTrip) {
  const auto values = Values();
  auto result = RleColumn::Encode(values);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()->scheme(), Scheme::kRle);
  ExpectColumnMatches(*result.value(), values);
  auto reloaded = SerializeRoundTrip(*result.value());
  ASSERT_NE(reloaded, nullptr);
  ExpectColumnMatches(*reloaded, values);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, CheckpointedSchemeTest,
    ::testing::Combine(
        ::testing::Values(Dist::kConstant, Dist::kSmallRange,
                          Dist::kNegative, Dist::kLowCard, Dist::kSorted,
                          Dist::kRunHeavy, Dist::kExtremes),
        ::testing::Values(size_t{1}, size_t{127}, size_t{128}, size_t{129},
                          size_t{5000})),
    [](const auto& param_info) {
      return test::DistName(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(DeltaTest, SortedDataUsesNarrowDeltas) {
  const auto values = MakeValues(Dist::kSorted, 10000, 3);
  auto result = DeltaColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  // Steps are in [0, 5]; zig-zag needs at most 4 bits.
  EXPECT_LE(result.value()->bit_width(), 4);
  // Much smaller than the 8 bytes/value of Plain.
  EXPECT_LT(result.value()->SizeBytes(), values.size() * 2);
}

TEST(DeltaTest, GetCrossesCheckpointBoundaries) {
  const auto values = MakeValues(Dist::kSorted, 1000, 7);
  auto result = DeltaColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  const auto& col = *result.value();
  for (size_t row : {size_t{0}, size_t{127}, size_t{128}, size_t{129},
                     size_t{255}, size_t{256}, size_t{999}}) {
    EXPECT_EQ(col.Get(row), values[row]) << row;
  }
}

TEST(DeltaTest, CheckpointShiftDerivedFromIntervalOnEveryPath) {
  // Regression: interval_shift_ used to carry a default-initialized
  // log2(32) next to the interval field; a construction path that set
  // one without the other would map rows to the wrong checkpoint for
  // any non-32 interval — off by entire checkpoint windows, and only
  // for rows past the first interval. Exercise every construction path
  // (Encode at non-default intervals, both layouts, and the legacy
  // 128-interval wire sniff) and check Get exactly at, just before, and
  // just after several checkpoint boundaries, where a stale shift is
  // guaranteed to pick the wrong anchor.
  const auto values = MakeValues(Dist::kSorted, 5000, 13);
  const auto check_boundaries = [&](const EncodedColumn& column,
                                    size_t interval) {
    for (size_t k = 1; k * interval < values.size(); ++k) {
      for (size_t row : {k * interval - 1, k * interval, k * interval + 1}) {
        if (row < values.size()) {
          ASSERT_EQ(column.Get(row), values[row])
              << "interval " << interval << " row " << row;
        }
      }
    }
  };
  for (const size_t interval :
       {size_t{32}, size_t{64}, size_t{256}, size_t{2048}}) {
    for (const DeltaLayout layout :
         {DeltaLayout::kPacked, DeltaLayout::kInline}) {
      auto column = DeltaColumn::Encode(values, interval, layout).value();
      check_boundaries(*column, interval);
      auto reloaded = SerializeRoundTrip(*column);
      ASSERT_NE(reloaded, nullptr);
      EXPECT_EQ(static_cast<const DeltaColumn&>(*reloaded)
                    .checkpoint_interval(),
                interval);
      check_boundaries(*reloaded, interval);
    }
  }
  // The legacy wire layout (no marker, implied interval 128): Serialize
  // of a 128-interval packed column writes it, and the sniffing reader
  // must rebuild the 128 mapping rather than any default.
  auto legacy = DeltaColumn::Encode(values, 128).value();
  auto reloaded = SerializeRoundTrip(*legacy);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(static_cast<const DeltaColumn&>(*reloaded).checkpoint_interval(),
            128u);
  check_boundaries(*reloaded, 128);
}

TEST(DeltaTest, CheckpointCountMismatchRejected) {
  const auto values = MakeValues(Dist::kSorted, 500, 9);
  auto result = DeltaColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  BufferWriter writer;
  result.value()->Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  // Lower the checkpoint array length prefix (first 8 bytes after the
  // scheme byte) from 4 to 3 entries — structurally valid but wrong count.
  bytes[1] = 3;
  BufferReader reader(bytes);
  auto reloaded = DeserializeEncodedColumn(&reader);
  EXPECT_FALSE(reloaded.ok());
}

TEST(RleTest, RunHeavyDataCompressesWell) {
  const auto values = MakeValues(Dist::kRunHeavy, 100000, 5);
  auto result = RleColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value()->run_count(), values.size() / 10);
  EXPECT_LT(result.value()->SizeBytes(), values.size());
}

TEST(RleTest, SingleRunColumn) {
  const std::vector<int64_t> values(10000, 42);
  auto result = RleColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->run_count(), 1u);
  ExpectColumnMatches(*result.value(), values);
}

TEST(RleTest, AlternatingWorstCase) {
  std::vector<int64_t> values(2000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i % 2);
  }
  auto result = RleColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->run_count(), values.size());
  ExpectColumnMatches(*result.value(), values);
}

TEST(RleTest, GetAtRunBoundaries) {
  std::vector<int64_t> values;
  for (int run = 0; run < 50; ++run) {
    for (int i = 0; i < 60; ++i) {
      values.push_back(run);
    }
  }
  auto result = RleColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  const auto& col = *result.value();
  for (size_t row : {size_t{0}, size_t{59}, size_t{60}, size_t{119},
                     size_t{120}, values.size() - 1}) {
    EXPECT_EQ(col.Get(row), values[row]) << row;
  }
}

TEST(RleTest, NonIncreasingRunEndsRejected) {
  const std::vector<int64_t> values = {1, 1, 2, 2};
  auto result = RleColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  BufferWriter writer;
  result.value()->Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  // run_values: len 8B + 2*8B; run_ends length prefix at 25, entries at 33.
  // Set both run ends to the same value.
  const size_t run_ends_data = 1 + 8 + 16 + 8;
  std::memcpy(bytes.data() + run_ends_data, "\x02\x00\x00\x00", 4);
  std::memcpy(bytes.data() + run_ends_data + 4, "\x02\x00\x00\x00", 4);
  BufferReader reader(bytes);
  auto reloaded = DeserializeEncodedColumn(&reader);
  EXPECT_FALSE(reloaded.ok());
}

TEST(RleTest, EstimateTracksRunCount) {
  const auto run_heavy = MakeValues(Dist::kRunHeavy, 10000, 1);
  const auto noisy = MakeValues(Dist::kWideRange, 10000, 1);
  EXPECT_LT(RleColumn::EstimateSizeBytes(run_heavy),
            RleColumn::EstimateSizeBytes(noisy));
}

}  // namespace
}  // namespace corra::enc
