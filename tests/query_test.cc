// Selection vectors and materializing scans.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/corra_compressor.h"
#include "query/latency.h"
#include "query/scan.h"
#include "query/selection_vector.h"
#include "query/table_scan.h"

namespace corra::query {
namespace {

TEST(SplitSelectionTest, RoutesGlobalRowsToBlocks) {
  // Three blocks of 1000 / 1000 / 500 rows.
  const std::vector<uint64_t> offsets = {0, 1000, 2000, 2500};
  const std::vector<uint64_t> rows = {0, 999, 1000, 1500, 2400, 2499};
  auto slices = SplitSelectionByBlocks(offsets, rows);
  ASSERT_TRUE(slices.ok()) << slices.status().ToString();
  ASSERT_EQ(slices.value().size(), 3u);

  EXPECT_EQ(slices.value()[0].block, 0u);
  EXPECT_EQ(slices.value()[0].out_offset, 0u);
  EXPECT_EQ(slices.value()[0].local_rows,
            (std::vector<uint32_t>{0, 999}));

  EXPECT_EQ(slices.value()[1].block, 1u);
  EXPECT_EQ(slices.value()[1].out_offset, 2u);
  EXPECT_EQ(slices.value()[1].local_rows,
            (std::vector<uint32_t>{0, 500}));

  EXPECT_EQ(slices.value()[2].block, 2u);
  EXPECT_EQ(slices.value()[2].out_offset, 4u);
  EXPECT_EQ(slices.value()[2].local_rows,
            (std::vector<uint32_t>{400, 499}));
}

TEST(SplitSelectionTest, SkipsBlocksWithoutSelectedRows) {
  const std::vector<uint64_t> offsets = {0, 100, 200, 300};
  const std::vector<uint32_t> rows = {250, 299};
  auto slices = SplitSelectionByBlocks(offsets, rows);
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices.value().size(), 1u);
  EXPECT_EQ(slices.value()[0].block, 2u);
  EXPECT_EQ(slices.value()[0].local_rows,
            (std::vector<uint32_t>{50, 99}));
}

TEST(SplitSelectionTest, RejectsUnsortedAndOutOfRange) {
  const std::vector<uint64_t> offsets = {0, 100};
  const std::vector<uint64_t> unsorted = {50, 10};
  EXPECT_TRUE(SplitSelectionByBlocks(offsets, unsorted)
                  .status()
                  .IsInvalidArgument());
  const std::vector<uint64_t> beyond = {100};
  EXPECT_TRUE(
      SplitSelectionByBlocks(offsets, beyond).status().IsOutOfRange());
  const std::vector<uint64_t> empty_offsets;
  const std::vector<uint64_t> rows = {0};
  EXPECT_TRUE(SplitSelectionByBlocks(empty_offsets, rows)
                  .status()
                  .IsInvalidArgument());
}

TEST(SplitSelectionTest, EmptySelectionYieldsNoSlices) {
  const std::vector<uint64_t> offsets = {0, 100};
  auto slices =
      SplitSelectionByBlocks(offsets, std::span<const uint64_t>{});
  ASSERT_TRUE(slices.ok());
  EXPECT_TRUE(slices.value().empty());
}

TEST(SelectionVectorTest, SizeTracksSelectivity) {
  Rng rng(1);
  for (double sel : {0.0, 0.001, 0.01, 0.1, 0.5, 1.0}) {
    const auto rows = GenerateSelectionVector(100000, sel, &rng);
    EXPECT_EQ(rows.size(),
              static_cast<size_t>(std::llround(sel * 100000)));
  }
}

TEST(SelectionVectorTest, SortedAndUnique) {
  Rng rng(2);
  for (double sel : {0.01, 0.3, 0.7, 0.99}) {
    const auto rows = GenerateSelectionVector(50000, sel, &rng);
    for (size_t i = 1; i < rows.size(); ++i) {
      ASSERT_LT(rows[i - 1], rows[i]) << "sel " << sel;
    }
    ASSERT_TRUE(rows.empty() || rows.back() < 50000);
  }
}

TEST(SelectionVectorTest, FullSelectivityIsIdentity) {
  Rng rng(3);
  const auto rows = GenerateSelectionVector(1000, 1.0, &rng);
  ASSERT_EQ(rows.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(rows[i], i);
  }
}

TEST(SelectionVectorTest, SelectivityClamped) {
  Rng rng(4);
  EXPECT_EQ(GenerateSelectionVector(100, -0.5, &rng).size(), 0u);
  EXPECT_EQ(GenerateSelectionVector(100, 1.5, &rng).size(), 100u);
}

TEST(SelectionVectorTest, UniformCoverage) {
  // Positions must cover the whole range, not cluster at one end.
  Rng rng(5);
  const auto rows = GenerateSelectionVector(100000, 0.1, &rng);
  size_t low_half = 0;
  for (uint32_t r : rows) {
    low_half += r < 50000 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(low_half) / rows.size(), 0.5, 0.03);
}

TEST(SelectionVectorTest, BatchGeneratesIndependentVectors) {
  Rng rng(6);
  const auto vectors = GenerateSelectionVectors(10000, 0.01, 10, &rng);
  ASSERT_EQ(vectors.size(), 10u);  // The paper's 10 vectors.
  std::unordered_set<uint32_t> first(vectors[0].begin(), vectors[0].end());
  size_t overlap = 0;
  for (uint32_t r : vectors[1]) {
    overlap += first.count(r);
  }
  // Two independent 1% samples overlap on ~1% of their entries.
  EXPECT_LT(overlap, vectors[1].size() / 2);
}

TEST(PaperSweepTest, MatchesPaperGrid) {
  const auto sweep = PaperSelectivitySweep();
  // {0.001..0.009, 0.01..0.09, 0.1..1.0} = 9 + 9 + 10 points.
  ASSERT_EQ(sweep.size(), 28u);
  EXPECT_DOUBLE_EQ(sweep.front(), 0.001);
  EXPECT_DOUBLE_EQ(sweep.back(), 1.0);
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i], sweep[i - 1]);
  }
}

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    const size_t n = 20000;
    std::vector<int64_t> ship(n);
    std::vector<int64_t> receipt(n);
    for (size_t i = 0; i < n; ++i) {
      ship[i] = rng.Uniform(8035, 10591);
      receipt[i] = ship[i] + rng.Uniform(1, 30);
    }
    ship_ = ship;
    receipt_ = receipt;
    Table table;
    ASSERT_TRUE(table.AddColumn(Column::Date("ship", ship)).ok());
    ASSERT_TRUE(table.AddColumn(Column::Date("receipt", receipt)).ok());
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kDiff;
    plan.columns[1].reference = 0;
    auto compressed = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(compressed.ok());
    compressed_.emplace(std::move(compressed).value());
  }

  std::vector<int64_t> ship_;
  std::vector<int64_t> receipt_;
  std::optional<CompressedTable> compressed_;
};

TEST_F(ScanTest, ScanColumnMaterializesSelection) {
  Rng rng(8);
  const auto rows =
      GenerateSelectionVector(compressed_->block(0).rows(), 0.05, &rng);
  const auto out = ScanColumn(compressed_->block(0), 1, rows);
  ASSERT_EQ(out.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out[i], receipt_[rows[i]]);
  }
}

TEST_F(ScanTest, ScanPairSharesReferenceFetch) {
  Rng rng(9);
  const auto rows =
      GenerateSelectionVector(compressed_->block(0).rows(), 0.03, &rng);
  std::vector<int64_t> out_ref(rows.size());
  std::vector<int64_t> out_target(rows.size());
  ScanPair(compressed_->block(0), 0, 1, rows, out_ref.data(),
           out_target.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out_ref[i], ship_[rows[i]]);
    EXPECT_EQ(out_target[i], receipt_[rows[i]]);
  }
}

TEST_F(ScanTest, ScanPairWithUnrelatedColumnsStillCorrect) {
  // ScanPair where the "reference" argument is not the target's actual
  // reference must fall back to independent gathers.
  Rng rng(10);
  const auto rows =
      GenerateSelectionVector(compressed_->block(0).rows(), 0.02, &rng);
  std::vector<int64_t> out_a(rows.size());
  std::vector<int64_t> out_b(rows.size());
  ScanPair(compressed_->block(0), 1, 0, rows, out_a.data(), out_b.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out_a[i], receipt_[rows[i]]);
    EXPECT_EQ(out_b[i], ship_[rows[i]]);
  }
}

TEST_F(ScanTest, EmptySelection) {
  const std::vector<uint32_t> rows;
  const auto out = ScanColumn(compressed_->block(0), 1, rows);
  EXPECT_TRUE(out.empty());
}

TEST_F(ScanTest, EmptyAndSingleRowSelectionsEarlyReturn) {
  // Regression: the documented selection contract now pins down the
  // empty and single-position cases — both return without entering any
  // GatherRange internals. The empty case must not touch the output at
  // all; the single case is one point lookup per column.
  const Block& block = compressed_->block(0);
  int64_t sentinel = INT64_MIN;
  ScanColumn(block, 1, {}, &sentinel);
  EXPECT_EQ(sentinel, INT64_MIN);
  int64_t sentinel_ref = INT64_MIN;
  int64_t sentinel_target = INT64_MIN;
  ScanPair(block, 0, 1, {}, &sentinel_ref, &sentinel_target);
  EXPECT_EQ(sentinel_ref, INT64_MIN);
  EXPECT_EQ(sentinel_target, INT64_MIN);

  for (const uint32_t row : {uint32_t{0}, uint32_t{1234},
                             static_cast<uint32_t>(block.rows() - 1)}) {
    const std::vector<uint32_t> single = {row};
    int64_t out = INT64_MIN;
    ScanColumn(block, 1, single, &out);
    EXPECT_EQ(out, receipt_[row]);
    int64_t out_ref = INT64_MIN;
    int64_t out_target = INT64_MIN;
    ScanPair(block, 0, 1, single, &out_ref, &out_target);
    EXPECT_EQ(out_ref, ship_[row]);
    EXPECT_EQ(out_target, receipt_[row]);
  }
}

TEST_F(ScanTest, DuplicatePositionsMaterializeEachOccurrence) {
  // Duplicates satisfy the non-decreasing contract: every occurrence
  // materializes the same value, on the batched fast path.
  const std::vector<uint32_t> rows = {7, 7, 7, 300, 301, 301, 5000, 5000};
  std::vector<int64_t> out(rows.size(), INT64_MIN);
  ScanColumn(compressed_->block(0), 1, rows, out.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out[i], receipt_[rows[i]]) << "i=" << i;
  }
  std::vector<int64_t> out_ref(rows.size(), INT64_MIN);
  std::vector<int64_t> out_target(rows.size(), INT64_MIN);
  ScanPair(compressed_->block(0), 0, 1, rows, out_ref.data(),
           out_target.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out_ref[i], ship_[rows[i]]) << "i=" << i;
    EXPECT_EQ(out_target[i], receipt_[rows[i]]) << "i=" << i;
  }
}

using ScanDeathTest = ScanTest;

TEST_F(ScanDeathTest, UnsortedSelectionAssertsInDebugIsDefinedInRelease) {
  // A strictly-unsorted selection violates the documented contract:
  // debug builds fail loudly at the assertion; release builds fall back
  // to defined per-position behavior (out[i] == value at rows[i]).
  const std::vector<uint32_t> rows = {4000, 10, 4000, 3999, 0};
  std::vector<int64_t> out(rows.size(), INT64_MIN);
#ifndef NDEBUG
  EXPECT_DEATH(
      ScanColumn(compressed_->block(0), 1, rows, out.data()),
      "non-decreasing");
  EXPECT_DEATH(
      {
        std::vector<int64_t> ref(rows.size());
        std::vector<int64_t> target(rows.size());
        ScanPair(compressed_->block(0), 0, 1, rows, ref.data(),
                 target.data());
      },
      "non-decreasing");
#else
  ScanColumn(compressed_->block(0), 1, rows, out.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out[i], receipt_[rows[i]]) << "i=" << i;
  }
  std::vector<int64_t> out_ref(rows.size(), INT64_MIN);
  std::vector<int64_t> out_target(rows.size(), INT64_MIN);
  ScanPair(compressed_->block(0), 0, 1, rows, out_ref.data(),
           out_target.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out_ref[i], ship_[rows[i]]) << "i=" << i;
    EXPECT_EQ(out_target[i], receipt_[rows[i]]) << "i=" << i;
  }
#endif
}

TEST(LatencyTest, StopwatchAdvances) {
  Stopwatch watch;
  double t1 = watch.ElapsedSeconds();
  // Burn a little CPU.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + static_cast<uint64_t>(i);
  }
  double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  watch.Reset();
  EXPECT_LE(watch.ElapsedSeconds(), t2);
}

TEST(LatencyTest, MeanRunSecondsAveragesBodies) {
  std::vector<std::vector<uint32_t>> vectors(4, std::vector<uint32_t>{0});
  size_t calls = 0;
  const double mean = MeanRunSeconds(
      vectors, [&calls](std::span<const uint32_t>) { ++calls; });
  EXPECT_EQ(calls, 4u);
  EXPECT_GE(mean, 0.0);
}

TEST(LatencyTest, ZoomSelectivitiesMatchPaper) {
  EXPECT_EQ(ZoomSelectivities(),
            (std::vector<double>{0.005, 0.01, 0.05, 0.1}));
}

}  // namespace
}  // namespace corra::query
