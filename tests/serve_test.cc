// Out-of-core serving layer: BlockCache LRU/pinning semantics,
// TableReader lazy loads, and ScanService equivalence with full
// in-memory scans — including under tiny caches and concurrent clients.

#include "serve/scan_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/random.h"
#include "core/corra_compressor.h"
#include "query/filter.h"
#include "query/selection_vector.h"
#include "query/table_scan.h"
#include "serve/block_cache.h"
#include "serve/table_reader.h"
#include "storage/file_io.h"
#include "test_util.h"

namespace corra::serve {
namespace {

// A deserializable one-column block whose first value identifies it.
// The tail is pseudo-random so the block has a nonzero encoded size.
std::shared_ptr<const Block> MakeMarkerBlock(int64_t marker) {
  Rng rng(static_cast<uint64_t>(marker) + 1);
  std::vector<int64_t> values(64);
  values[0] = marker;
  for (size_t i = 1; i < values.size(); ++i) {
    values[i] = rng.Uniform(0, 1 << 20);
  }
  Table table;
  EXPECT_TRUE(table.AddColumn(Column::Int64("marker", values)).ok());
  auto compressed =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(1));
  EXPECT_TRUE(compressed.ok());
  auto reloaded =
      Block::Deserialize(compressed.value().block(0).Serialize());
  EXPECT_TRUE(reloaded.ok());
  return std::make_shared<const Block>(std::move(reloaded).value());
}

BlockCache::Loader MarkerLoader(int64_t marker, std::atomic<int>* loads) {
  return [marker, loads]() -> Result<std::shared_ptr<const Block>> {
    loads->fetch_add(1);
    return MakeMarkerBlock(marker);
  };
}

TEST(BlockCacheTest, HitsMissesAndLruEviction) {
  BlockCache cache({.capacity_blocks = 2, .capacity_bytes = 0, .shards = 1});
  ASSERT_EQ(cache.num_shards(), 1u);
  std::atomic<int> loads{0};

  { auto a = cache.GetOrLoad({1, 0}, MarkerLoader(10, &loads)); ASSERT_TRUE(a.ok()); }
  { auto b = cache.GetOrLoad({1, 1}, MarkerLoader(11, &loads)); ASSERT_TRUE(b.ok()); }
  EXPECT_EQ(loads.load(), 2);

  // Touch block 0 so block 1 becomes the LRU victim.
  {
    auto a = cache.GetOrLoad({1, 0}, MarkerLoader(10, &loads));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value()->column(0).Get(0), 10);
  }
  EXPECT_EQ(loads.load(), 2);  // Hit: loader not run.

  { auto c = cache.GetOrLoad({1, 2}, MarkerLoader(12, &loads)); ASSERT_TRUE(c.ok()); }
  EXPECT_EQ(loads.load(), 3);

  EXPECT_TRUE(cache.Contains({1, 0}));
  EXPECT_FALSE(cache.Contains({1, 1}));  // Evicted as LRU.
  EXPECT_TRUE(cache.Contains({1, 2}));

  const BlockCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.cached_blocks, 2u);
  EXPECT_EQ(stats.pinned_blocks, 0u);
  EXPECT_GT(stats.cached_bytes, 0u);
}

TEST(BlockCacheTest, PinnedBlocksAreNotEvicted) {
  BlockCache cache({.capacity_blocks = 1, .capacity_bytes = 0, .shards = 4});
  ASSERT_EQ(cache.num_shards(), 1u);  // Clamped to capacity.
  std::atomic<int> loads{0};

  auto a = cache.GetOrLoad({1, 0}, MarkerLoader(10, &loads));
  ASSERT_TRUE(a.ok());
  {
    // Over budget, but both blocks are pinned: no eviction.
    auto b = cache.GetOrLoad({1, 1}, MarkerLoader(11, &loads));
    ASSERT_TRUE(b.ok());
    const BlockCacheStats stats = cache.GetStats();
    EXPECT_EQ(stats.cached_blocks, 2u);
    EXPECT_EQ(stats.pinned_blocks, 2u);
    EXPECT_EQ(stats.evictions, 0u);
  }
  // b's pin dropped: the shard shrinks back to capacity, evicting b
  // (a is still pinned).
  EXPECT_TRUE(cache.Contains({1, 0}));
  EXPECT_FALSE(cache.Contains({1, 1}));
  EXPECT_EQ(cache.GetStats().evictions, 1u);

  // The pinned block's payload stays readable through the handle.
  EXPECT_EQ(a.value()->column(0).Get(0), 10);
  a.value().Release();
  EXPECT_TRUE(cache.Contains({1, 0}));
}

TEST(BlockCacheTest, HandleOutlivingCacheUnwindsGaugesExactly) {
  // Regression for the State destructor's final gauge accounting: it
  // reads per-shard entry state (pins, residency, quarantine size) and
  // must do so under each shard's lock — the destructor can run on
  // whichever thread drops the last Handle, which is not necessarily
  // the thread that last mutated the shard.
#ifdef CORRA_OBS_OFF
  GTEST_SKIP() << "observability compiled out (CORRA_OBS_OFF)";
#else
  obs::Registry registry;
  obs::SetEnabled(true);
  std::atomic<int> loads{0};
  BlockCache::Handle survivor;
  {
    BlockCacheOptions options;
    options.capacity_blocks = 4;
    options.registry = &registry;
    BlockCache cache(options);
    auto pinned = cache.GetOrLoad({1, 0}, MarkerLoader(10, &loads));
    ASSERT_TRUE(pinned.ok());
    auto released = cache.GetOrLoad({1, 1}, MarkerLoader(11, &loads));
    ASSERT_TRUE(released.ok());
    released.value().Release();
    survivor = std::move(pinned).value();
    EXPECT_EQ(registry.gauge("cache.cached_blocks").Value(), 2);
    EXPECT_EQ(registry.gauge("cache.pinned_blocks").Value(), 1);
    // The cache dies here; the survivor handle keeps the shared State
    // (and the pinned block) alive.
  }
  EXPECT_EQ(survivor->column(0).Get(0), 10);
  // Dropping the last handle unpins, then destroys State, which gives
  // back the residency gauges for both blocks — exactly to zero.
  survivor.Release();
  EXPECT_EQ(registry.gauge("cache.cached_blocks").Value(), 0);
  EXPECT_EQ(registry.gauge("cache.cached_bytes").Value(), 0);
  EXPECT_EQ(registry.gauge("cache.pinned_blocks").Value(), 0);
  EXPECT_EQ(registry.gauge("cache.pinned_bytes").Value(), 0);
#endif  // CORRA_OBS_OFF
}

TEST(BlockCacheTest, AllPinnedPastCapacityAccountingStaysConsistent) {
  // Regression: capacity_bytes = 0 (unlimited) with pinned blocks far
  // past capacity_blocks. While every resident block is pinned the LRU
  // is empty, so nothing may be evicted (or counted as evicted); as the
  // pins drop one by one, the cache must drain back to capacity with
  // every loaded block accounted for as either resident or evicted.
  BlockCache cache({.capacity_blocks = 2, .capacity_bytes = 0, .shards = 1});
  std::atomic<int> loads{0};

  std::vector<BlockCache::Handle> pins;
  for (int64_t b = 0; b < 5; ++b) {
    auto handle = cache.GetOrLoad({1, static_cast<uint64_t>(b)},
                                  MarkerLoader(100 + b, &loads));
    ASSERT_TRUE(handle.ok());
    pins.push_back(std::move(handle).value());
  }
  {
    const BlockCacheStats stats = cache.GetStats();
    EXPECT_EQ(stats.cached_blocks, 5u);
    EXPECT_EQ(stats.pinned_blocks, 5u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.misses, 5u);
    EXPECT_GT(stats.cached_bytes, 0u);
  }
  for (size_t released = 1; released <= pins.size(); ++released) {
    pins[released - 1].Release();
    const BlockCacheStats stats = cache.GetStats();
    EXPECT_EQ(stats.pinned_blocks, 5 - released);
    // Every loaded block is either still resident or was evicted,
    // exactly once (no double-counted evictions, no lost entries).
    EXPECT_EQ(stats.misses, stats.evictions + stats.cached_blocks);
    // Residency never exceeds pins + capacity.
    EXPECT_LE(stats.cached_blocks, (5 - released) + 2);
  }
  const BlockCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.cached_blocks, 2u);
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(stats.pinned_blocks, 0u);
}

TEST(BlockCacheTest, ConcurrentUnpinAndInsertKeepAccountingConsistent) {
  // Regression for the cross-shard eviction race: an unpin re-filing its
  // entry and an insert in another shard could both observe the same
  // one-block overshoot and both evict, double-counting the eviction
  // and draining the cache below budget. Hammer unpins and inserts from
  // several threads, then check the global ledger: every miss is either
  // a resident block or exactly one eviction.
  BlockCache cache({.capacity_blocks = 8, .capacity_bytes = 0, .shards = 4});
  std::atomic<int> loads{0};
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &loads, t] {
      Rng rng(static_cast<uint64_t>(t) + 77);
      std::vector<BlockCache::Handle> held;
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t block = static_cast<uint64_t>(rng.Uniform(0, 31));
        auto handle = cache.GetOrLoad(
            {1, block}, MarkerLoader(static_cast<int64_t>(block), &loads));
        ASSERT_TRUE(handle.ok());
        held.push_back(std::move(handle).value());
        if (held.size() > 3 || rng.Uniform(0, 3) == 0) {
          // Release out of order so unpins interleave with inserts.
          const size_t victim =
              static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(
                                                     held.size() - 1)));
          held[victim].Release();
          held.erase(held.begin() + static_cast<long>(victim));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const BlockCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.pinned_blocks, 0u);
  EXPECT_EQ(stats.misses, stats.evictions + stats.cached_blocks);
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(loads.load()));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // The full ledger form (no loads in flight, nothing erased or failed
  // here, so the extra terms are zero — but they must *be* zero).
  EXPECT_EQ(stats.loading_blocks, 0u);
  EXPECT_EQ(stats.erased_blocks, 0u);
  EXPECT_EQ(stats.failed_loads, 0u);
  EXPECT_EQ(stats.misses, stats.cached_blocks + stats.loading_blocks +
                              stats.evictions + stats.failed_loads +
                              stats.erased_blocks);
}

TEST(BlockCacheTest, EraseFileCountsIntoTheLedger) {
  BlockCache cache({.capacity_blocks = 8, .capacity_bytes = 0, .shards = 2});
  std::atomic<int> loads{0};
  for (uint64_t b = 0; b < 3; ++b) {
    auto handle =
        cache.GetOrLoad({1, b}, MarkerLoader(static_cast<int64_t>(b), &loads));
    ASSERT_TRUE(handle.ok());
  }
  auto other = cache.GetOrLoad({2, 0}, MarkerLoader(20, &loads));
  ASSERT_TRUE(other.ok());
  // Keep one file-1 block pinned across the erase: it must survive as a
  // doomed entry until the pin drops, then count as erased.
  auto pinned = cache.GetOrLoad({1, 1}, MarkerLoader(1, &loads));
  ASSERT_TRUE(pinned.ok());

  cache.EraseFile(1);
  {
    const BlockCacheStats stats = cache.GetStats();
    EXPECT_EQ(stats.erased_blocks, 2u);   // Unpinned file-1 entries.
    EXPECT_EQ(stats.cached_blocks, 2u);   // {2,0} plus the doomed pin.
    EXPECT_EQ(stats.pinned_blocks, 2u);
    EXPECT_EQ(stats.misses, stats.cached_blocks + stats.loading_blocks +
                                stats.evictions + stats.failed_loads +
                                stats.erased_blocks);
  }
  EXPECT_FALSE(cache.Contains({1, 0}));
  EXPECT_TRUE(cache.Contains({2, 0}));

  pinned.value().Release();
  {
    const BlockCacheStats stats = cache.GetStats();
    EXPECT_EQ(stats.erased_blocks, 3u);  // Doomed entry dropped on unpin.
    EXPECT_EQ(stats.cached_blocks, 1u);
    EXPECT_EQ(stats.misses, stats.cached_blocks + stats.loading_blocks +
                                stats.evictions + stats.failed_loads +
                                stats.erased_blocks);
  }
  EXPECT_FALSE(cache.Contains({1, 1}));
}

TEST(BlockCacheTest, SnapshotLedgerHoldsExactlyUnderChurn) {
  // The point of the all-shards-locked snapshot: while loads, unpins,
  // evictions, failures, and file erases race from several threads,
  // *every* GetStats observes the exact ledger — not a transiently
  // inconsistent mid-update view.
  BlockCache cache({.capacity_blocks = 6, .capacity_bytes = 0, .shards = 4});
  std::atomic<int> loads{0};
  std::atomic<bool> stop{false};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &loads, t] {
      Rng rng(static_cast<uint64_t>(t) + 11);
      for (int op = 0; op < 300; ++op) {
        const uint64_t file = 1 + static_cast<uint64_t>(rng.Uniform(0, 1));
        const uint64_t block = static_cast<uint64_t>(rng.Uniform(0, 15));
        if (rng.Uniform(0, 19) == 0) {
          // Occasional failure: the loader error must count once.
          auto failing = cache.GetOrLoad({3, block}, [] {
            return Result<std::shared_ptr<const Block>>(
                Status::Corruption("synthetic"));
          });
          EXPECT_FALSE(failing.ok());
          continue;
        }
        auto handle = cache.GetOrLoad(
            {file, block},
            MarkerLoader(static_cast<int64_t>(file * 100 + block), &loads));
        ASSERT_TRUE(handle.ok());
        if (rng.Uniform(0, 9) == 0) {
          cache.EraseFile(2);  // Erase under out-held pins included.
        }
        handle.value().Release();
      }
    });
  }
  std::thread poller([&cache, &stop] {
    uint64_t last_misses = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const BlockCacheStats stats = cache.GetStats();
      ASSERT_EQ(stats.misses, stats.cached_blocks + stats.loading_blocks +
                                  stats.evictions + stats.failed_loads +
                                  stats.erased_blocks)
          << "ledger broke mid-churn";
      ASSERT_GE(stats.misses, last_misses);  // Monotone under the locks.
      last_misses = stats.misses;
      std::this_thread::yield();
    }
  });
  for (auto& thread : threads) {
    thread.join();
  }
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  const BlockCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.loading_blocks, 0u);
  EXPECT_EQ(stats.pinned_blocks, 0u);
  EXPECT_GT(stats.failed_loads, 0u);
  EXPECT_EQ(stats.misses, stats.cached_blocks + stats.loading_blocks +
                              stats.evictions + stats.failed_loads +
                              stats.erased_blocks);
}

TEST(BlockCacheTest, FailedLoadIsNotCachedAndPropagates) {
  BlockCache cache({.capacity_blocks = 4, .capacity_bytes = 0, .shards = 1});
  std::atomic<int> loads{0};

  auto failing = cache.GetOrLoad({7, 0}, [] {
    return Result<std::shared_ptr<const Block>>(
        Status::Corruption("synthetic load failure"));
  });
  EXPECT_FALSE(failing.ok());
  EXPECT_TRUE(failing.status().IsCorruption());
  EXPECT_FALSE(cache.Contains({7, 0}));
  EXPECT_EQ(cache.GetStats().failed_loads, 1u);

  // A persistent failure quarantines the key: requests inside the TTL
  // fail fast with the original status, and the loader never runs.
  auto fastfail = cache.GetOrLoad({7, 0}, MarkerLoader(70, &loads));
  EXPECT_FALSE(fastfail.ok());
  EXPECT_TRUE(fastfail.status().IsCorruption());
  EXPECT_EQ(loads.load(), 0);
  {
    const BlockCacheStats stats = cache.GetStats();
    EXPECT_EQ(stats.quarantine_fastfails, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    // A fast-fail is neither a hit nor a miss: the ledger is untouched.
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 0u);
  }

  // The key becomes loadable again once the quarantine lifts.
  cache.ClearQuarantine();
  EXPECT_EQ(cache.GetStats().quarantined, 0u);
  auto ok = cache.GetOrLoad({7, 0}, MarkerLoader(70, &loads));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()->column(0).Get(0), 70);
  EXPECT_EQ(loads.load(), 1);
}

TEST(BlockCacheTest, QuarantineDisabledKeepsKeysLoadable) {
  BlockCache cache({.capacity_blocks = 4,
                    .capacity_bytes = 0,
                    .shards = 1,
                    .quarantine_ttl_ms = 0});
  std::atomic<int> loads{0};
  auto failing = cache.GetOrLoad({7, 0}, [] {
    return Result<std::shared_ptr<const Block>>(
        Status::IOError("synthetic load failure"));
  });
  EXPECT_FALSE(failing.ok());
  // Pre-quarantine behavior: the very next request re-runs the loader.
  auto ok = cache.GetOrLoad({7, 0}, MarkerLoader(70, &loads));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(cache.GetStats().quarantine_fastfails, 0u);
}

TEST(BlockCacheTest, QuarantineTtlExpiresAndSkipsTransientStatuses) {
  BlockCache cache({.capacity_blocks = 4,
                    .capacity_bytes = 0,
                    .shards = 1,
                    .quarantine_ttl_ms = 20});
  std::atomic<int> loads{0};

  // Transient statuses (anything but Corruption/IOError) never
  // quarantine: a retry may well succeed.
  auto transient = cache.GetOrLoad({7, 0}, [] {
    return Result<std::shared_ptr<const Block>>(
        Status::ResourceExhausted("loader backpressure"));
  });
  EXPECT_FALSE(transient.ok());
  EXPECT_EQ(cache.GetStats().quarantined, 0u);
  {
    auto ok = cache.GetOrLoad({7, 0}, MarkerLoader(70, &loads));
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(loads.load(), 1);
  }

  // A persistent failure quarantines — and the TTL lifts it without any
  // explicit clear.
  auto failing = cache.GetOrLoad({8, 0}, [] {
    return Result<std::shared_ptr<const Block>>(
        Status::IOError("synthetic load failure"));
  });
  EXPECT_FALSE(failing.ok());
  EXPECT_FALSE(cache.GetOrLoad({8, 0}, MarkerLoader(80, &loads)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto ok = cache.GetOrLoad({8, 0}, MarkerLoader(80, &loads));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()->column(0).Get(0), 80);
}

TEST(BlockCacheTest, QuarantineCapacityDropsOldestFirst) {
  BlockCache cache({.capacity_blocks = 8,
                    .capacity_bytes = 0,
                    .shards = 1,
                    .quarantine_capacity = 2});
  std::atomic<int> loads{0};
  for (uint64_t b = 0; b < 3; ++b) {
    auto failing = cache.GetOrLoad({9, b}, [] {
      return Result<std::shared_ptr<const Block>>(
          Status::IOError("synthetic load failure"));
    });
    EXPECT_FALSE(failing.ok());
  }
  // Capacity 2: block 0 (oldest) was dropped and is loadable again;
  // blocks 1 and 2 still fast-fail.
  EXPECT_EQ(cache.GetStats().quarantined, 2u);
  EXPECT_TRUE(cache.GetOrLoad({9, 0}, MarkerLoader(90, &loads)).ok());
  EXPECT_FALSE(cache.GetOrLoad({9, 1}, MarkerLoader(91, &loads)).ok());
  EXPECT_FALSE(cache.GetOrLoad({9, 2}, MarkerLoader(92, &loads)).ok());
  EXPECT_EQ(loads.load(), 1);
}

TEST(BlockCacheTest, EraseFileSweepsItsQuarantineEntries) {
  BlockCache cache({.capacity_blocks = 8, .capacity_bytes = 0, .shards = 1});
  std::atomic<int> loads{0};
  for (uint64_t file : {10u, 11u}) {
    auto failing = cache.GetOrLoad({file, 0}, [] {
      return Result<std::shared_ptr<const Block>>(
          Status::IOError("synthetic load failure"));
    });
    EXPECT_FALSE(failing.ok());
  }
  EXPECT_EQ(cache.GetStats().quarantined, 2u);
  cache.EraseFile(10);
  EXPECT_EQ(cache.GetStats().quarantined, 1u);
  EXPECT_TRUE(cache.GetOrLoad({10, 0}, MarkerLoader(100, &loads)).ok());
  EXPECT_FALSE(cache.GetOrLoad({11, 0}, MarkerLoader(110, &loads)).ok());
}

// The waiter-wakeup audit: concurrent requests for one key during a
// failing load must all wake with the error (none may hang), the loader
// must have run exactly once for the flight, and failed_loads must
// count exactly once. Run under TSan in CI.
TEST(BlockCacheTest, AllWaitersWakeWithErrorOnFailedLoad) {
  BlockCache cache({.capacity_blocks = 8, .capacity_bytes = 0, .shards = 1});
  std::atomic<int> loads{0};
  std::atomic<int> release{0};

  // Leader: a slow failing load the waiters pile onto.
  std::thread leader([&] {
    auto result = cache.GetOrLoad({12, 0}, [&] {
      loads.fetch_add(1);
      release.store(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      return Result<std::shared_ptr<const Block>>(
          Status::IOError("synthetic slow load failure"));
    });
    EXPECT_FALSE(result.ok());
  });
  while (release.load() == 0) {
    std::this_thread::yield();
  }

  constexpr int kWaiters = 8;
  std::vector<std::thread> waiters;
  std::atomic<int> woken_with_error{0};
  waiters.reserve(kWaiters);
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&] {
      auto result = cache.GetOrLoad({12, 0}, [&] {
        loads.fetch_add(1);  // Must not run: single flight + quarantine.
        return Result<std::shared_ptr<const Block>>(
            Status::IOError("unexpected second load"));
      });
      if (!result.ok() && result.status().IsIOError()) {
        woken_with_error.fetch_add(1);
      }
    });
  }
  for (std::thread& t : waiters) {
    t.join();
  }
  leader.join();

  EXPECT_EQ(woken_with_error.load(), kWaiters);
  EXPECT_EQ(loads.load(), 1);
  const BlockCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.failed_loads, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // Ledger: the one miss was removed by exactly the one failed load.
  EXPECT_EQ(stats.misses, stats.cached_blocks + stats.loading_blocks +
                              stats.evictions + stats.failed_loads +
                              stats.erased_blocks);
}

TEST(BlockCacheTest, ByteBudgetTriggersEviction) {
  // Marker blocks are identical in size; budget one block's bytes.
  const size_t one_block = MakeMarkerBlock(0)->GetStats().encoded_bytes;
  BlockCache cache({.capacity_blocks = 0,
                    .capacity_bytes = one_block,
                    .shards = 1});
  std::atomic<int> loads{0};
  { auto a = cache.GetOrLoad({1, 0}, MarkerLoader(1, &loads)); ASSERT_TRUE(a.ok()); }
  { auto b = cache.GetOrLoad({1, 1}, MarkerLoader(2, &loads)); ASSERT_TRUE(b.ok()); }
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_LE(cache.GetStats().cached_bytes, one_block);
}

TEST(BlockCacheTest, ByteBudgetIsGlobalNotPerShardSliced) {
  // Budget for ~5 blocks spread over 8 shards: a per-shard slice would
  // be smaller than one block and evict everything on unpin; the global
  // budget must keep all 4 working-set blocks resident.
  const size_t one_block = MakeMarkerBlock(0)->GetStats().encoded_bytes;
  ASSERT_GT(one_block, 0u);
  BlockCache cache({.capacity_blocks = 0,
                    .capacity_bytes = 5 * one_block,
                    .shards = 8});
  std::atomic<int> loads{0};
  for (uint64_t b = 0; b < 4; ++b) {
    auto handle =
        cache.GetOrLoad({1, b}, MarkerLoader(static_cast<int64_t>(b), &loads));
    ASSERT_TRUE(handle.ok());
  }
  EXPECT_EQ(loads.load(), 4);
  // Second pass: everything is still resident.
  for (uint64_t b = 0; b < 4; ++b) {
    auto handle =
        cache.GetOrLoad({1, b}, MarkerLoader(static_cast<int64_t>(b), &loads));
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ((*handle.value()).column(0).Get(0), static_cast<int64_t>(b));
  }
  EXPECT_EQ(loads.load(), 4);
  const BlockCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.cached_blocks, 4u);
}

TEST(BlockCacheTest, RegisterFileIdsAreUnique) {
  BlockCache cache;
  const uint64_t a = cache.RegisterFile();
  const uint64_t b = cache.RegisterFile();
  EXPECT_NE(a, b);
}

// --- File-backed fixture ----------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 4000;
  static constexpr size_t kBlockRows = 1000;

  void SetUp() override {
    path_ = ::testing::TempDir() + "corra_serve_test.corf";
    Rng rng(21);
    ship_.resize(kRows);
    receipt_.resize(kRows);
    fare_.resize(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      ship_[i] = rng.Uniform(8035, 10591);
      receipt_[i] = ship_[i] + rng.Uniform(1, 30);
      fare_[i] = rng.Uniform(100, 25000);
    }
    Table table;
    ASSERT_TRUE(table.AddColumn(Column::Date("ship", ship_)).ok());
    ASSERT_TRUE(table.AddColumn(Column::Date("receipt", receipt_)).ok());
    ASSERT_TRUE(table.AddColumn(Column::Money("fare", fare_)).ok());
    CompressionPlan plan = CompressionPlan::AllAuto(3);
    plan.block_rows = kBlockRows;
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kDiff;
    plan.columns[1].reference = 0;
    auto compressed = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(compressed.ok());
    ASSERT_EQ(compressed.value().num_blocks(), 4u);
    ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Oracle: global positions with ship in [lo, hi] plus the three
  // columns' values there, straight from the raw vectors.
  struct Expected {
    std::vector<uint64_t> positions;
    std::vector<int64_t> ship, receipt, fare;
  };
  Expected ExpectedScan(int64_t lo, int64_t hi) const {
    Expected e;
    for (size_t i = 0; i < kRows; ++i) {
      if (ship_[i] >= lo && ship_[i] <= hi) {
        e.positions.push_back(i);
        e.ship.push_back(ship_[i]);
        e.receipt.push_back(receipt_[i]);
        e.fare.push_back(fare_[i]);
      }
    }
    return e;
  }

  static ScanRequest FilterScanRequest(int64_t lo, int64_t hi) {
    ScanRequest request;
    request.filter_column = 0;
    request.filter_lo = lo;
    request.filter_hi = hi;
    request.project_columns = {0, 1, 2};
    request.return_positions = true;
    return request;
  }

  std::string path_;
  std::vector<int64_t> ship_, receipt_, fare_;
};

TEST_F(ServeTest, ReaderExposesDirectoryMetadata) {
  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->schema().num_fields(), 3u);
  EXPECT_EQ(reader.value()->schema().field(1).name, "receipt");
  EXPECT_EQ(reader.value()->num_blocks(), 4u);
  EXPECT_EQ(reader.value()->num_rows(), kRows);
  const auto offsets = reader.value()->block_row_offsets();
  ASSERT_EQ(offsets.size(), 5u);
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(offsets[b], b * kBlockRows);
    EXPECT_EQ(reader.value()->block_rows(b), kBlockRows);
  }
  // Nothing was loaded to answer any of the above.
  EXPECT_EQ(cache->GetStats().misses, 0u);

  auto beyond = reader.value()->GetBlock(4);
  EXPECT_TRUE(beyond.status().IsOutOfRange());

  auto block = reader.value()->GetBlock(2);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value()->rows(), kBlockRows);
  EXPECT_EQ(block.value()->column(1).Get(5), receipt_[2 * kBlockRows + 5]);

  // Per-block stats back cache admission accounting.
  const Block::Stats stats = block.value()->GetStats();
  EXPECT_EQ(stats.rows, kBlockRows);
  EXPECT_EQ(stats.columns, 3u);
  EXPECT_EQ(stats.encoded_bytes, block.value()->SizeBytes());
}

TEST_F(ServeTest, PinnedBlocksOfClosedReaderAreDroppedOnRelease) {
  // A block pinned across its reader's destruction must not linger as
  // an unreachable cache resident after the pin drops.
  auto cache = std::make_shared<BlockCache>();
  BlockCache::Handle handle;
  {
    auto reader = TableReader::Open(path_, cache);
    ASSERT_TRUE(reader.ok());
    auto block = reader.value()->GetBlock(0);
    ASSERT_TRUE(block.ok());
    handle = std::move(block).value();
  }
  // Reader gone, pin still out: the entry is resident but doomed.
  EXPECT_EQ(cache->GetStats().cached_blocks, 1u);
  EXPECT_EQ(handle->column(0).Get(0), ship_[0]);
  handle.Release();
  const BlockCacheStats stats = cache->GetStats();
  EXPECT_EQ(stats.cached_blocks, 0u);
  EXPECT_EQ(stats.cached_bytes, 0u);
}

TEST_F(ServeTest, HandleMayOutliveCache) {
  // A pinned handle keeps the cache's internal state alive; releasing
  // it after the cache and reader are gone must be safe.
  BlockCache::Handle handle;
  {
    auto cache = std::make_shared<BlockCache>();
    auto reader = TableReader::Open(path_, cache);
    ASSERT_TRUE(reader.ok());
    auto block = reader.value()->GetBlock(1);
    ASSERT_TRUE(block.ok());
    handle = std::move(block).value();
  }
  ASSERT_TRUE(static_cast<bool>(handle));
  EXPECT_EQ(handle->column(0).Get(0), ship_[kBlockRows]);
  handle.Release();
}

// Acceptance (a): ScanService over a lazily read file is byte-identical
// to materializing the whole table and scanning it in memory.
TEST_F(ServeTest, ScanMatchesFullInMemoryScan) {
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.capacity_blocks = 8, .capacity_bytes = 0,
                        .shards = 4});
  auto reader = TableReader::Open(path_, cache,
                                  TableReaderOptions{.verify_blocks = true});
  ASSERT_TRUE(reader.ok());
  ScanService service(ScanService::Options{.num_threads = 3});

  auto result = service.Execute(*reader.value(), FilterScanRequest(9000, 9400));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // In-memory oracle: full load + per-block filter + table scan.
  auto full = ReadCompressedTable(path_, /*verify=*/true);
  ASSERT_TRUE(full.ok());
  std::vector<uint64_t> expected_positions;
  std::vector<uint32_t> expected_positions32;
  uint64_t base = 0;
  for (size_t b = 0; b < full.value().num_blocks(); ++b) {
    const Block& block = full.value().block(b);
    for (uint32_t row :
         query::FilterToSelection(block.column(0), 9000, 9400)) {
      expected_positions.push_back(base + row);
      expected_positions32.push_back(static_cast<uint32_t>(base + row));
    }
    base += block.rows();
  }
  EXPECT_EQ(result.value().positions, expected_positions);
  EXPECT_EQ(result.value().rows_matched, expected_positions.size());
  EXPECT_EQ(result.value().rows_scanned, kRows);
  for (size_t c = 0; c < 3; ++c) {
    auto expected_values =
        query::ScanTableColumn(full.value(), c, expected_positions32);
    ASSERT_TRUE(expected_values.ok());
    EXPECT_EQ(result.value().columns[c], expected_values.value())
        << "column " << c;
  }
  // And against the raw-vector oracle.
  const Expected oracle = ExpectedScan(9000, 9400);
  EXPECT_EQ(result.value().positions, oracle.positions);
  EXPECT_EQ(result.value().columns[0], oracle.ship);
  EXPECT_EQ(result.value().columns[1], oracle.receipt);
  EXPECT_EQ(result.value().columns[2], oracle.fare);
}

TEST_F(ServeTest, AggregatesMatchDecodedFold) {
  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service(ScanService::Options{.num_threads = 2});

  // Unfiltered: compressed-domain pushdown across blocks.
  ScanRequest sum_all;
  sum_all.aggregate = AggregateOp::kSum;
  sum_all.aggregate_column = 2;
  auto sum_result = service.Execute(*reader.value(), sum_all);
  ASSERT_TRUE(sum_result.ok());
  uint64_t expected_sum = 0;
  for (int64_t v : fare_) {
    expected_sum += static_cast<uint64_t>(v);
  }
  EXPECT_EQ(sum_result.value().agg_sum,
            static_cast<int64_t>(expected_sum));

  ScanRequest min_all = sum_all;
  min_all.aggregate = AggregateOp::kMin;
  ScanRequest max_all = sum_all;
  max_all.aggregate = AggregateOp::kMax;
  auto min_result = service.Execute(*reader.value(), min_all);
  auto max_result = service.Execute(*reader.value(), max_all);
  ASSERT_TRUE(min_result.ok());
  ASSERT_TRUE(max_result.ok());
  EXPECT_EQ(min_result.value().agg_min,
            *std::min_element(fare_.begin(), fare_.end()));
  EXPECT_EQ(max_result.value().agg_max,
            *std::max_element(fare_.begin(), fare_.end()));

  // Filtered: decode-and-fold at matching rows only.
  ScanRequest filtered_sum;
  filtered_sum.filter_column = 0;
  filtered_sum.filter_lo = 9000;
  filtered_sum.filter_hi = 9400;
  filtered_sum.aggregate = AggregateOp::kSum;
  filtered_sum.aggregate_column = 2;
  auto filtered = service.Execute(*reader.value(), filtered_sum);
  ASSERT_TRUE(filtered.ok());
  const Expected oracle = ExpectedScan(9000, 9400);
  uint64_t expected_filtered_sum = 0;
  for (int64_t v : oracle.fare) {
    expected_filtered_sum += static_cast<uint64_t>(v);
  }
  EXPECT_EQ(filtered.value().agg_sum,
            static_cast<int64_t>(expected_filtered_sum));
  EXPECT_EQ(filtered.value().rows_matched, oracle.positions.size());

  // Aggregating a column that is also projected reuses the projection's
  // decode and must produce the same sum and values.
  ScanRequest projected_sum = filtered_sum;
  projected_sum.project_columns = {2};
  auto both = service.Execute(*reader.value(), projected_sum);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both.value().agg_sum,
            static_cast<int64_t>(expected_filtered_sum));
  EXPECT_EQ(both.value().columns[0], oracle.fare);
}

// Acceptance (b): with cache capacity below the file's block count,
// evictions occur and every scan still returns correct results.
TEST_F(ServeTest, TinyCacheEvictsAndStaysCorrect) {
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.capacity_blocks = 2, .capacity_bytes = 0,
                        .shards = 4});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service(ScanService::Options{.num_threads = 2});

  const Expected oracle = ExpectedScan(8500, 10000);
  for (int round = 0; round < 3; ++round) {
    auto result =
        service.Execute(*reader.value(), FilterScanRequest(8500, 10000));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().positions, oracle.positions) << "round " << round;
    EXPECT_EQ(result.value().columns[1], oracle.receipt) << "round " << round;
  }
  const BlockCacheStats stats = cache->GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, 4u);  // Blocks were reloaded after eviction.
  EXPECT_LE(stats.cached_blocks, 2u);
}

// Acceptance (c): concurrent scan requests over one shared reader and a
// small cache complete without races (run under ASan/UBSan in CI) and
// all return correct results.
TEST_F(ServeTest, ConcurrentScansShareOneReader) {
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.capacity_blocks = 2, .capacity_bytes = 0,
                        .shards = 2});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service(ScanService::Options{.num_threads = 4});

  constexpr int kClients = 8;
  constexpr int kRounds = 5;
  std::vector<Expected> oracles;
  std::vector<ScanRequest> requests;
  for (int c = 0; c < kClients; ++c) {
    const int64_t lo = 8100 + 300 * c;
    const int64_t hi = lo + 700;
    oracles.push_back(ExpectedScan(lo, hi));
    requests.push_back(FilterScanRequest(lo, hi));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        auto result = service.Execute(*reader.value(), requests[c]);
        if (!result.ok() ||
            result.value().positions != oracles[c].positions ||
            result.value().columns[1] != oracles[c].receipt ||
            result.value().columns[2] != oracles[c].fare) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const BlockCacheStats stats = cache->GetStats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.pinned_blocks, 0u);  // All scans released their pins.
}

TEST_F(ServeTest, GatherMatchesTableScan) {
  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service(ScanService::Options{.num_threads = 2});

  Rng rng(5);
  const std::vector<uint32_t> rows32 =
      query::GenerateSelectionVector(kRows, 0.05, &rng);
  const std::vector<uint64_t> rows64(rows32.begin(), rows32.end());
  const std::vector<size_t> cols = {1, 2};

  auto gathered = service.Gather(*reader.value(), cols, rows64);
  ASSERT_TRUE(gathered.ok()) << gathered.status().ToString();

  auto full = ReadCompressedTable(path_);
  ASSERT_TRUE(full.ok());
  for (size_t c = 0; c < cols.size(); ++c) {
    auto expected = query::ScanTableColumn(full.value(), cols[c], rows32);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(gathered.value()[c], expected.value());
  }
}

TEST_F(ServeTest, GatherTouchesOnlyOwningBlocks) {
  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service(ScanService::Options{.num_threads = 0});

  // All positions inside block 1.
  const std::vector<uint64_t> rows = {1005, 1500, 1999};
  const std::vector<size_t> cols = {0};
  auto gathered = service.Gather(*reader.value(), cols, rows);
  ASSERT_TRUE(gathered.ok());
  EXPECT_EQ(gathered.value()[0],
            (std::vector<int64_t>{ship_[1005], ship_[1500], ship_[1999]}));
  EXPECT_EQ(cache->GetStats().misses, 1u);  // Only block 1 was loaded.
  EXPECT_FALSE(cache->Contains({reader.value()->file_id(), 0}));
  EXPECT_TRUE(cache->Contains({reader.value()->file_id(), 1}));
}

TEST_F(ServeTest, InvalidRequestsAreRejected) {
  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service(ScanService::Options{.num_threads = 0});

  ScanRequest bad_filter;
  bad_filter.filter_column = 9;
  EXPECT_TRUE(service.Execute(*reader.value(), bad_filter)
                  .status()
                  .IsInvalidArgument());

  ScanRequest bad_project;
  bad_project.project_columns = {3};
  EXPECT_TRUE(service.Execute(*reader.value(), bad_project)
                  .status()
                  .IsInvalidArgument());

  // Unsorted and out-of-range gathers.
  const std::vector<size_t> cols = {0};
  const std::vector<uint64_t> unsorted = {5, 3};
  const std::vector<uint64_t> beyond = {kRows};
  EXPECT_TRUE(service.Gather(*reader.value(), cols, unsorted)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(service.Gather(*reader.value(), cols, beyond)
                  .status()
                  .IsOutOfRange());
}

// Block skipping via CORF v3 per-block stats: a sorted key column gives
// every block a disjoint value range, so a narrow filter prunes all but
// one block — and the result must be byte-identical to the same scan
// without stats (a v2 file of the same table).
class BlockSkipTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 4000;
  static constexpr size_t kBlockRows = 1000;

  void SetUp() override {
    v3_path_ = ::testing::TempDir() + "corra_skip_v3.corf";
    v2_path_ = ::testing::TempDir() + "corra_skip_v2.corf";
    Rng rng(77);
    key_.resize(kRows);
    payload_.resize(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      key_[i] = static_cast<int64_t>(i);  // Sorted: disjoint block ranges.
      payload_[i] = rng.Uniform(100, 25000);
    }
    Table table;
    ASSERT_TRUE(table.AddColumn(Column::Int64("key", key_)).ok());
    ASSERT_TRUE(table.AddColumn(Column::Money("payload", payload_)).ok());
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.block_rows = kBlockRows;
    auto compressed = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(compressed.ok());
    ASSERT_EQ(compressed.value().num_blocks(), 4u);
    ASSERT_TRUE(WriteCompressedTable(compressed.value(), v3_path_).ok());
    test::WriteCompressedTableV2(compressed.value(), v2_path_);
  }

  void TearDown() override {
    std::remove(v3_path_.c_str());
    std::remove(v2_path_.c_str());
  }

  std::string v3_path_, v2_path_;
  std::vector<int64_t> key_, payload_;
};

TEST_F(BlockSkipTest, SkippedScanIsByteIdenticalToUnskipped) {
  ScanService service(ScanService::Options{.num_threads = 2});

  ScanRequest request;
  request.filter_column = 0;
  request.filter_lo = 1200;
  request.filter_hi = 1800;  // Entirely inside block 1's [1000, 2000).
  request.project_columns = {0, 1};
  request.return_positions = true;
  request.aggregate = AggregateOp::kSum;
  request.aggregate_column = 1;

  auto v3_cache = std::make_shared<BlockCache>();
  auto v3_reader = TableReader::Open(v3_path_, v3_cache);
  ASSERT_TRUE(v3_reader.ok());
  ASSERT_TRUE(v3_reader.value()->info().has_column_stats);
  auto skipped = service.Execute(*v3_reader.value(), request);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();

  auto v2_cache = std::make_shared<BlockCache>();
  auto v2_reader = TableReader::Open(v2_path_, v2_cache);
  ASSERT_TRUE(v2_reader.ok());
  ASSERT_FALSE(v2_reader.value()->info().has_column_stats);
  auto unskipped = service.Execute(*v2_reader.value(), request);
  ASSERT_TRUE(unskipped.ok()) << unskipped.status().ToString();

  // Identical results in every value field...
  EXPECT_EQ(skipped.value().rows_scanned, unskipped.value().rows_scanned);
  EXPECT_EQ(skipped.value().rows_matched, unskipped.value().rows_matched);
  EXPECT_EQ(skipped.value().positions, unskipped.value().positions);
  ASSERT_EQ(skipped.value().columns.size(), unskipped.value().columns.size());
  for (size_t c = 0; c < skipped.value().columns.size(); ++c) {
    EXPECT_EQ(skipped.value().columns[c], unskipped.value().columns[c]);
  }
  EXPECT_EQ(skipped.value().agg_sum, unskipped.value().agg_sum);

  // ...and both match the raw-vector oracle.
  EXPECT_EQ(skipped.value().rows_matched, 601u);
  ASSERT_EQ(skipped.value().positions.size(), 601u);
  int64_t expected_sum = 0;
  for (size_t i = 0; i < 601; ++i) {
    EXPECT_EQ(skipped.value().positions[i], 1200 + i);
    EXPECT_EQ(skipped.value().columns[0][i], key_[1200 + i]);
    EXPECT_EQ(skipped.value().columns[1][i], payload_[1200 + i]);
    expected_sum += payload_[1200 + i];
  }
  EXPECT_EQ(skipped.value().agg_sum, expected_sum);

  // The stats reader pruned 3 of 4 blocks and never fetched them.
  EXPECT_EQ(skipped.value().blocks_skipped, 3u);
  EXPECT_EQ(v3_cache->GetStats().misses, 1u);
  EXPECT_EQ(unskipped.value().blocks_skipped, 0u);
  EXPECT_EQ(v2_cache->GetStats().misses, 4u);
}

TEST_F(BlockSkipTest, FullyDisjointFilterTouchesNoBlock) {
  ScanService service(ScanService::Options{.num_threads = 0});
  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(v3_path_, cache);
  ASSERT_TRUE(reader.ok());

  ScanRequest request;
  request.filter_column = 0;
  request.filter_lo = 100000;
  request.filter_hi = 200000;
  request.project_columns = {1};
  request.return_positions = true;
  auto result = service.Execute(*reader.value(), request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().blocks_skipped, 4u);
  EXPECT_EQ(result.value().rows_scanned, kRows);
  EXPECT_EQ(result.value().rows_matched, 0u);
  EXPECT_TRUE(result.value().positions.empty());
  ASSERT_EQ(result.value().columns.size(), 1u);
  EXPECT_TRUE(result.value().columns[0].empty());
  EXPECT_EQ(cache->GetStats().misses, 0u);  // Nothing ever read.
}

// Partial-result degradation (ScanRequest::allow_partial) around a
// block whose payload is corrupt on disk.
class PartialScanTest : public ServeTest {
 protected:
  static constexpr size_t kBadBlock = 2;  // Global rows 2000..2999.

  void SetUp() override {
    ServeTest::SetUp();
    // Flip one byte in the middle of the bad block's payload; with
    // verify_blocks the checksum rejects it on every read (the one
    // re-read sees the same damaged bytes).
    auto info = ReadFileInfo(path_);
    ASSERT_TRUE(info.ok());
    const uint64_t target = info.value().block_offsets[kBadBlock] +
                            info.value().block_lengths[kBadBlock] / 2;
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<long>(target));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<long>(target));
    f.write(&byte, 1);
  }

  // The oracle restricted to rows outside the bad block.
  Expected ExpectedHealthyScan(int64_t lo, int64_t hi) const {
    const Expected full = ExpectedScan(lo, hi);
    Expected healthy;
    for (size_t i = 0; i < full.positions.size(); ++i) {
      const uint64_t pos = full.positions[i];
      if (pos / kBlockRows == kBadBlock) {
        continue;
      }
      healthy.positions.push_back(pos);
      healthy.ship.push_back(full.ship[i]);
      healthy.receipt.push_back(full.receipt[i]);
      healthy.fare.push_back(full.fare[i]);
    }
    return healthy;
  }

  static void ExpectMatchesHealthy(const ScanResult& result,
                                   const Expected& healthy) {
    EXPECT_EQ(result.positions, healthy.positions);
    ASSERT_EQ(result.columns.size(), 3u);
    EXPECT_EQ(result.columns[0], healthy.ship);
    EXPECT_EQ(result.columns[1], healthy.receipt);
    EXPECT_EQ(result.columns[2], healthy.fare);
  }
};

TEST_F(PartialScanTest, AllowPartialDegradesAroundABadBlock) {
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.capacity_blocks = 8});
  auto reader =
      TableReader::Open(path_, cache, {.verify_blocks = true});
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 0});

  // Without allow_partial the bad block fails the whole scan.
  ScanRequest request = FilterScanRequest(8035, 10591);
  auto strict = service.Execute(*reader.value(), request);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption());

  // With it, every healthy block's results come back byte-identical
  // and the bad block is reported with its original status.
  request.allow_partial = true;
  auto partial = service.Execute(*reader.value(), request);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_EQ(partial.value().failed_blocks.size(), 1u);
  EXPECT_EQ(partial.value().failed_blocks[0].block, kBadBlock);
  EXPECT_TRUE(partial.value().failed_blocks[0].status.IsCorruption());
  EXPECT_NE(partial.value().failed_blocks[0].status.message().find(
                "block 2"),
            std::string::npos);
  ExpectMatchesHealthy(partial.value(), ExpectedHealthyScan(8035, 10591));
  EXPECT_EQ(partial.value().rows_scanned, kRows - kBlockRows);
}

TEST_F(PartialScanTest, QuarantineFastFailKeepsTheOriginalStatus) {
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.capacity_blocks = 8});
  auto reader =
      TableReader::Open(path_, cache, {.verify_blocks = true});
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 0});
  ScanRequest request = FilterScanRequest(8035, 10591);
  request.allow_partial = true;

  auto first = service.Execute(*reader.value(), request);
  ASSERT_TRUE(first.ok());
  // Second scan: the bad block is quarantined, so its failure comes
  // from the fast path — but carries the same Corruption status, so
  // the manifest is indistinguishable from the first scan's.
  auto second = service.Execute(*reader.value(), request);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().failed_blocks.size(), 1u);
  EXPECT_TRUE(second.value().failed_blocks[0].status.IsCorruption());
  EXPECT_EQ(second.value().failed_blocks[0].status.message(),
            first.value().failed_blocks[0].status.message());
  EXPECT_GE(cache->GetStats().quarantine_fastfails, 1u);
  ExpectMatchesHealthy(second.value(), ExpectedHealthyScan(8035, 10591));
}

TEST_F(PartialScanTest, DeadlineIsNeverDowngradedToPartial) {
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.capacity_blocks = 8});
  auto reader =
      TableReader::Open(path_, cache, {.verify_blocks = true});
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 0});
  ScanRequest request = FilterScanRequest(8035, 10591);
  request.allow_partial = true;
  request.deadline_ns = 1;  // Long expired.
  auto result = service.Execute(*reader.value(), request);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST_F(PartialScanTest, PooledAndCoalescedRequestsAllSeeTheFailure) {
  // Concurrent allow_partial scans through the pooled front door: the
  // coalescer's leader eats the pin failure and must hand it to every
  // follower; all requests degrade identically, none hang.
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.capacity_blocks = 8});
  auto reader =
      TableReader::Open(path_, cache, {.verify_blocks = true});
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 4});
  const Expected healthy = ExpectedHealthyScan(8035, 10591);

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> degraded{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      ScanRequest request = FilterScanRequest(8035, 10591);
      request.allow_partial = true;
      auto result = service.Execute(*reader.value(), request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result.value().failed_blocks.size(), 1u);
      EXPECT_EQ(result.value().failed_blocks[0].block, kBadBlock);
      ExpectMatchesHealthy(result.value(), healthy);
      degraded.fetch_add(1);
    });
  }
  for (std::thread& thread : clients) {
    thread.join();
  }
  EXPECT_EQ(degraded.load(), kClients);
}

TEST_F(PartialScanTest, PartialResultsCounterTracksDegradedScans) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.capacity_blocks = 8, .registry = &registry});
  auto reader =
      TableReader::Open(path_, cache, {.verify_blocks = true});
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 0, .registry = &registry});
  ScanRequest request = FilterScanRequest(8035, 10591);
  request.allow_partial = true;
  ASSERT_TRUE(service.Execute(*reader.value(), request).ok());
  ASSERT_TRUE(service.Execute(*reader.value(), request).ok());
  if (obs::Enabled()) {
    EXPECT_EQ(registry.counter("serve.partial_results").Value(), 2u);
    EXPECT_GE(registry.counter("cache.quarantine_fastfails").Value(), 1u);
    EXPECT_EQ(registry.gauge("cache.quarantined_blocks").Value(), 1);
  }
}

TEST_F(ServeTest, TwoReadersShareOneCacheWithoutCollisions) {
  const std::string path2 = ::testing::TempDir() + "corra_serve_test2.corf";
  // Second file: one block, distinct values.
  Table table;
  ASSERT_TRUE(
      table.AddColumn(Column::Int64("other", {5, 6, 7, 8})).ok());
  auto compressed =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(1));
  ASSERT_TRUE(compressed.ok());
  ASSERT_TRUE(WriteCompressedTable(compressed.value(), path2).ok());

  auto cache = std::make_shared<BlockCache>();
  auto reader1 = TableReader::Open(path_, cache);
  auto reader2 = TableReader::Open(path2, cache);
  ASSERT_TRUE(reader1.ok());
  ASSERT_TRUE(reader2.ok());
  EXPECT_NE(reader1.value()->file_id(), reader2.value()->file_id());

  {
    auto b1 = reader1.value()->GetBlock(0);
    auto b2 = reader2.value()->GetBlock(0);
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    EXPECT_EQ(b1.value()->column(0).Get(0), ship_[0]);
    EXPECT_EQ(b2.value()->column(0).Get(0), 5);
  }
  EXPECT_EQ(cache->GetStats().cached_blocks, 2u);

  // Closing a reader drops its (unpinned) blocks from the cache.
  reader2 = Status::NotFound("closed");
  EXPECT_EQ(cache->GetStats().cached_blocks, 1u);

  std::remove(path2.c_str());
}

}  // namespace
}  // namespace corra::serve
