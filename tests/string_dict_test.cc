#include "encoding/string_dict.h"

#include <gtest/gtest.h>

namespace corra::enc {
namespace {

TEST(StringDictTest, EmptyDictionary) {
  StringDictionary dict;
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_EQ(dict.SizeBytes(), sizeof(uint32_t));  // The single 0 offset.
  EXPECT_TRUE(dict.CodeOf("anything").status().IsNotFound());
}

TEST(StringDictTest, InsertAssignsDenseCodes) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrInsert("NYC"), 0);
  EXPECT_EQ(dict.GetOrInsert("Naples"), 1);
  EXPECT_EQ(dict.GetOrInsert("Cortland"), 2);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(StringDictTest, RepeatedInsertReturnsSameCode) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrInsert("Naples"), 0);
  EXPECT_EQ(dict.GetOrInsert("Naples"), 0);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(StringDictTest, LookupByCode) {
  StringDictionary dict;
  dict.GetOrInsert("alpha");
  dict.GetOrInsert("beta");
  EXPECT_EQ(dict[0], "alpha");
  EXPECT_EQ(dict[1], "beta");
}

TEST(StringDictTest, CodeOfFindsInserted) {
  StringDictionary dict;
  dict.GetOrInsert("x");
  dict.GetOrInsert("y");
  auto r = dict.CodeOf("y");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1);
}

TEST(StringDictTest, EmptyStringIsValidEntry) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrInsert(""), 0);
  EXPECT_EQ(dict.GetOrInsert("nonempty"), 1);
  EXPECT_EQ(dict[0], "");
  EXPECT_EQ(dict[1], "nonempty");
}

TEST(StringDictTest, SizeBytesCountsCharsAndOffsets) {
  StringDictionary dict;
  dict.GetOrInsert("abc");   // 3 chars
  dict.GetOrInsert("defgh"); // 5 chars
  EXPECT_EQ(dict.SizeBytes(), 8u + 3 * sizeof(uint32_t));
}

TEST(StringDictTest, SerializeRoundTrip) {
  StringDictionary dict;
  dict.GetOrInsert("Cortland");
  dict.GetOrInsert("Naples");
  dict.GetOrInsert("NYC");
  dict.GetOrInsert("");

  BufferWriter writer;
  dict.Serialize(&writer);
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  auto result = StringDictionary::Deserialize(&reader);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& reloaded = result.value();
  ASSERT_EQ(reloaded.size(), 4u);
  EXPECT_EQ(reloaded[0], "Cortland");
  EXPECT_EQ(reloaded[1], "Naples");
  EXPECT_EQ(reloaded[2], "NYC");
  EXPECT_EQ(reloaded[3], "");
}

TEST(StringDictTest, RebuildIndexRestoresLookup) {
  StringDictionary dict;
  dict.GetOrInsert("one");
  dict.GetOrInsert("two");
  BufferWriter writer;
  dict.Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  BufferReader reader(bytes);
  auto result = StringDictionary::Deserialize(&reader);
  ASSERT_TRUE(result.ok());
  auto& reloaded = result.value();
  EXPECT_TRUE(reloaded.CodeOf("one").status().IsNotFound());
  reloaded.RebuildIndex();
  auto code = reloaded.CodeOf("one");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value(), 0);
}

TEST(StringDictTest, CorruptOffsetsRejected) {
  StringDictionary dict;
  dict.GetOrInsert("abc");
  BufferWriter writer;
  dict.Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  // The offsets array is the last 8 bytes (two uint32: 0 and 3). Flip the
  // final offset so it disagrees with the char count.
  bytes[bytes.size() - 4] = 0x7F;
  BufferReader reader(bytes);
  auto result = StringDictionary::Deserialize(&reader);
  EXPECT_FALSE(result.ok());
}

TEST(StringDictTest, ManyStringsStressIndex) {
  StringDictionary dict;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(dict.GetOrInsert("key" + std::to_string(i)), i);
  }
  EXPECT_EQ(dict.size(), 10000u);
  for (int i = 0; i < 10000; i += 97) {
    auto code = dict.CodeOf("key" + std::to_string(i));
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), i);
  }
}

}  // namespace
}  // namespace corra::enc
