// Aggregate pushdown (query/aggregate.h) and parallel compression.

#include "query/aggregate.h"

#include <gtest/gtest.h>

#include "core/corra_compressor.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "test_util.h"

namespace corra::query {
namespace {

using test::Dist;
using test::MakeValues;

struct Expected {
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
};

Expected Reference(const std::vector<int64_t>& values) {
  Expected e;
  e.min = values.empty() ? 0 : values[0];
  e.max = e.min;
  uint64_t sum = 0;
  for (int64_t v : values) {
    sum += static_cast<uint64_t>(v);
    e.min = std::min(e.min, v);
    e.max = std::max(e.max, v);
  }
  e.sum = static_cast<int64_t>(sum);
  return e;
}

class AggregateTest : public ::testing::TestWithParam<Dist> {};

TEST_P(AggregateTest, ForFastPath) {
  const auto values = MakeValues(GetParam(), 3000, 1);
  const Expected expected = Reference(values);
  auto column = enc::ForColumn::Encode(values).value();
  EXPECT_EQ(SumColumn(*column), expected.sum);
  EXPECT_EQ(MinColumn(*column), expected.min);
  EXPECT_EQ(MaxColumn(*column), expected.max);
}

TEST_P(AggregateTest, DictFastPath) {
  const auto values = MakeValues(GetParam(), 3000, 2);
  const Expected expected = Reference(values);
  auto column = enc::DictColumn::Encode(values).value();
  EXPECT_EQ(SumColumn(*column), expected.sum);
  EXPECT_EQ(MinColumn(*column), expected.min);
  EXPECT_EQ(MaxColumn(*column), expected.max);
}

TEST_P(AggregateTest, GenericPath) {
  const auto values = MakeValues(GetParam(), 3000, 3);
  const Expected expected = Reference(values);
  auto column = enc::DeltaColumn::Encode(values).value();
  EXPECT_EQ(SumColumn(*column), expected.sum);
  EXPECT_EQ(MinColumn(*column), expected.min);
  EXPECT_EQ(MaxColumn(*column), expected.max);
}

INSTANTIATE_TEST_SUITE_P(Distributions, AggregateTest,
                         ::testing::Values(Dist::kConstant,
                                           Dist::kSmallRange,
                                           Dist::kNegative, Dist::kLowCard,
                                           Dist::kSorted, Dist::kExtremes),
                         [](const auto& param_info) {
                           return test::DistName(param_info.param);
                         });

TEST(AggregateTest, EmptyColumn) {
  auto column = enc::ForColumn::Encode(std::span<const int64_t>{}).value();
  EXPECT_EQ(SumColumn(*column), 0);
  EXPECT_FALSE(MinColumn(*column).has_value());
  EXPECT_FALSE(MaxColumn(*column).has_value());
}

TEST(AggregateTest, WorksOnDiffEncodedColumns) {
  Rng rng(4);
  const size_t n = 5000;
  std::vector<int64_t> ship(n);
  std::vector<int64_t> receipt(n);
  for (size_t i = 0; i < n; ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
  }
  const Expected expected = Reference(receipt);
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Date("ship", ship)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Date("receipt", receipt)).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan).value();
  EXPECT_EQ(SumColumn(compressed.block(0).column(1)), expected.sum);
  EXPECT_EQ(MinColumn(compressed.block(0).column(1)), expected.min);
  EXPECT_EQ(MaxColumn(compressed.block(0).column(1)), expected.max);
}

// ---- Parallel compression --------------------------------------------------

Table MakeWideTable(size_t rows) {
  Rng rng(9);
  std::vector<int64_t> a(rows);
  std::vector<int64_t> b(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = rng.Uniform(0, 100000);
    b[i] = a[i] + rng.Uniform(0, 100);
  }
  Table table;
  EXPECT_TRUE(table.AddColumn(Column::Int64("a", std::move(a))).ok());
  EXPECT_TRUE(table.AddColumn(Column::Int64("b", std::move(b))).ok());
  return table;
}

TEST(ParallelCompressionTest, IdenticalToSerial) {
  const Table table = MakeWideTable(10000);
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.block_rows = 1000;  // 10 blocks.
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;

  auto serial = CorraCompressor::Compress(table, plan).value();
  plan.num_threads = 4;
  auto parallel = CorraCompressor::Compress(table, plan).value();

  ASSERT_EQ(serial.num_blocks(), parallel.num_blocks());
  for (size_t b = 0; b < serial.num_blocks(); ++b) {
    // Byte-identical blocks: parallelism must not change the output.
    EXPECT_EQ(serial.block(b).Serialize(), parallel.block(b).Serialize())
        << "block " << b;
  }
}

TEST(ParallelCompressionTest, MoreThreadsThanBlocks) {
  const Table table = MakeWideTable(500);
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.block_rows = 200;  // 3 blocks.
  plan.num_threads = 16;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(compressed.value().num_blocks(), 3u);
  EXPECT_EQ(compressed.value().DecodeColumn(0),
            std::vector<int64_t>(table.column(0).values().begin(),
                                 table.column(0).values().end()));
}

TEST(ParallelCompressionTest, ErrorInOneBlockPropagates) {
  // A multi-ref plan whose formulas only fit the first blocks: the rows
  // of the last block break the formula, so its encode must fail and the
  // failure must surface from the parallel path.
  const size_t rows = 3000;
  std::vector<int64_t> a(rows);
  std::vector<int64_t> total(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = static_cast<int64_t>(i % 100);
    total[i] = i < 2000 ? a[i] : a[i] + 12345;  // Last block: no match.
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("a", std::move(a))).ok());
  ASSERT_TRUE(
      table.AddColumn(Column::Int64("total", std::move(total))).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.block_rows = 1000;
  plan.num_threads = 3;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kMultiRef;
  plan.columns[1].formulas.groups = {{0}};
  plan.columns[1].formulas.formulas = {0b1};
  plan.columns[1].formulas.code_bits = 1;
  plan.columns[1].max_outlier_fraction = 0.01;
  auto compressed = CorraCompressor::Compress(table, plan);
  EXPECT_FALSE(compressed.ok());
  EXPECT_TRUE(compressed.status().IsInvalidArgument());
}

}  // namespace
}  // namespace corra::query
