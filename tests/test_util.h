// Shared helpers for Corra's test suite: deterministic value generators
// covering the distribution shapes the encodings care about, plus
// round-trip assertion helpers.

#ifndef CORRA_TESTS_TEST_UTIL_H_
#define CORRA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/random.h"
#include "encoding/encoded_column.h"
#include "storage/serde.h"

namespace corra::test {

/// Named value-distribution shapes for parameterized sweeps.
enum class Dist {
  kConstant,      // All values equal.
  kSmallRange,    // Uniform in [100, 131].
  kWideRange,     // Uniform in [-1e9, 1e9].
  kNegative,      // Uniform in [-5000, -4000].
  kLowCard,       // 10 distinct scattered values.
  kSorted,        // Strictly increasing with small steps.
  kRunHeavy,      // Long runs of repeated values.
  kExtremes,      // Mix including INT64_MIN / INT64_MAX magnitudes.
};

inline std::string DistName(Dist d) {
  switch (d) {
    case Dist::kConstant:
      return "Constant";
    case Dist::kSmallRange:
      return "SmallRange";
    case Dist::kWideRange:
      return "WideRange";
    case Dist::kNegative:
      return "Negative";
    case Dist::kLowCard:
      return "LowCard";
    case Dist::kSorted:
      return "Sorted";
    case Dist::kRunHeavy:
      return "RunHeavy";
    case Dist::kExtremes:
      return "Extremes";
  }
  return "Unknown";
}

inline std::vector<int64_t> MakeValues(Dist dist, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> values(n);
  switch (dist) {
    case Dist::kConstant:
      for (auto& v : values) {
        v = 777;
      }
      break;
    case Dist::kSmallRange:
      for (auto& v : values) {
        v = rng.Uniform(100, 131);
      }
      break;
    case Dist::kWideRange:
      for (auto& v : values) {
        v = rng.Uniform(-1000000000, 1000000000);
      }
      break;
    case Dist::kNegative:
      for (auto& v : values) {
        v = rng.Uniform(-5000, -4000);
      }
      break;
    case Dist::kLowCard: {
      static constexpr int64_t kPool[] = {-900, -1, 0,    3,     17,
                                          256,  999, 4096, 70000, 1 << 20};
      for (auto& v : values) {
        v = kPool[rng.Uniform(0, 9)];
      }
      break;
    }
    case Dist::kSorted: {
      int64_t acc = -100;
      for (auto& v : values) {
        acc += rng.Uniform(0, 5);
        v = acc;
      }
      break;
    }
    case Dist::kRunHeavy: {
      int64_t current = 0;
      size_t remaining = 0;
      for (auto& v : values) {
        if (remaining == 0) {
          current = rng.Uniform(-10, 10);
          remaining = static_cast<size_t>(rng.Uniform(1, 50));
        }
        v = current;
        --remaining;
      }
      break;
    }
    case Dist::kExtremes: {
      for (size_t i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0:
            values[i] = INT64_MAX - static_cast<int64_t>(rng.Uniform(0, 9));
            break;
          case 1:
            values[i] = INT64_MIN + static_cast<int64_t>(rng.Uniform(0, 9));
            break;
          default:
            values[i] = rng.Uniform(-3, 3);
        }
      }
      break;
    }
  }
  return values;
}

/// Asserts Get / DecodeAll / Gather all reproduce `expected`.
inline void ExpectColumnMatches(const enc::EncodedColumn& column,
                                const std::vector<int64_t>& expected) {
  ASSERT_EQ(column.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(column.Get(i), expected[i]) << "Get at row " << i;
  }
  std::vector<int64_t> decoded(expected.size());
  column.DecodeAll(decoded.data());
  ASSERT_EQ(decoded, expected) << "DecodeAll mismatch";
  // Gather on a strided subset.
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < expected.size(); i += 3) {
    rows.push_back(static_cast<uint32_t>(i));
  }
  std::vector<int64_t> gathered(rows.size());
  column.Gather(rows, gathered.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(gathered[i], expected[rows[i]]) << "Gather at " << rows[i];
  }
}

/// Serializes `column` and reads it back through the scheme dispatcher.
inline std::unique_ptr<enc::EncodedColumn> SerializeRoundTrip(
    const enc::EncodedColumn& column) {
  BufferWriter writer;
  column.Serialize(&writer);
  static thread_local std::vector<uint8_t> bytes;
  bytes = std::move(writer).Finish();
  BufferReader reader(bytes);
  auto result = DeserializeEncodedColumn(&reader);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) {
    return nullptr;
  }
  EXPECT_TRUE(reader.exhausted()) << "trailing bytes after deserialize";
  return std::move(result).value();
}

}  // namespace corra::test

#endif  // CORRA_TESTS_TEST_UTIL_H_
