// Shared helpers for Corra's test suite: deterministic value generators
// covering the distribution shapes the encodings care about, plus
// round-trip assertion helpers.

#ifndef CORRA_TESTS_TEST_UTIL_H_
#define CORRA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/random.h"
#include "encoding/encoded_column.h"
#include "storage/serde.h"
#include "storage/table.h"

namespace corra::test {

/// Named value-distribution shapes for parameterized sweeps.
enum class Dist {
  kConstant,      // All values equal.
  kSmallRange,    // Uniform in [100, 131].
  kWideRange,     // Uniform in [-1e9, 1e9].
  kNegative,      // Uniform in [-5000, -4000].
  kLowCard,       // 10 distinct scattered values.
  kSorted,        // Strictly increasing with small steps.
  kRunHeavy,      // Long runs of repeated values.
  kExtremes,      // Mix including INT64_MIN / INT64_MAX magnitudes.
};

inline std::string DistName(Dist d) {
  switch (d) {
    case Dist::kConstant:
      return "Constant";
    case Dist::kSmallRange:
      return "SmallRange";
    case Dist::kWideRange:
      return "WideRange";
    case Dist::kNegative:
      return "Negative";
    case Dist::kLowCard:
      return "LowCard";
    case Dist::kSorted:
      return "Sorted";
    case Dist::kRunHeavy:
      return "RunHeavy";
    case Dist::kExtremes:
      return "Extremes";
  }
  return "Unknown";
}

inline std::vector<int64_t> MakeValues(Dist dist, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> values(n);
  switch (dist) {
    case Dist::kConstant:
      for (auto& v : values) {
        v = 777;
      }
      break;
    case Dist::kSmallRange:
      for (auto& v : values) {
        v = rng.Uniform(100, 131);
      }
      break;
    case Dist::kWideRange:
      for (auto& v : values) {
        v = rng.Uniform(-1000000000, 1000000000);
      }
      break;
    case Dist::kNegative:
      for (auto& v : values) {
        v = rng.Uniform(-5000, -4000);
      }
      break;
    case Dist::kLowCard: {
      static constexpr int64_t kPool[] = {-900, -1, 0,    3,     17,
                                          256,  999, 4096, 70000, 1 << 20};
      for (auto& v : values) {
        v = kPool[rng.Uniform(0, 9)];
      }
      break;
    }
    case Dist::kSorted: {
      int64_t acc = -100;
      for (auto& v : values) {
        acc += rng.Uniform(0, 5);
        v = acc;
      }
      break;
    }
    case Dist::kRunHeavy: {
      int64_t current = 0;
      size_t remaining = 0;
      for (auto& v : values) {
        if (remaining == 0) {
          current = rng.Uniform(-10, 10);
          remaining = static_cast<size_t>(rng.Uniform(1, 50));
        }
        v = current;
        --remaining;
      }
      break;
    }
    case Dist::kExtremes: {
      for (size_t i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0:
            values[i] = INT64_MAX - static_cast<int64_t>(rng.Uniform(0, 9));
            break;
          case 1:
            values[i] = INT64_MIN + static_cast<int64_t>(rng.Uniform(0, 9));
            break;
          default:
            values[i] = rng.Uniform(-3, 3);
        }
      }
      break;
    }
  }
  return values;
}

/// Asserts Get / DecodeAll / Gather all reproduce `expected`.
inline void ExpectColumnMatches(const enc::EncodedColumn& column,
                                const std::vector<int64_t>& expected) {
  ASSERT_EQ(column.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(column.Get(i), expected[i]) << "Get at row " << i;
  }
  std::vector<int64_t> decoded(expected.size());
  column.DecodeAll(decoded.data());
  ASSERT_EQ(decoded, expected) << "DecodeAll mismatch";
  // Gather on a strided subset.
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < expected.size(); i += 3) {
    rows.push_back(static_cast<uint32_t>(i));
  }
  std::vector<int64_t> gathered(rows.size());
  column.Gather(rows, gathered.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(gathered[i], expected[rows[i]]) << "Gather at " << rows[i];
  }
}

/// Writes `table` in the legacy CORF v2 layout (directory without the
/// v3 per-block column stats section) — the backward-compatibility
/// fixture for readers, which must treat such files as stats-less.
inline void WriteCompressedTableV2(const CompressedTable& table,
                                   const std::string& path) {
  auto fnv1a64 = [](const std::vector<uint8_t>& bytes) {
    uint64_t hash = 0xcbf29ce484222325ull;
    for (uint8_t b : bytes) {
      hash ^= b;
      hash *= 0x100000001b3ull;
    }
    return hash;
  };
  std::vector<std::vector<uint8_t>> payloads;
  for (size_t b = 0; b < table.num_blocks(); ++b) {
    payloads.push_back(table.block(b).Serialize());
  }
  auto build_header = [&](const std::vector<uint64_t>& offsets) {
    BufferWriter writer;
    writer.Write<uint32_t>(0x46524F43);  // "CORF"
    writer.Write<uint8_t>(2);            // Version 2: no stats section.
    writer.Write<uint32_t>(static_cast<uint32_t>(table.schema().num_fields()));
    for (const Field& field : table.schema().fields()) {
      writer.WriteString(field.name);
      writer.Write<uint8_t>(static_cast<uint8_t>(field.type));
    }
    writer.Write<uint32_t>(static_cast<uint32_t>(payloads.size()));
    for (size_t b = 0; b < payloads.size(); ++b) {
      writer.Write<uint64_t>(offsets[b]);
      writer.Write<uint64_t>(payloads[b].size());
      writer.Write<uint64_t>(table.block(b).rows());
      writer.Write<uint64_t>(fnv1a64(payloads[b]));
    }
    return std::move(writer).Finish();
  };
  std::vector<uint64_t> offsets(payloads.size(), 0);
  uint64_t cursor = build_header(offsets).size();
  for (size_t b = 0; b < payloads.size(); ++b) {
    offsets[b] = cursor;
    cursor += payloads[b].size();
  }
  const std::vector<uint8_t> header = build_header(offsets);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(header.data(), 1, header.size(), file),
            header.size());
  for (const auto& payload : payloads) {
    ASSERT_EQ(std::fwrite(payload.data(), 1, payload.size(), file),
              payload.size());
  }
  ASSERT_EQ(std::fclose(file), 0);
}

/// Serializes `column` and reads it back through the scheme dispatcher.
inline std::unique_ptr<enc::EncodedColumn> SerializeRoundTrip(
    const enc::EncodedColumn& column) {
  BufferWriter writer;
  column.Serialize(&writer);
  static thread_local std::vector<uint8_t> bytes;
  bytes = std::move(writer).Finish();
  BufferReader reader(bytes);
  auto result = DeserializeEncodedColumn(&reader);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) {
    return nullptr;
  }
  EXPECT_TRUE(reader.exhausted()) << "trailing bytes after deserialize";
  return std::move(result).value();
}

}  // namespace corra::test

#endif  // CORRA_TESTS_TEST_UTIL_H_
