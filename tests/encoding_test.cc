// Round-trip and serialization tests for the O(1)-access vertical schemes:
// Plain, BitPack, FOR, Dict.

#include <gtest/gtest.h>

#include <limits>

#include "common/bit_util.h"
#include "encoding/bitpack.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"
#include "test_util.h"

namespace corra::enc {
namespace {

using test::Dist;
using test::ExpectColumnMatches;
using test::MakeValues;
using test::SerializeRoundTrip;

class VerticalSchemeTest
    : public ::testing::TestWithParam<std::tuple<Dist, size_t>> {
 protected:
  std::vector<int64_t> Values() const {
    const auto [dist, n] = GetParam();
    return MakeValues(dist, n, 0xC0FFEE);
  }
};

TEST_P(VerticalSchemeTest, PlainRoundTrip) {
  const auto values = Values();
  auto column = PlainColumn::Encode(values);
  EXPECT_EQ(column->scheme(), Scheme::kPlain);
  ExpectColumnMatches(*column, values);
  auto reloaded = SerializeRoundTrip(*column);
  ASSERT_NE(reloaded, nullptr);
  ExpectColumnMatches(*reloaded, values);
}

TEST_P(VerticalSchemeTest, ForRoundTrip) {
  const auto values = Values();
  auto result = ForColumn::Encode(values);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& column = *result.value();
  EXPECT_EQ(column.scheme(), Scheme::kFor);
  ExpectColumnMatches(column, values);
  auto reloaded = SerializeRoundTrip(column);
  ASSERT_NE(reloaded, nullptr);
  ExpectColumnMatches(*reloaded, values);
}

TEST_P(VerticalSchemeTest, DictRoundTrip) {
  const auto values = Values();
  auto result = DictColumn::Encode(values);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& column = *result.value();
  EXPECT_EQ(column.scheme(), Scheme::kDict);
  ExpectColumnMatches(column, values);
  auto reloaded = SerializeRoundTrip(column);
  ASSERT_NE(reloaded, nullptr);
  ExpectColumnMatches(*reloaded, values);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, VerticalSchemeTest,
    ::testing::Combine(
        ::testing::Values(Dist::kConstant, Dist::kSmallRange,
                          Dist::kWideRange, Dist::kNegative, Dist::kLowCard,
                          Dist::kSorted, Dist::kRunHeavy, Dist::kExtremes),
        ::testing::Values(size_t{1}, size_t{100}, size_t{4096})),
    [](const auto& param_info) {
      return test::DistName(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(BitPackTest, RoundTripNonNegative) {
  const auto values = MakeValues(Dist::kSmallRange, 1000, 5);
  auto result = BitPackColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  ExpectColumnMatches(*result.value(), values);
  auto reloaded = SerializeRoundTrip(*result.value());
  ASSERT_NE(reloaded, nullptr);
  ExpectColumnMatches(*reloaded, values);
}

TEST(BitPackTest, RejectsNegative) {
  const std::vector<int64_t> values = {1, -2, 3};
  auto result = BitPackColumn::Encode(values);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_EQ(BitPackColumn::EstimateSizeBytes(values), SIZE_MAX);
}

TEST(BitPackTest, WidthMatchesMaxValue) {
  const std::vector<int64_t> values = {0, 1, 255};
  auto result = BitPackColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->bit_width(), 8);
  EXPECT_EQ(result.value()->SizeBytes(), 3u);  // ceil(3*8/8)
}

TEST(BitPackTest, AllZerosUseZeroBits) {
  const std::vector<int64_t> values(100, 0);
  auto result = BitPackColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->bit_width(), 0);
  EXPECT_EQ(result.value()->SizeBytes(), 0u);
  ExpectColumnMatches(*result.value(), values);
}

TEST(ForTest, BaseIsMin) {
  const std::vector<int64_t> values = {1000, 1003, 1001};
  auto result = ForColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->base(), 1000);
  EXPECT_EQ(result.value()->bit_width(), 2);  // range 3 -> 2 bits
}

TEST(ForTest, ConstantColumnCollapsesToBase) {
  const std::vector<int64_t> values(1000, -12345);
  auto result = ForColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->bit_width(), 0);
  EXPECT_EQ(result.value()->SizeBytes(), sizeof(int64_t));
  ExpectColumnMatches(*result.value(), values);
}

TEST(ForTest, TpchDateWidthIs12Bits) {
  // ~2557 distinct days need 12 bits: the Table 2 vertical size of the
  // lineitem date columns.
  std::vector<int64_t> values;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    values.push_back(8035 + rng.Uniform(0, 2556));
  }
  values.push_back(8035);         // Force full range.
  values.push_back(8035 + 2556);
  auto result = ForColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->bit_width(), 12);
}

TEST(ForTest, EstimateMatchesActual) {
  for (Dist d : {Dist::kSmallRange, Dist::kWideRange, Dist::kNegative}) {
    const auto values = MakeValues(d, 2048, 11);
    auto result = ForColumn::Encode(values);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ForColumn::EstimateSizeBytes(values),
              result.value()->SizeBytes());
  }
}

TEST(DictTest, DictionaryIsSortedUnique) {
  const std::vector<int64_t> values = {5, 3, 5, 9, 3, 3};
  auto result = DictColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  const auto dict = result.value()->dictionary();
  EXPECT_EQ(std::vector<int64_t>(dict.begin(), dict.end()),
            (std::vector<int64_t>{3, 5, 9}));
  EXPECT_EQ(result.value()->bit_width(), 2);
}

TEST(DictTest, CodesIndexDictionary) {
  const std::vector<int64_t> values = {50, 10, 30, 10};
  auto result = DictColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  const auto& col = *result.value();
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(col.dictionary()[col.GetCode(i)], values[i]);
  }
}

TEST(DictTest, EstimateMatchesActual) {
  const auto values = MakeValues(Dist::kLowCard, 4096, 13);
  auto result = DictColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(DictColumn::EstimateSizeBytes(values),
            result.value()->SizeBytes());
}

TEST(DictTest, CorruptCodeRejectedOnDeserialize) {
  const std::vector<int64_t> values = {1, 2, 3, 1};
  auto result = DictColumn::Encode(values);
  ASSERT_TRUE(result.ok());
  BufferWriter writer;
  result.value()->Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  // The dictionary holds 3 entries (codes 0..2, 2 bits), so the packed
  // payload is a single data byte followed by kDecodePadBytes of load
  // slack. Overwrite that data byte with all-ones codes (3 = out of
  // range).
  bytes[bytes.size() - bit_util::kDecodePadBytes - 1] = 0xFF;
  BufferReader reader(bytes);
  auto reloaded = DeserializeEncodedColumn(&reader);
  EXPECT_FALSE(reloaded.ok());
}

TEST(PlainTest, ValuesSpanAliasesStorage) {
  const std::vector<int64_t> values = {9, 8, 7};
  auto column = PlainColumn::Encode(values);
  EXPECT_EQ(std::vector<int64_t>(column->values().begin(),
                                 column->values().end()),
            values);
}

TEST(EncodingTest, SchemeToStringCoversVerticalSchemes) {
  EXPECT_EQ(SchemeToString(Scheme::kPlain), "Plain");
  EXPECT_EQ(SchemeToString(Scheme::kBitPack), "BitPack");
  EXPECT_EQ(SchemeToString(Scheme::kFor), "FOR");
  EXPECT_EQ(SchemeToString(Scheme::kDict), "Dict");
  EXPECT_EQ(SchemeToString(Scheme::kDelta), "Delta");
  EXPECT_EQ(SchemeToString(Scheme::kRle), "RLE");
}

TEST(EncodingTest, HorizontalPredicate) {
  EXPECT_FALSE(IsHorizontal(Scheme::kFor));
  EXPECT_TRUE(IsHorizontal(Scheme::kDiff));
  EXPECT_TRUE(IsHorizontal(Scheme::kHierarchical));
  EXPECT_TRUE(IsHorizontal(Scheme::kMultiRef));
  EXPECT_TRUE(IsHorizontal(Scheme::kC3Dfor));
}

TEST(EncodingTest, ConstantTimePredicate) {
  EXPECT_TRUE(HasConstantTimeAccess(Scheme::kFor));
  EXPECT_TRUE(HasConstantTimeAccess(Scheme::kDict));
  EXPECT_FALSE(HasConstantTimeAccess(Scheme::kDelta));
  EXPECT_FALSE(HasConstantTimeAccess(Scheme::kRle));
}

TEST(EncodingTest, TruncatedStreamsAreCorruption) {
  const auto values = MakeValues(Dist::kSmallRange, 100, 21);
  for (int scheme = 0; scheme < 2; ++scheme) {
    BufferWriter writer;
    if (scheme == 0) {
      auto col = ForColumn::Encode(values);
      ASSERT_TRUE(col.ok());
      col.value()->Serialize(&writer);
    } else {
      auto col = DictColumn::Encode(values);
      ASSERT_TRUE(col.ok());
      col.value()->Serialize(&writer);
    }
    auto bytes = std::move(writer).Finish();
    for (size_t cut : {size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
      std::vector<uint8_t> truncated(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
      BufferReader reader(truncated);
      auto result = DeserializeEncodedColumn(&reader);
      EXPECT_FALSE(result.ok()) << "cut at " << cut;
    }
  }
}

}  // namespace
}  // namespace corra::enc
