// The reimplemented C3 schemes (Glas et al.) compared in Table 3.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/c3/dfor.h"
#include "core/c3/numerical.h"
#include "core/c3/one_to_one.h"
#include "core/diff_encoding.h"
#include "encoding/for.h"
#include "test_util.h"

namespace corra::c3 {
namespace {

struct Pair {
  std::vector<int64_t> reference;
  std::vector<int64_t> target;
};

Pair BoundedPair(size_t n, uint64_t seed) {
  Rng rng(seed);
  Pair p;
  p.reference.resize(n);
  p.target.resize(n);
  for (size_t i = 0; i < n; ++i) {
    p.reference[i] = rng.Uniform(0, 1000000);
    p.target[i] = p.reference[i] + rng.Uniform(-100, 100);
  }
  return p;
}

template <typename T>
void BindAndCheck(T& column, const enc::EncodedColumn& ref,
                  const std::vector<int64_t>& expected) {
  const enc::EncodedColumn* refs[] = {&ref};
  ASSERT_TRUE(column.BindReferences(refs).ok());
  test::ExpectColumnMatches(column, expected);
}

// ---- DFOR ----------------------------------------------------------------

TEST(DforTest, RoundTrip) {
  const Pair p = BoundedPair(5000, 1);
  auto ref = enc::ForColumn::Encode(p.reference);
  ASSERT_TRUE(ref.ok());
  auto col = DforColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(col.ok()) << col.status().ToString();
  BindAndCheck(*col.value(), *ref.value(), p.target);
}

TEST(DforTest, FrameBoundaries) {
  // Sizes around multiples of the frame size exercise the directory.
  for (size_t n : {size_t{1}, DforColumn::kFrameSize - 1,
                   DforColumn::kFrameSize, DforColumn::kFrameSize + 1,
                   3 * DforColumn::kFrameSize + 17}) {
    const Pair p = BoundedPair(n, 2 + n);
    auto ref = enc::ForColumn::Encode(p.reference);
    ASSERT_TRUE(ref.ok());
    auto col = DforColumn::Encode(p.target, p.reference, 0);
    ASSERT_TRUE(col.ok());
    BindAndCheck(*col.value(), *ref.value(), p.target);
  }
}

TEST(DforTest, LocalSpikesCostOnlyTheirFrame) {
  // One frame with huge diffs must not widen the others: DFOR's frame-wise
  // width beats a single global window here.
  Pair p = BoundedPair(10 * DforColumn::kFrameSize, 3);
  for (size_t i = 0; i < DforColumn::kFrameSize; ++i) {
    p.target[i] = p.reference[i] + 100000000 + static_cast<int64_t>(i);
  }
  auto dfor = DforColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(dfor.ok());
  auto global = DiffEncodedColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(global.ok());
  EXPECT_LT(dfor.value()->SizeBytes(), global.value()->SizeBytes());
}

TEST(DforTest, EstimateMatchesActual) {
  const Pair p = BoundedPair(4096, 4);
  auto col = DforColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(DforColumn::EstimateSizeBytes(p.target, p.reference),
            col.value()->SizeBytes());
}

TEST(DforTest, SerializeRoundTrip) {
  const Pair p = BoundedPair(3000, 5);
  auto ref = enc::ForColumn::Encode(p.reference);
  ASSERT_TRUE(ref.ok());
  auto col = DforColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(col.ok());
  auto reloaded = test::SerializeRoundTrip(*col.value());
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->scheme(), enc::Scheme::kC3Dfor);
  const enc::EncodedColumn* refs[] = {ref.value().get()};
  ASSERT_TRUE(reloaded->BindReferences(refs).ok());
  test::ExpectColumnMatches(*reloaded, p.target);
}

// ---- Numerical -----------------------------------------------------------

TEST(NumericalTest, RoundTripSlopeOne) {
  const Pair p = BoundedPair(5000, 6);
  auto ref = enc::ForColumn::Encode(p.reference);
  ASSERT_TRUE(ref.ok());
  auto col = NumericalColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(col.ok());
  EXPECT_NEAR(col.value()->slope(), 1.0, 0.01);
  BindAndCheck(*col.value(), *ref.value(), p.target);
}

TEST(NumericalTest, AffineCorrelationCollapsesResiduals) {
  // target = 3 * ref + noise: the affine fit shrinks residuals to the
  // noise band; a plain diff would carry the whole 2x slope term.
  Rng rng(7);
  Pair p;
  p.reference.resize(8192);
  p.target.resize(8192);
  for (size_t i = 0; i < p.reference.size(); ++i) {
    p.reference[i] = rng.Uniform(0, 1000000);
    p.target[i] = 3 * p.reference[i] + rng.Uniform(-50, 50);
  }
  auto numerical = NumericalColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(numerical.ok());
  EXPECT_NEAR(numerical.value()->slope(), 3.0, 0.01);
  auto diff = DiffEncodedColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(numerical.value()->SizeBytes(), diff.value()->SizeBytes() / 2);

  auto ref = enc::ForColumn::Encode(p.reference);
  ASSERT_TRUE(ref.ok());
  BindAndCheck(*numerical.value(), *ref.value(), p.target);
}

TEST(NumericalTest, ConstantReferenceFallsBackToSlopeOne) {
  const std::vector<int64_t> reference(100, 5);
  std::vector<int64_t> target(100);
  Rng rng(8);
  for (auto& t : target) {
    t = rng.Uniform(0, 50);
  }
  auto col = NumericalColumn::Encode(target, reference, 0);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value()->slope(), 1.0);
  auto ref = enc::ForColumn::Encode(reference);
  ASSERT_TRUE(ref.ok());
  BindAndCheck(*col.value(), *ref.value(), target);
}

TEST(NumericalTest, SerializeRoundTripPreservesSlopeBits) {
  const Pair p = BoundedPair(2000, 9);
  auto ref = enc::ForColumn::Encode(p.reference);
  ASSERT_TRUE(ref.ok());
  auto col = NumericalColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(col.ok());
  auto reloaded = test::SerializeRoundTrip(*col.value());
  ASSERT_NE(reloaded, nullptr);
  const enc::EncodedColumn* refs[] = {ref.value().get()};
  ASSERT_TRUE(reloaded->BindReferences(refs).ok());
  // Bit-exact reconstruction despite the double slope: the slope's bit
  // pattern is serialized verbatim.
  test::ExpectColumnMatches(*reloaded, p.target);
}

// ---- 1-to-1 --------------------------------------------------------------

TEST(OneToOneTest, PerfectFunctionalDependency) {
  Rng rng(10);
  std::vector<int64_t> reference(5000);
  std::vector<int64_t> target(5000);
  for (size_t i = 0; i < reference.size(); ++i) {
    reference[i] = rng.Uniform(0, 199);
    target[i] = reference[i] * 31 + 7;
  }
  auto col = OneToOneColumn::Encode(target, reference, 0);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value()->outliers().size(), 0u);
  EXPECT_EQ(col.value()->map_size(), 200u);
  // Zero bits per row: the whole column is the map.
  EXPECT_LE(col.value()->SizeBytes(), 200u * 16);
  auto ref = enc::ForColumn::Encode(reference);
  ASSERT_TRUE(ref.ok());
  BindAndCheck(*col.value(), *ref.value(), target);
}

TEST(OneToOneTest, NearFunctionalDependencyUsesOutliers) {
  Rng rng(11);
  std::vector<int64_t> reference(5000);
  std::vector<int64_t> target(5000);
  for (size_t i = 0; i < reference.size(); ++i) {
    reference[i] = rng.Uniform(0, 99);
    target[i] = reference[i] * 10;
    if (rng.Bernoulli(0.01)) {
      target[i] += rng.Uniform(1, 5);  // Violation.
    }
  }
  auto col = OneToOneColumn::Encode(target, reference, 0, 0.05);
  ASSERT_TRUE(col.ok());
  EXPECT_GT(col.value()->outliers().size(), 0u);
  auto ref = enc::ForColumn::Encode(reference);
  ASSERT_TRUE(ref.ok());
  BindAndCheck(*col.value(), *ref.value(), target);
}

TEST(OneToOneTest, RejectsNonFunctionalPairs) {
  // Low-cardinality reference with many distinct targets per value: far
  // from a functional dependency.
  Rng rng(12);
  std::vector<int64_t> reference(2000);
  std::vector<int64_t> target(2000);
  for (size_t i = 0; i < reference.size(); ++i) {
    reference[i] = rng.Uniform(0, 19);
    target[i] = rng.Uniform(0, 1000000);
  }
  auto col = OneToOneColumn::Encode(target, reference, 0, 0.05);
  EXPECT_FALSE(col.ok());
  EXPECT_EQ(OneToOneColumn::EstimateSizeBytes(target, reference, 0.05),
            SIZE_MAX);
}

TEST(OneToOneTest, DominantValueWinsPerReference) {
  // ref 0 maps to 7 three times and 9 once: 7 is the map entry, the 9-row
  // becomes an outlier.
  const std::vector<int64_t> reference = {0, 0, 0, 0};
  const std::vector<int64_t> target = {7, 7, 9, 7};
  auto col = OneToOneColumn::Encode(target, reference, 0, 0.5);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value()->outliers().size(), 1u);
  auto ref = enc::ForColumn::Encode(reference);
  ASSERT_TRUE(ref.ok());
  BindAndCheck(*col.value(), *ref.value(), target);
}

TEST(OneToOneTest, SerializeRoundTrip) {
  Rng rng(13);
  std::vector<int64_t> reference(1000);
  std::vector<int64_t> target(1000);
  for (size_t i = 0; i < reference.size(); ++i) {
    reference[i] = rng.Uniform(0, 49);
    target[i] = reference[i] + 1000;
  }
  auto ref = enc::ForColumn::Encode(reference);
  ASSERT_TRUE(ref.ok());
  auto col = OneToOneColumn::Encode(target, reference, 0);
  ASSERT_TRUE(col.ok());
  auto reloaded = test::SerializeRoundTrip(*col.value());
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->scheme(), enc::Scheme::kC3OneToOne);
  const enc::EncodedColumn* refs[] = {ref.value().get()};
  ASSERT_TRUE(reloaded->BindReferences(refs).ok());
  test::ExpectColumnMatches(*reloaded, target);
}

}  // namespace
}  // namespace corra::c3
