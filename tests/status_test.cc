#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace corra {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllCategories) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(StatusTest, IOErrorAndCorruptionAreDistinct) {
  // Two failure taxonomies: the medium failed (retryable) vs the bytes
  // are damaged (never retryable). Paths branch on the distinction.
  const Status io = Status::IOError("pread failed");
  EXPECT_TRUE(io.IsIOError());
  EXPECT_FALSE(io.IsCorruption());
  const Status corrupt = Status::Corruption("checksum mismatch");
  EXPECT_FALSE(corrupt.IsIOError());
  EXPECT_TRUE(corrupt.IsCorruption());
}

TEST(StatusTest, CategoriesAreDisjoint) {
  Status s = Status::Corruption("x");
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsOutOfRange());
  EXPECT_FALSE(s.IsNotImplemented());
  EXPECT_FALSE(s.IsInternal());
  EXPECT_FALSE(s.IsNotFound());
  EXPECT_FALSE(s.IsIOError());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("broken");
  Status copy = s;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "broken");
  EXPECT_TRUE(s.IsCorruption());
}

TEST(StatusTest, MovePreservesState) {
  Status s = Status::NotFound("gone");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsNotFound());
  EXPECT_EQ(moved.message(), "gone");
}

TEST(StatusTest, StatusCodeToStringCoversAll) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "Invalid argument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "Out of range");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "Not implemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "Not found");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "I/O error");
}

Status FailingOperation() { return Status::OutOfRange("position 9"); }

Status PropagatingOperation() {
  CORRA_RETURN_NOT_OK(FailingOperation());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status s = PropagatingOperation();
  EXPECT_TRUE(s.IsOutOfRange());
  EXPECT_EQ(s.message(), "position 9");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.ValueOr(0), 7);
  EXPECT_EQ(err.ValueOr(0), 0);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return x;
}

Result<int> Doubled(int x) {
  CORRA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Doubled(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultDeathTest, AccessingErrorValueAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

}  // namespace
}  // namespace corra
