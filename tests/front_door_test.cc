// Serving front door: cross-request block coalescing stays
// byte-identical to independent execution across every encoding scheme,
// admission control fast-rejects over-limit and expired requests, and
// phase attribution never double-charges a piggybacked request.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/corra_compressor.h"
#include "serve/block_cache.h"
#include "serve/scan_service.h"
#include "serve/table_reader.h"
#include "storage/file_io.h"

namespace corra::serve {
namespace {

// A 12-column table where every column is pinned (auto_vertical off) to
// a distinct scheme, covering all 12: the coalescer's merged gather and
// scatter must reproduce each scheme's independent decode exactly.
class FrontDoorTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 8000;
  static constexpr size_t kBlockRows = 1000;
  static constexpr size_t kColumns = 12;

  void SetUp() override {
#ifdef CORRA_OBS_OFF
    // The counter/span assertions below (coalesced_requests, rejected,
    // BlockSpan::coalesced) need live telemetry.
    GTEST_SKIP() << "observability compiled out (CORRA_OBS_OFF)";
#else
    obs::SetEnabled(true);
#endif
    path_ = ::testing::TempDir() + "corra_front_door_test.corf";
    Rng rng(77);
    raw_.assign(kColumns, std::vector<int64_t>(kRows));
    for (size_t i = 0; i < kRows; ++i) {
      const int64_t ship = rng.Uniform(8035, 10591);
      const int64_t city = rng.Uniform(0, 49);
      const int64_t a = rng.Uniform(100, 999);
      raw_[0][i] = ship;                             // kFor
      raw_[1][i] = ship + rng.Uniform(1, 30);        // kDiff (ref 0)
      raw_[2][i] = city;                             // kDict
      raw_[3][i] = 10000 + city * 37 + rng.Uniform(0, 10);  // kHierarchical
      raw_[4][i] = a;                                // kPlain
      raw_[5][i] = 250;                              // kRle
      raw_[6][i] = rng.Bernoulli(0.5) ? a : a + 250;  // kMultiRef
      raw_[7][i] = static_cast<int64_t>(i) * 3 + rng.Uniform(0, 2);  // kDelta
      raw_[8][i] = rng.Uniform(100, 25000);          // kBitPack
      raw_[9][i] = city * 1000 + 17;                 // kC3OneToOne (ref 2)
      raw_[10][i] = ship + rng.Uniform(1, 30);       // kC3Dfor (ref 0)
      raw_[11][i] = ship + rng.Uniform(1, 30);       // kC3Numerical (ref 0)
    }

    Table table;
    const char* names[kColumns] = {"ship", "receipt", "city",  "zip",
                                   "a",    "b",       "total", "seq",
                                   "fare", "cityref", "recv2", "recv3"};
    for (size_t c = 0; c < kColumns; ++c) {
      ASSERT_TRUE(table.AddColumn(Column::Int64(names[c], raw_[c])).ok());
    }

    CompressionPlan plan = CompressionPlan::AllAuto(kColumns);
    plan.block_rows = kBlockRows;
    const enc::Scheme schemes[kColumns] = {
        enc::Scheme::kFor,          enc::Scheme::kDiff,
        enc::Scheme::kDict,         enc::Scheme::kHierarchical,
        enc::Scheme::kPlain,        enc::Scheme::kRle,
        enc::Scheme::kMultiRef,     enc::Scheme::kDelta,
        enc::Scheme::kBitPack,      enc::Scheme::kC3OneToOne,
        enc::Scheme::kC3Dfor,       enc::Scheme::kC3Numerical};
    for (size_t c = 0; c < kColumns; ++c) {
      plan.columns[c].auto_vertical = false;
      plan.columns[c].scheme = schemes[c];
    }
    plan.columns[1].reference = 0;
    plan.columns[3].reference = 2;
    plan.columns[6].formulas.groups = {{4}, {5}};
    plan.columns[6].formulas.formulas = {0b01, 0b11};
    plan.columns[6].formulas.code_bits = 1;
    plan.columns[9].reference = 2;
    plan.columns[10].reference = 0;
    plan.columns[11].reference = 0;

    auto compressed = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
    ASSERT_EQ(compressed.value().num_blocks(), kRows / kBlockRows);
    for (size_t c = 0; c < kColumns; ++c) {
      ASSERT_EQ(compressed.value().block(0).column(c).scheme(), schemes[c])
          << "column " << c;
    }
    ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Random sorted-unique global positions; roughly `per_block` rows per
  // covered block so selections overlap across concurrent callers.
  std::vector<uint64_t> RandomPositions(Rng& rng, size_t count) const {
    std::vector<uint64_t> rows(count);
    for (auto& row : rows) {
      row = static_cast<uint64_t>(rng.Uniform(0, kRows - 1));
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    return rows;
  }

  std::string path_;
  std::vector<std::vector<int64_t>> raw_;
};

// Many concurrent gathers with overlapping row sets and mixed column
// subsets: every result must be byte-identical to the raw vectors, and
// coalescing must actually fire (batches with 2+ requests observed).
TEST_F(FrontDoorTest, ConcurrentGathersAreByteIdenticalUnderCoalescing) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ScanService service({.num_threads = 4, .registry = &registry});

  const obs::Counter& coalesced =
      registry.counter("serve.coalesced_requests");
  constexpr size_t kThreads = 8;
  constexpr size_t kMaxRounds = 50;
  std::atomic<size_t> failures{0};

  for (size_t round = 0; round < kMaxRounds; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, round] {
        Rng rng(1000 + round * kThreads + t);
        for (size_t iter = 0; iter < 10; ++iter) {
          const std::vector<uint64_t> rows = RandomPositions(rng, 600);
          // A different column subset per caller, always non-empty, so
          // merged batches carry heterogeneous column unions.
          std::vector<size_t> cols;
          for (size_t c = 0; c < kColumns; ++c) {
            if (rng.Bernoulli(0.4)) {
              cols.push_back(c);
            }
          }
          if (cols.empty()) {
            cols.push_back((t + iter) % kColumns);
          }
          auto result = service.Gather(*reader.value(), cols, rows);
          if (!result.ok()) {
            failures.fetch_add(1);
            return;
          }
          for (size_t c = 0; c < cols.size(); ++c) {
            for (size_t i = 0; i < rows.size(); ++i) {
              if (result.value()[c][i] != raw_[cols[c]][rows[i]]) {
                failures.fetch_add(1);
                return;
              }
            }
          }
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    ASSERT_EQ(failures.load(), 0u) << "mismatch or error in round " << round;
    if (coalesced.Value() > 0) {
      break;
    }
  }
  EXPECT_GT(coalesced.Value(), 0u)
      << "coalescing never fired across " << kMaxRounds << " rounds";
  EXPECT_GT(registry.counter("serve.coalesced_batches").Value(), 0u);
}

// The same workload with coalescing disabled must also be correct (the
// A/B lever the closed-loop bench flips), and must never batch.
TEST_F(FrontDoorTest, CoalescingDisabledStaysCorrectAndNeverBatches) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service(
      {.num_threads = 4, .registry = &registry, .coalescing = false});

  std::vector<std::thread> threads;
  std::atomic<size_t> failures{0};
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + t);
      for (size_t iter = 0; iter < 10; ++iter) {
        const std::vector<uint64_t> rows = RandomPositions(rng, 400);
        const std::vector<size_t> cols = {t % kColumns,
                                          (t + 5) % kColumns};
        auto result = service.Gather(*reader.value(), cols, rows);
        if (!result.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t c = 0; c < cols.size(); ++c) {
          for (size_t i = 0; i < rows.size(); ++i) {
            if (result.value()[c][i] != raw_[cols[c]][rows[i]]) {
              failures.fetch_add(1);
              return;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(registry.counter("serve.coalesced_requests").Value(), 0u);
  EXPECT_EQ(registry.counter("serve.coalesced_batches").Value(), 0u);
}

// Concurrent Execute requests (filter + projections) under coalescing:
// scan units share pins but never merge decodes; results must match the
// single-threaded inline service exactly.
TEST_F(FrontDoorTest, ConcurrentExecutesMatchInlineService) {
  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService pooled({.num_threads = 4});
  ScanService inline_service({.num_threads = 0});

  auto request_for = [](size_t t) {
    ScanRequest request;
    request.filter_column = 0;
    request.filter_lo = 8035 + static_cast<int64_t>(t) * 100;
    request.filter_hi = 9500 + static_cast<int64_t>(t) * 50;
    request.project_columns = {1, 6, 9};
    request.return_positions = true;
    return request;
  };

  std::vector<ScanResult> expected(8);
  for (size_t t = 0; t < 8; ++t) {
    auto result = inline_service.Execute(*reader.value(), request_for(t));
    ASSERT_TRUE(result.ok());
    expected[t] = std::move(result).value();
  }

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (size_t iter = 0; iter < 5; ++iter) {
        auto result = pooled.Execute(*reader.value(), request_for(t));
        if (!result.ok() ||
            result.value().positions != expected[t].positions ||
            result.value().columns != expected[t].columns ||
            result.value().rows_matched != expected[t].rows_matched) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0u);
}

// Admission control: with max_inflight_requests = 1 and many concurrent
// clients, over-limit arrivals are rejected fast with ResourceExhausted
// (never a wrong result), admitted ones still succeed, and the rejected
// counter proves the path fired.
TEST_F(FrontDoorTest, OverLimitRequestsAreFastRejected) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 2,
                       .registry = &registry,
                       .max_inflight_requests = 1});

  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> rejected_count{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900 + t);
      for (size_t iter = 0; iter < 20; ++iter) {
        const std::vector<uint64_t> rows = RandomPositions(rng, 200);
        const std::vector<size_t> cols = {2, 3};
        auto result = service.Gather(*reader.value(), cols, rows);
        if (result.ok()) {
          ok_count.fetch_add(1);
          for (size_t c = 0; c < cols.size(); ++c) {
            for (size_t i = 0; i < rows.size(); ++i) {
              if (result.value()[c][i] != raw_[cols[c]][rows[i]]) {
                failures.fetch_add(1);
                return;
              }
            }
          }
        } else if (result.status().IsResourceExhausted()) {
          rejected_count.fetch_add(1);
        } else {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);   // The admitted path still serves.
  EXPECT_GT(rejected_count.load(), 0u);  // 8 clients vs 1 slot must clash.
  EXPECT_EQ(registry.counter("serve.rejected").Value(),
            rejected_count.load());
  // Rejections released their slots: nothing left in flight.
  EXPECT_EQ(registry.gauge("serve.inflight_requests").Value(), 0);
}

// An already-expired deadline is rejected before any block is touched:
// no cache traffic, DeadlineExceeded out, deadline_missed counted.
TEST_F(FrontDoorTest, ExpiredDeadlineNeverReachesDecode) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 2, .registry = &registry});

  GatherOptions options;
  options.deadline_ns = obs::MonotonicNs() - 1;  // Already in the past.
  const std::vector<uint64_t> rows = {0, 1, kRows - 1};
  const std::vector<size_t> cols = {0, 7};
  auto gathered = service.Gather(*reader.value(), cols, rows, options);
  ASSERT_FALSE(gathered.ok());
  EXPECT_TRUE(gathered.status().IsDeadlineExceeded())
      << gathered.status().ToString();

  ScanRequest request;
  request.project_columns = {4};
  request.deadline_ns = obs::MonotonicNs() - 1;
  auto executed = service.Execute(*reader.value(), request);
  ASSERT_FALSE(executed.ok());
  EXPECT_TRUE(executed.status().IsDeadlineExceeded());

  EXPECT_EQ(registry.counter("serve.deadline_missed").Value(), 2u);
  // Neither request may have pinned, loaded, or decoded anything.
  const BlockCacheStats stats = cache->GetStats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(registry.gauge("serve.inflight_requests").Value(), 0);
}

// A generous deadline must not reject or alter results.
TEST_F(FrontDoorTest, FutureDeadlineIsHarmless) {
  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 2});

  GatherOptions options;
  options.deadline_ns = obs::MonotonicNs() + 60'000'000'000ull;  // +60 s.
  const std::vector<uint64_t> rows = {5, 1234, 4567, 7999};
  const std::vector<size_t> cols = {1, 6, 11};
  auto gathered = service.Gather(*reader.value(), cols, rows, options);
  ASSERT_TRUE(gathered.ok()) << gathered.status().ToString();
  for (size_t c = 0; c < cols.size(); ++c) {
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(gathered.value()[c][i], raw_[cols[c]][rows[i]]);
    }
  }
}

// Phase attribution under coalescing: a piggybacked gather's span is
// marked coalesced and carries only queue wait + scatter — the shared
// pin/fill/decode stay charged to the executing request, so summing
// phases across concurrent requests never double-counts the block work.
TEST_F(FrontDoorTest, PiggybackedGathersAreNotChargedForSharedWork) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  // One worker: while it executes a batch, concurrent submissions pile
  // into the next batch, so multi-unit batches form fast.
  ScanService service({.num_threads = 1, .registry = &registry});

  std::mutex mu;
  std::vector<obs::RequestTrace> coalesced_traces;
  constexpr size_t kMaxRounds = 200;
  for (size_t round = 0; round < kMaxRounds; ++round) {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < 4; ++t) {
      threads.emplace_back([&, t, round] {
        Rng rng(3000 + round * 4 + t);
        const std::vector<uint64_t> rows = RandomPositions(rng, 300);
        const std::vector<size_t> cols = {t % kColumns, 8};
        obs::RequestTrace trace;
        GatherOptions options;
        options.trace = &trace;
        auto result = service.Gather(*reader.value(), cols, rows, options);
        ASSERT_TRUE(result.ok());
        for (const obs::BlockSpan& span : trace.blocks) {
          if (span.coalesced) {
            std::lock_guard<std::mutex> lock(mu);
            coalesced_traces.push_back(trace);
            return;
          }
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    std::lock_guard<std::mutex> lock(mu);
    if (!coalesced_traces.empty()) {
      break;
    }
  }
  ASSERT_FALSE(coalesced_traces.empty())
      << "no piggybacked span observed in " << kMaxRounds << " rounds";
  for (const obs::RequestTrace& trace : coalesced_traces) {
    for (const obs::BlockSpan& span : trace.blocks) {
      if (!span.coalesced) {
        continue;
      }
      // Shared work is the leader's: a follower pays no pin, no fill,
      // and no decode — only its wait and its own scatter.
      EXPECT_EQ(span.pin_ns, 0u);
      EXPECT_EQ(span.fill_ns, 0u);
      EXPECT_EQ(span.decode_ns, 0u);
      EXPECT_TRUE(span.cache_hit);
      EXPECT_GT(span.queue_ns, 0u);
    }
  }
}

// Read-ahead keeps results identical on a cold cache and reports its
// prefetches; single-flight means no double loads (ledger intact).
TEST_F(FrontDoorTest, ReadAheadColdScanStaysExactAndSingleFlight) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 2, .registry = &registry});

  ScanRequest request;
  request.project_columns = {0, 3, 7};
  request.return_positions = false;
  auto result = service.Execute(*reader.value(), request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows_scanned, kRows);
  for (size_t c = 0; c < request.project_columns.size(); ++c) {
    ASSERT_EQ(result.value().columns[c].size(), kRows);
    for (size_t i = 0; i < kRows; ++i) {
      ASSERT_EQ(result.value().columns[c][i],
                raw_[request.project_columns[c]][i]);
    }
  }

  // Every block was loaded exactly once, whether the prefetcher or a
  // worker won the race (single-flight absorbs the loser as a wait).
  const BlockCacheStats stats = cache->GetStats();
  EXPECT_EQ(stats.misses, kRows / kBlockRows);
  EXPECT_EQ(stats.failed_loads, 0u);
  EXPECT_EQ(stats.misses,
            stats.cached_blocks + stats.loading_blocks + stats.evictions +
                stats.failed_loads + stats.erased_blocks);
}

}  // namespace
}  // namespace corra::serve
