// The baseline selector must reproduce the paper's choice: FOR or Dict
// (with bit-packing) per column, preferring whichever is smaller, and never
// a checkpointed scheme under the default policy.

#include "encoding/selector.h"

#include <gtest/gtest.h>

#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "test_util.h"

namespace corra::enc {
namespace {

using test::Dist;
using test::ExpectColumnMatches;
using test::MakeValues;

TEST(SelectorTest, DenseRangePicksForOrBitPack) {
  // Uniform dense values: dictionary wins nothing; FOR/BitPack is minimal.
  const auto values = MakeValues(Dist::kSmallRange, 4096, 1);
  auto result = SelectBestScheme(values);
  ASSERT_TRUE(result.ok());
  const Scheme s = result.value()->scheme();
  EXPECT_TRUE(s == Scheme::kFor || s == Scheme::kBitPack)
      << SchemeToString(s);
  ExpectColumnMatches(*result.value(), values);
}

TEST(SelectorTest, LowCardinalityWideValuesPickDict) {
  // 10 distinct values scattered over a wide range: dict codes take 4
  // bits/row while FOR needs ~21.
  const auto values = MakeValues(Dist::kLowCard, 4096, 2);
  auto result = SelectBestScheme(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->scheme(), Scheme::kDict);
  ExpectColumnMatches(*result.value(), values);
}

TEST(SelectorTest, DefaultPolicyNeverPicksCheckpointedSchemes) {
  for (Dist d : {Dist::kConstant, Dist::kSorted, Dist::kRunHeavy,
                 Dist::kWideRange}) {
    const auto values = MakeValues(d, 2048, 3);
    auto result = SelectBestScheme(values);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(HasConstantTimeAccess(result.value()->scheme()))
        << test::DistName(d);
  }
}

TEST(SelectorTest, CheckpointedPolicyPicksRleForRuns) {
  const auto values = MakeValues(Dist::kRunHeavy, 8192, 4);
  auto result = SelectBestScheme(
      values, SelectionPolicy::kAllowCheckpointedSchemes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->scheme(), Scheme::kRle);
  ExpectColumnMatches(*result.value(), values);
}

TEST(SelectorTest, CheckpointedPolicyPicksDeltaForSorted) {
  // Strictly increasing with tiny steps over a huge range: delta beats
  // FOR (whose width is the full range) and dict (all values distinct).
  std::vector<int64_t> values;
  int64_t acc = 0;
  Rng rng(5);
  for (int i = 0; i < 8192; ++i) {
    acc += rng.Uniform(100000, 100007);
    values.push_back(acc);
  }
  auto result = SelectBestScheme(
      values, SelectionPolicy::kAllowCheckpointedSchemes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->scheme(), Scheme::kDelta);
}

TEST(SelectorTest, PointServingWorkloadPicksInlineDeltaLayout) {
  // Same delta-friendly data as above: the analytic hint (default)
  // keeps the packed layout; the point-serving hint encodes Delta with
  // inline checkpoints — and its estimate reflects the inline layout's
  // slightly larger footprint, so the comparison stays honest.
  std::vector<int64_t> values;
  int64_t acc = 0;
  Rng rng(5);
  for (int i = 0; i < 8192; ++i) {
    acc += rng.Uniform(100000, 100007);
    values.push_back(acc);
  }
  SelectionOptions serving{
      .policy = SelectionPolicy::kAllowCheckpointedSchemes,
      .workload = WorkloadHint::kPointServing};
  auto result = SelectBestScheme(values, serving);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value()->scheme(), Scheme::kDelta);
  EXPECT_EQ(static_cast<const DeltaColumn&>(*result.value()).layout(),
            DeltaLayout::kInline);

  auto analytic = SelectBestScheme(
      values, SelectionPolicy::kAllowCheckpointedSchemes);
  ASSERT_TRUE(analytic.ok());
  ASSERT_EQ(analytic.value()->scheme(), Scheme::kDelta);
  EXPECT_EQ(static_cast<const DeltaColumn&>(*analytic.value()).layout(),
            DeltaLayout::kPacked);

  const auto serving_estimates = EstimateSchemes(values, serving);
  const auto analytic_estimates = EstimateSchemes(
      values, SelectionPolicy::kAllowCheckpointedSchemes);
  size_t serving_delta = 0;
  size_t analytic_delta = 0;
  for (const auto& e : serving_estimates) {
    if (e.scheme == Scheme::kDelta) serving_delta = e.size_bytes;
  }
  for (const auto& e : analytic_estimates) {
    if (e.scheme == Scheme::kDelta) analytic_delta = e.size_bytes;
  }
  EXPECT_GE(serving_delta, analytic_delta);
}

TEST(SelectorTest, SelectionNeverWorseThanPlain) {
  for (Dist d :
       {Dist::kConstant, Dist::kSmallRange, Dist::kWideRange,
        Dist::kNegative, Dist::kLowCard, Dist::kSorted, Dist::kRunHeavy,
        Dist::kExtremes}) {
    const auto values = MakeValues(d, 2000, 6);
    auto result = SelectBestScheme(values);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value()->SizeBytes(), values.size() * sizeof(int64_t))
        << test::DistName(d);
  }
}

TEST(SelectorTest, EstimatesCoverExpectedSchemes) {
  const auto values = MakeValues(Dist::kSmallRange, 100, 7);
  auto fast = EstimateSchemes(values,
                              SelectionPolicy::kConstantTimeAccessOnly);
  EXPECT_EQ(fast.size(), 4u);  // Plain, BitPack, FOR, Dict.
  auto all =
      EstimateSchemes(values, SelectionPolicy::kAllowCheckpointedSchemes);
  EXPECT_EQ(all.size(), 6u);
}

TEST(SelectorTest, EstimatesAreAccurate) {
  // The selector decides from estimates; each estimate must equal the
  // actual encoded SizeBytes for the applicable schemes.
  const auto values = MakeValues(Dist::kLowCard, 3000, 8);
  for (const auto& e :
       EstimateSchemes(values, SelectionPolicy::kConstantTimeAccessOnly)) {
    if (e.size_bytes == SIZE_MAX) {
      continue;
    }
    switch (e.scheme) {
      case Scheme::kFor: {
        auto col = ForColumn::Encode(values);
        ASSERT_TRUE(col.ok());
        EXPECT_EQ(e.size_bytes, col.value()->SizeBytes());
        break;
      }
      case Scheme::kDict: {
        auto col = DictColumn::Encode(values);
        ASSERT_TRUE(col.ok());
        EXPECT_EQ(e.size_bytes, col.value()->SizeBytes());
        break;
      }
      default:
        break;
    }
  }
}

TEST(SelectorTest, EmptyColumn) {
  auto result = SelectBestScheme(std::span<const int64_t>{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->size(), 0u);
}

}  // namespace
}  // namespace corra::enc
