#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace corra {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 95);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = rng.Uniform(-17, 42);
    EXPECT_GE(v, -17);
    EXPECT_LE(v, 42);
  }
}

TEST(RngTest, UniformSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Uniform(7, 7), 7);
  }
}

TEST(RngTest, UniformHitsAllValuesOfSmallRange) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[static_cast<size_t>(rng.Uniform(0, 9))];
  }
  for (int c : counts) {
    // Each bucket should be near 10000; allow generous slack.
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  constexpr int kSamples = 200000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // Must compile and not crash.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace corra
