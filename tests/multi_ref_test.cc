// Multiple reference columns — Sec. 2.3 (Table 1, Fig. 4).

#include "core/multi_ref_encoding.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "encoding/for.h"
#include "test_util.h"

namespace corra {
namespace {

// A miniature Taxi-like setup: three reference columns in three groups
// (A = col0 + col1, B = col2, C = col3) and a target combining them.
struct MiniTaxi {
  std::vector<std::vector<int64_t>> columns;  // 4 reference columns.
  std::vector<int64_t> target;
  std::vector<size_t> formula_of_row;  // 0..3, 4 = outlier.
};

MiniTaxi MakeMiniTaxi(size_t n, double outlier_rate, uint64_t seed) {
  Rng rng(seed);
  MiniTaxi data;
  data.columns.assign(4, std::vector<int64_t>(n));
  data.target.resize(n);
  data.formula_of_row.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.columns[0][i] = rng.Uniform(100, 5000);  // fare
    data.columns[1][i] = rng.Uniform(0, 500);     // tip
    data.columns[2][i] = 250;                     // congestion
    data.columns[3][i] = 175;                     // airport
    const int64_t a = data.columns[0][i] + data.columns[1][i];
    const int64_t b = data.columns[2][i];
    const int64_t c = data.columns[3][i];
    double u = rng.NextDouble();
    if (u < outlier_rate) {
      data.formula_of_row[i] = 4;
      data.target[i] = a + b + c + 1000 + rng.Uniform(0, 100);
    } else if (u < outlier_rate + 0.30) {
      data.formula_of_row[i] = 0;
      data.target[i] = a;
    } else if (u < outlier_rate + 0.75) {  // A+B strictly dominates.
      data.formula_of_row[i] = 1;
      data.target[i] = a + b;
    } else if (u < outlier_rate + 0.85) {
      data.formula_of_row[i] = 2;
      data.target[i] = a + c;
    } else {
      data.formula_of_row[i] = 3;
      data.target[i] = a + b + c;
    }
  }
  return data;
}

FormulaTable PaperTable(/*group cols=*/std::vector<std::vector<uint32_t>>
                            groups = {{0, 1}, {2}, {3}}) {
  FormulaTable table;
  table.groups = std::move(groups);
  table.formulas = {0b001, 0b011, 0b101, 0b111};  // A, A+B, A+C, A+B+C.
  table.code_bits = 2;
  return table;
}

ColumnResolver ResolverFor(const MiniTaxi& data) {
  return [&data](uint32_t col) -> std::span<const int64_t> {
    return data.columns[col];
  };
}

struct BoundMulti {
  std::vector<std::unique_ptr<enc::ForColumn>> refs;
  std::unique_ptr<MultiRefColumn> column;
};

BoundMulti MakeBound(const MiniTaxi& data, const FormulaTable& table,
                     double max_outlier_fraction = 0.05) {
  BoundMulti b;
  auto encoded = MultiRefColumn::Encode(data.target, ResolverFor(data),
                                        table, max_outlier_fraction);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  b.column = std::move(encoded).value();
  std::vector<const enc::EncodedColumn*> resolved;
  for (const auto& values : data.columns) {
    auto ref = enc::ForColumn::Encode(values);
    EXPECT_TRUE(ref.ok());
    b.refs.push_back(std::move(ref).value());
  }
  for (uint32_t idx : b.column->ReferenceIndices()) {
    resolved.push_back(b.refs[idx].get());
  }
  EXPECT_TRUE(b.column->BindReferences(resolved).ok());
  return b;
}

TEST(FormulaTableTest, ValidatesStructure) {
  EXPECT_TRUE(PaperTable().Validate().ok());

  FormulaTable bad = PaperTable();
  bad.code_bits = 0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = PaperTable();
  bad.code_bits = 9;
  EXPECT_FALSE(bad.Validate().ok());

  bad = PaperTable();
  bad.groups.clear();
  EXPECT_FALSE(bad.Validate().ok());

  bad = PaperTable();
  bad.groups.push_back({});  // Empty group.
  EXPECT_FALSE(bad.Validate().ok());

  bad = PaperTable();
  bad.formulas = {0b001, 0b010, 0b011, 0b100, 0b101};  // 5 > 2^2.
  EXPECT_FALSE(bad.Validate().ok());

  bad = PaperTable();
  bad.formulas = {0};  // Empty mask.
  EXPECT_FALSE(bad.Validate().ok());

  bad = PaperTable();
  bad.formulas = {0b1000};  // Mask references a 4th group.
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(MultiRefTest, ExactReconstructionNoOutliers) {
  const MiniTaxi data = MakeMiniTaxi(10000, 0.0, 1);
  auto b = MakeBound(data, PaperTable());
  EXPECT_EQ(b.column->outliers().size(), 0u);
  test::ExpectColumnMatches(*b.column, data.target);
}

TEST(MultiRefTest, ExactReconstructionWithOutliers) {
  const MiniTaxi data = MakeMiniTaxi(10000, 0.0032, 2);
  auto b = MakeBound(data, PaperTable());
  EXPECT_GT(b.column->outliers().size(), 0u);
  EXPECT_NEAR(b.column->outlier_fraction(), 0.0032, 0.002);
  test::ExpectColumnMatches(*b.column, data.target);
}

TEST(MultiRefTest, CodeStatsMatchGeneratedMix) {
  const MiniTaxi data = MakeMiniTaxi(50000, 0.0032, 3);
  auto b = MakeBound(data, PaperTable());
  const auto stats = b.column->ComputeCodeStats();
  ASSERT_EQ(stats.code_counts.size(), 4u);
  // Compare against the generator's ground truth.
  std::vector<size_t> expected(5, 0);
  for (size_t f : data.formula_of_row) {
    ++expected[f];
  }
  EXPECT_EQ(stats.code_counts[0], expected[0]);
  EXPECT_EQ(stats.code_counts[1], expected[1]);
  EXPECT_EQ(stats.code_counts[2], expected[2]);
  EXPECT_EQ(stats.code_counts[3], expected[3]);
  EXPECT_EQ(stats.outlier_count, expected[4]);
}

TEST(MultiRefTest, TwoBitsPerRowPlusOutliers) {
  const MiniTaxi data = MakeMiniTaxi(40000, 0.003, 4);
  auto b = MakeBound(data, PaperTable());
  // ~2 bits/row plus a small outlier store: far below the 2 bytes/row a
  // 14-bit FOR of the target would need.
  EXPECT_LT(b.column->SizeBytes(), 40000u * 2 / 8 + 3000u);
}

TEST(MultiRefTest, OutlierBudgetEnforced) {
  const MiniTaxi data = MakeMiniTaxi(5000, 0.20, 5);
  auto result = MultiRefColumn::Encode(data.target, ResolverFor(data),
                                       PaperTable(), /*max=*/0.05);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(MultiRefTest, FirstMatchingFormulaWins) {
  // When B's value is zero, A and A+B coincide; the first listed formula
  // (A, code 0) must be chosen deterministically.
  MiniTaxi data = MakeMiniTaxi(100, 0.0, 6);
  for (auto& v : data.columns[2]) {
    v = 0;
  }
  for (size_t i = 0; i < data.target.size(); ++i) {
    data.target[i] = data.columns[0][i] + data.columns[1][i];
  }
  auto b = MakeBound(data, PaperTable());
  const auto stats = b.column->ComputeCodeStats();
  EXPECT_EQ(stats.code_counts[0], 100u);
  EXPECT_EQ(stats.code_counts[1], 0u);
}

TEST(MultiRefTest, SerializeRoundTrip) {
  const MiniTaxi data = MakeMiniTaxi(8000, 0.004, 7);
  auto b = MakeBound(data, PaperTable());
  auto reloaded = test::SerializeRoundTrip(*b.column);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->scheme(), enc::Scheme::kMultiRef);
  std::vector<const enc::EncodedColumn*> resolved;
  for (uint32_t idx : reloaded->ReferenceIndices()) {
    resolved.push_back(b.refs[idx].get());
  }
  ASSERT_TRUE(reloaded->BindReferences(resolved).ok());
  test::ExpectColumnMatches(*reloaded, data.target);
  EXPECT_EQ(reloaded->SizeBytes(), b.column->SizeBytes());
}

TEST(MultiRefTest, ReferenceIndicesFlattenGroups) {
  const MiniTaxi data = MakeMiniTaxi(100, 0.0, 8);
  auto encoded =
      MultiRefColumn::Encode(data.target, ResolverFor(data), PaperTable());
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value()->ReferenceIndices(),
            (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(MultiRefTest, BindRejectsWrongCount) {
  const MiniTaxi data = MakeMiniTaxi(100, 0.0, 9);
  auto b = MakeBound(data, PaperTable());
  const enc::EncodedColumn* one[] = {b.refs[0].get()};
  EXPECT_FALSE(b.column->BindReferences(one).ok());
}

TEST(MultiRefTest, DeriveFormulasRecoversPaperTable) {
  const MiniTaxi data = MakeMiniTaxi(30000, 0.003, 10);
  auto derived = MultiRefColumn::DeriveFormulas(
      data.target, ResolverFor(data), {{0, 1}, {2}, {3}}, /*code_bits=*/2);
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  // The four true formulas must be found (order: by frequency).
  std::vector<uint8_t> sorted = derived.value().formulas;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint8_t>{0b001, 0b011, 0b101, 0b111}));
  // Most frequent formula in the generator is A+B (0.45 weight above).
  EXPECT_EQ(derived.value().formulas[0], 0b011);
}

TEST(MultiRefTest, DeriveThenEncodeRoundTrips) {
  const MiniTaxi data = MakeMiniTaxi(20000, 0.002, 11);
  auto derived = MultiRefColumn::DeriveFormulas(
      data.target, ResolverFor(data), {{0, 1}, {2}, {3}});
  ASSERT_TRUE(derived.ok());
  auto b = MakeBound(data, derived.value());
  test::ExpectColumnMatches(*b.column, data.target);
}

TEST(MultiRefTest, DeriveFailsWhenNothingMatches) {
  MiniTaxi data = MakeMiniTaxi(1000, 0.0, 12);
  for (auto& t : data.target) {
    t += 1;  // Break every formula.
  }
  // Also break the degenerate coincidences by zeroing nothing; the +1
  // offset alone defeats all subset sums because the groups are fixed.
  auto derived = MultiRefColumn::DeriveFormulas(
      data.target, ResolverFor(data), {{0, 1}, {2}, {3}});
  EXPECT_FALSE(derived.ok());
}

TEST(MultiRefTest, SingleGroupSingleFormula) {
  // Degenerate case: target == sum of one group, 1-bit codes.
  Rng rng(13);
  std::vector<int64_t> a(500);
  std::vector<int64_t> target(500);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform(0, 1000);
    target[i] = a[i];
  }
  FormulaTable table;
  table.groups = {{0}};
  table.formulas = {0b1};
  table.code_bits = 1;
  auto resolver = [&a](uint32_t) -> std::span<const int64_t> { return a; };
  auto encoded = MultiRefColumn::Encode(target, resolver, table);
  ASSERT_TRUE(encoded.ok());
  auto ref = enc::ForColumn::Encode(a);
  ASSERT_TRUE(ref.ok());
  const enc::EncodedColumn* refs[] = {ref.value().get()};
  ASSERT_TRUE(encoded.value()->BindReferences(refs).ok());
  test::ExpectColumnMatches(*encoded.value(), target);
}

}  // namespace
}  // namespace corra
