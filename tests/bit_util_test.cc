#include "common/bit_util.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"

namespace corra::bit_util {
namespace {

TEST(BitWidthTest, Zero) { EXPECT_EQ(BitWidth(0), 0); }

TEST(BitWidthTest, PowersOfTwoBoundaries) {
  for (int w = 1; w <= 63; ++w) {
    const uint64_t v = uint64_t{1} << (w - 1);
    EXPECT_EQ(BitWidth(v), w) << "value " << v;
    EXPECT_EQ(BitWidth(v - 1), v == 1 ? 0 : w - 1);
  }
  EXPECT_EQ(BitWidth(~uint64_t{0}), 64);
}

TEST(BitWidthTest, SmallValues) {
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
}

TEST(ZigZagTest, SmallMagnitudesMapToSmallCodes) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
}

TEST(ZigZagTest, RoundTripExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1},
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
}

TEST(ZigZagTest, RoundTripRandom) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Next());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(RoundUpPow2Test, Basics) {
  EXPECT_EQ(RoundUpPow2(0, 8), 0u);
  EXPECT_EQ(RoundUpPow2(1, 8), 8u);
  EXPECT_EQ(RoundUpPow2(8, 8), 8u);
  EXPECT_EQ(RoundUpPow2(9, 8), 16u);
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(0, 8), 0u);
  EXPECT_EQ(CeilDiv(1, 8), 1u);
  EXPECT_EQ(CeilDiv(8, 8), 1u);
  EXPECT_EQ(CeilDiv(9, 8), 2u);
}

TEST(PackedBytesTest, DataBytesAreExact) {
  EXPECT_EQ(PackedDataBytes(0, 5), 0u);
  EXPECT_EQ(PackedDataBytes(8, 8), 8u);
  EXPECT_EQ(PackedDataBytes(3, 12), 5u);
}

TEST(PackedBytesTest, IncludesSlack) {
  // Allocation size = exact payload + kDecodePadBytes of load slack (the
  // AVX2 unpack kernels issue full 32-byte loads near the payload end).
  EXPECT_EQ(PackedBytes(0, 5), kDecodePadBytes);
  EXPECT_EQ(PackedBytes(8, 8), 8u + kDecodePadBytes);
  EXPECT_EQ(PackedBytes(3, 12), 5u + kDecodePadBytes);
  EXPECT_GE(kDecodePadBytes, 32u);  // The AVX2 kernels' load window.
}

TEST(MaxZigZagBitWidthTest, Empty) {
  EXPECT_EQ(MaxZigZagBitWidth({}), 0);
}

TEST(MaxZigZagBitWidthTest, Mixed) {
  const std::vector<int64_t> values = {-3, 0, 2};
  // zigzag(-3) = 5 -> 3 bits; zigzag(2) = 4 -> 3 bits.
  EXPECT_EQ(MaxZigZagBitWidth(values), 3);
}

TEST(MaxForBitWidthTest, AllEqual) {
  const std::vector<int64_t> values = {5, 5, 5};
  EXPECT_EQ(MaxForBitWidth(values, 5), 0);
}

TEST(MaxForBitWidthTest, Range) {
  const std::vector<int64_t> values = {10, 14, 17};
  EXPECT_EQ(MaxForBitWidth(values, 10), 3);  // max delta 7 -> 3 bits
}

TEST(ComputeMinMaxTest, Empty) {
  const auto mm = ComputeMinMax({});
  EXPECT_EQ(mm.min, 0);
  EXPECT_EQ(mm.max, 0);
}

TEST(ComputeMinMaxTest, SingleAndNegative) {
  const std::vector<int64_t> one = {-9};
  auto mm = ComputeMinMax(one);
  EXPECT_EQ(mm.min, -9);
  EXPECT_EQ(mm.max, -9);

  const std::vector<int64_t> values = {3, -7, 12, 0};
  mm = ComputeMinMax(values);
  EXPECT_EQ(mm.min, -7);
  EXPECT_EQ(mm.max, 12);
}

TEST(ComputeMinMaxTest, Extremes) {
  const std::vector<int64_t> values = {
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max()};
  const auto mm = ComputeMinMax(values);
  EXPECT_EQ(mm.min, std::numeric_limits<int64_t>::min());
  EXPECT_EQ(mm.max, std::numeric_limits<int64_t>::max());
}

}  // namespace
}  // namespace corra::bit_util
