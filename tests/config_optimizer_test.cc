// The Fig. 2 greedy diff-encoding configuration search.

#include "core/config_optimizer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/tpch.h"

namespace corra {
namespace {

TEST(ConfigOptimizerTest, RejectsDegenerateInputs) {
  const std::vector<int64_t> a = {1, 2, 3};
  std::vector<CandidateColumn> one = {{"a", a}};
  EXPECT_FALSE(OptimizeDiffConfig(one).ok());

  const std::vector<int64_t> b = {1, 2};
  std::vector<CandidateColumn> mismatched = {{"a", a}, {"b", b}};
  EXPECT_FALSE(OptimizeDiffConfig(mismatched).ok());

  const std::vector<int64_t> c = {4, 5, 6};
  std::vector<CandidateColumn> two = {{"a", a}, {"c", c}};
  OptimizerOptions bad;
  bad.max_chain_depth = 0;
  EXPECT_FALSE(OptimizeDiffConfig(two, bad).ok());
}

TEST(ConfigOptimizerTest, TpchDatesSelectShipdateAsReference) {
  // The paper's Fig. 2: shipdate becomes the reference for both
  // commitdate and receiptdate.
  const auto dates = datagen::GenerateLineitemDates(200000, 42);
  std::vector<CandidateColumn> candidates = {
      {"l_shipdate", dates.shipdate},
      {"l_commitdate", dates.commitdate},
      {"l_receiptdate", dates.receiptdate},
  };
  auto result = OptimizeDiffConfig(candidates);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DiffConfig& config = result.value();

  EXPECT_EQ(config.assignments[0].role, ColumnRole::kReference);
  EXPECT_EQ(config.assignments[1].role, ColumnRole::kDiffEncoded);
  EXPECT_EQ(config.assignments[1].reference, 0);
  EXPECT_EQ(config.assignments[2].role, ColumnRole::kDiffEncoded);
  EXPECT_EQ(config.assignments[2].reference, 0);
  EXPECT_GT(config.saving_bytes(), 0u);
}

TEST(ConfigOptimizerTest, TpchSavingIsRoughlyPaperRatio) {
  // Paper: 82.5 MB saved over 270 MB of bit-packed dates (~30.5%).
  const auto dates = datagen::GenerateLineitemDates(200000, 1);
  std::vector<CandidateColumn> candidates = {
      {"l_shipdate", dates.shipdate},
      {"l_commitdate", dates.commitdate},
      {"l_receiptdate", dates.receiptdate},
  };
  auto result = OptimizeDiffConfig(candidates);
  ASSERT_TRUE(result.ok());
  const double saving_rate =
      static_cast<double>(result.value().saving_bytes()) /
      static_cast<double>(result.value().total_vertical_bytes);
  EXPECT_NEAR(saving_rate, 0.305, 0.04);
}

TEST(ConfigOptimizerTest, EdgeMatrixIsComplete) {
  const auto dates = datagen::GenerateLineitemDates(50000, 2);
  std::vector<CandidateColumn> candidates = {
      {"ship", dates.shipdate},
      {"commit", dates.commitdate},
      {"receipt", dates.receiptdate},
  };
  auto result = OptimizeDiffConfig(candidates);
  ASSERT_TRUE(result.ok());
  const auto& edges = result.value().edge_sizes;
  ASSERT_EQ(edges.size(), 3u);
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) {
      if (a == b) {
        EXPECT_EQ(edges[a][b], SIZE_MAX);
      } else {
        EXPECT_NE(edges[a][b], SIZE_MAX);
        EXPECT_GT(edges[a][b], 0u);
      }
    }
  }
  // receipt -> ship must be the cheapest edge out of receipt (1..30 day
  // diffs beat diffs against commit, which span more).
  EXPECT_LT(edges[2][0], edges[2][1]);
}

TEST(ConfigOptimizerTest, UncorrelatedColumnsStayVertical) {
  Rng rng(3);
  std::vector<int64_t> a(20000);
  std::vector<int64_t> b(20000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform(0, 255);           // 8 bits vertical.
    b[i] = rng.Uniform(-(1 << 20), 1 << 20);  // Unrelated wide column.
  }
  std::vector<CandidateColumn> candidates = {{"a", a}, {"b", b}};
  auto result = OptimizeDiffConfig(candidates);
  ASSERT_TRUE(result.ok());
  // Diffing a against b yields a wider column than a alone; no edge wins.
  EXPECT_EQ(result.value().assignments[0].role, ColumnRole::kVertical);
  EXPECT_EQ(result.value().assignments[1].role, ColumnRole::kVertical);
  EXPECT_EQ(result.value().saving_bytes(), 0u);
}

TEST(ConfigOptimizerTest, AssignedNeverWorseThanVertical) {
  const auto dates = datagen::GenerateLineitemDates(30000, 4);
  std::vector<CandidateColumn> candidates = {
      {"ship", dates.shipdate},
      {"commit", dates.commitdate},
      {"receipt", dates.receiptdate},
      {"order", dates.orderdate},
  };
  auto result = OptimizeDiffConfig(candidates);
  ASSERT_TRUE(result.ok());
  for (const auto& a : result.value().assignments) {
    EXPECT_LE(a.assigned_size, a.vertical_size);
  }
  EXPECT_LE(result.value().total_assigned_bytes,
            result.value().total_vertical_bytes);
}

TEST(ConfigOptimizerTest, PaperModeForbidsChains) {
  // Construct a chain-shaped correlation: b ~ a, c ~ b (c is far from a).
  Rng rng(5);
  std::vector<int64_t> a(20000);
  std::vector<int64_t> b(20000);
  std::vector<int64_t> c(20000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform(0, 1 << 26);
    b[i] = a[i] + rng.Uniform(0, 15);
    c[i] = b[i] + rng.Uniform(0, 15);
  }
  std::vector<CandidateColumn> candidates = {{"a", a}, {"b", b}, {"c", c}};
  OptimizerOptions paper;
  paper.max_chain_depth = 1;
  auto result = OptimizeDiffConfig(candidates, paper);
  ASSERT_TRUE(result.ok());
  // c ~ a also has bounded diffs (0..30), so with depth 1 both b and c
  // hang off a; no diff-encoded column serves as a reference.
  for (size_t i = 0; i < 3; ++i) {
    const auto& assignment = result.value().assignments[i];
    if (assignment.role == ColumnRole::kDiffEncoded) {
      const auto& ref = result.value()
                            .assignments[static_cast<size_t>(
                                assignment.reference)];
      EXPECT_NE(ref.role, ColumnRole::kDiffEncoded);
      EXPECT_EQ(assignment.chain_depth, 1);
    }
  }
}

TEST(ConfigOptimizerTest, ChainModeAllowsDeeperReferences) {
  // b ~ a tightly; c ~ b tightly; c ~ a loosely. With chains allowed the
  // optimizer may pick c -> b even though b is diff-encoded.
  Rng rng(6);
  std::vector<int64_t> a(20000);
  std::vector<int64_t> b(20000);
  std::vector<int64_t> c(20000);
  std::vector<int64_t> walk(20000);
  int64_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += rng.Uniform(-1000000, 1000000);
    a[i] = acc;
    b[i] = a[i] + rng.Uniform(0, 7);
    c[i] = b[i] + rng.Uniform(0, 7);
  }
  std::vector<CandidateColumn> candidates = {{"a", a}, {"b", b}, {"c", c}};
  OptimizerOptions chain;
  chain.max_chain_depth = 2;
  auto chained = OptimizeDiffConfig(candidates, chain);
  ASSERT_TRUE(chained.ok());
  OptimizerOptions paper;
  auto flat = OptimizeDiffConfig(candidates, paper);
  ASSERT_TRUE(flat.ok());
  // Chains can only improve the estimated total.
  EXPECT_LE(chained.value().total_assigned_bytes,
            flat.value().total_assigned_bytes);
  // Depth bound respected.
  for (const auto& assignment : chained.value().assignments) {
    EXPECT_LE(assignment.chain_depth, 2);
  }
}

TEST(ConfigOptimizerTest, RoleToString) {
  EXPECT_EQ(ColumnRoleToString(ColumnRole::kVertical), "vertical");
  EXPECT_EQ(ColumnRoleToString(ColumnRole::kReference), "reference");
  EXPECT_EQ(ColumnRoleToString(ColumnRole::kDiffEncoded), "diff-encoded");
}

TEST(ConfigOptimizerTest, SamplingMatchesFullComputation) {
  const auto dates = datagen::GenerateLineitemDates(100000, 7);
  std::vector<CandidateColumn> candidates = {
      {"ship", dates.shipdate},
      {"receipt", dates.receiptdate},
  };
  OptimizerOptions sampled;
  sampled.sample_limit = 4096;
  OptimizerOptions full;
  full.sample_limit = 0;
  auto with_sample = OptimizeDiffConfig(candidates, sampled);
  auto with_full = OptimizeDiffConfig(candidates, full);
  ASSERT_TRUE(with_sample.ok());
  ASSERT_TRUE(with_full.ok());
  // Roles must agree; sizes agree within sampling noise (+-15%).
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(with_sample.value().assignments[i].role,
              with_full.value().assignments[i].role);
  }
  const double ratio =
      static_cast<double>(with_sample.value().total_assigned_bytes) /
      static_cast<double>(with_full.value().total_assigned_bytes);
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

}  // namespace
}  // namespace corra
