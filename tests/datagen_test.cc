// Generator invariants: the synthetic datasets must exhibit exactly the
// correlation structure the paper's experiments rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/date.h"
#include "datagen/distributions.h"
#include "datagen/dmv.h"
#include "datagen/ldbc.h"
#include "datagen/taxi.h"
#include "datagen/tpch.h"

namespace corra::datagen {
namespace {

// ---- Distributions -------------------------------------------------------

TEST(ZipfTest, RanksInBounds) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 100u);
  }
}

TEST(ZipfTest, HeadIsHeavierThanTail) {
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(2);
  size_t head = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    head += zipf.Sample(&rng) < 10 ? 1 : 0;
  }
  // Under Zipf(1.0, n=1000), the top-10 ranks hold ~39% of the mass.
  EXPECT_GT(head, kDraws / 4);
}

TEST(DiscreteTest, RespectsWeights) {
  DiscreteDistribution dist({0.5, 0.3, 0.2});
  Rng rng(3);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[dist.Sample(&rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.2, 0.01);
}

TEST(LogNormalTest, MedianNearExpMu) {
  Rng rng(4);
  std::vector<double> samples(20001);
  for (auto& s : samples) {
    s = SampleLogNormal(&rng, 6.5, 0.75);
  }
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], std::exp(6.5), std::exp(6.5) * 0.05);
}

// ---- TPC-H ----------------------------------------------------------------

TEST(TpchTest, DbgenDateRules) {
  const auto dates = GenerateLineitemDates(50000, 42);
  const int64_t start = ToDays(CivilDate{1992, 1, 1});
  const int64_t end = ToDays(CivilDate{1998, 12, 31});
  for (size_t i = 0; i < dates.orderdate.size(); ++i) {
    ASSERT_GE(dates.orderdate[i], start);
    ASSERT_LE(dates.orderdate[i], end - 151);
    const int64_t ship_delta = dates.shipdate[i] - dates.orderdate[i];
    ASSERT_GE(ship_delta, 1);
    ASSERT_LE(ship_delta, 121);
    const int64_t commit_delta = dates.commitdate[i] - dates.orderdate[i];
    ASSERT_GE(commit_delta, 30);
    ASSERT_LE(commit_delta, 90);
    const int64_t receipt_delta = dates.receiptdate[i] - dates.shipdate[i];
    ASSERT_GE(receipt_delta, 1);
    ASSERT_LE(receipt_delta, 30);
  }
}

TEST(TpchTest, CommitMinusShipSpans181Values) {
  const auto dates = GenerateLineitemDates(200000, 1);
  int64_t lo = 1000;
  int64_t hi = -1000;
  for (size_t i = 0; i < dates.commitdate.size(); ++i) {
    const int64_t d = dates.commitdate[i] - dates.shipdate[i];
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  // Theoretical range [-91, 89]: 8 bits after FOR, as in Table 2.
  EXPECT_GE(lo, -91);
  EXPECT_LE(hi, 89);
  EXPECT_LT(lo, -80);  // The generator actually reaches the extremes.
  EXPECT_GT(hi, 80);
}

TEST(TpchTest, Deterministic) {
  const auto a = GenerateLineitemDates(1000, 7);
  const auto b = GenerateLineitemDates(1000, 7);
  EXPECT_EQ(a.shipdate, b.shipdate);
  EXPECT_EQ(a.receiptdate, b.receiptdate);
}

TEST(TpchTest, TableHasFourDateColumns) {
  auto table = MakeLineitemTable(100, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().num_columns(), 4u);
  EXPECT_EQ(table.value().column(1).name(), "l_shipdate");
  EXPECT_EQ(table.value().column(1).type(), LogicalType::kDate);
}

// ---- DMV -------------------------------------------------------------------

TEST(DmvTest, CityDeterminesState) {
  const auto data = GenerateDmv(50000, 42);
  std::unordered_map<std::string, std::string> state_of;
  for (size_t i = 0; i < data.city.size(); ++i) {
    auto [it, inserted] = state_of.emplace(data.city[i], data.state[i]);
    ASSERT_EQ(it->second, data.state[i])
        << "city " << data.city[i] << " in two states";
  }
}

TEST(DmvTest, ZipsPerCityBounded) {
  const auto data = GenerateDmv(100000, 42);
  std::unordered_map<std::string, std::unordered_set<int64_t>> zips;
  for (size_t i = 0; i < data.city.size(); ++i) {
    zips[data.city[i]].insert(data.zip[i]);
  }
  size_t max_zips = 0;
  for (const auto& [city, set] : zips) {
    max_zips = std::max(max_zips, set.size());
  }
  // <= 63 keeps the hierarchical local index at 6 bits (Table 2 calib).
  EXPECT_LE(max_zips, 63u);
  EXPECT_GT(max_zips, 12u);  // Hierarchy is non-trivial.
}

TEST(DmvTest, FiveDigitZips) {
  const auto data = GenerateDmv(20000, 42);
  for (int64_t zip : data.zip) {
    ASSERT_GE(zip, 10000);
    ASSERT_LE(zip, 99999);
  }
}

TEST(DmvTest, NyDominates) {
  const auto data = GenerateDmv(50000, 42);
  size_t ny = 0;
  for (const auto& s : data.state) {
    ny += s == "NY" ? 1 : 0;
  }
  EXPECT_GT(ny, data.state.size() / 3);
}

TEST(DmvTest, TableSchema) {
  auto table = MakeDmvTable(1000, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().num_columns(), 3u);
  EXPECT_EQ(table.value().column(0).type(), LogicalType::kString);
  EXPECT_EQ(table.value().column(1).type(), LogicalType::kString);
  EXPECT_EQ(table.value().column(2).type(), LogicalType::kInt64);
}

// ---- LDBC ------------------------------------------------------------------

TEST(LdbcTest, CountryIdsDense) {
  const auto data = GenerateLdbcMessages(100000, 42);
  for (int64_t c : data.countryid) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 111);
  }
}

TEST(LdbcTest, IpSubordinateToCountry) {
  // Every IP value must map to exactly one country.
  const auto data = GenerateLdbcMessages(200000, 42);
  std::unordered_map<int64_t, int64_t> country_of_ip;
  for (size_t i = 0; i < data.ip.size(); ++i) {
    auto [it, inserted] =
        country_of_ip.emplace(data.ip[i], data.countryid[i]);
    ASSERT_EQ(it->second, data.countryid[i]);
  }
}

TEST(LdbcTest, PerCountryUniquesBelow16Bits) {
  const auto data = GenerateLdbcMessages(500000, 42);
  std::unordered_map<int64_t, std::unordered_set<int64_t>> ips;
  for (size_t i = 0; i < data.ip.size(); ++i) {
    ips[data.countryid[i]].insert(data.ip[i]);
  }
  for (const auto& [country, set] : ips) {
    ASSERT_LE(set.size(), 60000u);  // 16-bit local codes (Table 2 calib).
  }
}

// ---- Taxi ------------------------------------------------------------------

TEST(TaxiTest, DropoffAfterPickupBounded) {
  const auto trips = GenerateTaxiTrips(100000, 42);
  for (size_t i = 0; i < trips.pickup.size(); ++i) {
    const int64_t d = trips.dropoff[i] - trips.pickup[i];
    ASSERT_GE(d, 1);
    ASSERT_LT(d, int64_t{1} << 20);  // The 20-bit diff bound.
  }
}

TEST(TaxiTest, FormulaMixMatchesTable1) {
  const auto trips = GenerateTaxiTrips(200000, 42);
  size_t counts[5] = {0, 0, 0, 0, 0};
  for (size_t i = 0; i < trips.total_amount.size(); ++i) {
    const int64_t a = trips.mta_tax[i] + trips.fare_amount[i] +
                      trips.improvement_surcharge[i] + trips.extra[i] +
                      trips.tip_amount[i] + trips.tolls_amount[i];
    const int64_t b = 250;
    const int64_t c = 175;
    const int64_t t = trips.total_amount[i];
    if (t == a) {
      ++counts[0];
    } else if (t == a + b) {
      ++counts[1];
    } else if (t == a + c) {
      ++counts[2];
    } else if (t == a + b + c) {
      ++counts[3];
    } else {
      ++counts[4];
    }
  }
  const double n = static_cast<double>(trips.total_amount.size());
  EXPECT_NEAR(counts[0] / n, 0.3119, 0.01);  // A
  EXPECT_NEAR(counts[1] / n, 0.6244, 0.01);  // A + B
  EXPECT_NEAR(counts[2] / n, 0.0269, 0.005);  // A + C
  EXPECT_NEAR(counts[3] / n, 0.0333, 0.005);  // A + B + C
  EXPECT_NEAR(counts[4] / n, 0.0032, 0.002);  // Outliers
}

TEST(TaxiTest, MoneyWithinCleaningBounds) {
  // The paper removes rows outside [0, $100]; the generator must produce
  // only in-bound totals (14-bit cents).
  const auto trips = GenerateTaxiTrips(100000, 42);
  for (int64_t t : trips.total_amount) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 16384);  // 14 bits, ~$163 ceiling as in Table 2.
  }
}

TEST(TaxiTest, GroupColumnsNonNegative) {
  const auto trips = GenerateTaxiTrips(50000, 42);
  for (size_t i = 0; i < trips.fare_amount.size(); ++i) {
    ASSERT_GE(trips.fare_amount[i], 0);
    ASSERT_GE(trips.tip_amount[i], 0);
    ASSERT_GE(trips.tolls_amount[i], 0);
    ASSERT_GE(trips.congestion_surcharge[i], 0);
    ASSERT_GE(trips.airport_fee[i], 0);
  }
}

TEST(TaxiTest, TableColumnIndices) {
  auto table = MakeTaxiTable(100, 1);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.value().num_columns(), 11u);
  EXPECT_EQ(table.value().column(TaxiColumns::kPickup).name(), "pickup");
  EXPECT_EQ(table.value().column(TaxiColumns::kTotalAmount).name(),
            "total_amount");
  EXPECT_EQ(table.value().column(TaxiColumns::kAirportFee).name(),
            "airport_fee");
}

TEST(TaxiTest, CustomProbabilitiesRespected) {
  TaxiFormulaProbabilities probs;
  probs.a = 1.0;
  probs.a_b = 0.0;
  probs.a_c = 0.0;
  probs.a_b_c = 0.0;
  probs.outlier = 0.0;
  const auto trips = GenerateTaxiTrips(10000, 42, probs);
  for (size_t i = 0; i < trips.total_amount.size(); ++i) {
    const int64_t a = trips.mta_tax[i] + trips.fare_amount[i] +
                      trips.improvement_surcharge[i] + trips.extra[i] +
                      trips.tip_amount[i] + trips.tolls_amount[i];
    ASSERT_EQ(trips.total_amount[i], a);
    ASSERT_EQ(trips.congestion_surcharge[i], 0);
    ASSERT_EQ(trips.airport_fee[i], 0);
  }
}

}  // namespace
}  // namespace corra::datagen
