// Self-contained blocks: build, bind, serialize, reload, reject damage.

#include "storage/block.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/diff_encoding.h"
#include "core/hierarchical_encoding.h"
#include "encoding/for.h"
#include "encoding/plain.h"

namespace corra {
namespace {

// Builds a two-column block: FOR reference + diff-encoded target.
Result<Block> MakeDiffBlock(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> reference(n);
  std::vector<int64_t> target(n);
  for (size_t i = 0; i < n; ++i) {
    reference[i] = rng.Uniform(8035, 10591);
    target[i] = reference[i] + rng.Uniform(1, 30);
  }
  std::vector<BlockColumn> columns(2);
  CORRA_ASSIGN_OR_RETURN(columns[0].encoded,
                         enc::ForColumn::Encode(reference));
  CORRA_ASSIGN_OR_RETURN(
      columns[1].encoded,
      DiffEncodedColumn::Encode(target, reference, /*ref_index=*/0));
  return Block::Build(std::move(columns));
}

TEST(BlockTest, BuildBindsDiffColumn) {
  auto block = MakeDiffBlock(1000, 1);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block.value().num_columns(), 2u);
  EXPECT_EQ(block.value().rows(), 1000u);
  // The diff column's Get works => the reference was bound.
  const int64_t ref = block.value().column(0).Get(5);
  const int64_t target = block.value().column(1).Get(5);
  EXPECT_GE(target - ref, 1);
  EXPECT_LE(target - ref, 30);
}

TEST(BlockTest, RejectsEmpty) {
  EXPECT_FALSE(Block::Build({}).ok());
}

TEST(BlockTest, RejectsRowCountMismatch) {
  std::vector<BlockColumn> columns(2);
  columns[0].encoded = enc::PlainColumn::Encode(std::vector<int64_t>{1, 2});
  columns[1].encoded = enc::PlainColumn::Encode(std::vector<int64_t>{1});
  EXPECT_FALSE(Block::Build(std::move(columns)).ok());
}

TEST(BlockTest, RejectsOutOfRangeReference) {
  const std::vector<int64_t> values = {1, 2, 3};
  std::vector<BlockColumn> columns(1);
  auto diff = DiffEncodedColumn::Encode(values, values, /*ref_index=*/5);
  ASSERT_TRUE(diff.ok());
  columns[0].encoded = std::move(diff).value();
  EXPECT_FALSE(Block::Build(std::move(columns)).ok());
}

TEST(BlockTest, RejectsSelfReference) {
  const std::vector<int64_t> values = {1, 2, 3};
  std::vector<BlockColumn> columns(1);
  auto diff = DiffEncodedColumn::Encode(values, values, /*ref_index=*/0);
  ASSERT_TRUE(diff.ok());
  columns[0].encoded = std::move(diff).value();
  EXPECT_FALSE(Block::Build(std::move(columns)).ok());
}

TEST(BlockTest, RejectsReferenceCycle) {
  const std::vector<int64_t> values = {1, 2, 3};
  std::vector<BlockColumn> columns(2);
  auto d0 = DiffEncodedColumn::Encode(values, values, /*ref_index=*/1);
  auto d1 = DiffEncodedColumn::Encode(values, values, /*ref_index=*/0);
  ASSERT_TRUE(d0.ok());
  ASSERT_TRUE(d1.ok());
  columns[0].encoded = std::move(d0).value();
  columns[1].encoded = std::move(d1).value();
  auto block = Block::Build(std::move(columns));
  ASSERT_FALSE(block.ok());
  EXPECT_TRUE(block.status().IsCorruption());
}

TEST(BlockTest, ChainedReferencesBindInOrder) {
  // c -> b -> a: allowed by the binder (the optimizer's chain extension).
  Rng rng(2);
  const size_t n = 500;
  std::vector<int64_t> a(n);
  std::vector<int64_t> b(n);
  std::vector<int64_t> c(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(0, 100000);
    b[i] = a[i] + rng.Uniform(0, 7);
    c[i] = b[i] + rng.Uniform(0, 7);
  }
  std::vector<BlockColumn> columns(3);
  auto ca = enc::ForColumn::Encode(a);
  auto cb = DiffEncodedColumn::Encode(b, a, 0);
  auto cc = DiffEncodedColumn::Encode(c, b, 1);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(cc.ok());
  columns[0].encoded = std::move(ca).value();
  columns[1].encoded = std::move(cb).value();
  columns[2].encoded = std::move(cc).value();
  auto block = Block::Build(std::move(columns));
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  for (size_t i = 0; i < n; i += 37) {
    EXPECT_EQ(block.value().column(2).Get(i), c[i]);
  }
}

TEST(BlockTest, SerializeDeserializeRoundTrip) {
  auto block = MakeDiffBlock(2000, 3);
  ASSERT_TRUE(block.ok());
  const auto bytes = block.value().Serialize();
  auto reloaded = Block::Deserialize(bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded.value().num_columns(), 2u);
  ASSERT_EQ(reloaded.value().rows(), 2000u);
  for (size_t i = 0; i < 2000; i += 13) {
    EXPECT_EQ(reloaded.value().column(0).Get(i),
              block.value().column(0).Get(i));
    EXPECT_EQ(reloaded.value().column(1).Get(i),
              block.value().column(1).Get(i));
  }
  EXPECT_EQ(reloaded.value().SizeBytes(), block.value().SizeBytes());
}

TEST(BlockTest, DeserializedBlockIsSelfContained) {
  // Decoding must need nothing beyond the serialized bytes: destroy the
  // original block before using the reloaded one.
  std::vector<uint8_t> bytes;
  {
    auto block = MakeDiffBlock(500, 4);
    ASSERT_TRUE(block.ok());
    bytes = block.value().Serialize();
  }
  auto reloaded = Block::Deserialize(bytes);
  ASSERT_TRUE(reloaded.ok());
  std::vector<int64_t> decoded(500);
  reloaded.value().column(1).DecodeAll(decoded.data());
  for (size_t i = 0; i < 500; ++i) {
    const int64_t diff = decoded[i] - reloaded.value().column(0).Get(i);
    EXPECT_GE(diff, 1);
    EXPECT_LE(diff, 30);
  }
}

TEST(BlockTest, StringDictionaryTravelsWithBlock) {
  enc::StringDictionary dict;
  std::vector<int64_t> codes;
  for (const char* s : {"NYC", "Naples", "NYC", "Cortland"}) {
    codes.push_back(dict.GetOrInsert(s));
  }
  auto shared = std::make_shared<enc::StringDictionary>(std::move(dict));
  std::vector<BlockColumn> columns(1);
  auto encoded = enc::ForColumn::Encode(codes);
  ASSERT_TRUE(encoded.ok());
  columns[0].encoded = std::move(encoded).value();
  columns[0].dict = shared;
  auto block = Block::Build(std::move(columns));
  ASSERT_TRUE(block.ok());
  // Dict contributes to the column footprint.
  EXPECT_EQ(block.value().ColumnSizeBytes(0),
            block.value().column(0).SizeBytes() + shared->SizeBytes());

  const auto bytes = block.value().Serialize();
  auto reloaded = Block::Deserialize(bytes);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_NE(reloaded.value().dictionary(0), nullptr);
  EXPECT_EQ((*reloaded.value().dictionary(0))[0], "NYC");
  EXPECT_EQ((*reloaded.value().dictionary(0))[1], "Naples");
  EXPECT_EQ((*reloaded.value().dictionary(0))[2], "Cortland");
}

TEST(BlockTest, BadMagicRejected) {
  auto block = MakeDiffBlock(100, 5);
  ASSERT_TRUE(block.ok());
  auto bytes = block.value().Serialize();
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(Block::Deserialize(bytes).ok());
}

TEST(BlockTest, BadVersionRejected) {
  auto block = MakeDiffBlock(100, 6);
  ASSERT_TRUE(block.ok());
  auto bytes = block.value().Serialize();
  bytes[4] = 99;
  EXPECT_FALSE(Block::Deserialize(bytes).ok());
}

TEST(BlockTest, TruncationAnywhereRejected) {
  auto block = MakeDiffBlock(64, 7);
  ASSERT_TRUE(block.ok());
  const auto bytes = block.value().Serialize();
  for (size_t cut = 0; cut < bytes.size(); cut += 11) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Block::Deserialize(truncated).ok()) << "cut " << cut;
  }
}

TEST(BlockTest, VerifyModeChecksHierarchicalIntegrity) {
  // Valid hierarchical block passes verify.
  Rng rng(8);
  const size_t n = 300;
  std::vector<int64_t> city(n);
  std::vector<int64_t> zip(n);
  for (size_t i = 0; i < n; ++i) {
    city[i] = rng.Uniform(0, 9);
    zip[i] = city[i] * 10 + rng.Uniform(0, 3);
  }
  std::vector<BlockColumn> columns(2);
  auto ref = enc::ForColumn::Encode(city);
  auto hier = HierarchicalColumn::Encode(zip, city, 0);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(hier.ok());
  columns[0].encoded = std::move(ref).value();
  columns[1].encoded = std::move(hier).value();
  auto block = Block::Build(std::move(columns));
  ASSERT_TRUE(block.ok());
  const auto bytes = block.value().Serialize();
  EXPECT_TRUE(Block::Deserialize(bytes, /*verify=*/true).ok());
}

}  // namespace
}  // namespace corra
