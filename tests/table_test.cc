// Schema, Column, Table, CompressedTable.

#include "storage/table.h"

#include <gtest/gtest.h>

#include "common/date.h"
#include "core/corra_compressor.h"

namespace corra {
namespace {

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", LogicalType::kInt64}).ok());
  ASSERT_TRUE(schema.AddField({"b", LogicalType::kDate}).ok());
  EXPECT_EQ(schema.num_fields(), 2u);
  auto idx = schema.FieldIndex("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_TRUE(schema.FieldIndex("missing").status().IsNotFound());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", LogicalType::kInt64}).ok());
  EXPECT_FALSE(schema.AddField({"a", LogicalType::kDate}).ok());
}

TEST(SchemaTest, ToStringListsFields) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"city", LogicalType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"zip", LogicalType::kInt64}).ok());
  EXPECT_EQ(schema.ToString(), "city:string, zip:int64");
}

TEST(LogicalTypeTest, Names) {
  EXPECT_EQ(LogicalTypeToString(LogicalType::kInt64), "int64");
  EXPECT_EQ(LogicalTypeToString(LogicalType::kDate), "date");
  EXPECT_EQ(LogicalTypeToString(LogicalType::kTimestamp), "timestamp");
  EXPECT_EQ(LogicalTypeToString(LogicalType::kMoney), "money");
  EXPECT_EQ(LogicalTypeToString(LogicalType::kString), "string");
}

TEST(ColumnTest, TypedFactories) {
  auto i = Column::Int64("i", {1, 2});
  EXPECT_EQ(i.type(), LogicalType::kInt64);
  auto d = Column::Date("d", {0});
  EXPECT_EQ(d.type(), LogicalType::kDate);
  auto t = Column::Timestamp("t", {0});
  EXPECT_EQ(t.type(), LogicalType::kTimestamp);
  auto m = Column::Money("m", {100});
  EXPECT_EQ(m.type(), LogicalType::kMoney);
}

TEST(ColumnTest, StringColumnBuildsDictionary) {
  const std::vector<std::string> strings = {"NYC", "Naples", "NYC"};
  auto col = Column::String("city", strings);
  EXPECT_EQ(col.type(), LogicalType::kString);
  ASSERT_NE(col.dictionary(), nullptr);
  EXPECT_EQ(col.dictionary()->size(), 2u);
  EXPECT_EQ(col.values()[0], col.values()[2]);  // Same code for "NYC".
  EXPECT_NE(col.values()[0], col.values()[1]);
}

TEST(ColumnTest, StringFromCodesValidates) {
  auto dict = std::make_shared<enc::StringDictionary>();
  dict->GetOrInsert("x");
  auto bad = Column::StringFromCodes("s", {0, 1}, dict);  // Code 1 invalid.
  EXPECT_FALSE(bad.ok());
  auto good = Column::StringFromCodes("s", {0, 0}, dict);
  EXPECT_TRUE(good.ok());
  EXPECT_FALSE(Column::StringFromCodes("s", {0}, nullptr).ok());
}

TEST(ColumnTest, RenderFormatsByType) {
  EXPECT_EQ(Column::Int64("i", {42}).Render(0), "42");
  EXPECT_EQ(Column::Date("d", {ToDays(CivilDate{1992, 1, 2})}).Render(0),
            "1992-01-02");
  EXPECT_EQ(Column::Money("m", {12345}).Render(0), "123.45");
  EXPECT_EQ(Column::Money("m", {5}).Render(0), "0.05");
  const std::vector<std::string> strings = {"hello"};
  EXPECT_EQ(Column::String("s", strings).Render(0), "hello");
  // Timestamp renders date + time of day.
  const int64_t noon = ToDays(CivilDate{2023, 6, 1}) * 86400 + 12 * 3600;
  EXPECT_EQ(Column::Timestamp("t", {noon}).Render(0), "2023-06-01 12:00:00");
}

TEST(TableTest, AddColumnValidations) {
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("a", {1, 2})).ok());
  EXPECT_FALSE(table.AddColumn(Column::Int64("a", {3, 4})).ok());  // Dup.
  EXPECT_FALSE(table.AddColumn(Column::Int64("b", {1})).ok());  // Length.
  ASSERT_TRUE(table.AddColumn(Column::Int64("b", {5, 6})).ok());
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, ColumnIndexLookup) {
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("x", {1})).ok());
  auto idx = table.ColumnIndex("x");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 0u);
  EXPECT_TRUE(table.ColumnIndex("y").status().IsNotFound());
}

TEST(TableTest, SchemaReflectsColumns) {
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Date("d", {0})).ok());
  ASSERT_TRUE(table.AddColumn(Column::Int64("i", {1})).ok());
  const Schema schema = table.schema();
  ASSERT_EQ(schema.num_fields(), 2u);
  EXPECT_EQ(schema.field(0).name, "d");
  EXPECT_EQ(schema.field(0).type, LogicalType::kDate);
  EXPECT_EQ(schema.field(1).name, "i");
}

TEST(CompressedTableTest, MultiBlockAccounting) {
  // 2500 rows with 1000-row blocks -> 3 blocks.
  std::vector<int64_t> values(2500);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i % 128);
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("v", std::move(values))).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(1);
  plan.block_rows = 1000;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  EXPECT_EQ(compressed.value().num_blocks(), 3u);
  EXPECT_EQ(compressed.value().num_rows(), 2500u);
  EXPECT_EQ(compressed.value().block(0).rows(), 1000u);
  EXPECT_EQ(compressed.value().block(2).rows(), 500u);
  // Column size = sum of block column sizes.
  size_t sum = 0;
  for (size_t b = 0; b < 3; ++b) {
    sum += compressed.value().block(b).ColumnSizeBytes(0);
  }
  EXPECT_EQ(compressed.value().ColumnSizeBytes(0), sum);
  EXPECT_EQ(compressed.value().TotalSizeBytes(), sum);
}

TEST(CompressedTableTest, DecodeColumnSpansBlocks) {
  std::vector<int64_t> values(2500);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i * 3);
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("v", values)).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(1);
  plan.block_rows = 700;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(compressed.value().DecodeColumn(0), values);
}

}  // namespace
}  // namespace corra
