#include "common/date.h"

#include <gtest/gtest.h>

namespace corra {
namespace {

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(ToDays(CivilDate{1970, 1, 1}), 0);
  EXPECT_EQ(FromDays(0), (CivilDate{1970, 1, 1}));
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(ToDays(CivilDate{1970, 1, 2}), 1);
  EXPECT_EQ(ToDays(CivilDate{1969, 12, 31}), -1);
  EXPECT_EQ(ToDays(CivilDate{2000, 3, 1}), 11017);
  EXPECT_EQ(ToDays(CivilDate{1992, 1, 1}), 8035);   // TPC-H start date.
  EXPECT_EQ(ToDays(CivilDate{1998, 12, 31}), 10591);  // TPC-H end date.
}

TEST(DateTest, RoundTripWideRange) {
  // Every ~7th day over several centuries, plus both epoch sides.
  for (int64_t days = -200000; days <= 200000; days += 7) {
    const CivilDate d = FromDays(days);
    EXPECT_EQ(ToDays(d), days) << FormatDate(days);
  }
}

TEST(DateTest, RoundTripAllDaysOfTpchRange) {
  for (int64_t days = ToDays(CivilDate{1992, 1, 1});
       days <= ToDays(CivilDate{1998, 12, 31}); ++days) {
    EXPECT_EQ(ToDays(FromDays(days)), days);
  }
}

TEST(LeapYearTest, Rules) {
  EXPECT_TRUE(IsLeapYear(2000));   // Divisible by 400.
  EXPECT_FALSE(IsLeapYear(1900));  // Divisible by 100 only.
  EXPECT_TRUE(IsLeapYear(1996));   // Divisible by 4.
  EXPECT_FALSE(IsLeapYear(1997));
}

TEST(DaysInMonthTest, FebruaryAndOthers) {
  EXPECT_EQ(DaysInMonth(1996, 2), 29);
  EXPECT_EQ(DaysInMonth(1997, 2), 28);
  EXPECT_EQ(DaysInMonth(1997, 1), 31);
  EXPECT_EQ(DaysInMonth(1997, 4), 30);
  EXPECT_EQ(DaysInMonth(1997, 12), 31);
}

TEST(DateTest, LeapDayRoundTrip) {
  const int64_t leap = ToDays(CivilDate{1996, 2, 29});
  EXPECT_EQ(FromDays(leap), (CivilDate{1996, 2, 29}));
  EXPECT_EQ(FromDays(leap + 1), (CivilDate{1996, 3, 1}));
}

TEST(ParseDateTest, Valid) {
  auto r = ParseDate("1992-01-02");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(FromDays(r.value()), (CivilDate{1992, 1, 2}));
}

TEST(ParseDateTest, FormatRoundTrip) {
  for (const char* text :
       {"1970-01-01", "1992-03-10", "1998-12-01", "2024-06-08",
        "2000-02-29"}) {
    auto r = ParseDate(text);
    ASSERT_TRUE(r.ok()) << text;
    EXPECT_EQ(FormatDate(r.value()), text);
  }
}

TEST(ParseDateTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDate("").ok());
  EXPECT_FALSE(ParseDate("1992/01/02").ok());
  EXPECT_FALSE(ParseDate("92-01-02").ok());
  EXPECT_FALSE(ParseDate("1992-1-2").ok());
  EXPECT_FALSE(ParseDate("1992-01-0a").ok());
  EXPECT_FALSE(ParseDate("1992-01-023").ok());
}

TEST(ParseDateTest, RejectsInvalidCalendarDates) {
  EXPECT_FALSE(ParseDate("1992-13-01").ok());
  EXPECT_FALSE(ParseDate("1992-00-01").ok());
  EXPECT_FALSE(ParseDate("1992-01-32").ok());
  EXPECT_FALSE(ParseDate("1992-01-00").ok());
  EXPECT_FALSE(ParseDate("1997-02-29").ok());  // Not a leap year.
  EXPECT_TRUE(ParseDate("1996-02-29").ok());   // Leap year.
}

TEST(FormatDateTest, PadsComponents) {
  EXPECT_EQ(FormatDate(ToDays(CivilDate{2001, 2, 3})), "2001-02-03");
}

}  // namespace
}  // namespace corra
