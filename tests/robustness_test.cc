// Failure-injection: deserializers must reject arbitrarily mutated block
// bytes with an error Status — never crash, hang, or read out of bounds.
// This is a deterministic mini-fuzzer (seeded mutations), exercising every
// scheme's validation paths.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/corra_compressor.h"
#include "datagen/taxi.h"
#include "storage/block.h"

namespace corra {
namespace {

// A block containing every family of scheme: vertical (auto), diff,
// hierarchical, multi-ref — maximal validation surface.
std::vector<uint8_t> MakeRichBlockBytes() {
  Rng rng(11);
  const size_t n = 2000;
  std::vector<int64_t> a(n);
  std::vector<int64_t> b(n);
  std::vector<int64_t> city(n);
  std::vector<int64_t> zip(n);
  std::vector<int64_t> total(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(100, 1000);
    b[i] = a[i] + rng.Uniform(1, 30);
    city[i] = rng.Uniform(0, 19);
    zip[i] = city[i] * 10 + rng.Uniform(0, 5);
    total[i] = rng.Bernoulli(0.5) ? a[i] : a[i] + city[i];
  }
  Table table;
  EXPECT_TRUE(table.AddColumn(Column::Int64("a", a)).ok());
  EXPECT_TRUE(table.AddColumn(Column::Int64("b", b)).ok());
  EXPECT_TRUE(table.AddColumn(Column::Int64("city", city)).ok());
  EXPECT_TRUE(table.AddColumn(Column::Int64("zip", zip)).ok());
  EXPECT_TRUE(table.AddColumn(Column::Int64("total", total)).ok());

  CompressionPlan plan = CompressionPlan::AllAuto(5);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  plan.columns[3].auto_vertical = false;
  plan.columns[3].scheme = enc::Scheme::kHierarchical;
  plan.columns[3].reference = 2;
  plan.columns[4].auto_vertical = false;
  plan.columns[4].scheme = enc::Scheme::kMultiRef;
  plan.columns[4].formulas.groups = {{0}, {2}};
  plan.columns[4].formulas.formulas = {0b01, 0b11};
  plan.columns[4].formulas.code_bits = 1;
  auto compressed = CorraCompressor::Compress(table, plan);
  EXPECT_TRUE(compressed.ok()) << compressed.status().ToString();
  return compressed.value().block(0).Serialize();
}

TEST(RobustnessTest, PristineBytesDeserialize) {
  const auto bytes = MakeRichBlockBytes();
  auto block = Block::Deserialize(bytes, /*verify=*/true);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block.value().num_columns(), 5u);
}

TEST(RobustnessTest, SingleByteMutationsNeverCrash) {
  const auto bytes = MakeRichBlockBytes();
  Rng rng(1);
  size_t rejected = 0;
  size_t accepted = 0;
  constexpr int kMutations = 3000;
  for (int trial = 0; trial < kMutations; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    const size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
    const uint8_t flip =
        static_cast<uint8_t>(rng.Uniform(1, 255));
    mutated[pos] ^= flip;
    auto block = Block::Deserialize(mutated, /*verify=*/true);
    if (block.ok()) {
      // A mutation inside a packed payload can produce a structurally
      // valid block; reading it must still be safe.
      ++accepted;
      std::vector<int64_t> out(block.value().rows());
      block.value().column(1).DecodeAll(out.data());
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected + accepted, static_cast<size_t>(kMutations));
  // Structural damage must dominate payload-only damage.
  EXPECT_GT(rejected, static_cast<size_t>(kMutations) / 10);
}

TEST(RobustnessTest, MultiByteMutationsNeverCrash) {
  const auto bytes = MakeRichBlockBytes();
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    const int edits = static_cast<int>(rng.Uniform(2, 32));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<uint8_t>(rng.Uniform(0, 255));
    }
    auto block = Block::Deserialize(mutated, /*verify=*/true);
    if (block.ok()) {
      std::vector<int64_t> out(block.value().rows());
      for (size_t c = 0; c < block.value().num_columns(); ++c) {
        block.value().column(c).DecodeAll(out.data());
      }
    }
  }
  SUCCEED();  // Reaching here without crashing is the assertion.
}

TEST(RobustnessTest, EveryTruncationRejected) {
  const auto bytes = MakeRichBlockBytes();
  for (size_t cut = 0; cut < bytes.size(); cut += 13) {
    const std::vector<uint8_t> truncated(
        bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Block::Deserialize(truncated).ok()) << "cut " << cut;
  }
}

TEST(RobustnessTest, RandomGarbageRejected) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(
        static_cast<size_t>(rng.Uniform(0, 4096)));
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.Uniform(0, 255));
    }
    EXPECT_FALSE(Block::Deserialize(garbage).ok());
  }
}

TEST(RobustnessTest, TaxiBlockSurvivesOutlierRegionMutations) {
  // Mutations specifically aimed at the serialized outlier store of a
  // realistic multi-ref column.
  auto table = datagen::MakeTaxiTable(20000, 5).value();
  using C = datagen::TaxiColumns;
  CompressionPlan plan = CompressionPlan::AllAuto(11);
  auto& total = plan.columns[C::kTotalAmount];
  total.auto_vertical = false;
  total.scheme = enc::Scheme::kMultiRef;
  total.formulas.groups = {
      {C::kMtaTax, C::kFareAmount, C::kImprovementSurcharge, C::kExtra,
       C::kTipAmount, C::kTollsAmount},
      {C::kCongestionSurcharge},
      {C::kAirportFee}};
  total.formulas.formulas = {0b001, 0b011, 0b101, 0b111};
  total.formulas.code_bits = 2;
  auto compressed = CorraCompressor::Compress(table, plan).value();
  const auto bytes = compressed.block(0).Serialize();

  Rng rng(6);
  // The outlier store serializes near the end of the stream; hammer the
  // last kilobyte.
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    const size_t lo = mutated.size() > 1024 ? mutated.size() - 1024 : 0;
    const size_t pos = static_cast<size_t>(rng.Uniform(
        static_cast<int64_t>(lo),
        static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] ^= static_cast<uint8_t>(rng.Uniform(1, 255));
    auto block = Block::Deserialize(mutated, /*verify=*/true);
    if (block.ok()) {
      std::vector<int64_t> out(block.value().rows());
      block.value().column(C::kTotalAmount).DecodeAll(out.data());
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace corra
