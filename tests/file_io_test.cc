// File persistence: write/read round-trips, partial block loads,
// corruption rejection.

#include "storage/file_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/buffer.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/corra_compressor.h"
#include "query/aggregate.h"
#include "test_util.h"

namespace corra {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "corra_file_io_test.corf";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // A 3-block compressed table with a diff-encoded column.
  CompressedTable MakeTable(size_t rows = 2500) {
    Rng rng(7);
    std::vector<int64_t> ship(rows);
    std::vector<int64_t> receipt(rows);
    for (size_t i = 0; i < rows; ++i) {
      ship[i] = rng.Uniform(8035, 10591);
      receipt[i] = ship[i] + rng.Uniform(1, 30);
    }
    ship_ = ship;
    receipt_ = receipt;
    Table table;
    EXPECT_TRUE(table.AddColumn(Column::Date("ship", ship)).ok());
    EXPECT_TRUE(table.AddColumn(Column::Date("receipt", receipt)).ok());
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.block_rows = 1000;
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kDiff;
    plan.columns[1].reference = 0;
    return CorraCompressor::Compress(table, plan).value();
  }

  std::string path_;
  std::vector<int64_t> ship_;
  std::vector<int64_t> receipt_;
};

TEST_F(FileIoTest, WriteReadRoundTrip) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto reloaded = ReadCompressedTable(path_, /*verify=*/true);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().num_blocks(), 3u);
  EXPECT_EQ(reloaded.value().num_rows(), 2500u);
  EXPECT_EQ(reloaded.value().schema(), table.schema());
  EXPECT_EQ(reloaded.value().DecodeColumn(1), receipt_);
}

TEST_F(FileIoTest, FileInfoWithoutPayload) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_blocks, 3u);
  EXPECT_EQ(info.value().schema.num_fields(), 2u);
  EXPECT_EQ(info.value().schema.field(1).name, "receipt");
  // Directory entries are contiguous and ordered.
  for (size_t b = 1; b < info.value().num_blocks; ++b) {
    EXPECT_EQ(info.value().block_offsets[b],
              info.value().block_offsets[b - 1] +
                  info.value().block_lengths[b - 1]);
  }
}

TEST_F(FileIoTest, SingleBlockLoad) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto block = ReadBlock(path_, 1, /*verify=*/true);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block.value().rows(), 1000u);
  // Block 1 covers global rows 1000..1999.
  for (size_t i = 0; i < 1000; i += 97) {
    EXPECT_EQ(block.value().column(1).Get(i), receipt_[1000 + i]);
  }
}

TEST_F(FileIoTest, BlockIndexOutOfRange) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  auto block = ReadBlock(path_, 3);
  EXPECT_FALSE(block.ok());
  EXPECT_TRUE(block.status().IsOutOfRange());
}

TEST_F(FileIoTest, MissingFileIsNotFound) {
  auto result = ReadCompressedTable(path_ + ".does-not-exist");
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_TRUE(ReadFileInfo(path_ + ".nope").status().IsNotFound());
}

TEST_F(FileIoTest, BadMagicRejected) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXX", 4);
  }
  EXPECT_TRUE(ReadCompressedTable(path_).status().IsCorruption());
}

TEST_F(FileIoTest, TruncatedFileRejected) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  // Cut the last block's payload short.
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<long>(contents.size() - 100));
  out.close();
  auto result = ReadCompressedTable(path_);
  EXPECT_FALSE(result.ok());
}

TEST_F(FileIoTest, CorruptedBlockPayloadRejected) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok());
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<long>(info.value().block_offsets[1]));
    f.write("\xFF\xFF\xFF\xFF", 4);  // Smash block 1's magic.
  }
  EXPECT_FALSE(ReadBlock(path_, 1).ok());
  EXPECT_TRUE(ReadBlock(path_, 0).ok());  // Other blocks unaffected.
}

TEST_F(FileIoTest, OverwriteReplacesContents) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(2500), path_).ok());
  // Rebuild with different data; the file must reflect the second write.
  Rng rng(99);
  std::vector<int64_t> values(100);
  for (auto& v : values) {
    v = rng.Uniform(0, 9);
  }
  Table small;
  ASSERT_TRUE(small.AddColumn(Column::Int64("only", values)).ok());
  auto compressed =
      CorraCompressor::Compress(small, CompressionPlan::AllAuto(1));
  ASSERT_TRUE(compressed.ok());
  ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());
  auto reloaded = ReadCompressedTable(path_);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().num_rows(), 100u);
  EXPECT_EQ(reloaded.value().schema().field(0).name, "only");
}

TEST_F(FileIoTest, DirectoryCarriesRowCountsAndChecksums) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().block_rows,
            (std::vector<uint64_t>{1000, 1000, 500}));
  EXPECT_EQ(info.value().TotalRows(), 2500u);
  ASSERT_EQ(info.value().block_checksums.size(), 3u);
  // Distinct payloads hash to distinct checksums.
  EXPECT_NE(info.value().block_checksums[0],
            info.value().block_checksums[2]);
}

TEST_F(FileIoTest, V3StatsMatchAggregatePushdown) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info.value().has_column_stats);
  ASSERT_EQ(info.value().column_stats.size(),
            table.num_blocks() * table.schema().num_fields());
  for (size_t b = 0; b < table.num_blocks(); ++b) {
    for (size_t c = 0; c < table.schema().num_fields(); ++c) {
      const ColumnStats& stats = info.value().Stats(b, c);
      EXPECT_EQ(stats.min, query::MinColumn(table.block(b).column(c)))
          << "block " << b << " col " << c;
      EXPECT_EQ(stats.max, query::MaxColumn(table.block(b).column(c)))
          << "block " << b << " col " << c;
      EXPECT_LE(stats.min, stats.max);
    }
  }
}

TEST_F(FileIoTest, V2FilesRemainReadableWithoutStats) {
  const CompressedTable table = MakeTable();
  test::WriteCompressedTableV2(table, path_);
  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info.value().has_column_stats);
  EXPECT_TRUE(info.value().column_stats.empty());
  EXPECT_EQ(info.value().TotalRows(), 2500u);

  // Payloads (and their checksums) are identical across versions.
  auto reloaded = ReadCompressedTable(path_, /*verify=*/true);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().DecodeColumn(0), ship_);
  EXPECT_EQ(reloaded.value().DecodeColumn(1), receipt_);
}

TEST_F(FileIoTest, TruncatedHeaderRejected) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  // Keep only the first 8 bytes — magic survives, the directory is gone.
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), 8);
  out.close();
  EXPECT_TRUE(ReadFileInfo(path_).status().IsCorruption());
  EXPECT_TRUE(ReadCompressedTable(path_).status().IsCorruption());
}

TEST_F(FileIoTest, CorruptedDirectoryEntryRejected) {
  // Handcraft a header whose only directory entry points far beyond the
  // end of the file.
  BufferWriter writer;
  writer.Write<uint32_t>(0x46524F43);  // "CORF"
  writer.Write<uint8_t>(2);            // Version.
  writer.Write<uint32_t>(0);           // No fields.
  writer.Write<uint32_t>(1);           // One block...
  writer.Write<uint64_t>(uint64_t{1} << 40);  // ...at a bogus offset.
  writer.Write<uint64_t>(16);                 // Length.
  writer.Write<uint64_t>(100);                // Rows.
  writer.Write<uint64_t>(0);                  // Checksum.
  const std::vector<uint8_t> bytes = std::move(writer).Finish();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<long>(bytes.size()));
  out.close();

  auto info = ReadFileInfo(path_);
  EXPECT_TRUE(info.status().IsCorruption());
  EXPECT_NE(info.status().message().find("out of bounds"),
            std::string::npos);
}

TEST_F(FileIoTest, VerifyCatchesFlippedPayloadByte) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok());
  // Flip one byte in the middle of block 1's payload.
  const uint64_t target =
      info.value().block_offsets[1] + info.value().block_lengths[1] / 2;
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<long>(target));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<long>(target));
    f.write(&byte, 1);
  }
  auto block = ReadBlock(path_, 1, /*verify=*/true);
  EXPECT_FALSE(block.ok());
  EXPECT_TRUE(block.status().IsCorruption());
  EXPECT_FALSE(ReadCompressedTable(path_, /*verify=*/true).ok());
  // Untouched blocks still verify.
  EXPECT_TRUE(ReadBlock(path_, 0, /*verify=*/true).ok());
}

TEST_F(FileIoTest, CorfFileServesConcurrentBlockReads) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file.value().num_blocks(), 3u);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        for (size_t b = 0; b < file.value().num_blocks(); ++b) {
          auto block = file.value().ReadBlock(b, /*verify=*/true);
          if (!block.ok() ||
              block.value().rows() != file.value().info().block_rows[b]) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(FileIoTest, DirectoryLargerThanProbeIsReadExactly) {
  // 3000 one-row blocks put the directory (~96 KB) past the 64 KB
  // header probe, exercising the exact-size re-read path.
  Rng rng(3);
  std::vector<int64_t> values(3000);
  for (auto& v : values) {
    v = rng.Uniform(0, 1 << 16);
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("v", values)).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(1);
  plan.block_rows = 1;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok());
  ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());

  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().num_blocks, 3000u);
  EXPECT_EQ(info.value().TotalRows(), 3000u);
  auto block = ReadBlock(path_, 2999, /*verify=*/true);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().column(0).Get(0), values[2999]);
}

TEST_F(FileIoTest, CorfFileRejectsOutOfRangeBlock) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.value().ReadBlock(3).status().IsOutOfRange());
  EXPECT_TRUE(file.value().ReadBlockBytes(99).status().IsOutOfRange());
}

TEST(RetryBackoffTest, MonotoneThenCappedWithBoundedJitter) {
  const CorfFileOptions options;  // base 20 us, cap 2000 us.
  uint64_t prev = 0;
  for (uint32_t attempt = 0; attempt < 12; ++attempt) {
    const uint64_t us = RetryBackoffUs(options, attempt, /*salt=*/7);
    const uint64_t step =
        std::min<uint64_t>(options.backoff_cap_us,
                           uint64_t{options.backoff_base_us} << attempt);
    EXPECT_GE(us, step) << "attempt " << attempt;
    EXPECT_LT(us, step + std::max<uint64_t>(step / 4, 1))
        << "attempt " << attempt;
    // Strictly increasing until the cap: the next step doubles, which
    // outruns the at-most-quarter-step jitter.
    if (attempt > 0 &&
        (uint64_t{options.backoff_base_us} << attempt) <=
            options.backoff_cap_us) {
      EXPECT_GT(us, prev) << "attempt " << attempt;
    }
    prev = us;
  }
  // Deterministic for a given (options, attempt, salt).
  EXPECT_EQ(RetryBackoffUs(options, 3, 7), RetryBackoffUs(options, 3, 7));
}

class FileIoFaultTest : public FileIoTest {
 protected:
  void SetUp() override {
    FileIoTest::SetUp();
    if (!fail::CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out (CORRA_FAILPOINTS_OFF)";
    }
    fail::ClearAll();
    ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  }
  void TearDown() override {
    fail::ClearAll();
    FileIoTest::TearDown();
  }

  // Block 1 decoded fault-free — the byte-identity baseline. Opens
  // (and reads) before any failpoint is armed.
  std::vector<int64_t> Baseline() {
    return std::vector<int64_t>(receipt_.begin() + 1000,
                                receipt_.begin() + 2000);
  }

  static std::vector<int64_t> DecodeCol1(const Block& block) {
    std::vector<int64_t> values(block.rows());
    block.column(1).DecodeAll(values.data());
    return values;
  }
};

TEST_F(FileIoFaultTest, EintrIsRetriedTransparently) {
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok());
  fail::ScopedFailpoint fp("corf.pread.eintr", "times:3");
  BlockReadStats stats;
  auto block = file.value().ReadBlock(1, /*verify=*/true, &stats);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(DecodeCol1(block.value()), Baseline());
}

TEST_F(FileIoFaultTest, EintrStormIsBoundedNotInfinite) {
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok());
  fail::ScopedFailpoint fp("corf.pread.eintr", "every:1");
  auto block = file.value().ReadBlock(1);
  ASSERT_FALSE(block.ok());
  EXPECT_TRUE(block.status().IsIOError());
  EXPECT_NE(block.status().message().find("EINTR"), std::string::npos);
}

TEST_F(FileIoFaultTest, ShortReadsMakeProgressAndStayByteIdentical) {
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok());
  fail::ScopedFailpoint fp("corf.pread.short", "every:1");
  BlockReadStats stats;
  auto block = file.value().ReadBlock(1, /*verify=*/true, &stats);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_GT(stats.retries, 0u);  // Halved preads forced extra calls.
  EXPECT_EQ(DecodeCol1(block.value()), Baseline());
}

TEST_F(FileIoFaultTest, EioWithinBudgetSucceedsAfterRetries) {
  CorfFileOptions options;
  options.max_read_retries = 2;
  options.backoff_base_us = 1;  // Keep the test fast.
  auto file = CorfFile::Open(path_, options);
  ASSERT_TRUE(file.ok());
  fail::ScopedFailpoint fp("corf.pread.eio", "times:2");
  BlockReadStats stats;
  auto block = file.value().ReadBlock(1, /*verify=*/true, &stats);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(DecodeCol1(block.value()), Baseline());
}

TEST_F(FileIoFaultTest, PersistentEioExhaustsBudgetWithContext) {
  CorfFileOptions options;
  options.max_read_retries = 2;
  options.backoff_base_us = 1;
  auto file = CorfFile::Open(path_, options);
  ASSERT_TRUE(file.ok());
  fail::ScopedFailpoint fp("corf.pread.eio", "every:1");
  auto block = file.value().ReadBlock(1);
  ASSERT_FALSE(block.ok());
  EXPECT_TRUE(block.status().IsIOError());
  EXPECT_FALSE(block.status().IsCorruption());
  const std::string& message = block.status().message();
  EXPECT_NE(message.find("after 3 attempt(s)"), std::string::npos)
      << message;
  EXPECT_NE(message.find(path_), std::string::npos) << message;
  EXPECT_NE(message.find("block 1"), std::string::npos) << message;
  EXPECT_NE(message.find("offset"), std::string::npos) << message;
}

TEST_F(FileIoFaultTest, RetriesAreDisabledWithZeroBudget) {
  CorfFileOptions options;
  options.max_read_retries = 0;
  auto file = CorfFile::Open(path_, options);
  ASSERT_TRUE(file.ok());
  fail::ScopedFailpoint fp("corf.pread.eio", "times:1");
  EXPECT_TRUE(file.value().ReadBlock(1).status().IsIOError());
  // The single injected error was consumed; the next read is clean.
  EXPECT_TRUE(file.value().ReadBlock(1).ok());
}

TEST_F(FileIoFaultTest, TransientBitFlipIsCuredByChecksumReread) {
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok());
  fail::ScopedFailpoint fp("corf.payload.bitflip", "times:1");
  BlockReadStats stats;
  auto block = file.value().ReadBlock(1, /*verify=*/true, &stats);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(stats.checksum_rereads, 1u);
  EXPECT_EQ(DecodeCol1(block.value()), Baseline());
}

TEST_F(FileIoFaultTest, PersistentBitFlipFailsAfterOneReread) {
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok());
  fail::ScopedFailpoint fp("corf.payload.bitflip", "every:1");
  BlockReadStats stats;
  auto block = file.value().ReadBlock(1, /*verify=*/true, &stats);
  ASSERT_FALSE(block.ok());
  EXPECT_TRUE(block.status().IsCorruption());
  EXPECT_EQ(stats.checksum_rereads, 1u);  // Exactly one re-read, not a loop.
  const std::string& message = block.status().message();
  EXPECT_NE(message.find("after re-read"), std::string::npos) << message;
  EXPECT_NE(message.find("expected 0x"), std::string::npos) << message;
  EXPECT_NE(message.find("block 1"), std::string::npos) << message;
}

TEST_F(FileIoFaultTest, TruncationIsCorruptionNotIOError) {
  // Distinct failure taxonomies: a truncated extent is damaged data
  // (Corruption, never retried), a failing medium is kIOError.
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok());
  const FileInfo& info = file.value().info();
  const uint64_t cut = info.block_offsets[2] + info.block_lengths[2] / 2;
  ASSERT_EQ(::truncate(path_.c_str(), static_cast<off_t>(cut)), 0);
  auto block = file.value().ReadBlock(2);
  ASSERT_FALSE(block.ok());
  EXPECT_TRUE(block.status().IsCorruption());
  EXPECT_FALSE(block.status().IsIOError());
  const std::string& message = block.status().message();
  EXPECT_NE(message.find("truncated"), std::string::npos) << message;
  EXPECT_NE(message.find("block 2"), std::string::npos) << message;
}

TEST_F(FileIoFaultTest, HeaderReadsRetryToo) {
  // Arm before Open: the header/directory preads share the retry path.
  fail::ScopedFailpoint fp("corf.pread.eintr", "times:2");
  auto file = CorfFile::Open(path_);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file.value().num_blocks(), 3u);
}

TEST_F(FileIoTest, StringDictionariesSurviveFile) {
  const std::vector<std::string> strings = {"NY", "CA", "NY", "TX"};
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::String("state", strings)).ok());
  auto compressed =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(1));
  ASSERT_TRUE(compressed.ok());
  ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());
  auto reloaded = ReadCompressedTable(path_);
  ASSERT_TRUE(reloaded.ok());
  const auto* dict = reloaded.value().block(0).dictionary(0);
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ((*dict)[0], "NY");
  EXPECT_EQ((*dict)[1], "CA");
  EXPECT_EQ((*dict)[2], "TX");
}

}  // namespace
}  // namespace corra
