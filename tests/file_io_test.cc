// File persistence: write/read round-trips, partial block loads,
// corruption rejection.

#include "storage/file_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/random.h"
#include "core/corra_compressor.h"

namespace corra {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "corra_file_io_test.corf";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // A 3-block compressed table with a diff-encoded column.
  CompressedTable MakeTable(size_t rows = 2500) {
    Rng rng(7);
    std::vector<int64_t> ship(rows);
    std::vector<int64_t> receipt(rows);
    for (size_t i = 0; i < rows; ++i) {
      ship[i] = rng.Uniform(8035, 10591);
      receipt[i] = ship[i] + rng.Uniform(1, 30);
    }
    ship_ = ship;
    receipt_ = receipt;
    Table table;
    EXPECT_TRUE(table.AddColumn(Column::Date("ship", ship)).ok());
    EXPECT_TRUE(table.AddColumn(Column::Date("receipt", receipt)).ok());
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.block_rows = 1000;
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kDiff;
    plan.columns[1].reference = 0;
    return CorraCompressor::Compress(table, plan).value();
  }

  std::string path_;
  std::vector<int64_t> ship_;
  std::vector<int64_t> receipt_;
};

TEST_F(FileIoTest, WriteReadRoundTrip) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto reloaded = ReadCompressedTable(path_, /*verify=*/true);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().num_blocks(), 3u);
  EXPECT_EQ(reloaded.value().num_rows(), 2500u);
  EXPECT_EQ(reloaded.value().schema(), table.schema());
  EXPECT_EQ(reloaded.value().DecodeColumn(1), receipt_);
}

TEST_F(FileIoTest, FileInfoWithoutPayload) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_blocks, 3u);
  EXPECT_EQ(info.value().schema.num_fields(), 2u);
  EXPECT_EQ(info.value().schema.field(1).name, "receipt");
  // Directory entries are contiguous and ordered.
  for (size_t b = 1; b < info.value().num_blocks; ++b) {
    EXPECT_EQ(info.value().block_offsets[b],
              info.value().block_offsets[b - 1] +
                  info.value().block_lengths[b - 1]);
  }
}

TEST_F(FileIoTest, SingleBlockLoad) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto block = ReadBlock(path_, 1, /*verify=*/true);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block.value().rows(), 1000u);
  // Block 1 covers global rows 1000..1999.
  for (size_t i = 0; i < 1000; i += 97) {
    EXPECT_EQ(block.value().column(1).Get(i), receipt_[1000 + i]);
  }
}

TEST_F(FileIoTest, BlockIndexOutOfRange) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  auto block = ReadBlock(path_, 3);
  EXPECT_FALSE(block.ok());
  EXPECT_TRUE(block.status().IsOutOfRange());
}

TEST_F(FileIoTest, MissingFileIsNotFound) {
  auto result = ReadCompressedTable(path_ + ".does-not-exist");
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_TRUE(ReadFileInfo(path_ + ".nope").status().IsNotFound());
}

TEST_F(FileIoTest, BadMagicRejected) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXX", 4);
  }
  EXPECT_TRUE(ReadCompressedTable(path_).status().IsCorruption());
}

TEST_F(FileIoTest, TruncatedFileRejected) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(), path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  // Cut the last block's payload short.
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<long>(contents.size() - 100));
  out.close();
  auto result = ReadCompressedTable(path_);
  EXPECT_FALSE(result.ok());
}

TEST_F(FileIoTest, CorruptedBlockPayloadRejected) {
  const CompressedTable table = MakeTable();
  ASSERT_TRUE(WriteCompressedTable(table, path_).ok());
  auto info = ReadFileInfo(path_);
  ASSERT_TRUE(info.ok());
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<long>(info.value().block_offsets[1]));
    f.write("\xFF\xFF\xFF\xFF", 4);  // Smash block 1's magic.
  }
  EXPECT_FALSE(ReadBlock(path_, 1).ok());
  EXPECT_TRUE(ReadBlock(path_, 0).ok());  // Other blocks unaffected.
}

TEST_F(FileIoTest, OverwriteReplacesContents) {
  ASSERT_TRUE(WriteCompressedTable(MakeTable(2500), path_).ok());
  // Rebuild with different data; the file must reflect the second write.
  Rng rng(99);
  std::vector<int64_t> values(100);
  for (auto& v : values) {
    v = rng.Uniform(0, 9);
  }
  Table small;
  ASSERT_TRUE(small.AddColumn(Column::Int64("only", values)).ok());
  auto compressed =
      CorraCompressor::Compress(small, CompressionPlan::AllAuto(1));
  ASSERT_TRUE(compressed.ok());
  ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());
  auto reloaded = ReadCompressedTable(path_);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().num_rows(), 100u);
  EXPECT_EQ(reloaded.value().schema().field(0).name, "only");
}

TEST_F(FileIoTest, StringDictionariesSurviveFile) {
  const std::vector<std::string> strings = {"NY", "CA", "NY", "TX"};
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::String("state", strings)).ok());
  auto compressed =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(1));
  ASSERT_TRUE(compressed.ok());
  ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());
  auto reloaded = ReadCompressedTable(path_);
  ASSERT_TRUE(reloaded.ok());
  const auto* dict = reloaded.value().block(0).dictionary(0);
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ((*dict)[0], "NY");
  EXPECT_EQ((*dict)[1], "CA");
  EXPECT_EQ((*dict)[2], "TX");
}

}  // namespace
}  // namespace corra
