// Hierarchical encoding — Sec. 2.2 (Fig. 3, Alg. 1).

#include "core/hierarchical_encoding.h"

#include <gtest/gtest.h>

#include "common/bit_util.h"
#include "common/random.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "test_util.h"

namespace corra {
namespace {

// The paper's Fig. 3 example: (city, zip-code) rows of the DMV dataset.
struct Fig3Data {
  // city codes: 0=Cortland, 1=Naples, 2=NYC
  std::vector<int64_t> city = {0, 1, 1, 1, 2, 2};
  std::vector<int64_t> zip = {13045, 34102, 34112, 34102, 10016, 10001};
};

struct Bound {
  std::unique_ptr<enc::ForColumn> ref;
  std::unique_ptr<HierarchicalColumn> hier;
};

Bound MakeBound(const std::vector<int64_t>& target,
                const std::vector<int64_t>& ref_codes) {
  Bound b;
  auto ref = enc::ForColumn::Encode(ref_codes);
  EXPECT_TRUE(ref.ok());
  b.ref = std::move(ref).value();
  auto hier = HierarchicalColumn::Encode(target, ref_codes, 0);
  EXPECT_TRUE(hier.ok()) << hier.status().ToString();
  b.hier = std::move(hier).value();
  const enc::EncodedColumn* refs[] = {b.ref.get()};
  EXPECT_TRUE(b.hier->BindReferences(refs).ok());
  return b;
}

TEST(HierarchicalTest, PaperFig3Example) {
  Fig3Data data;
  auto b = MakeBound(data.zip, data.city);
  test::ExpectColumnMatches(*b.hier, data.zip);
  // Metadata: 5 distinct (city, zip) pairs; 3 cities.
  EXPECT_EQ(b.hier->value_count(), 5u);
  EXPECT_EQ(b.hier->ref_cardinality(), 3u);
  // Max local dictionary holds 2 zips -> 1 bit per row.
  EXPECT_EQ(b.hier->bit_width(), 1);
  EXPECT_TRUE(b.hier->VerifyWithReference().ok());
}

TEST(HierarchicalTest, RepeatedPairSharesLocalCode) {
  // (Naples, 34102) appears twice; both rows must carry the same local
  // index (the paper's "key insight" on repetition).
  Fig3Data data;
  auto b = MakeBound(data.zip, data.city);
  EXPECT_EQ(b.hier->Get(1), 34102);
  EXPECT_EQ(b.hier->Get(3), 34102);
}

TEST(HierarchicalTest, SingleCityDegenerate) {
  const std::vector<int64_t> city(100, 0);
  std::vector<int64_t> zip(100);
  Rng rng(1);
  for (auto& z : zip) {
    z = 10000 + rng.Uniform(0, 15);
  }
  auto b = MakeBound(zip, city);
  test::ExpectColumnMatches(*b.hier, zip);
  EXPECT_EQ(b.hier->ref_cardinality(), 1u);
}

TEST(HierarchicalTest, FunctionalDependencyNeedsZeroBits) {
  // One zip per city: local index always 0.
  std::vector<int64_t> city(1000);
  std::vector<int64_t> zip(1000);
  Rng rng(2);
  for (size_t i = 0; i < city.size(); ++i) {
    city[i] = rng.Uniform(0, 49);
    zip[i] = 90000 + city[i];
  }
  auto b = MakeBound(zip, city);
  EXPECT_EQ(b.hier->bit_width(), 0);
  test::ExpectColumnMatches(*b.hier, zip);
}

TEST(HierarchicalTest, RejectsNegativeRefCodes) {
  const std::vector<int64_t> city = {0, -1};
  const std::vector<int64_t> zip = {1, 2};
  EXPECT_FALSE(HierarchicalColumn::Encode(zip, city, 0).ok());
  EXPECT_EQ(HierarchicalColumn::EstimateSizeBytes(zip, city), SIZE_MAX);
}

TEST(HierarchicalTest, RejectsLengthMismatch) {
  const std::vector<int64_t> city = {0, 1};
  const std::vector<int64_t> zip = {1};
  EXPECT_FALSE(HierarchicalColumn::Encode(zip, city, 0).ok());
}

TEST(HierarchicalTest, GapsInRefCodesGetEmptySlices) {
  // Codes {0, 5}: cities 1-4 never occur but still need offsets slots.
  const std::vector<int64_t> city = {0, 5, 0, 5};
  const std::vector<int64_t> zip = {11, 22, 11, 33};
  auto b = MakeBound(zip, city);
  EXPECT_EQ(b.hier->ref_cardinality(), 6u);
  test::ExpectColumnMatches(*b.hier, zip);
}

TEST(HierarchicalTest, SizeBytesAccountsMetadata) {
  Fig3Data data;
  auto b = MakeBound(data.zip, data.city);
  // payload: 6 rows * 1 bit = 1 byte; values: 5 * 8; offsets: 4 * 4.
  EXPECT_EQ(b.hier->SizeBytes(), 1u + 40u + 16u);
}

TEST(HierarchicalTest, EstimateMatchesActual) {
  Rng rng(3);
  std::vector<int64_t> city(5000);
  std::vector<int64_t> zip(5000);
  for (size_t i = 0; i < city.size(); ++i) {
    city[i] = rng.Uniform(0, 199);
    zip[i] = city[i] * 100 + rng.Uniform(0, 30);
  }
  auto col = HierarchicalColumn::Encode(zip, city, 0);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(HierarchicalColumn::EstimateSizeBytes(zip, city),
            col.value()->SizeBytes());
}

TEST(HierarchicalTest, BeatsDictWhenLocallySmall) {
  // 200 cities x up to 32 zips = ~6400 distinct zips (13 dict bits), but
  // only 5 bits of local index.
  Rng rng(4);
  std::vector<int64_t> city(20000);
  std::vector<int64_t> zip(20000);
  for (size_t i = 0; i < city.size(); ++i) {
    city[i] = rng.Uniform(0, 199);
    zip[i] = city[i] * 1000 + rng.Uniform(0, 31);
  }
  auto hier = HierarchicalColumn::Encode(zip, city, 0);
  ASSERT_TRUE(hier.ok());
  auto dict = enc::DictColumn::Encode(zip);
  ASSERT_TRUE(dict.ok());
  EXPECT_LT(hier.value()->SizeBytes(), dict.value()->SizeBytes());
}

TEST(HierarchicalTest, SerializeRoundTrip) {
  Rng rng(5);
  std::vector<int64_t> city(3000);
  std::vector<int64_t> zip(3000);
  for (size_t i = 0; i < city.size(); ++i) {
    city[i] = rng.Uniform(0, 99);
    zip[i] = 10000 + city[i] * 50 + rng.Uniform(0, 20);
  }
  auto b = MakeBound(zip, city);
  auto reloaded = test::SerializeRoundTrip(*b.hier);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->scheme(), enc::Scheme::kHierarchical);
  const enc::EncodedColumn* refs[] = {b.ref.get()};
  ASSERT_TRUE(reloaded->BindReferences(refs).ok());
  test::ExpectColumnMatches(*reloaded, zip);
  EXPECT_EQ(reloaded->SizeBytes(), b.hier->SizeBytes());
}

TEST(HierarchicalTest, GatherWithReferenceMatchesGather) {
  Rng rng(6);
  std::vector<int64_t> city(4000);
  std::vector<int64_t> zip(4000);
  for (size_t i = 0; i < city.size(); ++i) {
    city[i] = rng.Uniform(0, 30);
    zip[i] = city[i] * 10 + rng.Uniform(0, 9);
  }
  auto b = MakeBound(zip, city);
  std::vector<uint32_t> rows;
  for (uint32_t i = 1; i < 4000; i += 11) {
    rows.push_back(i);
  }
  std::vector<int64_t> ref_values(rows.size());
  b.ref->Gather(rows, ref_values.data());
  std::vector<int64_t> via_ref(rows.size());
  b.hier->GatherWithReference(rows, ref_values.data(), via_ref.data());
  std::vector<int64_t> direct(rows.size());
  b.hier->Gather(rows, direct.data());
  EXPECT_EQ(via_ref, direct);
}

TEST(HierarchicalTest, OffsetsMonotoneInvariant) {
  // Deserializer must reject non-monotone offsets.
  Fig3Data data;
  auto b = MakeBound(data.zip, data.city);
  BufferWriter writer;
  b.hier->Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  // Offsets follow the values array: scheme(1) + ref(4) + len(8) + 5*8
  // values + len(8), then 4 uint32 offsets {0,1,3,5}. Corrupt the second.
  const size_t offsets_data = 1 + 4 + 8 + 40 + 8;
  bytes[offsets_data + 4] = 0xEE;
  BufferReader reader(bytes);
  auto result = DeserializeEncodedColumn(&reader);
  EXPECT_FALSE(result.ok());
}

TEST(HierarchicalTest, VerifyCatchesOutOfRangeRefCode) {
  // Bind a reference whose codes exceed the metadata's cardinality.
  Fig3Data data;
  auto hier = HierarchicalColumn::Encode(data.zip, data.city, 0);
  ASSERT_TRUE(hier.ok());
  const std::vector<int64_t> bad_codes = {0, 1, 1, 9, 2, 2};  // 9 >= 3.
  auto bad_ref = enc::ForColumn::Encode(bad_codes);
  ASSERT_TRUE(bad_ref.ok());
  const enc::EncodedColumn* refs[] = {bad_ref.value().get()};
  ASSERT_TRUE(hier.value()->BindReferences(refs).ok());
  EXPECT_FALSE(hier.value()->VerifyWithReference().ok());
}

// Property sweep: hierarchical reconstruction is exact for random
// hierarchies of varying fan-out.
class HierarchicalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HierarchicalPropertyTest, ExactReconstruction) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  const size_t n = 1000 + static_cast<size_t>(rng.Uniform(0, 3000));
  const int64_t cities = rng.Uniform(1, 300);
  const int64_t fanout = rng.Uniform(1, 60);
  std::vector<int64_t> city(n);
  std::vector<int64_t> zip(n);
  for (size_t i = 0; i < n; ++i) {
    city[i] = rng.Uniform(0, cities - 1);
    zip[i] = city[i] * 1000 + rng.Uniform(0, fanout - 1);
  }
  auto b = MakeBound(zip, city);
  test::ExpectColumnMatches(*b.hier, zip);
  EXPECT_TRUE(b.hier->VerifyWithReference().ok());
  // The local width is bounded by the fan-out.
  EXPECT_LE(b.hier->bit_width(),
            bit_util::BitWidth(static_cast<uint64_t>(fanout)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace corra
