// CorraCompressor: plans, block splitting, horizontal schemes end to end.

#include "core/corra_compressor.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/tpch.h"
#include "encoding/delta.h"

namespace corra {
namespace {

Table MakeDatePair(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> ship(n);
  std::vector<int64_t> receipt(n);
  for (size_t i = 0; i < n; ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
  }
  Table table;
  EXPECT_TRUE(table.AddColumn(Column::Date("ship", std::move(ship))).ok());
  EXPECT_TRUE(
      table.AddColumn(Column::Date("receipt", std::move(receipt))).ok());
  return table;
}

TEST(CompressorTest, AllAutoMatchesBaselineSelector) {
  Table table = MakeDatePair(5000, 1);
  auto compressed =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(2));
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  EXPECT_EQ(compressed.value().num_blocks(), 1u);
  // Both columns decode exactly.
  EXPECT_EQ(compressed.value().DecodeColumn(0),
            std::vector<int64_t>(table.column(0).values().begin(),
                                 table.column(0).values().end()));
  EXPECT_EQ(compressed.value().DecodeColumn(1),
            std::vector<int64_t>(table.column(1).values().begin(),
                                 table.column(1).values().end()));
}

TEST(CompressorTest, PointServingWorkloadEncodesInlineDeltaEndToEnd) {
  // A sorted column that the checkpointed-scheme plan encodes as Delta:
  // under the point-serving workload hint the compressor must produce
  // the inline-checkpoint layout, and the compressed table must still
  // decompress to exactly the input (and round-trip its wire form).
  Rng rng(23);
  std::vector<int64_t> sorted(5000);
  int64_t acc = 0;
  for (auto& v : sorted) {
    acc += rng.Uniform(100000, 100007);
    v = acc;
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("seq", sorted)).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(1);
  plan.columns[0].auto_vertical = false;
  plan.columns[0].scheme = enc::Scheme::kDelta;
  plan.workload = enc::WorkloadHint::kPointServing;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok());
  const auto& column = compressed.value().block(0).column(0);
  ASSERT_EQ(column.scheme(), enc::Scheme::kDelta);
  EXPECT_EQ(static_cast<const enc::DeltaColumn&>(column).layout(),
            enc::DeltaLayout::kInline);

  auto decompressed = CorraCompressor::Decompress(compressed.value());
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(decompressed.value().column(0).values().size(), sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(decompressed.value().column(0).values()[i], sorted[i]);
  }

  auto reloaded = Block::Deserialize(compressed.value().block(0).Serialize());
  ASSERT_TRUE(reloaded.ok());
  const auto& restored = reloaded.value().column(0);
  EXPECT_EQ(static_cast<const enc::DeltaColumn&>(restored).layout(),
            enc::DeltaLayout::kInline);
  for (size_t i = 0; i < sorted.size(); i += 97) {
    ASSERT_EQ(restored.Get(i), sorted[i]);
  }
}

TEST(CompressorTest, AllPlainIsUncompressed) {
  Table table = MakeDatePair(1000, 2);
  auto compressed =
      CorraCompressor::Compress(table, CompressionPlan::AllPlain(2));
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(compressed.value().TotalSizeBytes(),
            2 * 1000 * sizeof(int64_t));
}

TEST(CompressorTest, DiffPlanShrinksTarget) {
  Table table = MakeDatePair(20000, 3);
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto corra = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(corra.ok()) << corra.status().ToString();
  auto baseline =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(2));
  ASSERT_TRUE(baseline.ok());
  // Receipt shrinks (5 vs 12 bits); ship unchanged.
  EXPECT_LT(corra.value().ColumnSizeBytes(1),
            baseline.value().ColumnSizeBytes(1));
  EXPECT_EQ(corra.value().ColumnSizeBytes(0),
            baseline.value().ColumnSizeBytes(0));
  // Decoding still exact.
  EXPECT_EQ(corra.value().DecodeColumn(1),
            std::vector<int64_t>(table.column(1).values().begin(),
                                 table.column(1).values().end()));
}

TEST(CompressorTest, PlanValidationCatchesBadReferences) {
  Table table = MakeDatePair(100, 4);
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = -1;  // Missing.
  EXPECT_FALSE(CorraCompressor::Compress(table, plan).ok());
  plan.columns[1].reference = 1;  // Self.
  EXPECT_FALSE(CorraCompressor::Compress(table, plan).ok());
  plan.columns[1].reference = 9;  // Out of range.
  EXPECT_FALSE(CorraCompressor::Compress(table, plan).ok());
}

TEST(CompressorTest, PlanSizeMismatchRejected) {
  Table table = MakeDatePair(100, 5);
  EXPECT_FALSE(
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(3)).ok());
}

TEST(CompressorTest, ZeroBlockRowsRejected) {
  Table table = MakeDatePair(100, 6);
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.block_rows = 0;
  EXPECT_FALSE(CorraCompressor::Compress(table, plan).ok());
}

TEST(CompressorTest, EmptyTableRejected) {
  Table table;
  EXPECT_FALSE(
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(0)).ok());
}

TEST(CompressorTest, BlocksAreIndependentlyDecodable) {
  Table table = MakeDatePair(2500, 7);
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  plan.block_rows = 1000;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok());
  ASSERT_EQ(compressed.value().num_blocks(), 3u);
  // Serialize each block, reload, decode: self-containment per block.
  size_t offset = 0;
  for (size_t b = 0; b < 3; ++b) {
    const auto bytes = compressed.value().block(b).Serialize();
    auto reloaded = Block::Deserialize(bytes, /*verify=*/true);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    std::vector<int64_t> decoded(reloaded.value().rows());
    reloaded.value().column(1).DecodeAll(decoded.data());
    for (size_t i = 0; i < decoded.size(); ++i) {
      ASSERT_EQ(decoded[i], table.column(1).values()[offset + i]);
    }
    offset += decoded.size();
  }
}

TEST(CompressorTest, HierarchicalPlan) {
  Rng rng(8);
  const size_t n = 5000;
  std::vector<int64_t> city(n);
  std::vector<int64_t> zip(n);
  for (size_t i = 0; i < n; ++i) {
    city[i] = rng.Uniform(0, 49);
    zip[i] = 10000 + city[i] * 37 + rng.Uniform(0, 10);
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("city", city)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Int64("zip", zip)).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kHierarchical;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  EXPECT_EQ(compressed.value().DecodeColumn(1), zip);
}

TEST(CompressorTest, MultiRefPlan) {
  Rng rng(9);
  const size_t n = 4000;
  std::vector<int64_t> a(n);
  std::vector<int64_t> b(n);
  std::vector<int64_t> total(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(100, 999);
    b[i] = 250;
    total[i] = rng.Bernoulli(0.5) ? a[i] : a[i] + b[i];
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Money("a", a)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Money("b", b)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Money("total", total)).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.columns[2].auto_vertical = false;
  plan.columns[2].scheme = enc::Scheme::kMultiRef;
  plan.columns[2].formulas.groups = {{0}, {1}};
  plan.columns[2].formulas.formulas = {0b01, 0b11};
  plan.columns[2].formulas.code_bits = 1;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  EXPECT_EQ(compressed.value().DecodeColumn(2), total);
}

TEST(CompressorTest, MultiRefGroupReferencingTargetRejected) {
  Table table = MakeDatePair(100, 10);
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kMultiRef;
  plan.columns[1].formulas.groups = {{1}};  // Group includes the target.
  plan.columns[1].formulas.formulas = {0b1};
  plan.columns[1].formulas.code_bits = 1;
  EXPECT_FALSE(CorraCompressor::Compress(table, plan).ok());
}

TEST(CompressorTest, C3Plans) {
  Table table = MakeDatePair(3000, 11);
  for (enc::Scheme scheme :
       {enc::Scheme::kC3Dfor, enc::Scheme::kC3Numerical}) {
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = scheme;
    plan.columns[1].reference = 0;
    auto compressed = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(compressed.ok())
        << enc::SchemeToString(scheme) << ": "
        << compressed.status().ToString();
    EXPECT_EQ(compressed.value().DecodeColumn(1),
              std::vector<int64_t>(table.column(1).values().begin(),
                                   table.column(1).values().end()));
  }
}

TEST(CompressorTest, ExplicitVerticalSchemes) {
  Table table = MakeDatePair(1000, 12);
  for (enc::Scheme scheme :
       {enc::Scheme::kPlain, enc::Scheme::kBitPack, enc::Scheme::kFor,
        enc::Scheme::kDict, enc::Scheme::kDelta, enc::Scheme::kRle}) {
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.columns[0].auto_vertical = false;
    plan.columns[0].scheme = scheme;
    auto compressed = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(compressed.ok()) << enc::SchemeToString(scheme);
    EXPECT_EQ(compressed.value().block(0).column(0).scheme(), scheme);
    EXPECT_EQ(compressed.value().DecodeColumn(0),
              std::vector<int64_t>(table.column(0).values().begin(),
                                   table.column(0).values().end()));
  }
}

TEST(CompressorTest, DecompressInvertsCompress) {
  Table table = MakeDatePair(2500, 14);
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.block_rows = 1000;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(compressed.ok());
  auto restored = CorraCompressor::Decompress(compressed.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().num_columns(), 2u);
  EXPECT_EQ(restored.value().schema(), table.schema());
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(std::vector<int64_t>(restored.value().column(c).values().begin(),
                                   restored.value().column(c).values().end()),
              std::vector<int64_t>(table.column(c).values().begin(),
                                   table.column(c).values().end()));
  }
}

TEST(CompressorTest, DecompressRestoresStringColumns) {
  const std::vector<std::string> cities = {"NYC", "Naples", "NYC",
                                           "Cortland", "Naples"};
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::String("city", cities)).ok());
  auto compressed =
      CorraCompressor::Compress(table, CompressionPlan::AllAuto(1));
  ASSERT_TRUE(compressed.ok());
  auto restored = CorraCompressor::Decompress(compressed.value());
  ASSERT_TRUE(restored.ok());
  for (size_t row = 0; row < cities.size(); ++row) {
    EXPECT_EQ(restored.value().column(0).Render(row), cities[row]);
  }
}

TEST(CompressorTest, ParallelCompressionIsDeterministic) {
  // Mixed plan over ten blocks: diff-encoded, hierarchical, and
  // auto-vertical columns. Blocks are independent, so any thread count
  // must serialize to the same bytes.
  Rng rng(31);
  const size_t rows = 10000;
  std::vector<int64_t> ship(rows);
  std::vector<int64_t> receipt(rows);
  std::vector<int64_t> fare(rows);
  for (size_t i = 0; i < rows; ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
    fare[i] = rng.Uniform(100, 25000);
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Date("ship", ship)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Date("receipt", receipt)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Money("fare", fare)).ok());

  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.block_rows = 1000;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;

  plan.num_threads = 1;
  auto serial = CorraCompressor::Compress(table, plan);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial.value().num_blocks(), 10u);

  for (size_t threads : {2, 4, 16}) {
    plan.num_threads = threads;
    auto parallel = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel.value().num_blocks(), serial.value().num_blocks());
    for (size_t b = 0; b < serial.value().num_blocks(); ++b) {
      EXPECT_EQ(parallel.value().block(b).Serialize(),
                serial.value().block(b).Serialize())
          << "block " << b << " with " << threads << " threads";
    }
  }
}

TEST(CompressorTest, ParallelCompressionPropagatesBlockErrors) {
  // A hierarchical column whose reference violates the scheme's
  // contract in some blocks must fail identically for any thread count.
  const size_t rows = 4000;
  std::vector<int64_t> ref(rows);
  std::vector<int64_t> target(rows);
  Rng rng(9);
  for (size_t i = 0; i < rows; ++i) {
    ref[i] = rng.Uniform(-1000000, 1000000);
    target[i] = rng.Uniform(-1000000, 1000000);
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Int64("ref", ref)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Int64("target", target)).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.block_rows = 1000;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kC3OneToOne;
  plan.columns[1].reference = 0;
  plan.columns[1].max_outlier_fraction = 0.0;

  plan.num_threads = 1;
  auto serial = CorraCompressor::Compress(table, plan);
  plan.num_threads = 4;
  auto parallel = CorraCompressor::Compress(table, plan);
  EXPECT_EQ(serial.ok(), parallel.ok());
  if (!serial.ok()) {
    EXPECT_EQ(serial.status().code(), parallel.status().code());
  }
}

TEST(CompressorTest, PlanFromOptimizerAppliesTpchConfig) {
  auto table = datagen::MakeLineitemTable(50000, 13);
  ASSERT_TRUE(table.ok());
  // Candidates: ship (1), commit (2), receipt (3); orderdate (0) excluded.
  const std::vector<size_t> candidates = {1, 2, 3};
  auto plan = CorraCompressor::PlanFromOptimizer(table.value(), candidates);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().columns[2].scheme, enc::Scheme::kDiff);
  EXPECT_EQ(plan.value().columns[2].reference, 1);
  EXPECT_EQ(plan.value().columns[3].scheme, enc::Scheme::kDiff);
  EXPECT_EQ(plan.value().columns[3].reference, 1);
  EXPECT_TRUE(plan.value().columns[1].auto_vertical);

  auto compressed = CorraCompressor::Compress(table.value(), plan.value());
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(compressed.value().DecodeColumn(3),
            std::vector<int64_t>(
                table.value().column(3).values().begin(),
                table.value().column(3).values().end()));
}

}  // namespace
}  // namespace corra
