// Chaos soak for the serve stack: concurrent clients against a table
// whose reads misbehave on randomized (but seeded, reproducible)
// schedules — injected EIO, EINTR, short preads, payload bit flips,
// and loader failures, all at once.
//
// Invariants the soak holds the stack to:
//   * no request hangs (the suite finishing is the assertion);
//   * every successful result is byte-identical to the fault-free
//     oracle (verify_blocks keeps damaged bytes out of the cache, so
//     a fault can delay or fail a request but never skew it);
//   * every failed request carries an actionable status — a
//     Corruption/IOError with the file, block, and offset in the
//     message, never an empty or internal error;
//   * the BlockCache ledger invariant holds exactly at every sampled
//     point and at the end;
//   * once the faults stop (and the quarantine is cleared), the very
//     same requests all succeed byte-identically — no poisoned state
//     survives the storm.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/corra_compressor.h"
#include "serve/scan_service.h"

namespace corra::serve {
namespace {

constexpr size_t kRows = 6000;
constexpr size_t kBlockRows = 1000;
constexpr size_t kNumBlocks = kRows / kBlockRows;
constexpr int kClients = 4;
constexpr int kRoundsPerClient = 30;

// One scan shape of the deterministic request mix.
struct Shape {
  int64_t lo;
  int64_t hi;
};
constexpr Shape kShapes[] = {
    {0, 1 << 20},      // Everything.
    {8035, 9000},      // Low half of the ship range.
    {9500, 10591},     // High tail.
    {10000, 10002},    // Narrow point-ish band.
};

class ChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    if (!fail::CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out (CORRA_FAILPOINTS_OFF)";
    }
    fail::ClearAll();
    path_ = ::testing::TempDir() + "corra_chaos_test.corf";
    Rng rng(21);
    ship_.resize(kRows);
    receipt_.resize(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      ship_[i] = rng.Uniform(8035, 10591);
      receipt_[i] = ship_[i] + rng.Uniform(1, 30);
    }
    Table table;
    ASSERT_TRUE(table.AddColumn(Column::Date("ship", ship_)).ok());
    ASSERT_TRUE(table.AddColumn(Column::Date("receipt", receipt_)).ok());
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.block_rows = kBlockRows;
    auto compressed = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(compressed.ok());
    ASSERT_EQ(compressed.value().num_blocks(), kNumBlocks);
    ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());

    for (const Shape& shape : kShapes) {
      oracles_.push_back(Oracle(shape));
    }
  }

  void TearDown() override {
    fail::ClearAll();
    std::remove(path_.c_str());
  }

  struct Expected {
    std::vector<uint64_t> positions;
    std::vector<int64_t> ship, receipt;
  };

  Expected Oracle(const Shape& shape) const {
    Expected e;
    for (size_t i = 0; i < kRows; ++i) {
      if (ship_[i] >= shape.lo && ship_[i] <= shape.hi) {
        e.positions.push_back(i);
        e.ship.push_back(ship_[i]);
        e.receipt.push_back(receipt_[i]);
      }
    }
    return e;
  }

  static ScanRequest MakeRequest(const Shape& shape, bool allow_partial) {
    ScanRequest request;
    request.filter_column = 0;
    request.filter_lo = shape.lo;
    request.filter_hi = shape.hi;
    request.project_columns = {0, 1};
    request.return_positions = true;
    request.allow_partial = allow_partial;
    return request;
  }

  // True when `result` matches the oracle restricted to blocks outside
  // its failed_blocks manifest (a strict result has an empty manifest,
  // making this a full byte-identity check).
  static bool MatchesOracleOutsideFailures(const ScanResult& result,
                                           const Expected& oracle,
                                           std::string* why) {
    bool failed[kNumBlocks] = {};
    for (const ScanResult::BlockError& fb : result.failed_blocks) {
      if (fb.block >= kNumBlocks) {
        *why = "failed block index out of range";
        return false;
      }
      failed[fb.block] = true;
    }
    std::vector<uint64_t> positions;
    std::vector<int64_t> ship, receipt;
    for (size_t i = 0; i < oracle.positions.size(); ++i) {
      if (failed[oracle.positions[i] / kBlockRows]) {
        continue;
      }
      positions.push_back(oracle.positions[i]);
      ship.push_back(oracle.ship[i]);
      receipt.push_back(oracle.receipt[i]);
    }
    if (result.positions != positions) {
      *why = "positions diverged from oracle";
      return false;
    }
    if (result.columns.size() != 2 || result.columns[0] != ship ||
        result.columns[1] != receipt) {
      *why = "projected values diverged from oracle";
      return false;
    }
    return true;
  }

  // A failure the soak accepts: a read-path class, with locality in the
  // message (never empty, never an internal catch-all).
  static bool IsActionable(const Status& status) {
    if (!status.IsCorruption() && !status.IsIOError()) {
      return false;
    }
    return status.message().find(".corf") != std::string::npos &&
           status.message().find("block") != std::string::npos;
  }

  std::string path_;
  std::vector<int64_t> ship_, receipt_;
  std::vector<Expected> oracles_;
};

TEST_P(ChaosTest, SoakHoldsInvariantsUnderRandomFaults) {
  const uint64_t seed = GetParam();
  const auto spec = [seed](double p, uint64_t salt) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "prob:%g:%llu", p,
                  static_cast<unsigned long long>(seed + salt));
    return std::string(buf);
  };
  ASSERT_TRUE(fail::Configure("corf.pread.eio", spec(0.05, 1)).ok());
  ASSERT_TRUE(fail::Configure("corf.pread.eintr", spec(0.05, 2)).ok());
  ASSERT_TRUE(fail::Configure("corf.pread.short", spec(0.10, 3)).ok());
  ASSERT_TRUE(fail::Configure("corf.payload.bitflip", spec(0.03, 4)).ok());
  ASSERT_TRUE(fail::Configure("cache.load_error", spec(0.04, 5)).ok());

  auto cache = std::make_shared<BlockCache>(BlockCacheOptions{
      .capacity_blocks = 4,  // Smaller than the table: constant churn.
      .shards = 2,
      .quarantine_ttl_ms = 25,  // Short: quarantined blocks come back
                                // mid-soak and fail (or load) again.
  });
  TableReaderOptions reader_options;
  reader_options.verify_blocks = true;
  reader_options.io.max_read_retries = 2;
  reader_options.io.backoff_base_us = 1;  // Fast soak; policy unchanged.
  auto reader = TableReader::Open(path_, cache, reader_options);
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 4});

  std::atomic<uint64_t> ok_full{0};
  std::atomic<uint64_t> ok_partial{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(seed * 977 + static_cast<uint64_t>(c));
      for (int round = 0; round < kRoundsPerClient; ++round) {
        const size_t shape = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(std::size(kShapes)) - 1));
        const bool allow_partial = rng.Bernoulli(0.5);
        auto result = service.Execute(
            *reader.value(), MakeRequest(kShapes[shape], allow_partial));
        if (!result.ok()) {
          failed.fetch_add(1);
          if (!IsActionable(result.status())) {
            violations.fetch_add(1);
            ADD_FAILURE() << "unactionable failure: "
                          << result.status().ToString();
          }
          continue;
        }
        std::string why;
        if (!MatchesOracleOutsideFailures(result.value(), oracles_[shape],
                                          &why)) {
          violations.fetch_add(1);
          ADD_FAILURE() << "divergent result (" << why << "), shape "
                        << shape << ", client " << c << ", round " << round;
          continue;
        }
        for (const ScanResult::BlockError& fb :
             result.value().failed_blocks) {
          if (!IsActionable(fb.status)) {
            violations.fetch_add(1);
            ADD_FAILURE() << "unactionable block failure: "
                          << fb.status.ToString();
          }
        }
        if (result.value().failed_blocks.empty()) {
          ok_full.fetch_add(1);
        } else {
          ok_partial.fetch_add(1);
        }
        // Ledger invariant sampled mid-storm from client threads.
        const BlockCacheStats stats = cache->GetStats();
        if (stats.misses != stats.cached_blocks + stats.loading_blocks +
                                stats.evictions + stats.failed_loads +
                                stats.erased_blocks) {
          violations.fetch_add(1);
          ADD_FAILURE() << "ledger broke mid-soak";
        }
      }
    });
  }
  for (std::thread& thread : clients) {
    thread.join();
  }

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(ok_full.load() + ok_partial.load() + failed.load(),
            static_cast<uint64_t>(kClients) * kRoundsPerClient);
  // The storm must not have been vacuous: faults actually fired, and
  // some requests felt them.
  const uint64_t fires =
      fail::Fires("corf.pread.eio") + fail::Fires("corf.pread.eintr") +
      fail::Fires("corf.pread.short") + fail::Fires("corf.payload.bitflip") +
      fail::Fires("cache.load_error");
  EXPECT_GT(fires, 0u);
  // The stack also made real progress: requests that returned data
  // (full or degraded) — not just errors. A clean full result for
  // every shape is separately proven by the recovery phase below.
  EXPECT_GT(ok_full.load() + ok_partial.load(), 0u);

  // Recovery: faults off, quarantine cleared — every shape serves its
  // full fault-free answer. Nothing poisonous survived the storm.
  fail::ClearAll();
  cache->ClearQuarantine();
  for (size_t shape = 0; shape < std::size(kShapes); ++shape) {
    auto result = service.Execute(*reader.value(),
                                  MakeRequest(kShapes[shape], false));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().failed_blocks.empty());
    std::string why;
    EXPECT_TRUE(MatchesOracleOutsideFailures(result.value(),
                                             oracles_[shape], &why))
        << why;
  }

  const BlockCacheStats stats = cache->GetStats();
  EXPECT_EQ(stats.misses, stats.cached_blocks + stats.loading_blocks +
                              stats.evictions + stats.failed_loads +
                              stats.erased_blocks);
  EXPECT_EQ(stats.loading_blocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(11u, 29u, 83u),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace corra::serve
