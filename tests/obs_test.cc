// Telemetry registry (src/obs/): counter sharding, gauge levels,
// histogram binning and quantile edge cases, snapshot/reset semantics,
// JSON + Prometheus export shape, the enable gate, and the trace ring.
//
// The concurrency tests here are the surface the CI TSan job exercises:
// N threads hammering one counter/histogram while another thread
// snapshots mid-record must be race-free by construction (relaxed
// atomics on private shards), not by luck.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace corra::obs {
namespace {

#ifdef CORRA_OBS_OFF
#define SKIP_IF_COMPILED_OUT() \
  GTEST_SKIP() << "observability compiled out (CORRA_OBS_OFF)"
#else
#define SKIP_IF_COMPILED_OUT() SetEnabled(true)
#endif

TEST(EnabledTest, SetEnabledGatesRecording) {
  SKIP_IF_COMPILED_OUT();
  Counter counter;
  Gauge gauge;
  Histogram histogram(LatencyBucketBoundsUs());

  SetEnabled(false);
  counter.Add(5);
  gauge.Set(7);
  histogram.Record(100);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Snapshot().count, 0u);

  SetEnabled(true);
  counter.Add(5);
  gauge.Set(7);
  histogram.Record(100);
  EXPECT_EQ(counter.Value(), 5u);
  EXPECT_EQ(gauge.Value(), 7);
  EXPECT_EQ(histogram.Snapshot().count, 1u);
}

TEST(CounterTest, AddsAccumulateAcrossThreads) {
  SKIP_IF_COMPILED_OUT();
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) {
        counter.Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kIters);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, MovesBothWays) {
  SKIP_IF_COMPILED_OUT();
  Gauge gauge;
  gauge.Add(100);
  gauge.Sub(30);
  EXPECT_EQ(gauge.Value(), 70);
  gauge.Set(-5);
  EXPECT_EQ(gauge.Value(), -5);
}

TEST(HistogramTest, ZeroSamples) {
  SKIP_IF_COMPILED_OUT();
  Histogram histogram(LatencyBucketBoundsUs());
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.999), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, SingleSampleReportsItselfAtEveryQuantile) {
  SKIP_IF_COMPILED_OUT();
  Histogram histogram(LatencyBucketBoundsUs());
  histogram.Record(137);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 137u);
  EXPECT_EQ(snap.max, 137u);
  // Quantiles interpolate inside the owning bucket but clamp to the
  // observed max, so one sample is reported exactly everywhere.
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.Quantile(q), 137.0) << "q=" << q;
  }
}

TEST(HistogramTest, BeyondLastBucketLandsInOverflow) {
  SKIP_IF_COMPILED_OUT();
  const uint64_t bounds[] = {10, 100};
  Histogram histogram(bounds);
  histogram.Record(5);
  histogram.Record(50);
  histogram.Record(5000);  // Past the last bound.
  const HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);  // Two bounds + overflow.
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.max, 5000u);
  // Overflow-bucket quantiles report the observed max, not infinity.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.999), 5000.0);
}

TEST(HistogramTest, BoundaryValuesBinIntoInclusiveUpperBound) {
  SKIP_IF_COMPILED_OUT();
  const uint64_t bounds[] = {10, 100};
  Histogram histogram(bounds);
  histogram.Record(10);   // == first bound: first bucket.
  histogram.Record(11);   // second bucket.
  histogram.Record(100);  // == last bound: second bucket.
  histogram.Record(101);  // overflow.
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  SKIP_IF_COMPILED_OUT();
  Histogram histogram(LatencyBucketBoundsUs());
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kIters; ++i) {
        histogram.Record(static_cast<uint64_t>(t * kIters + i) % 10000);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kIters);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) {
    bucket_total += c;
  }
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.max, 9999u);
}

TEST(HistogramTest, SnapshotDuringRecordingIsCoherentEnough) {
  SKIP_IF_COMPILED_OUT();
  // A snapshot racing recorders may be mid-update across shards, but
  // every value it reads is a real committed value: bucket totals never
  // exceed the number of records started, and never shrink.
  Histogram histogram(LatencyBucketBoundsUs());
  constexpr int kIters = 20000;
  std::thread recorder([&histogram] {
    for (int i = 0; i < kIters; ++i) {
      histogram.Record(static_cast<uint64_t>(i) % 1000);
    }
  });
  uint64_t last_count = 0;
  for (int i = 0; i < 100; ++i) {
    const HistogramSnapshot snap = histogram.Snapshot();
    EXPECT_LE(snap.count, static_cast<uint64_t>(kIters));
    EXPECT_GE(snap.count, last_count);  // Counters are monotone.
    last_count = snap.count;
  }
  recorder.join();
  EXPECT_EQ(histogram.Snapshot().count, static_cast<uint64_t>(kIters));
}

TEST(RegistryTest, LookupIsIdempotentAndStable) {
  SKIP_IF_COMPILED_OUT();
  Registry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
  Histogram& h1 = registry.histogram("x.lat_us", LatencyBucketBoundsUs());
  Histogram& h2 = registry.histogram("x.lat_us");  // Bounds already pinned.
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistrations) {
  SKIP_IF_COMPILED_OUT();
  Registry registry;
  Counter& c = registry.counter("c");
  Gauge& g = registry.gauge("g");
  Histogram& h = registry.histogram("h", LatencyBucketBoundsUs());
  c.Add(4);
  g.Set(9);
  h.Record(10);
  registry.Reset();
  EXPECT_EQ(c.Value(), 0u);  // Cached references survive the reset.
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Snapshot().count, 0u);
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(RegistryTest, JsonExportShape) {
  SKIP_IF_COMPILED_OUT();
  Registry registry;
  registry.counter("serve.requests").Add(2);
  registry.gauge("cache.cached_bytes").Set(4096);
  Histogram& h =
      registry.histogram("serve.request_latency_us", LatencyBucketBoundsUs());
  h.Record(40);
  h.Record(60);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.requests\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cache.cached_bytes\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"serve.request_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"max\": 60"), std::string::npos);
}

TEST(RegistryTest, PrometheusExportShape) {
  SKIP_IF_COMPILED_OUT();
  Registry registry;
  registry.counter("query.decode_rows{scheme=\"FOR\"}").Add(128);
  registry.gauge("cache.pinned_blocks").Set(3);
  const uint64_t bounds[] = {10, 100};
  Histogram& h = registry.histogram("serve.request_latency_us", bounds);
  h.Record(5);
  h.Record(50);
  h.Record(500);
  const std::string prom = registry.ToPrometheus();
  // Dots flatten to underscores under the corra_ prefix; the label
  // suffix survives verbatim.
  EXPECT_NE(prom.find("# TYPE corra_query_decode_rows counter"),
            std::string::npos);
  EXPECT_NE(prom.find("corra_query_decode_rows{scheme=\"FOR\"} 128"),
            std::string::npos);
  EXPECT_NE(prom.find("corra_cache_pinned_blocks 3"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(prom.find("corra_serve_request_latency_us_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("corra_serve_request_latency_us_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(
      prom.find("corra_serve_request_latency_us_bucket{le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(prom.find("corra_serve_request_latency_us_count 3"),
            std::string::npos);
  EXPECT_NE(prom.find("corra_serve_request_latency_us_sum 555"),
            std::string::npos);
}

TEST(TraceRingTest, RetainsLastNOldestFirst) {
  SKIP_IF_COMPILED_OUT();
  TraceRing ring(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    RequestTrace trace;
    trace.op = "execute";
    trace.total_ns = i;
    ring.Push(std::move(trace));
  }
  EXPECT_EQ(ring.pushed(), 5u);
  const auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].total_ns, 3u);
  EXPECT_EQ(snap[1].total_ns, 4u);
  EXPECT_EQ(snap[2].total_ns, 5u);
  auto drained = ring.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[2].total_ns, 5u);
  EXPECT_TRUE(ring.Drain().empty());  // Drain leaves the ring empty.
}

TEST(TraceTest, ToJsonNamesPhasesAndBlocks) {
  SKIP_IF_COMPILED_OUT();
  RequestTrace trace;
  trace.op = "execute";
  trace.total_ns = 1000;
  trace.phase_ns[static_cast<size_t>(Phase::kDecodeFilter)] = 600;
  BlockSpan span;
  span.block = 2;
  span.rows = 128;
  span.cache_hit = true;
  span.schemes = "0:FOR,1:Corra-Diff";
  trace.blocks.push_back(span);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"op\": \"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"decode_filter\""), std::string::npos);
  EXPECT_NE(json.find("\"0:FOR,1:Corra-Diff\""), std::string::npos);
  EXPECT_NE(json.find("\"block\": 2"), std::string::npos);
}

}  // namespace
}  // namespace corra::obs
