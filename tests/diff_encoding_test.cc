// Non-hierarchical (diff) encoding — Sec. 2.1.

#include "core/diff_encoding.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"
#include "storage/serde.h"
#include "test_util.h"

namespace corra {
namespace {

// A (reference, target) pair with bounded differences, TPC-H style.
struct Pair {
  std::vector<int64_t> reference;
  std::vector<int64_t> target;
};

Pair BoundedPair(size_t n, int64_t lo_diff, int64_t hi_diff, uint64_t seed) {
  Rng rng(seed);
  Pair p;
  p.reference.resize(n);
  p.target.resize(n);
  for (size_t i = 0; i < n; ++i) {
    p.reference[i] = rng.Uniform(8035, 10591);  // TPC-H date domain.
    p.target[i] = p.reference[i] + rng.Uniform(lo_diff, hi_diff);
  }
  return p;
}

// Encodes the reference vertically, diff-encodes the target, binds them.
struct BoundDiff {
  std::unique_ptr<enc::ForColumn> ref;
  std::unique_ptr<DiffEncodedColumn> diff;
};

BoundDiff MakeBound(const Pair& p, const DiffOptions& options = {}) {
  BoundDiff b;
  auto ref = enc::ForColumn::Encode(p.reference);
  EXPECT_TRUE(ref.ok());
  b.ref = std::move(ref).value();
  auto diff = DiffEncodedColumn::Encode(p.target, p.reference, 0, options);
  EXPECT_TRUE(diff.ok()) << diff.status().ToString();
  b.diff = std::move(diff).value();
  const enc::EncodedColumn* refs[] = {b.ref.get()};
  EXPECT_TRUE(b.diff->BindReferences(refs).ok());
  return b;
}

TEST(DiffEncodingTest, RoundTripBoundedDiffs) {
  const Pair p = BoundedPair(5000, 1, 30, 1);
  auto b = MakeBound(p);
  test::ExpectColumnMatches(*b.diff, p.target);
}

TEST(DiffEncodingTest, NegativeDiffsSupported) {
  // commitdate - shipdate spans [-91, 89] in TPC-H.
  const Pair p = BoundedPair(5000, -91, 89, 2);
  auto b = MakeBound(p);
  test::ExpectColumnMatches(*b.diff, p.target);
  EXPECT_EQ(b.diff->bit_width(), 8);  // 181 distinct offsets.
}

TEST(DiffEncodingTest, ReceiptdateWidthIsFiveBits) {
  const Pair p = BoundedPair(20000, 1, 30, 3);
  auto b = MakeBound(p);
  EXPECT_EQ(b.diff->bit_width(), 5);  // 30 distinct offsets.
  // 5 bits/row versus 12 for the vertical column: the Table 2 ratio.
  EXPECT_LT(b.diff->SizeBytes(), b.ref->SizeBytes() / 2);
}

TEST(DiffEncodingTest, IdenticalColumnsNeedZeroBits) {
  Pair p = BoundedPair(1000, 0, 0, 4);
  auto b = MakeBound(p);
  EXPECT_EQ(b.diff->bit_width(), 0);
  test::ExpectColumnMatches(*b.diff, p.target);
}

TEST(DiffEncodingTest, LengthMismatchRejected) {
  const std::vector<int64_t> target = {1, 2, 3};
  const std::vector<int64_t> reference = {1, 2};
  EXPECT_FALSE(DiffEncodedColumn::Encode(target, reference, 0).ok());
  EXPECT_EQ(DiffEncodedColumn::EstimateSizeBytes(target, reference),
            SIZE_MAX);
}

TEST(DiffEncodingTest, ReferenceIndicesExposed) {
  const Pair p = BoundedPair(100, 1, 5, 5);
  auto diff = DiffEncodedColumn::Encode(p.target, p.reference, 7);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value()->ReferenceIndices(),
            (std::vector<uint32_t>{7}));
}

TEST(DiffEncodingTest, BindRejectsWrongArity) {
  const Pair p = BoundedPair(100, 1, 5, 6);
  auto b = MakeBound(p);
  EXPECT_FALSE(b.diff->BindReferences({}).ok());
  const enc::EncodedColumn* two[] = {b.ref.get(), b.ref.get()};
  EXPECT_FALSE(b.diff->BindReferences(two).ok());
}

TEST(DiffEncodingTest, BindRejectsSizeMismatch) {
  const Pair p = BoundedPair(100, 1, 5, 7);
  auto diff = DiffEncodedColumn::Encode(p.target, p.reference, 0);
  ASSERT_TRUE(diff.ok());
  const std::vector<int64_t> short_ref(50, 0);
  auto wrong = enc::ForColumn::Encode(short_ref);
  ASSERT_TRUE(wrong.ok());
  const enc::EncodedColumn* refs[] = {wrong.value().get()};
  EXPECT_FALSE(diff.value()->BindReferences(refs).ok());
}

TEST(DiffEncodingTest, GatherWithReferenceMatchesGather) {
  const Pair p = BoundedPair(4000, -10, 200, 8);
  auto b = MakeBound(p);
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < 4000; i += 7) {
    rows.push_back(i);
  }
  std::vector<int64_t> ref_values(rows.size());
  b.ref->Gather(rows, ref_values.data());
  std::vector<int64_t> via_ref(rows.size());
  b.diff->GatherWithReference(rows, ref_values.data(), via_ref.data());
  std::vector<int64_t> direct(rows.size());
  b.diff->Gather(rows, direct.data());
  EXPECT_EQ(via_ref, direct);
}

TEST(DiffEncodingTest, SerializeRoundTripPreservesEverything) {
  const Pair p = BoundedPair(3000, -5, 500, 9);
  auto b = MakeBound(p);
  auto reloaded = test::SerializeRoundTrip(*b.diff);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->scheme(), enc::Scheme::kDiff);
  const enc::EncodedColumn* refs[] = {b.ref.get()};
  ASSERT_TRUE(reloaded->BindReferences(refs).ok());
  test::ExpectColumnMatches(*reloaded, p.target);
  EXPECT_EQ(reloaded->SizeBytes(), b.diff->SizeBytes());
}

TEST(DiffEncodingTest, EstimateMatchesActualWithoutOutliers) {
  const Pair p = BoundedPair(2048, -91, 89, 10);
  auto b = MakeBound(p);
  EXPECT_EQ(DiffEncodedColumn::EstimateSizeBytes(p.target, p.reference),
            b.diff->SizeBytes());
}

// --- Outlier handling (Sec. 2.1 "Outlier Detection") ---------------------

Pair PairWithOutliers(size_t n, size_t outlier_every, uint64_t seed) {
  Pair p = BoundedPair(n, 1, 30, seed);
  for (size_t i = outlier_every / 2; i < n; i += outlier_every) {
    p.target[i] = p.reference[i] + 1000000 + static_cast<int64_t>(i);
  }
  return p;
}

TEST(DiffOutlierTest, OutliersShrinkTheWindow) {
  const Pair p = PairWithOutliers(20000, 1000, 11);
  DiffOptions with;
  with.use_outliers = true;
  with.max_outlier_fraction = 0.01;
  auto narrow = MakeBound(p, with);
  auto wide = MakeBound(p, DiffOptions{});  // No outliers: wide window.
  EXPECT_LT(narrow.diff->SizeBytes(), wide.diff->SizeBytes());
  EXPECT_GT(narrow.diff->outliers().size(), 0u);
  EXPECT_EQ(wide.diff->outliers().size(), 0u);
  // Both must still decode exactly.
  test::ExpectColumnMatches(*narrow.diff, p.target);
  test::ExpectColumnMatches(*wide.diff, p.target);
}

TEST(DiffOutlierTest, OutlierFractionRespected) {
  const Pair p = PairWithOutliers(10000, 500, 12);
  DiffOptions options;
  options.use_outliers = true;
  options.max_outlier_fraction = 0.01;
  auto b = MakeBound(p, options);
  EXPECT_LE(b.diff->outliers().size(), 100u);
}

TEST(DiffOutlierTest, OutlierRowsDecodeViaStore) {
  const Pair p = PairWithOutliers(5000, 250, 13);
  DiffOptions options;
  options.use_outliers = true;
  auto b = MakeBound(p, options);
  ASSERT_GT(b.diff->outliers().size(), 0u);
  // Spot-check a known outlier row.
  const uint32_t row = b.diff->outliers().row(0);
  EXPECT_EQ(b.diff->Get(row), p.target[row]);
}

TEST(DiffOutlierTest, SerializeRoundTripWithOutliers) {
  const Pair p = PairWithOutliers(5000, 100, 14);
  DiffOptions options;
  options.use_outliers = true;
  options.max_outlier_fraction = 0.05;
  auto b = MakeBound(p, options);
  ASSERT_GT(b.diff->outliers().size(), 0u);
  auto reloaded = test::SerializeRoundTrip(*b.diff);
  ASSERT_NE(reloaded, nullptr);
  const enc::EncodedColumn* refs[] = {b.ref.get()};
  ASSERT_TRUE(reloaded->BindReferences(refs).ok());
  test::ExpectColumnMatches(*reloaded, p.target);
}

TEST(DiffOutlierTest, GatherPatchesOutliers) {
  const Pair p = PairWithOutliers(5000, 100, 15);
  DiffOptions options;
  options.use_outliers = true;
  options.max_outlier_fraction = 0.05;
  auto b = MakeBound(p, options);
  // Select every row: gather must equal the original target everywhere,
  // including outlier rows.
  std::vector<uint32_t> rows(p.target.size());
  for (uint32_t i = 0; i < rows.size(); ++i) {
    rows[i] = i;
  }
  std::vector<int64_t> out(rows.size());
  b.diff->Gather(rows, out.data());
  EXPECT_EQ(out, p.target);
}

TEST(DiffEncodingTest, GatherConsistentAcrossReferenceTypes) {
  // The batch-level reference dispatch (ref_dispatch.h) must produce
  // identical results for every concrete reference encoding.
  Rng rng(77);
  const size_t n = 2000;
  std::vector<int64_t> reference(n);
  std::vector<int64_t> target(n);
  for (size_t i = 0; i < n; ++i) {
    reference[i] = rng.Uniform(0, 5000);
    target[i] = reference[i] + rng.Uniform(1, 30);
  }
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < n; i += 3) {
    rows.push_back(i);
  }

  std::vector<std::unique_ptr<enc::EncodedColumn>> refs;
  refs.push_back(enc::PlainColumn::Encode(reference));
  refs.push_back(std::move(enc::ForColumn::Encode(reference)).value());
  refs.push_back(std::move(enc::BitPackColumn::Encode(reference)).value());
  refs.push_back(std::move(enc::DictColumn::Encode(reference)).value());
  refs.push_back(std::move(enc::DeltaColumn::Encode(reference)).value());

  std::vector<int64_t> expected;
  for (size_t r = 0; r < refs.size(); ++r) {
    auto diff = DiffEncodedColumn::Encode(target, reference, 0);
    ASSERT_TRUE(diff.ok());
    const enc::EncodedColumn* bound[] = {refs[r].get()};
    ASSERT_TRUE(diff.value()->BindReferences(bound).ok());
    std::vector<int64_t> out(rows.size());
    diff.value()->Gather(rows, out.data());
    if (r == 0) {
      expected = out;
      for (size_t i = 0; i < rows.size(); ++i) {
        ASSERT_EQ(out[i], target[rows[i]]);
      }
    } else {
      EXPECT_EQ(out, expected)
          << "reference scheme "
          << enc::SchemeToString(refs[r]->scheme());
    }
  }
}

TEST(DiffEncodingTest, ModeSelectionMatchesPaper) {
  // Non-negative diffs -> raw; any negative diff -> zig-zag; the window
  // mode only appears with the outlier extension.
  const std::vector<int64_t> reference = {100, 200, 300};
  const std::vector<int64_t> positive = {101, 230, 330};
  auto raw = DiffEncodedColumn::Encode(positive, reference, 0);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value()->mode(), DiffMode::kRaw);

  const std::vector<int64_t> mixed = {99, 230, 330};
  auto zigzag = DiffEncodedColumn::Encode(mixed, reference, 0);
  ASSERT_TRUE(zigzag.ok());
  EXPECT_EQ(zigzag.value()->mode(), DiffMode::kZigZag);

  // Paper Fig. 2 asymmetry: receipt|ship (diffs in [1,30]) packs at 5
  // bits; ship|receipt (diffs in [-30,-1]) needs 6 zig-zag bits.
  Rng rng(78);
  std::vector<int64_t> ship(1000);
  std::vector<int64_t> receipt(1000);
  for (size_t i = 0; i < ship.size(); ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
  }
  auto forward = DiffEncodedColumn::Encode(receipt, ship, 0);
  auto backward = DiffEncodedColumn::Encode(ship, receipt, 0);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(forward.value()->bit_width(), 5);
  EXPECT_EQ(backward.value()->bit_width(), 6);
}

TEST(DiffEncodingTest, UnknownSchemeByteRejected) {
  const std::vector<int64_t> values = {1, 2, 3};
  auto diff = DiffEncodedColumn::Encode(values, values, 0);
  ASSERT_TRUE(diff.ok());
  BufferWriter writer;
  diff.value()->Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  bytes[0] = 200;  // No scheme uses this id.
  BufferReader reader(bytes);
  auto result = DeserializeEncodedColumn(&reader);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

// Property sweep: diff encoding is exact for random pairs regardless of
// distribution shape.
class DiffPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DiffPropertyTest, ExactReconstruction) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  const size_t n = 500 + static_cast<size_t>(rng.Uniform(0, 2000));
  std::vector<int64_t> reference(n);
  std::vector<int64_t> target(n);
  for (size_t i = 0; i < n; ++i) {
    reference[i] = rng.Uniform(-1000000, 1000000);
    target[i] = reference[i] + rng.Uniform(-5000, 5000);
  }
  Pair p{std::move(reference), std::move(target)};
  DiffOptions options;
  options.use_outliers = (seed % 2 == 0);
  auto b = MakeBound(p, options);
  test::ExpectColumnMatches(*b.diff, p.target);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace corra
