// Automatic correlation detection (the paper's future-work extension).

#include "core/correlation_detector.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/tpch.h"

namespace corra {
namespace {

TEST(DetectorTest, RejectsDegenerateInputs) {
  const std::vector<int64_t> a = {1, 2, 3};
  std::vector<CandidateColumn> one = {{"a", a}};
  EXPECT_FALSE(DetectCorrelations(one).ok());

  const std::vector<int64_t> b = {1};
  std::vector<CandidateColumn> mismatched = {{"a", a}, {"b", b}};
  EXPECT_FALSE(DetectCorrelations(mismatched).ok());
}

TEST(DetectorTest, FindsTpchDiffPairs) {
  const auto dates = datagen::GenerateLineitemDates(50000, 1);
  std::vector<CandidateColumn> columns = {
      {"l_shipdate", dates.shipdate},
      {"l_commitdate", dates.commitdate},
      {"l_receiptdate", dates.receiptdate},
  };
  auto result = DetectCorrelations(columns);
  ASSERT_TRUE(result.ok());
  const auto& suggestions = result.value();
  ASSERT_FALSE(suggestions.empty());

  // (receiptdate w.r.t. shipdate) must appear with a diff-flavoured
  // scheme and a saving near the paper's 58%.
  bool found = false;
  for (const auto& s : suggestions) {
    if (s.target == 2 && s.reference == 0) {
      found = true;
      EXPECT_GT(s.saving_rate, 0.4);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DetectorTest, RankedByDescendingSaving) {
  const auto dates = datagen::GenerateLineitemDates(30000, 2);
  std::vector<CandidateColumn> columns = {
      {"ship", dates.shipdate},
      {"commit", dates.commitdate},
      {"receipt", dates.receiptdate},
  };
  auto result = DetectCorrelations(columns);
  ASSERT_TRUE(result.ok());
  const auto& suggestions = result.value();
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].saving_rate, suggestions[i].saving_rate);
  }
}

TEST(DetectorTest, FindsHierarchicalPairs) {
  Rng rng(3);
  std::vector<int64_t> city(40000);
  std::vector<int64_t> zip(40000);
  for (size_t i = 0; i < city.size(); ++i) {
    city[i] = rng.Uniform(0, 299);
    // Wide, scattered zips: FOR and Dict are expensive, hierarchy cheap.
    zip[i] = city[i] * 100000 + rng.Uniform(0, 20) * 977;
  }
  std::vector<CandidateColumn> columns = {{"city", city}, {"zip", zip}};
  auto result = DetectCorrelations(columns);
  ASSERT_TRUE(result.ok());
  bool found_hier = false;
  for (const auto& s : result.value()) {
    if (s.target == 1 && s.reference == 0 &&
        s.scheme == enc::Scheme::kHierarchical) {
      found_hier = true;
    }
  }
  EXPECT_TRUE(found_hier);
}

TEST(DetectorTest, UncorrelatedColumnsYieldNothing) {
  Rng rng(4);
  std::vector<int64_t> a(20000);
  std::vector<int64_t> b(20000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform(0, 1 << 30);
    b[i] = rng.Uniform(0, 1 << 30);
  }
  std::vector<CandidateColumn> columns = {{"a", a}, {"b", b}};
  DetectorOptions options;
  options.min_saving_rate = 0.05;
  auto result = DetectCorrelations(columns, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(DetectorTest, SchemeTogglesRespected) {
  const auto dates = datagen::GenerateLineitemDates(20000, 5);
  std::vector<CandidateColumn> columns = {
      {"ship", dates.shipdate},
      {"receipt", dates.receiptdate},
  };
  DetectorOptions no_diff;
  no_diff.consider_diff = false;
  no_diff.consider_hierarchical = false;
  auto result = DetectCorrelations(columns, no_diff);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(DetectorTest, MinSavingThresholdFilters) {
  const auto dates = datagen::GenerateLineitemDates(20000, 6);
  std::vector<CandidateColumn> columns = {
      {"ship", dates.shipdate},
      {"receipt", dates.receiptdate},
  };
  DetectorOptions strict;
  strict.min_saving_rate = 0.99;  // Nothing saves 99%.
  auto result = DetectCorrelations(columns, strict);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

}  // namespace
}  // namespace corra
