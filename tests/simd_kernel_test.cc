// Equivalence tests for the SIMD kernel layer (common/simd/simd.h).
//
// Every check runs the *dispatched* kernel (AVX2 on CPUs that have it)
// and its forced-scalar twin side by side and demands bit-identical
// results, so CI on an AVX2 machine proves the two backends agree; on a
// machine without AVX2 both resolve to the scalar table and the tests
// degrade to self-consistency plus the reference-model checks.
//
// The unpack sweep is exhaustive in bit width (0..64) and crosses every
// alignment case the driver distinguishes: begin offsets that are not
// 64-value aligned (scalar head), lengths straddling one or more
// 64-value kernel blocks, and tails shorter than a block.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "common/bit_stream.h"
#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra {
namespace {

// Enough values to cover several 64-value kernel blocks plus a ragged
// tail that never reaches a block boundary.
constexpr size_t kSweepCount = 64 * 5 + 37;

std::vector<uint64_t> RandomValues(int bit_width, size_t count,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  const uint64_t mask = bit_width >= 64
                            ? ~uint64_t{0}
                            : (uint64_t{1} << bit_width) - 1;
  std::vector<uint64_t> values(count);
  for (auto& v : values) {
    v = rng() & mask;
  }
  // Force boundary patterns into the mix so all-ones / all-zeros words
  // are always exercised.
  if (count > 4 && bit_width > 0) {
    values[0] = mask;
    values[1] = 0;
    values[count - 1] = mask;
    values[count - 2] = 0;
  }
  return values;
}

TEST(UnpackEquivalenceTest, ExhaustiveWidthsOffsetsAndLengths) {
  // Begin offsets: 64-value-block aligned, just off-aligned, byte-odd,
  // and deep in the stream; lengths: empty, sub-block, exactly one
  // block, block +/- 1, and multi-block straddles.
  const size_t begins[] = {0, 1, 2, 7, 8, 31, 63, 64, 65, 100, 127, 128, 200};
  const size_t lengths[] = {0, 1, 3, 63, 64, 65, 127, 128, 129, 192, 255};
  for (int width = 0; width <= 64; ++width) {
    SCOPED_TRACE("width=" + std::to_string(width));
    const auto values =
        RandomValues(width, kSweepCount, 1000 + static_cast<uint64_t>(width));
    BitWriter writer(width);
    writer.AppendAll(values);
    const auto bytes = std::move(writer).Finish();
    ASSERT_GE(bytes.size(), bit_util::PackedBytes(kSweepCount, width));

    std::vector<uint64_t> dispatched(kSweepCount + 1, 0xDEADBEEF);
    std::vector<uint64_t> scalar(kSweepCount + 1, 0xDEADBEEF);
    for (size_t begin : begins) {
      for (size_t len : lengths) {
        if (begin + len > kSweepCount) {
          continue;
        }
        SCOPED_TRACE("begin=" + std::to_string(begin) +
                     " len=" + std::to_string(len));
        simd::UnpackRange(bytes.data(), width, begin, len,
                          dispatched.data());
        simd::UnpackRangeScalar(bytes.data(), width, begin, len,
                                scalar.data());
        for (size_t i = 0; i < len; ++i) {
          ASSERT_EQ(dispatched[i], values[begin + i]) << "i=" << i;
          ASSERT_EQ(scalar[i], values[begin + i]) << "i=" << i;
        }
      }
      // Also the full remaining stream from this offset (ragged tail).
      const size_t rest = kSweepCount - begin;
      simd::UnpackRange(bytes.data(), width, begin, rest, dispatched.data());
      simd::UnpackRangeScalar(bytes.data(), width, begin, rest,
                              scalar.data());
      for (size_t i = 0; i < rest; ++i) {
        ASSERT_EQ(dispatched[i], values[begin + i]) << "i=" << i;
        ASSERT_EQ(scalar[i], values[begin + i]) << "i=" << i;
      }
    }
  }
}

TEST(UnpackEquivalenceTest, BitReaderDecodeRangeMatchesGet) {
  for (int width : {0, 1, 3, 7, 8, 13, 17, 24, 31, 32, 33, 48, 57, 58, 64}) {
    SCOPED_TRACE("width=" + std::to_string(width));
    const auto values =
        RandomValues(width, kSweepCount, 77 + static_cast<uint64_t>(width));
    BitWriter writer(width);
    writer.AppendAll(values);
    const auto bytes = std::move(writer).Finish();
    BitReader reader(bytes.data(), width, kSweepCount);
    std::vector<uint64_t> out(kSweepCount);
    reader.DecodeRange(5, kSweepCount - 5, out.data());
    for (size_t i = 0; i < kSweepCount - 5; ++i) {
      ASSERT_EQ(out[i], reader.Get(5 + i)) << "i=" << i;
    }
  }
}

TEST(FilterKernelTest, MatchesScalarAndReferenceModel) {
  std::mt19937_64 rng(11);
  std::vector<int64_t> values(kSweepCount);
  for (auto& v : values) {
    // Small domain so the bounds actually select; sprinkle extremes.
    v = static_cast<int64_t>(rng() % 200) - 100;
  }
  values[3] = std::numeric_limits<int64_t>::min();
  values[4] = std::numeric_limits<int64_t>::max();
  const int64_t bounds[][2] = {{-50, 50},
                               {0, 0},
                               {100, -100},  // Empty (lo > hi).
                               {std::numeric_limits<int64_t>::min(),
                                std::numeric_limits<int64_t>::max()},
                               {std::numeric_limits<int64_t>::max(),
                                std::numeric_limits<int64_t>::max()}};
  for (const auto& b : bounds) {
    for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                       size_t{9}, size_t{100}, kSweepCount}) {
      SCOPED_TRACE("lo=" + std::to_string(b[0]) + " hi=" +
                   std::to_string(b[1]) + " len=" + std::to_string(len));
      std::vector<uint32_t> got(len + 1, 0xAAAA);
      std::vector<uint32_t> scalar(len + 1, 0xBBBB);
      const size_t n =
          simd::FilterInRange(values.data(), len, b[0], b[1], 1000,
                              got.data());
      const size_t n_scalar = simd::FilterInRangeScalar(
          values.data(), len, b[0], b[1], 1000, scalar.data());
      std::vector<uint32_t> expected;
      for (size_t i = 0; i < len; ++i) {
        if (values[i] >= b[0] && values[i] <= b[1]) {
          expected.push_back(1000 + static_cast<uint32_t>(i));
        }
      }
      ASSERT_EQ(n, expected.size());
      ASSERT_EQ(n_scalar, expected.size());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], expected[i]) << "i=" << i;
        ASSERT_EQ(scalar[i], expected[i]) << "i=" << i;
      }
    }
  }
}

TEST(FilterKernelTest, UnsignedUsesFullDomain) {
  std::mt19937_64 rng(12);
  std::vector<uint64_t> codes(kSweepCount);
  for (auto& c : codes) {
    c = rng();  // Full 64-bit range, including values >= 2^63.
  }
  codes[0] = 0;
  codes[1] = ~uint64_t{0};
  codes[2] = uint64_t{1} << 63;
  const uint64_t bounds[][2] = {
      {0, ~uint64_t{0}},
      {uint64_t{1} << 63, ~uint64_t{0}},
      {0, (uint64_t{1} << 63) - 1},
      {42, 41},  // Empty.
      {uint64_t{1} << 62, uint64_t{3} << 62}};
  for (const auto& b : bounds) {
    SCOPED_TRACE("lo=" + std::to_string(b[0]) +
                 " hi=" + std::to_string(b[1]));
    std::vector<uint32_t> got(kSweepCount, 0);
    std::vector<uint32_t> scalar(kSweepCount, 0);
    const size_t n = simd::FilterInRangeU64(codes.data(), kSweepCount, b[0],
                                            b[1], 0, got.data());
    const size_t n_scalar = simd::FilterInRangeU64Scalar(
        codes.data(), kSweepCount, b[0], b[1], 0, scalar.data());
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < kSweepCount; ++i) {
      if (codes[i] >= b[0] && codes[i] <= b[1]) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    ASSERT_EQ(n, expected.size());
    ASSERT_EQ(n_scalar, expected.size());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], expected[i]) << "i=" << i;
      ASSERT_EQ(scalar[i], expected[i]) << "i=" << i;
    }
  }
}

TEST(AggregateKernelTest, SumMatchesScalarAndWrapsLikeTwosComplement) {
  std::mt19937_64 rng(13);
  std::vector<uint64_t> values(kSweepCount);
  for (auto& v : values) {
    v = rng();  // Overflows the 64-bit sum many times over.
  }
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                     kSweepCount}) {
    SCOPED_TRACE("len=" + std::to_string(len));
    uint64_t expected = 0;
    for (size_t i = 0; i < len; ++i) {
      expected += values[i];
    }
    EXPECT_EQ(simd::SumU64(values.data(), len), expected);
    EXPECT_EQ(simd::SumU64Scalar(values.data(), len), expected);
  }
}

TEST(AggregateKernelTest, MinMaxSignedAndUnsigned) {
  std::mt19937_64 rng(14);
  std::vector<int64_t> signed_values(kSweepCount);
  std::vector<uint64_t> unsigned_values(kSweepCount);
  for (size_t i = 0; i < kSweepCount; ++i) {
    signed_values[i] = static_cast<int64_t>(rng());
    unsigned_values[i] = rng();
  }
  signed_values[5] = std::numeric_limits<int64_t>::min();
  signed_values[6] = std::numeric_limits<int64_t>::max();
  unsigned_values[5] = 0;
  unsigned_values[6] = ~uint64_t{0};
  for (size_t len : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                     size_t{9}, kSweepCount}) {
    SCOPED_TRACE("len=" + std::to_string(len));
    int64_t expect_min = signed_values[0];
    int64_t expect_max = signed_values[0];
    for (size_t i = 1; i < len; ++i) {
      expect_min = std::min(expect_min, signed_values[i]);
      expect_max = std::max(expect_max, signed_values[i]);
    }
    int64_t got_min = 0, got_max = 0;
    simd::MinMaxI64(signed_values.data(), len, &got_min, &got_max);
    EXPECT_EQ(got_min, expect_min);
    EXPECT_EQ(got_max, expect_max);
    simd::MinMaxI64Scalar(signed_values.data(), len, &got_min, &got_max);
    EXPECT_EQ(got_min, expect_min);
    EXPECT_EQ(got_max, expect_max);

    uint64_t expect_umin = unsigned_values[0];
    uint64_t expect_umax = unsigned_values[0];
    for (size_t i = 1; i < len; ++i) {
      expect_umin = std::min(expect_umin, unsigned_values[i]);
      expect_umax = std::max(expect_umax, unsigned_values[i]);
    }
    uint64_t got_umin = 0, got_umax = 0;
    simd::MinMaxU64(unsigned_values.data(), len, &got_umin, &got_umax);
    EXPECT_EQ(got_umin, expect_umin);
    EXPECT_EQ(got_umax, expect_umax);
    simd::MinMaxU64Scalar(unsigned_values.data(), len, &got_umin,
                          &got_umax);
    EXPECT_EQ(got_umin, expect_umin);
    EXPECT_EQ(got_umax, expect_umax);
  }
}

TEST(ReconstructionKernelTest, TranslateAddConstAddRefZigZag) {
  std::mt19937_64 rng(15);
  std::vector<int64_t> dict(300);
  for (auto& d : dict) {
    d = static_cast<int64_t>(rng());
  }
  std::vector<uint64_t> codes(kSweepCount);
  for (auto& c : codes) {
    c = rng() % dict.size();
  }
  std::vector<int64_t> ref(kSweepCount);
  std::vector<uint64_t> deltas(kSweepCount);
  for (size_t i = 0; i < kSweepCount; ++i) {
    ref[i] = static_cast<int64_t>(rng());
    deltas[i] = rng();
  }
  for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                     kSweepCount}) {
    SCOPED_TRACE("len=" + std::to_string(len));
    std::vector<int64_t> got(len + 1, -1);
    std::vector<int64_t> scalar(len + 1, -2);

    simd::TranslateCodes(dict.data(), codes.data(), len, got.data());
    simd::TranslateCodesScalar(dict.data(), codes.data(), len,
                               scalar.data());
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ(got[i], dict[codes[i]]) << "i=" << i;
      ASSERT_EQ(scalar[i], dict[codes[i]]) << "i=" << i;
    }

    got.assign(ref.begin(), ref.begin() + static_cast<long>(len));
    scalar = got;
    simd::AddConst(got.data(), len, int64_t{-987654321});
    simd::AddConstScalar(scalar.data(), len, int64_t{-987654321});
    for (size_t i = 0; i < len; ++i) {
      const int64_t expected = static_cast<int64_t>(
          static_cast<uint64_t>(ref[i]) -
          static_cast<uint64_t>(987654321));
      ASSERT_EQ(got[i], expected) << "i=" << i;
      ASSERT_EQ(scalar[i], expected) << "i=" << i;
    }

    got.assign(len + 1, -1);
    scalar.assign(len + 1, -2);
    simd::AddRefAndBase(ref.data(), deltas.data(), 12345, len, got.data());
    simd::AddRefAndBaseScalar(ref.data(), deltas.data(), 12345, len,
                              scalar.data());
    for (size_t i = 0; i < len; ++i) {
      const int64_t expected = static_cast<int64_t>(
          static_cast<uint64_t>(ref[i]) + 12345 + deltas[i]);
      ASSERT_EQ(got[i], expected) << "i=" << i;
      ASSERT_EQ(scalar[i], expected) << "i=" << i;
    }

    got.assign(len + 1, -1);
    scalar.assign(len + 1, -2);
    simd::AddRefZigZag(ref.data(), deltas.data(), len, got.data());
    simd::AddRefZigZagScalar(ref.data(), deltas.data(), len, scalar.data());
    for (size_t i = 0; i < len; ++i) {
      const int64_t expected = static_cast<int64_t>(
          static_cast<uint64_t>(ref[i]) +
          static_cast<uint64_t>(bit_util::ZigZagDecode(deltas[i])));
      ASSERT_EQ(got[i], expected) << "i=" << i;
      ASSERT_EQ(scalar[i], expected) << "i=" << i;
    }
  }
}

TEST(SparseDecodeKernelTest, ZigZagPrefixSumMatchesScalarAndModel) {
  std::mt19937_64 rng(21);
  std::vector<uint64_t> zigzag(kSweepCount);
  for (auto& z : zigzag) {
    z = rng();  // Arbitrary, including huge zig-zag codes (wrap-around).
  }
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                     size_t{16}, size_t{17}, kSweepCount}) {
    SCOPED_TRACE("len=" + std::to_string(len));
    const int64_t seed = -123456789;
    std::vector<int64_t> got(len + 1, -1);
    std::vector<int64_t> scalar(len + 1, -2);
    simd::ZigZagPrefixSum(zigzag.data(), len, seed, got.data());
    simd::ZigZagPrefixSumScalar(zigzag.data(), len, seed, scalar.data());
    uint64_t acc = static_cast<uint64_t>(seed);
    for (size_t i = 0; i < len; ++i) {
      acc += static_cast<uint64_t>(bit_util::ZigZagDecode(zigzag[i]));
      ASSERT_EQ(got[i], static_cast<int64_t>(acc)) << "i=" << i;
      ASSERT_EQ(scalar[i], static_cast<int64_t>(acc)) << "i=" << i;
    }
  }
}

TEST(SparseDecodeKernelTest, ZigZagSumPackedAndDeltaDecodeAllWidths) {
  const size_t begins[] = {0, 1, 7, 13, 63, 64, 65, 130};
  const size_t lengths[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 33, 64, 200};
  for (int width = 0; width <= 64; ++width) {
    SCOPED_TRACE("width=" + std::to_string(width));
    const auto values =
        RandomValues(width, kSweepCount, 300 + static_cast<uint64_t>(width));
    BitWriter writer(width);
    writer.AppendAll(values);
    const auto bytes = std::move(writer).Finish();
    for (size_t begin : begins) {
      for (size_t len : lengths) {
        if (begin + len > kSweepCount) {
          continue;
        }
        SCOPED_TRACE("begin=" + std::to_string(begin) +
                     " len=" + std::to_string(len));
        uint64_t expected_sum = 0;
        for (size_t i = 0; i < len; ++i) {
          expected_sum += static_cast<uint64_t>(
              bit_util::ZigZagDecode(values[begin + i]));
        }
        ASSERT_EQ(simd::ZigZagSumPacked(bytes.data(), width, begin, len),
                  static_cast<int64_t>(expected_sum));
        ASSERT_EQ(
            simd::ZigZagSumPackedScalar(bytes.data(), width, begin, len),
            static_cast<int64_t>(expected_sum));

        const int64_t seed = 424242;
        std::vector<int64_t> got(len + 1, -1);
        std::vector<int64_t> scalar(len + 1, -2);
        simd::DeltaDecodePacked(bytes.data(), width, begin, len, seed,
                                got.data());
        simd::DeltaDecodePackedScalar(bytes.data(), width, begin, len, seed,
                                      scalar.data());
        uint64_t acc = static_cast<uint64_t>(seed);
        for (size_t i = 0; i < len; ++i) {
          acc += static_cast<uint64_t>(
              bit_util::ZigZagDecode(values[begin + i]));
          ASSERT_EQ(got[i], static_cast<int64_t>(acc)) << "i=" << i;
          ASSERT_EQ(scalar[i], static_cast<int64_t>(acc)) << "i=" << i;
        }
      }
    }
  }
}

TEST(SparseDecodeKernelTest, DeltaPointAndGatherMatchPrefixModel) {
  // A checkpointed stream exactly as DeltaColumn lays it out: slot 0
  // unused (0), slot i the zig-zag delta value[i] - value[i-1], plus a
  // checkpoint of the absolute value every interval rows.
  constexpr size_t kRows = 64 * 40 + 17;
  for (int width : {0, 1, 5, 11, 13, 14, 15, 23, 28, 29, 40, 58, 64}) {
    for (const int shift : {4, 5, 6, 7}) {
      const size_t interval = size_t{1} << shift;
      SCOPED_TRACE("width=" + std::to_string(width) +
                   " interval=" + std::to_string(interval));
      const auto deltas =
          RandomValues(width, kRows, 900 + static_cast<uint64_t>(width));
      BitWriter writer(width);
      std::vector<int64_t> model(kRows);
      std::vector<int64_t> checkpoints;
      uint64_t acc = 0;
      for (size_t i = 0; i < kRows; ++i) {
        if (i > 0) {
          acc += static_cast<uint64_t>(bit_util::ZigZagDecode(deltas[i]));
        }
        model[i] = static_cast<int64_t>(acc);
        if (i % interval == 0) {
          checkpoints.push_back(model[i]);
        }
        writer.Append(i == 0 ? 0 : deltas[i]);
      }
      const auto bytes = std::move(writer).Finish();

      std::mt19937_64 rng(55);
      for (int probe = 0; probe < 200; ++probe) {
        const size_t row = rng() % kRows;
        ASSERT_EQ(simd::DeltaPointPacked(bytes.data(), width,
                                         checkpoints.data(), shift, kRows,
                                         row),
                  model[row])
            << "row=" << row;
        ASSERT_EQ(simd::DeltaPointPackedScalar(bytes.data(), width,
                                               checkpoints.data(), shift,
                                               kRows, row),
                  model[row])
            << "row=" << row;
      }

      // Sorted, unsorted, empty, and single-row selections through the
      // batched gather kernel.
      std::vector<uint32_t> rows;
      for (size_t i = 0; i < kRows; ++i) {
        if (rng() % 7 == 0) {
          rows.push_back(static_cast<uint32_t>(i));
        }
      }
      const std::vector<uint32_t> unsorted = {
          static_cast<uint32_t>(kRows - 1), 3, 700, 699, 0, 64, 63};
      for (const auto& selection :
           {rows, unsorted, std::vector<uint32_t>{},
            std::vector<uint32_t>{static_cast<uint32_t>(kRows / 2)}}) {
        std::vector<int64_t> got(selection.size() + 1, -1);
        std::vector<int64_t> scalar(selection.size() + 1, -2);
        simd::DeltaGatherPacked(bytes.data(), width, checkpoints.data(),
                                shift, kRows, selection.data(),
                                selection.size(), got.data());
        simd::DeltaGatherPackedScalar(bytes.data(), width,
                                      checkpoints.data(), shift, kRows,
                                      selection.data(), selection.size(),
                                      scalar.data());
        for (size_t i = 0; i < selection.size(); ++i) {
          ASSERT_EQ(got[i], model[selection[i]]) << "i=" << i;
          ASSERT_EQ(scalar[i], model[selection[i]]) << "i=" << i;
        }
      }
    }
  }
}

TEST(SparseDecodeKernelTest, DeltaInlinePointAndGatherMatchPrefixModel) {
  // An inline-checkpoint window stream built by an independent reference
  // packer (the layout contract in simd.h): window k starts at byte
  // k * stride and holds the 8-byte absolute value of row k * interval
  // followed by `interval` zig-zag delta slots packed from bit 0, slot j
  // covering row k * interval + 1 + j. Every window (incl. the partial
  // last one) occupies the full stride.
  constexpr size_t kRows = 64 * 40 + 17;
  for (int width : {0, 1, 5, 11, 13, 14, 15, 23, 28, 29, 40, 58, 64}) {
    for (const int shift : {4, 5, 6, 7}) {
      const size_t interval = size_t{1} << shift;
      SCOPED_TRACE("width=" + std::to_string(width) +
                   " interval=" + std::to_string(interval));
      const auto deltas =
          RandomValues(width, kRows, 1700 + static_cast<uint64_t>(width) +
                                         static_cast<uint64_t>(shift));
      // (distinct per-shift seed: interval 16 exercises the 8-slot
      // unrolled masked fold.)
      std::vector<int64_t> model(kRows);
      uint64_t acc = 0;
      for (size_t i = 0; i < kRows; ++i) {
        if (i > 0) {
          acc += static_cast<uint64_t>(bit_util::ZigZagDecode(deltas[i]));
        }
        model[i] = static_cast<int64_t>(acc);
      }
      const size_t stride =
          8 + bit_util::RoundUpPow2(
                  bit_util::CeilDiv(interval * static_cast<size_t>(width), 8),
                  8);
      const size_t windows = (kRows - 1) / interval + 1;
      std::vector<uint8_t> stream(windows * stride + bit_util::kDecodePadBytes,
                                  0);
      for (size_t k = 0; k < windows; ++k) {
        const size_t first = k * interval;
        std::memcpy(stream.data() + k * stride, &model[first],
                    sizeof(int64_t));
        // Pack the window's slots with BitWriter (independently tested)
        // and splice the payload into the window's delta region.
        BitWriter slots(width);
        const size_t last = std::min(first + interval, kRows - 1);
        for (size_t row = first + 1; row <= last; ++row) {
          slots.Append(deltas[row]);
        }
        const size_t payload =
            bit_util::PackedDataBytes(last - first, width);
        const auto packed = std::move(slots).Finish();
        std::memcpy(stream.data() + k * stride + 8, packed.data(), payload);
      }

      std::mt19937_64 rng(56);
      for (int probe = 0; probe < 200; ++probe) {
        const size_t row = rng() % kRows;
        ASSERT_EQ(simd::DeltaPointInline(stream.data(), width, shift, stride,
                                         kRows, row),
                  model[row])
            << "row=" << row;
        ASSERT_EQ(simd::DeltaPointInlineScalar(stream.data(), width, shift,
                                               stride, kRows, row),
                  model[row])
            << "row=" << row;
      }

      // Sorted, unsorted, empty, and single-row selections through the
      // batched gather kernel.
      std::vector<uint32_t> rows;
      for (size_t i = 0; i < kRows; ++i) {
        if (rng() % 7 == 0) {
          rows.push_back(static_cast<uint32_t>(i));
        }
      }
      const std::vector<uint32_t> unsorted = {
          static_cast<uint32_t>(kRows - 1), 3, 700, 699, 0, 64, 63};
      for (const auto& selection :
           {rows, unsorted, std::vector<uint32_t>{},
            std::vector<uint32_t>{static_cast<uint32_t>(kRows / 2)}}) {
        std::vector<int64_t> got(selection.size() + 1, -1);
        std::vector<int64_t> scalar(selection.size() + 1, -2);
        simd::DeltaGatherInline(stream.data(), width, shift, stride, kRows,
                                selection.data(), selection.size(),
                                got.data());
        simd::DeltaGatherInlineScalar(stream.data(), width, shift, stride,
                                      kRows, selection.data(),
                                      selection.size(), scalar.data());
        for (size_t i = 0; i < selection.size(); ++i) {
          ASSERT_EQ(got[i], model[selection[i]]) << "i=" << i;
          ASSERT_EQ(scalar[i], model[selection[i]]) << "i=" << i;
        }
      }
    }
  }
}

TEST(SparseDecodeKernelTest, ExpandRunsMatchesModel) {
  // Runs of varying lengths incl. single-row runs and a long tail run.
  std::vector<int64_t> run_values;
  std::vector<uint32_t> run_ends;
  std::mt19937_64 rng(66);
  uint32_t end = 0;
  while (end < 5000) {
    end += 1 + static_cast<uint32_t>(rng() % 40);
    run_values.push_back(static_cast<int64_t>(rng()));
    run_ends.push_back(end);
  }
  const size_t rows = run_ends.back();
  auto run_of = [&](size_t row) {
    size_t r = 0;
    while (run_ends[r] <= row) {
      ++r;
    }
    return r;
  };
  for (const auto& [begin, count] :
       {std::pair<size_t, size_t>{0, rows}, {0, 1}, {rows - 1, 1},
        {17, 1000}, {run_ends[3], 5}, {run_ends[4] - 1, 2}, {100, 0}}) {
    SCOPED_TRACE("begin=" + std::to_string(begin) +
                 " count=" + std::to_string(count));
    std::vector<int64_t> got(count + 1, -1);
    std::vector<int64_t> scalar(count + 1, -2);
    if (count > 0) {
      simd::ExpandRuns(run_values.data(), run_ends.data(), run_of(begin),
                       begin, count, got.data());
      simd::ExpandRunsScalar(run_values.data(), run_ends.data(),
                             run_of(begin), begin, count, scalar.data());
    }
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(got[i], run_values[run_of(begin + i)]) << "i=" << i;
      ASSERT_EQ(scalar[i], run_values[run_of(begin + i)]) << "i=" << i;
    }
    ASSERT_EQ(got[count], -1);
    ASSERT_EQ(scalar[count], -2);
  }
}

TEST(SparseDecodeKernelTest, GatherBitsAllWidthsAndPositions) {
  for (int width = 0; width <= 64; ++width) {
    SCOPED_TRACE("width=" + std::to_string(width));
    const auto values =
        RandomValues(width, kSweepCount, 500 + static_cast<uint64_t>(width));
    BitWriter writer(width);
    writer.AppendAll(values);
    const auto bytes = std::move(writer).Finish();
    std::mt19937_64 rng(77);
    std::vector<uint32_t> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back(static_cast<uint32_t>(rng() % kSweepCount));
    }
    rows.push_back(0);
    rows.push_back(kSweepCount - 1);  // Last position: pad-boundary load.
    for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                       rows.size()}) {
      SCOPED_TRACE("len=" + std::to_string(len));
      std::vector<uint64_t> got(len + 1, 0xDEAD);
      std::vector<uint64_t> scalar(len + 1, 0xBEEF);
      simd::GatherBits(bytes.data(), width, rows.data(), len, got.data());
      simd::GatherBitsScalar(bytes.data(), width, rows.data(), len,
                             scalar.data());
      for (size_t i = 0; i < len; ++i) {
        ASSERT_EQ(got[i], values[rows[i]]) << "i=" << i;
        ASSERT_EQ(scalar[i], values[rows[i]]) << "i=" << i;
      }
    }
  }
}

TEST(DispatchTest, BackendNameIsConsistent) {
  const simd::Backend backend = simd::ActiveBackend();
  if (backend == simd::Backend::kScalar) {
    EXPECT_STREQ(simd::BackendName(), "scalar");
  } else {
    EXPECT_STREQ(simd::BackendName(), "avx2");
  }
#if defined(CORRA_FORCE_SCALAR)
  EXPECT_EQ(backend, simd::Backend::kScalar);
#endif
}

}  // namespace
}  // namespace corra
