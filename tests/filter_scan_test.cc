// Predicate pushdown (query/filter.h) and multi-block scans
// (query/table_scan.h).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/corra_compressor.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "query/filter.h"
#include "query/table_scan.h"
#include "test_util.h"

namespace corra::query {
namespace {

using test::Dist;
using test::MakeValues;

std::vector<uint32_t> ReferenceFilter(const std::vector<int64_t>& values,
                                      int64_t lo, int64_t hi) {
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      rows.push_back(static_cast<uint32_t>(i));
    }
  }
  return rows;
}

class FilterSchemeTest : public ::testing::TestWithParam<Dist> {};

TEST_P(FilterSchemeTest, ForMatchesReference) {
  const auto values = MakeValues(GetParam(), 3000, 1);
  auto column = enc::ForColumn::Encode(values).value();
  for (auto [lo, hi] : {std::pair<int64_t, int64_t>{-100, 100},
                        {0, 0},
                        {INT64_MIN, INT64_MAX},
                        {100, -100},
                        {-5000, -4500}}) {
    EXPECT_EQ(FilterToSelection(*column, lo, hi),
              ReferenceFilter(values, lo, hi))
        << "range [" << lo << ", " << hi << "]";
    EXPECT_EQ(CountInRange(*column, lo, hi),
              ReferenceFilter(values, lo, hi).size());
  }
}

TEST_P(FilterSchemeTest, DictMatchesReference) {
  const auto values = MakeValues(GetParam(), 3000, 2);
  auto column = enc::DictColumn::Encode(values).value();
  for (auto [lo, hi] : {std::pair<int64_t, int64_t>{-100, 100},
                        {3, 17},
                        {INT64_MIN, INT64_MAX},
                        {999, 999}}) {
    EXPECT_EQ(FilterToSelection(*column, lo, hi),
              ReferenceFilter(values, lo, hi));
  }
}

TEST_P(FilterSchemeTest, GenericPathMatchesReference) {
  // Delta has no fast path: exercises the chunked generic filter.
  const auto values = MakeValues(GetParam(), 3000, 3);
  auto column = enc::DeltaColumn::Encode(values).value();
  EXPECT_EQ(FilterToSelection(*column, -50, 50),
            ReferenceFilter(values, -50, 50));
}

INSTANTIATE_TEST_SUITE_P(Distributions, FilterSchemeTest,
                         ::testing::Values(Dist::kConstant,
                                           Dist::kSmallRange,
                                           Dist::kNegative, Dist::kLowCard,
                                           Dist::kRunHeavy),
                         [](const auto& param_info) {
                           return test::DistName(param_info.param);
                         });

TEST(FilterTest, EmptyRangeAndEmptyColumn) {
  const std::vector<int64_t> values = {1, 2, 3};
  auto column = enc::ForColumn::Encode(values).value();
  EXPECT_TRUE(FilterToSelection(*column, 5, 4).empty());
  EXPECT_EQ(CountInRange(*column, 5, 4), 0u);

  auto empty = enc::ForColumn::Encode(std::span<const int64_t>{}).value();
  EXPECT_TRUE(FilterToSelection(*empty, INT64_MIN, INT64_MAX).empty());
}

TEST(FilterTest, RangeBelowForBase) {
  const std::vector<int64_t> values = {1000, 1001, 1002};
  auto column = enc::ForColumn::Encode(values).value();
  EXPECT_TRUE(FilterToSelection(*column, 0, 999).empty());
  EXPECT_EQ(FilterToSelection(*column, 0, 1000),
            (std::vector<uint32_t>{0}));
}

TEST(FilterTest, WorksOnDiffEncodedColumns) {
  // Filters run through the generic path on horizontal columns (their
  // Gather consults the bound reference).
  Rng rng(4);
  const size_t n = 5000;
  std::vector<int64_t> ship(n);
  std::vector<int64_t> receipt(n);
  for (size_t i = 0; i < n; ++i) {
    ship[i] = rng.Uniform(8035, 10591);
    receipt[i] = ship[i] + rng.Uniform(1, 30);
  }
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Date("ship", ship)).ok());
  ASSERT_TRUE(table.AddColumn(Column::Date("receipt", receipt)).ok());
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kDiff;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table, plan).value();
  const auto got =
      FilterToSelection(compressed.block(0).column(1), 9000, 9100);
  EXPECT_EQ(got, ReferenceFilter(receipt, 9000, 9100));
}

// ---- Table scans -----------------------------------------------------------

class TableScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    const size_t n = 3500;
    ship_.resize(n);
    receipt_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      ship_[i] = rng.Uniform(8035, 10591);
      receipt_[i] = ship_[i] + rng.Uniform(1, 30);
    }
    Table table;
    ASSERT_TRUE(table.AddColumn(Column::Date("ship", ship_)).ok());
    ASSERT_TRUE(table.AddColumn(Column::Date("receipt", receipt_)).ok());
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.block_rows = 1000;  // 4 blocks: 1000+1000+1000+500.
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kDiff;
    plan.columns[1].reference = 0;
    compressed_.emplace(
        CorraCompressor::Compress(table, plan).value());
  }

  std::vector<int64_t> ship_;
  std::vector<int64_t> receipt_;
  std::optional<CompressedTable> compressed_;
};

TEST_F(TableScanTest, SelectionSpanningAllBlocks) {
  std::vector<uint32_t> rows;
  for (uint32_t r = 3; r < 3500; r += 101) {
    rows.push_back(r);
  }
  auto out = ScanTableColumn(*compressed_, 1, rows);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out.value()[i], receipt_[rows[i]]);
  }
}

TEST_F(TableScanTest, SelectionTouchingBlockBoundaries) {
  const std::vector<uint32_t> rows = {0,    999,  1000, 1001, 1999,
                                      2000, 2999, 3000, 3499};
  auto out = ScanTableColumn(*compressed_, 1, rows);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out.value()[i], receipt_[rows[i]]);
  }
}

TEST_F(TableScanTest, SelectionSkippingBlocks) {
  // Nothing selected from blocks 1 and 2.
  const std::vector<uint32_t> rows = {5, 500, 3100, 3499};
  auto out = ScanTableColumn(*compressed_, 1, rows);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out.value()[i], receipt_[rows[i]]);
  }
}

TEST_F(TableScanTest, EmptySelection) {
  auto out = ScanTableColumn(*compressed_, 1, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST_F(TableScanTest, RejectsUnsortedSelection) {
  const std::vector<uint32_t> rows = {100, 50};
  EXPECT_FALSE(ScanTableColumn(*compressed_, 1, rows).ok());
}

TEST_F(TableScanTest, RejectsOutOfRangePosition) {
  const std::vector<uint32_t> rows = {3500};
  auto out = ScanTableColumn(*compressed_, 1, rows);
  EXPECT_TRUE(out.status().IsOutOfRange());
}

TEST_F(TableScanTest, RejectsBadColumn) {
  EXPECT_FALSE(ScanTableColumn(*compressed_, 7, {}).ok());
}

TEST_F(TableScanTest, PairScanSharesReference) {
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < 3500; r += 7) {
    rows.push_back(r);
  }
  auto out = ScanTablePair(*compressed_, 0, 1, rows);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out.value().reference[i], ship_[rows[i]]);
    EXPECT_EQ(out.value().target[i], receipt_[rows[i]]);
  }
}

TEST_F(TableScanTest, FilterThenScanPipeline) {
  // The intended composition: push a predicate into each block, stitch
  // the per-block selections into a global one, then materialize.
  std::vector<uint32_t> global;
  size_t base = 0;
  for (size_t b = 0; b < compressed_->num_blocks(); ++b) {
    for (uint32_t r :
         FilterToSelection(compressed_->block(b).column(1), 9000, 9050)) {
      global.push_back(static_cast<uint32_t>(base + r));
    }
    base += compressed_->block(b).rows();
  }
  auto out = ScanTableColumn(*compressed_, 1, global);
  ASSERT_TRUE(out.ok());
  for (int64_t v : out.value()) {
    EXPECT_GE(v, 9000);
    EXPECT_LE(v, 9050);
  }
  // Cross-check count against the uncompressed data.
  size_t expected = 0;
  for (int64_t v : receipt_) {
    expected += (v >= 9000 && v <= 9050) ? 1 : 0;
  }
  EXPECT_EQ(out.value().size(), expected);
}

}  // namespace
}  // namespace corra::query
