#include "core/outlier_store.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace corra {
namespace {

TEST(OutlierStoreTest, EmptyStore) {
  OutlierStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.SizeBytes(), 0u);
  EXPECT_FALSE(store.Find(0).has_value());
}

TEST(OutlierStoreTest, BuildAndFind) {
  const std::vector<uint32_t> rows = {1, 5, 100};
  const std::vector<int64_t> values = {-7, 9000, 42};
  auto result = OutlierStore::Build(rows, values);
  ASSERT_TRUE(result.ok());
  auto& store = result.value();
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.Find(1), -7);
  EXPECT_EQ(store.Find(5), 9000);
  EXPECT_EQ(store.Find(100), 42);
  EXPECT_FALSE(store.Find(0).has_value());
  EXPECT_FALSE(store.Find(6).has_value());
  EXPECT_FALSE(store.Find(101).has_value());
  EXPECT_TRUE(store.Contains(5));
  EXPECT_FALSE(store.Contains(4));
}

TEST(OutlierStoreTest, RejectsUnsortedRows) {
  const std::vector<uint32_t> rows = {5, 1};
  const std::vector<int64_t> values = {1, 2};
  EXPECT_FALSE(OutlierStore::Build(rows, values).ok());
}

TEST(OutlierStoreTest, RejectsDuplicateRows) {
  const std::vector<uint32_t> rows = {5, 5};
  const std::vector<int64_t> values = {1, 2};
  EXPECT_FALSE(OutlierStore::Build(rows, values).ok());
}

TEST(OutlierStoreTest, RejectsLengthMismatch) {
  const std::vector<uint32_t> rows = {1, 2};
  const std::vector<int64_t> values = {1};
  EXPECT_FALSE(OutlierStore::Build(rows, values).ok());
}

TEST(OutlierStoreTest, PatchOverwritesOnlyOutlierPositions) {
  auto result = OutlierStore::Build(std::vector<uint32_t>{2, 6, 9},
                                    std::vector<int64_t>{-1, -2, -3});
  ASSERT_TRUE(result.ok());
  auto& store = result.value();

  const std::vector<uint32_t> selection = {0, 2, 3, 6, 8};
  std::vector<int64_t> out = {10, 20, 30, 40, 50};
  store.Patch(selection, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{10, -1, 30, -2, 50}));
}

TEST(OutlierStoreTest, PatchWithEmptySelectionOrStore) {
  OutlierStore empty;
  std::vector<int64_t> out = {1, 2};
  const std::vector<uint32_t> sel = {0, 1};
  empty.Patch(sel, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{1, 2}));

  auto store = OutlierStore::Build(std::vector<uint32_t>{3},
                                   std::vector<int64_t>{9});
  ASSERT_TRUE(store.ok());
  store.value().Patch({}, nullptr);  // Must not crash.
}

TEST(OutlierStoreTest, PatchSelectionDisjointFromOutliers) {
  auto store = OutlierStore::Build(std::vector<uint32_t>{100, 200},
                                   std::vector<int64_t>{1, 2});
  ASSERT_TRUE(store.ok());
  const std::vector<uint32_t> sel = {0, 50, 150, 300};
  std::vector<int64_t> out = {7, 7, 7, 7};
  store.value().Patch(sel, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{7, 7, 7, 7}));
}

TEST(OutlierStoreTest, ValuesArePackedNotRaw) {
  // 1000 outliers with values in a 256-wide window: 8 bits each, far less
  // than 8 bytes each.
  std::vector<uint32_t> rows(1000);
  std::vector<int64_t> values(1000);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<uint32_t>(i * 3);
    values[i] = 100000 + static_cast<int64_t>(i % 256);
  }
  auto result = OutlierStore::Build(rows, values);
  ASSERT_TRUE(result.ok());
  // 4 bytes index + 1 byte packed value + base.
  EXPECT_LE(result.value().SizeBytes(), 1000 * 5 + 8 + 16);
}

TEST(OutlierStoreTest, SerializeRoundTrip) {
  Rng rng(7);
  std::vector<uint32_t> rows;
  std::vector<int64_t> values;
  uint32_t row = 0;
  for (int i = 0; i < 500; ++i) {
    row += static_cast<uint32_t>(rng.Uniform(1, 100));
    rows.push_back(row);
    values.push_back(rng.Uniform(-100000, 100000));
  }
  auto built = OutlierStore::Build(rows, values);
  ASSERT_TRUE(built.ok());

  BufferWriter writer;
  built.value().Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  BufferReader reader(bytes);
  auto reloaded = OutlierStore::Deserialize(&reader);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded.value().size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(reloaded.value().row(i), rows[i]);
    EXPECT_EQ(reloaded.value().value(i), values[i]);
  }
}

TEST(OutlierStoreTest, DeserializeRejectsUnsortedRows) {
  auto built = OutlierStore::Build(std::vector<uint32_t>{1, 2},
                                   std::vector<int64_t>{10, 20});
  ASSERT_TRUE(built.ok());
  BufferWriter writer;
  built.value().Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  // Row array entries start right after the 8-byte length prefix; swap
  // them to break ordering.
  std::swap(bytes[8], bytes[12]);
  std::swap(bytes[9], bytes[13]);
  std::swap(bytes[10], bytes[14]);
  std::swap(bytes[11], bytes[15]);
  BufferReader reader(bytes);
  EXPECT_FALSE(OutlierStore::Deserialize(&reader).ok());
}

TEST(OutlierStoreTest, NegativeAndExtremeValues) {
  const std::vector<uint32_t> rows = {0, 1, 2};
  const std::vector<int64_t> values = {INT64_MIN / 2, 0, INT64_MAX / 2};
  auto result = OutlierStore::Build(rows, values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().Find(0), INT64_MIN / 2);
  EXPECT_EQ(result.value().Find(1), 0);
  EXPECT_EQ(result.value().Find(2), INT64_MAX / 2);
}

}  // namespace
}  // namespace corra
