// Failpoint framework: trigger grammar, firing schedules, env-style
// configuration, and the compiled-out escape hatch.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace corra::fail {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out (CORRA_FAILPOINTS_OFF)";
    }
    ClearAll();
  }
  void TearDown() override { ClearAll(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(CORRA_FAILPOINT("test.unarmed"));
  }
  EXPECT_EQ(Evaluations("test.unarmed"), 0u);
}

TEST_F(FailpointTest, OffSpecParksButCounts) {
  ASSERT_TRUE(Configure("test.off", "off").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(CORRA_FAILPOINT("test.off"));
  }
  EXPECT_EQ(Evaluations("test.off"), 10u);
  EXPECT_EQ(Fires("test.off"), 0u);
}

TEST_F(FailpointTest, EveryNthFiresOnSchedule) {
  ASSERT_TRUE(Configure("test.every", "every:3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(CORRA_FAILPOINT("test.every"));
  }
  // Fires on evaluations 3, 6, 9 (every 3rd).
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      true, false, false, true}));
  EXPECT_EQ(Evaluations("test.every"), 9u);
  EXPECT_EQ(Fires("test.every"), 3u);
}

TEST_F(FailpointTest, EveryOneFiresAlways) {
  ASSERT_TRUE(Configure("test.always", "every:1").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(CORRA_FAILPOINT("test.always"));
  }
}

TEST_F(FailpointTest, TimesNFiresExactlyNThenStops) {
  ASSERT_TRUE(Configure("test.times", "times:2").ok());
  EXPECT_TRUE(CORRA_FAILPOINT("test.times"));
  EXPECT_TRUE(CORRA_FAILPOINT("test.times"));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(CORRA_FAILPOINT("test.times"));
  }
  EXPECT_EQ(Fires("test.times"), 2u);
}

TEST_F(FailpointTest, ProbZeroNeverProbOneAlways) {
  ASSERT_TRUE(Configure("test.p0", "prob:0").ok());
  ASSERT_TRUE(Configure("test.p1", "prob:1").ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(CORRA_FAILPOINT("test.p0"));
    EXPECT_TRUE(CORRA_FAILPOINT("test.p1"));
  }
}

TEST_F(FailpointTest, SeededProbIsDeterministic) {
  auto run = [] {
    EXPECT_TRUE(Configure("test.seeded", "prob:0.5:42").ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(CORRA_FAILPOINT("test.seeded"));
    }
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();  // Reconfigure resets the RNG.
  EXPECT_EQ(first, second);
  // A fair-ish coin: both outcomes occur in 64 draws.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FailpointTest, ReconfigureReplacesAndResetsCounters) {
  ASSERT_TRUE(Configure("test.re", "every:1").ok());
  EXPECT_TRUE(CORRA_FAILPOINT("test.re"));
  ASSERT_TRUE(Configure("test.re", "off").ok());
  EXPECT_FALSE(CORRA_FAILPOINT("test.re"));
  EXPECT_EQ(Evaluations("test.re"), 1u);  // Reset by the reconfigure.
}

TEST_F(FailpointTest, ClearDisarms) {
  ASSERT_TRUE(Configure("test.clear", "every:1").ok());
  EXPECT_TRUE(CORRA_FAILPOINT("test.clear"));
  Clear("test.clear");
  EXPECT_FALSE(CORRA_FAILPOINT("test.clear"));
  EXPECT_EQ(Evaluations("test.clear"), 0u);  // Counters discarded.
}

TEST_F(FailpointTest, ConfigureFromStringArmsEveryPair) {
  ASSERT_TRUE(
      ConfigureFromString("test.a=every:1;test.b=times:1").ok());
  EXPECT_TRUE(CORRA_FAILPOINT("test.a"));
  EXPECT_TRUE(CORRA_FAILPOINT("test.b"));
  EXPECT_FALSE(CORRA_FAILPOINT("test.b"));
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  EXPECT_TRUE(Configure("test.bad", "bogus").IsInvalidArgument());
  EXPECT_TRUE(Configure("test.bad", "every:0").IsInvalidArgument());
  EXPECT_TRUE(Configure("test.bad", "prob:1.5").IsInvalidArgument());
  EXPECT_TRUE(Configure("test.bad", "prob:nan").IsInvalidArgument());
  EXPECT_TRUE(Configure("", "every:1").IsInvalidArgument());
  EXPECT_TRUE(ConfigureFromString("no-equals-sign").IsInvalidArgument());
  // A rejected spec arms nothing.
  EXPECT_FALSE(CORRA_FAILPOINT("test.bad"));
}

TEST_F(FailpointTest, ScopedFailpointClearsOnExit) {
  {
    ScopedFailpoint fp("test.scoped", "every:1");
    ASSERT_TRUE(fp.status().ok());
    EXPECT_TRUE(CORRA_FAILPOINT("test.scoped"));
  }
  EXPECT_FALSE(CORRA_FAILPOINT("test.scoped"));
}

TEST_F(FailpointTest, SchedulesStayExactUnderConcurrency) {
  // every:5 across 8 threads x 1000 evaluations: exactly 1/5 of the
  // 8000 evaluations fire, because evaluation is mutex-serialized.
  ASSERT_TRUE(Configure("test.mt", "every:5").ok());
  std::atomic<uint64_t> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fires] {
      for (int i = 0; i < 1000; ++i) {
        if (CORRA_FAILPOINT("test.mt")) {
          fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(fires.load(), 8000u / 5u);
  EXPECT_EQ(Evaluations("test.mt"), 8000u);
  EXPECT_EQ(Fires("test.mt"), 8000u / 5u);
}

TEST(FailpointCompiledOutTest, ConfigureReportsNotImplemented) {
  if (CompiledIn()) {
    GTEST_SKIP() << "framework compiled in";
  }
  EXPECT_TRUE(Configure("x", "every:1").IsNotImplemented());
  EXPECT_FALSE(CORRA_FAILPOINT("x"));
}

}  // namespace
}  // namespace corra::fail
