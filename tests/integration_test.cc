// End-to-end pipeline on all four (synthetic) datasets:
// generate -> plan -> compress -> serialize -> reload -> query -> verify,
// checking both exactness and that Corra's savings materialize.

#include <gtest/gtest.h>

#include "core/corra_compressor.h"
#include "datagen/dmv.h"
#include "datagen/ldbc.h"
#include "datagen/taxi.h"
#include "datagen/tpch.h"
#include "query/scan.h"
#include "query/selection_vector.h"

namespace corra {
namespace {

constexpr size_t kRows = 60000;
constexpr size_t kBlockRows = 25000;  // Forces multiple blocks.

// Serializes every block and reloads the table from bytes only.
CompressedTable Reload(const CompressedTable& table) {
  std::vector<Block> blocks;
  for (size_t b = 0; b < table.num_blocks(); ++b) {
    const auto bytes = table.block(b).Serialize();
    auto block = Block::Deserialize(bytes, /*verify=*/true);
    EXPECT_TRUE(block.ok()) << block.status().ToString();
    blocks.push_back(std::move(block).value());
  }
  return CompressedTable(table.schema(), std::move(blocks));
}

void ExpectColumnsEqual(const Table& table, const CompressedTable& got) {
  ASSERT_EQ(got.num_rows(), table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(got.DecodeColumn(c),
              std::vector<int64_t>(table.column(c).values().begin(),
                                   table.column(c).values().end()))
        << "column " << table.column(c).name();
  }
}

void ExpectQueriesMatch(const Table& table, const CompressedTable& got,
                        size_t column) {
  Rng rng(99);
  for (double sel : {0.001, 0.05, 0.5}) {
    for (size_t b = 0; b < got.num_blocks(); ++b) {
      const size_t base = b * kBlockRows;
      const auto rows =
          query::GenerateSelectionVector(got.block(b).rows(), sel, &rng);
      const auto out = query::ScanColumn(got.block(b), column, rows);
      for (size_t i = 0; i < rows.size(); ++i) {
        ASSERT_EQ(out[i], table.column(column).values()[base + rows[i]])
            << "block " << b << " sel " << sel;
      }
    }
  }
}

TEST(IntegrationTest, TpchLineitemDates) {
  auto table = datagen::MakeLineitemTable(kRows, 11);
  ASSERT_TRUE(table.ok());
  // Paper config: commit and receipt diff-encoded against ship.
  CompressionPlan plan = CompressionPlan::AllAuto(4);
  plan.block_rows = kBlockRows;
  for (size_t target : {size_t{2}, size_t{3}}) {
    plan.columns[target].auto_vertical = false;
    plan.columns[target].scheme = enc::Scheme::kDiff;
    plan.columns[target].reference = 1;
  }
  auto compressed = CorraCompressor::Compress(table.value(), plan);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto baseline = CorraCompressor::Compress(
      table.value(), [&] {
        CompressionPlan p = CompressionPlan::AllAuto(4);
        p.block_rows = kBlockRows;
        return p;
      }());
  ASSERT_TRUE(baseline.ok());

  // Table 2 ratios: receipt ~58% saving, commit ~33%.
  const double receipt_saving =
      1.0 - static_cast<double>(compressed.value().ColumnSizeBytes(3)) /
                static_cast<double>(baseline.value().ColumnSizeBytes(3));
  const double commit_saving =
      1.0 - static_cast<double>(compressed.value().ColumnSizeBytes(2)) /
                static_cast<double>(baseline.value().ColumnSizeBytes(2));
  EXPECT_NEAR(receipt_saving, 0.583, 0.03);
  EXPECT_NEAR(commit_saving, 0.333, 0.03);

  const CompressedTable reloaded = Reload(compressed.value());
  ExpectColumnsEqual(table.value(), reloaded);
  ExpectQueriesMatch(table.value(), reloaded, 3);
}

TEST(IntegrationTest, DmvHierarchy) {
  auto table = datagen::MakeDmvTable(kRows, 12);
  ASSERT_TRUE(table.ok());
  // zip hierarchical w.r.t. city; city hierarchical w.r.t. state.
  CompressionPlan plan = CompressionPlan::AllAuto(3);
  plan.block_rows = kBlockRows;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kHierarchical;
  plan.columns[1].reference = 0;
  plan.columns[2].auto_vertical = false;
  plan.columns[2].scheme = enc::Scheme::kHierarchical;
  plan.columns[2].reference = 1;
  auto compressed = CorraCompressor::Compress(table.value(), plan);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto baseline = CorraCompressor::Compress(
      table.value(), [&] {
        CompressionPlan p = CompressionPlan::AllAuto(3);
        p.block_rows = kBlockRows;
        return p;
      }());
  ASSERT_TRUE(baseline.ok());
  // zip must shrink (paper: 53.7% at full scale). At this tiny test scale
  // the baseline dictionary gets unrealistically narrow codes and the
  // hierarchical metadata amortizes over few rows, so only a positive
  // saving is asserted; the calibrated full-scale check lives in the
  // Table 2 bench.
  EXPECT_LT(compressed.value().ColumnSizeBytes(2),
            baseline.value().ColumnSizeBytes(2));

  const CompressedTable reloaded = Reload(compressed.value());
  ExpectColumnsEqual(table.value(), reloaded);
  ExpectQueriesMatch(table.value(), reloaded, 2);
}

TEST(IntegrationTest, LdbcMessages) {
  auto table = datagen::MakeLdbcTable(kRows, 13);
  ASSERT_TRUE(table.ok());
  CompressionPlan plan = CompressionPlan::AllAuto(2);
  plan.block_rows = kBlockRows;
  plan.columns[1].auto_vertical = false;
  plan.columns[1].scheme = enc::Scheme::kHierarchical;
  plan.columns[1].reference = 0;
  auto compressed = CorraCompressor::Compress(table.value(), plan);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();

  const CompressedTable reloaded = Reload(compressed.value());
  ExpectColumnsEqual(table.value(), reloaded);
  ExpectQueriesMatch(table.value(), reloaded, 1);
}

TEST(IntegrationTest, TaxiMultiRef) {
  auto table = datagen::MakeTaxiTable(kRows, 14);
  ASSERT_TRUE(table.ok());
  using C = datagen::TaxiColumns;
  CompressionPlan plan = CompressionPlan::AllAuto(11);
  plan.block_rows = kBlockRows;
  // dropoff diff-encoded against pickup (Sec. 2.1 pair).
  plan.columns[C::kDropoff].auto_vertical = false;
  plan.columns[C::kDropoff].scheme = enc::Scheme::kDiff;
  plan.columns[C::kDropoff].reference = C::kPickup;
  // total_amount via multi-ref (Sec. 2.3).
  auto& total = plan.columns[C::kTotalAmount];
  total.auto_vertical = false;
  total.scheme = enc::Scheme::kMultiRef;
  total.formulas.groups = {
      {C::kMtaTax, C::kFareAmount, C::kImprovementSurcharge, C::kExtra,
       C::kTipAmount, C::kTollsAmount},
      {C::kCongestionSurcharge},
      {C::kAirportFee}};
  total.formulas.formulas = {0b001, 0b011, 0b101, 0b111};
  total.formulas.code_bits = 2;
  total.max_outlier_fraction = 0.02;

  auto compressed = CorraCompressor::Compress(table.value(), plan);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto baseline = CorraCompressor::Compress(
      table.value(), [&] {
        CompressionPlan p = CompressionPlan::AllAuto(11);
        p.block_rows = kBlockRows;
        return p;
      }());
  ASSERT_TRUE(baseline.ok());
  // Paper: 85.16% saving on total_amount.
  const double total_saving =
      1.0 -
      static_cast<double>(
          compressed.value().ColumnSizeBytes(C::kTotalAmount)) /
          static_cast<double>(
              baseline.value().ColumnSizeBytes(C::kTotalAmount));
  EXPECT_GT(total_saving, 0.75);

  const CompressedTable reloaded = Reload(compressed.value());
  ExpectColumnsEqual(table.value(), reloaded);
  ExpectQueriesMatch(table.value(), reloaded, C::kTotalAmount);
}

TEST(IntegrationTest, OptimizerDrivenPipeline) {
  // Full automation: detector-free optimizer plan on the TPC-H dates.
  auto table = datagen::MakeLineitemTable(40000, 15);
  ASSERT_TRUE(table.ok());
  const std::vector<size_t> candidates = {1, 2, 3};
  auto plan = CorraCompressor::PlanFromOptimizer(table.value(), candidates);
  ASSERT_TRUE(plan.ok());
  plan.value().block_rows = 16384;
  auto compressed = CorraCompressor::Compress(table.value(), plan.value());
  ASSERT_TRUE(compressed.ok());
  const CompressedTable reloaded = Reload(compressed.value());
  ExpectColumnsEqual(table.value(), reloaded);
}

}  // namespace
}  // namespace corra
