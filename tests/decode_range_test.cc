// DecodeRange equivalence: for every scheme — vertical, horizontal, and
// C3 — the ranged kernel must reproduce the per-row Get() oracle over
// arbitrary (begin, count) windows, including the checkpoint-straddling
// ranges Delta and RLE seek through and morsel-boundary-straddling
// windows for the horizontal schemes' reference-morsel driver.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/buffer.h"
#include "common/random.h"
#include "core/c3/dfor.h"
#include "core/c3/numerical.h"
#include "core/c3/one_to_one.h"
#include "core/diff_encoding.h"
#include "core/hierarchical_encoding.h"
#include "core/multi_ref_encoding.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"
#include "encoding/rle.h"
#include "test_util.h"

namespace corra {
namespace {

// Checks DecodeRange against the Get oracle over deterministic edge
// windows (empty, full, single row, checkpoint/morsel straddles) plus
// `random_windows` random ones.
void ExpectDecodeRangeMatchesGet(const enc::EncodedColumn& column,
                                 uint64_t seed, size_t random_windows = 32) {
  const size_t n = column.size();
  ASSERT_GT(n, 0u);
  std::vector<std::pair<size_t, size_t>> windows = {
      {0, 0},      // Empty.
      {0, n},      // Full column.
      {0, 1},      // First row.
      {n - 1, 1},  // Last row.
      {n / 2, 0},  // Empty mid-column.
  };
  // Straddle every power-of-two-ish boundary the schemes care about:
  // Delta/RLE checkpoints (128), DFOR frames (1024), morsels (2048).
  for (size_t boundary : {size_t{128}, size_t{1024}, enc::kMorselRows}) {
    if (n > boundary + 2) {
      windows.emplace_back(boundary - 1, 3);             // Across.
      windows.emplace_back(boundary, 1);                 // At.
      windows.emplace_back(boundary / 2, boundary + 1);  // Over several.
    }
  }
  Rng rng(seed);
  for (size_t w = 0; w < random_windows; ++w) {
    const size_t begin =
        static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(n) - 1));
    const size_t count = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(n - begin)));
    windows.emplace_back(begin, count);
  }

  for (const auto& [begin, count] : windows) {
    std::vector<int64_t> decoded(count + 1, INT64_MIN);
    column.DecodeRange(begin, count, decoded.data());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(decoded[i], column.Get(begin + i))
          << "window [" << begin << ", +" << count << ") at row "
          << begin + i;
    }
    ASSERT_EQ(decoded[count], INT64_MIN)
        << "DecodeRange wrote past its window";
  }
}

// Checks GatherRange (and the Gather alias every query path uses)
// against the Get oracle over deterministic edge selections — empty,
// single row, full column, contiguous runs, boundary-straddling pairs —
// plus randomized sorted selections at several densities, so both sides
// of each scheme's internal sparse/dense split are exercised.
void ExpectGatherRangeMatchesGet(const enc::EncodedColumn& column,
                                 uint64_t seed) {
  const size_t n = column.size();
  ASSERT_GT(n, 0u);
  std::vector<std::vector<uint32_t>> selections;
  selections.push_back({});                                  // Empty.
  selections.push_back({0});                                 // First row.
  selections.push_back({static_cast<uint32_t>(n - 1)});      // Last row.
  selections.push_back({static_cast<uint32_t>(n / 2)});      // Middle.
  std::vector<uint32_t> full(n);
  for (size_t i = 0; i < n; ++i) {
    full[i] = static_cast<uint32_t>(i);
  }
  selections.push_back(full);                                // Full column.
  // Contiguous run in the middle (the query layer's dense case).
  selections.emplace_back(full.begin() + static_cast<long>(n / 3),
                          full.begin() + static_cast<long>(n / 2));
  // Positions hugging every boundary the schemes care about: Delta/RLE
  // checkpoints (32/128), DFOR frames (1024), morsels (2048).
  std::vector<uint32_t> boundaries;
  for (size_t b : {size_t{32}, size_t{64}, size_t{128}, size_t{1024},
                   enc::kMorselRows}) {
    if (b + 1 < n) {
      boundaries.push_back(static_cast<uint32_t>(b - 1));
      boundaries.push_back(static_cast<uint32_t>(b));
      boundaries.push_back(static_cast<uint32_t>(b + 1));
    }
  }
  selections.push_back(boundaries);
  // Randomized sorted selections at sparse, medium, and dense rates (the
  // density thresholds sit between these).
  Rng rng(seed);
  for (const double rate : {0.005, 0.1, 0.7}) {
    std::vector<uint32_t> rows;
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextDouble() < rate) {
        rows.push_back(static_cast<uint32_t>(i));
      }
    }
    selections.push_back(std::move(rows));
  }

  for (size_t s = 0; s < selections.size(); ++s) {
    const auto& rows = selections[s];
    SCOPED_TRACE("selection " + std::to_string(s) + " (" +
                 std::to_string(rows.size()) + " rows)");
    std::vector<int64_t> gathered(rows.size() + 1, INT64_MIN);
    column.GatherRange(rows, gathered.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(gathered[i], column.Get(rows[i])) << "row " << rows[i];
    }
    ASSERT_EQ(gathered[rows.size()], INT64_MIN)
        << "GatherRange wrote past its output";
  }
}

// Both ranged-kernel equivalences in one call.
void ExpectRangedKernelsMatchGet(const enc::EncodedColumn& column,
                                 uint64_t seed) {
  ExpectDecodeRangeMatchesGet(column, seed);
  ExpectGatherRangeMatchesGet(column, seed ^ 0x9E3779B97F4A7C15ull);
}

constexpr size_t kRows = 5000;  // > 2 morsels, > 4 DFOR frames.

TEST(DecodeRangeTest, VerticalSchemes) {
  for (const test::Dist dist :
       {test::Dist::kSmallRange, test::Dist::kLowCard, test::Dist::kSorted,
        test::Dist::kRunHeavy, test::Dist::kWideRange}) {
    SCOPED_TRACE(test::DistName(dist));
    const auto values = test::MakeValues(dist, kRows, 17);

    ExpectRangedKernelsMatchGet(*enc::PlainColumn::Encode(values), 1);
    ExpectRangedKernelsMatchGet(*enc::ForColumn::Encode(values).value(), 2);
    ExpectRangedKernelsMatchGet(*enc::DictColumn::Encode(values).value(), 3);
    ExpectRangedKernelsMatchGet(*enc::DeltaColumn::Encode(values).value(),
                                4);
    ExpectRangedKernelsMatchGet(*enc::RleColumn::Encode(values).value(), 5);
    if (const auto bitpack = enc::BitPackColumn::Encode(values);
        bitpack.ok()) {
      ExpectRangedKernelsMatchGet(*bitpack.value(), 6);
    }
  }
}

TEST(DecodeRangeTest, WideValuesExerciseStraddlingLoads) {
  // Extreme magnitudes force bit widths > 57, the BitReader fallback.
  const auto values = test::MakeValues(test::Dist::kExtremes, kRows, 23);
  ExpectRangedKernelsMatchGet(*enc::ForColumn::Encode(values).value(), 7);
  ExpectRangedKernelsMatchGet(*enc::DeltaColumn::Encode(values).value(), 8);
}

TEST(DecodeRangeTest, DeltaRleSortedGatherMatchesGet) {
  // The checkpoint-seek-then-run Gather overrides (sorted positions).
  const auto values = test::MakeValues(test::Dist::kRunHeavy, kRows, 29);
  const auto delta = enc::DeltaColumn::Encode(values).value();
  const auto rle = enc::RleColumn::Encode(values).value();
  Rng rng(31);
  for (const double selectivity : {0.001, 0.05, 0.5, 1.0}) {
    std::vector<uint32_t> rows;
    for (size_t i = 0; i < kRows; ++i) {
      if (rng.NextDouble() < selectivity) {
        rows.push_back(static_cast<uint32_t>(i));
      }
    }
    std::vector<int64_t> out(rows.size());
    delta->Gather(rows, out.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(out[i], values[rows[i]]) << "delta row " << rows[i];
    }
    rle->Gather(rows, out.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(out[i], values[rows[i]]) << "rle row " << rows[i];
    }
  }
}

TEST(DecodeRangeTest, DeltaRleGatherReseeksOnBackwardPositions) {
  // The Gather contract says sorted, but the seek logic must not return
  // stale state for a caller that violates it.
  const auto values = test::MakeValues(test::Dist::kRunHeavy, kRows, 53);
  const auto delta = enc::DeltaColumn::Encode(values).value();
  const auto rle = enc::RleColumn::Encode(values).value();
  const std::vector<uint32_t> rows = {4000, 10, 4000, 3999, 0, 130, 129};
  std::vector<int64_t> out(rows.size());
  delta->Gather(rows, out.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out[i], values[rows[i]]) << "delta row " << rows[i];
  }
  rle->Gather(rows, out.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out[i], values[rows[i]]) << "rle row " << rows[i];
  }
}

TEST(DecodeRangeTest, DeltaCheckpointIntervalSweep) {
  // The configurable checkpoint index: every ranged kernel must agree
  // with Get at every interval, and the wire format must round-trip
  // (extended layout for non-legacy intervals, legacy layout for 128).
  const auto values = test::MakeValues(test::Dist::kSorted, kRows, 61);
  for (const size_t interval :
       {size_t{32}, size_t{64}, size_t{128}, size_t{256}, size_t{2048}}) {
    SCOPED_TRACE("interval=" + std::to_string(interval));
    auto column = enc::DeltaColumn::Encode(values, interval).value();
    EXPECT_EQ(column->checkpoint_interval(), interval);
    ExpectRangedKernelsMatchGet(*column, 600 + interval);

    BufferWriter writer;
    column->Serialize(&writer);
    const auto bytes = std::move(writer).Finish();
    // Legacy columns (interval 128) must keep the legacy layout — the
    // first u64 after the scheme byte is the checkpoint-array length,
    // never the extended-format marker.
    uint64_t first = 0;
    std::memcpy(&first, bytes.data() + 1, sizeof(first));
    if (interval == 128) {
      EXPECT_EQ(first, (kRows - 1) / interval + 1);
    } else {
      EXPECT_EQ(first, ~uint64_t{0});
    }
    BufferReader reader(bytes);
    uint8_t scheme_byte = 0;
    ASSERT_TRUE(reader.Read(&scheme_byte).ok());
    auto restored = enc::DeltaColumn::Deserialize(&reader).value();
    EXPECT_EQ(restored->checkpoint_interval(), interval);
    for (size_t row : {size_t{0}, size_t{31}, size_t{32}, interval - 1,
                       interval, kRows - 1}) {
      EXPECT_EQ(restored->Get(row), values[row]) << "row " << row;
    }
  }
  // Invalid intervals are rejected up front (16 became valid alongside
  // the inline layout; 8 and non-powers-of-two stay rejected).
  EXPECT_FALSE(enc::DeltaColumn::Encode(values, 48).ok());
  EXPECT_FALSE(enc::DeltaColumn::Encode(values, 8).ok());
  EXPECT_FALSE(enc::DeltaColumn::Encode(values, 4096).ok());
  EXPECT_TRUE(enc::DeltaColumn::Encode(values, 16).ok());
}

TEST(DecodeRangeTest, DeltaInlineLayoutMatchesPackedEverywhere) {
  // The inline-checkpoint layout must be observationally identical to
  // the packed layout: Get, DecodeRange, and GatherRange (all three
  // densities of the internal sparse/dense split) agree row for row,
  // across distributions and checkpoint intervals.
  for (const test::Dist dist :
       {test::Dist::kSmallRange, test::Dist::kSorted, test::Dist::kRunHeavy,
        test::Dist::kExtremes}) {
    SCOPED_TRACE(test::DistName(dist));
    const auto values = test::MakeValues(dist, kRows, 71);
    for (const size_t interval :
         {size_t{16}, size_t{32}, size_t{256}, size_t{2048}}) {
      SCOPED_TRACE("interval=" + std::to_string(interval));
      const auto packed =
          enc::DeltaColumn::Encode(values, interval,
                                   enc::DeltaLayout::kPacked)
              .value();
      const auto inline_col =
          enc::DeltaColumn::Encode(values, interval,
                                   enc::DeltaLayout::kInline)
              .value();
      EXPECT_EQ(packed->layout(), enc::DeltaLayout::kPacked);
      EXPECT_EQ(inline_col->layout(), enc::DeltaLayout::kInline);
      ExpectRangedKernelsMatchGet(*inline_col, 700 + interval);

      // Direct cross-layout comparison on top of the Get oracle.
      Rng rng(703 + interval);
      for (int probe = 0; probe < 100; ++probe) {
        const size_t row = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(kRows) - 1));
        ASSERT_EQ(inline_col->Get(row), packed->Get(row)) << "row " << row;
        ASSERT_EQ(inline_col->Get(row), values[row]) << "row " << row;
      }
      for (const double rate : {0.005, 0.1, 0.7}) {
        std::vector<uint32_t> rows;
        for (size_t i = 0; i < kRows; ++i) {
          if (rng.NextDouble() < rate) {
            rows.push_back(static_cast<uint32_t>(i));
          }
        }
        std::vector<int64_t> from_inline(rows.size());
        std::vector<int64_t> from_packed(rows.size());
        inline_col->GatherRange(rows, from_inline.data());
        packed->GatherRange(rows, from_packed.data());
        ASSERT_EQ(from_inline, from_packed) << "rate " << rate;
      }
    }
  }
}

TEST(DecodeRangeTest, DeltaInlineLayoutWireRoundTripBothDirections) {
  // Serialization round-trips preserve the physical layout in both
  // directions, the inline wire format re-serializes byte-identically,
  // and the two layouts' wire images are distinguishable by their sniff
  // markers.
  const auto values = test::MakeValues(test::Dist::kSorted, kRows, 79);
  for (const size_t interval : {size_t{16}, size_t{128}, size_t{1024}}) {
    SCOPED_TRACE("interval=" + std::to_string(interval));
    for (const enc::DeltaLayout layout :
         {enc::DeltaLayout::kPacked, enc::DeltaLayout::kInline}) {
      auto column = enc::DeltaColumn::Encode(values, interval, layout).value();
      BufferWriter writer;
      column->Serialize(&writer);
      const auto bytes = std::move(writer).Finish();

      uint64_t first = 0;
      std::memcpy(&first, bytes.data() + 1, sizeof(first));
      if (layout == enc::DeltaLayout::kInline) {
        EXPECT_EQ(first, ~uint64_t{0} - 1);  // Inline marker.
      } else if (interval == 128) {
        EXPECT_EQ(first, (kRows - 1) / interval + 1);  // Legacy layout.
      } else {
        EXPECT_EQ(first, ~uint64_t{0});  // Interval marker.
      }

      BufferReader reader(bytes);
      auto restored = DeserializeEncodedColumn(&reader).value();
      auto& delta = static_cast<enc::DeltaColumn&>(*restored);
      EXPECT_EQ(delta.layout(), layout);
      EXPECT_EQ(delta.checkpoint_interval(), interval);
      EXPECT_EQ(delta.size(), values.size());
      for (size_t row = 0; row < values.size(); ++row) {
        ASSERT_EQ(delta.Get(row), values[row]) << "row " << row;
      }

      // Re-serializing the restored column reproduces the wire image.
      BufferWriter again;
      delta.Serialize(&again);
      EXPECT_EQ(std::move(again).Finish(), bytes);
    }
  }

  // A truncated inline window stream is rejected, not mis-decoded.
  auto column = enc::DeltaColumn::Encode(values, 32,
                                         enc::DeltaLayout::kInline)
                    .value();
  BufferWriter writer;
  column->Serialize(&writer);
  auto bytes = std::move(writer).Finish();
  // Shrink the length-prefixed payload: halve the byte-count prefix that
  // precedes the window stream (the last length field in the image).
  const size_t count_offset = 1 + 8 + 8 + 1;  // scheme, marker, interval, w.
  uint64_t rows64 = 0;
  std::memcpy(&rows64, bytes.data() + count_offset, sizeof(rows64));
  ASSERT_EQ(rows64, kRows);
  const size_t len_offset = count_offset + 8;
  uint64_t payload_len = 0;
  std::memcpy(&payload_len, bytes.data() + len_offset, sizeof(payload_len));
  const uint64_t truncated = payload_len / 2;
  std::memcpy(bytes.data() + len_offset, &truncated, sizeof(truncated));
  bytes.resize(len_offset + 8 + truncated);
  {
    BufferReader reader(bytes);
    EXPECT_FALSE(DeserializeEncodedColumn(&reader).ok());
  }

  // Regression: a corrupt row count near 2^64 used to make the
  // windows-times-stride size check wrap around and pass, building a
  // column whose row count vastly exceeded its buffer (out-of-bounds
  // reads on first access). The division-based check must reject it.
  BufferWriter overflow_writer;
  column->Serialize(&overflow_writer);
  auto overflow_bytes = std::move(overflow_writer).Finish();
  const uint64_t absurd_count = ~uint64_t{0} - 7;
  std::memcpy(overflow_bytes.data() + count_offset, &absurd_count,
              sizeof(absurd_count));
  BufferReader overflow_reader(overflow_bytes);
  EXPECT_FALSE(DeserializeEncodedColumn(&overflow_reader).ok());
}

// Reference + correlated target, bound through a FOR reference column.
struct BoundPair {
  std::unique_ptr<enc::ForColumn> reference;
  std::unique_ptr<enc::EncodedColumn> target;
};

template <typename Encoder>
BoundPair MakeBoundPair(const std::vector<int64_t>& ref_values,
                        const std::vector<int64_t>& target_values,
                        Encoder&& encode) {
  BoundPair pair;
  pair.reference = enc::ForColumn::Encode(ref_values).value();
  pair.target = encode(target_values, ref_values);
  const enc::EncodedColumn* refs[] = {pair.reference.get()};
  EXPECT_TRUE(pair.target->BindReferences(refs).ok());
  return pair;
}

TEST(DecodeRangeTest, DiffAllModes) {
  Rng rng(37);
  std::vector<int64_t> reference(kRows);
  std::vector<int64_t> positive(kRows);
  std::vector<int64_t> negative(kRows);
  std::vector<int64_t> spiky(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    reference[i] = rng.Uniform(8035, 10591);
    positive[i] = reference[i] + rng.Uniform(1, 30);
    negative[i] = reference[i] - rng.Uniform(1, 30);
    // Mostly tight diffs with rare wide spikes -> window mode + outliers.
    spiky[i] = reference[i] + rng.Uniform(1000, 1030) +
               (rng.NextDouble() < 0.003 ? rng.Uniform(100000, 200000) : 0);
  }

  auto raw = MakeBoundPair(reference, positive, [](auto t, auto r) {
    return DiffEncodedColumn::Encode(t, r, 0).value();
  });
  EXPECT_EQ(static_cast<const DiffEncodedColumn&>(*raw.target).mode(),
            DiffMode::kRaw);
  ExpectRangedKernelsMatchGet(*raw.target, 11);

  auto zigzag = MakeBoundPair(reference, negative, [](auto t, auto r) {
    return DiffEncodedColumn::Encode(t, r, 0).value();
  });
  EXPECT_EQ(static_cast<const DiffEncodedColumn&>(*zigzag.target).mode(),
            DiffMode::kZigZag);
  ExpectRangedKernelsMatchGet(*zigzag.target, 12);

  DiffOptions options;
  options.use_outliers = true;
  auto window = MakeBoundPair(reference, spiky, [&](auto t, auto r) {
    return DiffEncodedColumn::Encode(t, r, 0, options).value();
  });
  const auto& window_diff =
      static_cast<const DiffEncodedColumn&>(*window.target);
  EXPECT_EQ(window_diff.mode(), DiffMode::kWindow);
  EXPECT_GT(window_diff.outliers().size(), 0u);
  ExpectRangedKernelsMatchGet(*window.target, 13);
}

TEST(DecodeRangeTest, HierarchicalAndC3Schemes) {
  Rng rng(41);
  std::vector<int64_t> city(kRows);
  std::vector<int64_t> zip(kRows);
  std::vector<int64_t> reference(kRows);
  std::vector<int64_t> affine(kRows);
  std::vector<int64_t> mapped(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    city[i] = rng.Uniform(0, 99);
    zip[i] = 10000 + city[i] * 30 + rng.Uniform(0, 29);
    reference[i] = rng.Uniform(8035, 10591);
    affine[i] = 3 * reference[i] + rng.Uniform(-20, 20);
    mapped[i] = city[i] * 7 + 1;
    if (rng.NextDouble() < 0.01) {
      mapped[i] += rng.Uniform(1, 5);  // 1-to-1 outliers.
    }
  }

  auto hier = MakeBoundPair(city, zip, [](auto t, auto r) {
    return HierarchicalColumn::Encode(t, r, 0).value();
  });
  ExpectRangedKernelsMatchGet(*hier.target, 14);

  auto dfor = MakeBoundPair(reference, affine, [](auto t, auto r) {
    return c3::DforColumn::Encode(t, r, 0).value();
  });
  ExpectRangedKernelsMatchGet(*dfor.target, 15);

  auto numerical = MakeBoundPair(reference, affine, [](auto t, auto r) {
    return c3::NumericalColumn::Encode(t, r, 0).value();
  });
  ExpectRangedKernelsMatchGet(*numerical.target, 16);

  auto one_to_one = MakeBoundPair(city, mapped, [](auto t, auto r) {
    return c3::OneToOneColumn::Encode(t, r, 0).value();
  });
  EXPECT_GT(static_cast<const c3::OneToOneColumn&>(*one_to_one.target)
                .outliers()
                .size(),
            0u);
  ExpectRangedKernelsMatchGet(*one_to_one.target, 17);
}

TEST(DecodeRangeTest, MultiRef) {
  Rng rng(43);
  std::vector<std::vector<int64_t>> columns(3, std::vector<int64_t>(kRows));
  std::vector<int64_t> target(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    columns[0][i] = rng.Uniform(100, 5000);
    columns[1][i] = 250;
    columns[2][i] = 175;
    const double u = rng.NextDouble();
    if (u < 0.01) {
      target[i] = columns[0][i] + 100000;  // Outlier.
    } else if (u < 0.5) {
      target[i] = columns[0][i];
    } else if (u < 0.8) {
      target[i] = columns[0][i] + columns[1][i];
    } else {
      target[i] = columns[0][i] + columns[1][i] + columns[2][i];
    }
  }
  FormulaTable table;
  table.groups = {{0}, {1}, {2}};
  table.formulas = {0b001, 0b011, 0b111};
  table.code_bits = 2;
  auto column = MultiRefColumn::Encode(
                    target,
                    [&](uint32_t col) -> std::span<const int64_t> {
                      return columns[col];
                    },
                    table)
                    .value();
  std::vector<std::unique_ptr<enc::ForColumn>> refs;
  std::vector<const enc::EncodedColumn*> bound;
  for (const auto& values : columns) {
    refs.push_back(enc::ForColumn::Encode(values).value());
    bound.push_back(refs.back().get());
  }
  ASSERT_TRUE(column->BindReferences(bound).ok());
  EXPECT_GT(column->outliers().size(), 0u);
  ExpectRangedKernelsMatchGet(*column, 18);
}

}  // namespace
}  // namespace corra
