#include "common/buffer.h"

#include <gtest/gtest.h>

#include <vector>

namespace corra {
namespace {

TEST(BufferTest, PrimitiveRoundTrip) {
  BufferWriter writer;
  writer.Write<uint8_t>(0xAB);
  writer.Write<uint32_t>(0xDEADBEEF);
  writer.Write<int64_t>(-42);
  writer.Write<uint64_t>(~uint64_t{0});
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  int64_t i64 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(reader.Read(&u8).ok());
  ASSERT_TRUE(reader.Read(&u32).ok());
  ASSERT_TRUE(reader.Read(&i64).ok());
  ASSERT_TRUE(reader.Read(&u64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(u64, ~uint64_t{0});
  EXPECT_TRUE(reader.exhausted());
}

TEST(BufferTest, BytesRoundTrip) {
  BufferWriter writer;
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  writer.WriteBytes(payload);
  writer.WriteBytes({});  // Empty blob.
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  std::span<const uint8_t> got;
  ASSERT_TRUE(reader.ReadBytes(&got).ok());
  EXPECT_EQ(std::vector<uint8_t>(got.begin(), got.end()), payload);
  ASSERT_TRUE(reader.ReadBytes(&got).ok());
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(BufferTest, StringRoundTrip) {
  BufferWriter writer;
  writer.WriteString("hello");
  writer.WriteString("");
  writer.WriteString(std::string("with\0null", 9));
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  std::string s;
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_EQ(s, std::string("with\0null", 9));
}

TEST(BufferTest, Int64ArrayRoundTrip) {
  BufferWriter writer;
  const std::vector<int64_t> values = {-1, 0, 1, INT64_MAX, INT64_MIN};
  writer.WriteInt64Array(values);
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  std::vector<int64_t> got;
  ASSERT_TRUE(reader.ReadInt64Array(&got).ok());
  EXPECT_EQ(got, values);
}

TEST(BufferTest, Uint32ArrayRoundTrip) {
  BufferWriter writer;
  const std::vector<uint32_t> values = {0, 1, UINT32_MAX};
  writer.WriteUint32Array(values);
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  std::vector<uint32_t> got;
  ASSERT_TRUE(reader.ReadUint32Array(&got).ok());
  EXPECT_EQ(got, values);
}

TEST(BufferTest, TruncatedPrimitiveIsCorruption) {
  BufferWriter writer;
  writer.Write<uint8_t>(1);
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  uint64_t big = 0;
  Status s = reader.Read(&big);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(BufferTest, TruncatedBlobIsCorruption) {
  BufferWriter writer;
  writer.WriteBytes(std::vector<uint8_t>(100, 7));
  auto bytes = std::move(writer).Finish();
  bytes.resize(50);  // Chop the payload.

  BufferReader reader(bytes);
  std::span<const uint8_t> got;
  EXPECT_TRUE(reader.ReadBytes(&got).IsCorruption());
}

TEST(BufferTest, LyingLengthPrefixIsCorruption) {
  // A length prefix claiming more elements than bytes remain must be
  // rejected before any allocation happens.
  BufferWriter writer;
  writer.Write<uint64_t>(~uint64_t{0});  // Absurd element count.
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  std::vector<int64_t> got;
  EXPECT_TRUE(reader.ReadInt64Array(&got).IsCorruption());
}

TEST(BufferTest, EmptyReaderIsExhausted) {
  BufferReader reader(std::span<const uint8_t>{});
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(reader.remaining(), 0u);
  uint8_t b = 0;
  EXPECT_TRUE(reader.Read(&b).IsCorruption());
}

TEST(BufferTest, PositionTracksConsumption) {
  BufferWriter writer;
  writer.Write<uint32_t>(1);
  writer.Write<uint32_t>(2);
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  EXPECT_EQ(reader.position(), 0u);
  uint32_t v = 0;
  ASSERT_TRUE(reader.Read(&v).ok());
  EXPECT_EQ(reader.position(), 4u);
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(BufferTest, MixedSequenceRoundTrip) {
  BufferWriter writer;
  writer.Write<uint8_t>(3);
  writer.WriteString("col");
  writer.WriteInt64Array({{10, 20, 30}});
  writer.Write<uint64_t>(99);
  auto bytes = std::move(writer).Finish();

  BufferReader reader(bytes);
  uint8_t tag = 0;
  std::string name;
  std::vector<int64_t> values;
  uint64_t tail = 0;
  ASSERT_TRUE(reader.Read(&tag).ok());
  ASSERT_TRUE(reader.ReadString(&name).ok());
  ASSERT_TRUE(reader.ReadInt64Array(&values).ok());
  ASSERT_TRUE(reader.Read(&tail).ok());
  EXPECT_EQ(tag, 3);
  EXPECT_EQ(name, "col");
  EXPECT_EQ(values, (std::vector<int64_t>{10, 20, 30}));
  EXPECT_EQ(tail, 99u);
}

}  // namespace
}  // namespace corra
