#include "common/bit_stream.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/bit_util.h"
#include "common/random.h"

namespace corra {
namespace {

std::vector<uint64_t> RandomValues(size_t count, int width, uint64_t seed) {
  Rng rng(seed);
  const uint64_t mask =
      width == 0 ? 0 : (width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1);
  std::vector<uint64_t> values(count);
  for (auto& v : values) {
    v = rng.Next() & mask;
  }
  return values;
}

TEST(BitStreamTest, EmptyStream) {
  BitWriter writer(13);
  auto bytes = std::move(writer).Finish();
  BitReader reader(bytes.data(), 13, 0);
  EXPECT_EQ(reader.size(), 0u);
}

TEST(BitStreamTest, WidthZeroStoresNothingButCounts) {
  BitWriter writer(0);
  for (int i = 0; i < 100; ++i) {
    writer.Append(0);
  }
  EXPECT_EQ(writer.size(), 100u);
  auto bytes = std::move(writer).Finish();
  BitReader reader(bytes.data(), 0, 100);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(reader.Get(i), 0u);
  }
  std::vector<uint64_t> decoded(100, 123);
  reader.DecodeAll(decoded.data());
  for (uint64_t v : decoded) {
    EXPECT_EQ(v, 0u);
  }
}

// Round-trip sweep over every bit width including the >57-bit straddle
// cases and several sizes that exercise partial trailing bytes.
class BitStreamRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(BitStreamRoundTrip, GetMatches) {
  const auto [width, count] = GetParam();
  const auto values = RandomValues(count, width, 17 * width + count);
  BitWriter writer(width);
  writer.AppendAll(values);
  auto bytes = std::move(writer).Finish();
  ASSERT_GE(bytes.size(), bit_util::PackedBytes(count, width));
  BitReader reader(bytes.data(), width, count);
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(reader.Get(i), values[i]) << "width " << width << " i " << i;
  }
}

TEST_P(BitStreamRoundTrip, DecodeAllMatches) {
  const auto [width, count] = GetParam();
  const auto values = RandomValues(count, width, 31 * width + count);
  BitWriter writer(width);
  writer.AppendAll(values);
  auto bytes = std::move(writer).Finish();
  BitReader reader(bytes.data(), width, count);
  std::vector<uint64_t> decoded(count);
  reader.DecodeAll(decoded.data());
  EXPECT_EQ(decoded, values);
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, BitStreamRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 8, 12, 13, 16, 17,
                                         23, 31, 32, 33, 40, 47, 53, 57, 58,
                                         59, 63, 64),
                       ::testing::Values(size_t{1}, size_t{7}, size_t{64},
                                         size_t{1000})),
    [](const auto& param_info) {
      return "w" + std::to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(BitStreamTest, MaxValuesAtEveryWidth) {
  for (int width = 1; width <= 64; ++width) {
    const uint64_t max =
        width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
    BitWriter writer(width);
    for (int i = 0; i < 9; ++i) {
      writer.Append(max);
    }
    auto bytes = std::move(writer).Finish();
    BitReader reader(bytes.data(), width, 9);
    for (size_t i = 0; i < 9; ++i) {
      ASSERT_EQ(reader.Get(i), max) << "width " << width;
    }
  }
}

TEST(BitStreamTest, InterleavedPattern) {
  // Alternating all-ones / all-zeros detects cross-value bit bleed.
  constexpr int kWidth = 11;
  constexpr uint64_t kOnes = (uint64_t{1} << kWidth) - 1;
  BitWriter writer(kWidth);
  for (int i = 0; i < 500; ++i) {
    writer.Append(i % 2 == 0 ? kOnes : 0);
  }
  auto bytes = std::move(writer).Finish();
  BitReader reader(bytes.data(), kWidth, 500);
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_EQ(reader.Get(i), i % 2 == 0 ? kOnes : 0u);
  }
}

}  // namespace
}  // namespace corra
