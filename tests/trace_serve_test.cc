// End-to-end serving telemetry: a traced ScanService request must
// explain itself — phase timings that partition the wall clock (inline
// execution), per-block scheme annotations matching the compression
// plan, pruned/hit flags matching the cache's behavior — and the
// registry histograms must agree with the number of requests issued.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/corra_compressor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/block_cache.h"
#include "serve/scan_service.h"
#include "serve/table_reader.h"
#include "storage/file_io.h"
#include "test_util.h"

namespace corra::serve {
namespace {

class TraceServeTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 4000;
  static constexpr size_t kBlockRows = 1000;

  void SetUp() override {
#ifdef CORRA_OBS_OFF
    GTEST_SKIP() << "observability compiled out (CORRA_OBS_OFF)";
#else
    obs::SetEnabled(true);
#endif
    path_ = ::testing::TempDir() + "corra_trace_serve_test.corf";
    Rng rng(97);
    ship_.resize(kRows);
    receipt_.resize(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      // Block-banded values so min/max stats can prune: block b holds
      // values in [b*10000, b*10000 + 2500).
      ship_[i] = static_cast<int64_t>((i / kBlockRows) * 10000) +
                 rng.Uniform(0, 2500);
      receipt_[i] = ship_[i] + rng.Uniform(1, 30);
    }
    Table table;
    ASSERT_TRUE(table.AddColumn(Column::Date("ship", ship_)).ok());
    ASSERT_TRUE(table.AddColumn(Column::Date("receipt", receipt_)).ok());
    // Pin the schemes so the trace annotations are deterministic:
    // column 0 FOR, column 1 Corra-Diff referencing column 0.
    CompressionPlan plan = CompressionPlan::AllAuto(2);
    plan.block_rows = kBlockRows;
    plan.columns[0].auto_vertical = false;
    plan.columns[0].scheme = enc::Scheme::kFor;
    plan.columns[1].auto_vertical = false;
    plan.columns[1].scheme = enc::Scheme::kDiff;
    plan.columns[1].reference = 0;
    auto compressed = CorraCompressor::Compress(table, plan);
    ASSERT_TRUE(compressed.ok());
    ASSERT_EQ(compressed.value().num_blocks(), 4u);
    ASSERT_TRUE(WriteCompressedTable(compressed.value(), path_).ok());
  }

  void TearDown() override {
    if (!path_.empty()) {
      std::remove(path_.c_str());
    }
  }

  std::string path_;
  std::vector<int64_t> ship_, receipt_;
};

TEST_F(TraceServeTest, TracedRequestExplainsItsLatency) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  // Inline execution (num_threads = 0): the phases are disjoint
  // sub-intervals of the request's wall clock, so they must sum to at
  // most the total and cover most of it.
  ScanService service({.num_threads = 0, .registry = &registry});

  ScanRequest request;
  request.filter_column = 0;
  request.filter_lo = 0;
  request.filter_hi = 22500;  // Matches blocks 0-2; block 3 prunes.
  request.project_columns = {0, 1};
  request.return_positions = true;
  request.collect_trace = true;

  auto result = service.Execute(*reader.value(), request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().trace.has_value());
  const obs::RequestTrace& trace = *result.value().trace;

  EXPECT_EQ(trace.op, "execute");
  EXPECT_EQ(trace.rows_scanned, kRows);
  EXPECT_EQ(trace.rows_matched, result.value().rows_matched);
  EXPECT_GT(trace.total_ns, 0u);

  // Phase accounting: with inline execution the sum never exceeds the
  // wall clock, and the timed phases cover the bulk of it (the untimed
  // remainder is validation + vector setup).
  const uint64_t phase_sum = trace.PhaseTotalNs();
  EXPECT_LE(phase_sum, trace.total_ns);
  EXPECT_GE(phase_sum, trace.total_ns / 2)
      << "timed phases explain too little of the request: " << phase_sum
      << " of " << trace.total_ns << "ns — " << trace.ToJson();
  EXPECT_EQ(trace.phase(obs::Phase::kQueueWait), 0u);  // No pool.

  // Block annotations: 4 blocks, the last pruned via min/max stats.
  ASSERT_EQ(trace.blocks.size(), 4u);
  EXPECT_EQ(result.value().blocks_skipped, 1u);
  for (size_t b = 0; b < 3; ++b) {
    const obs::BlockSpan& span = trace.blocks[b];
    EXPECT_EQ(span.block, b);
    EXPECT_EQ(span.rows, kBlockRows);
    EXPECT_FALSE(span.pruned);
    EXPECT_FALSE(span.cache_hit);  // Cold cache: every pin filled.
    EXPECT_GT(span.fill_ns, 0u);
    EXPECT_GT(span.decode_ns, 0u);
    EXPECT_EQ(span.schemes, "0:FOR,1:Corra-Diff");
  }
  EXPECT_TRUE(trace.blocks[3].pruned);
  EXPECT_EQ(trace.blocks[3].rows, kBlockRows);
  EXPECT_TRUE(trace.blocks[3].schemes.empty());  // Never materialized.

  // Fill time is part of the request's attributed time and also feeds
  // the kMissFill phase.
  EXPECT_GT(trace.phase(obs::Phase::kMissFill), 0u);
  EXPECT_GT(trace.phase(obs::Phase::kDecodeFilter), 0u);

  // A second, identical request hits the warm cache.
  auto again = service.Execute(*reader.value(), request);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.value().trace.has_value());
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_TRUE(again.value().trace->blocks[b].cache_hit);
    EXPECT_EQ(again.value().trace->blocks[b].fill_ns, 0u);
  }

  // Registry agreement: two requests issued, two recorded.
  const obs::RegistrySnapshot snap = registry.Snapshot();
  const auto find_hist = [&snap](std::string_view name) {
    for (const auto& [n, h] : snap.histograms) {
      if (n == name) {
        return h;
      }
    }
    return obs::HistogramSnapshot{};
  };
  EXPECT_EQ(find_hist("serve.request_latency_us").count, 2u);
  EXPECT_EQ(find_hist("serve.phase_us{phase=\"decode_filter\"}").count, 2u);
  const auto find_counter = [&snap](std::string_view name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) {
        return v;
      }
    }
    return 0;
  };
  EXPECT_EQ(find_counter("serve.requests"), 2u);
  EXPECT_EQ(find_counter("serve.rows_scanned"), 2 * kRows);
  EXPECT_EQ(find_counter("serve.blocks_pruned"), 2u);
  // The cache saw 3 cold misses, then 3 warm hits.
  EXPECT_EQ(find_counter("cache.misses"), 3u);
  EXPECT_EQ(find_counter("cache.hits"), 3u);
}

TEST_F(TraceServeTest, SlowRingRetainsUntracedRequests) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());

  // slow_trace_ns = 0 retains every request, opted in or not.
  ScanService service({.num_threads = 2,
                       .registry = &registry,
                       .slow_trace_ns = 0,
                       .slow_trace_capacity = 2});
  ScanRequest request;
  request.project_columns = {1};
  for (int i = 0; i < 3; ++i) {
    auto result = service.Execute(*reader.value(), request);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.value().trace.has_value());  // Not opted in.
  }
  EXPECT_EQ(service.slow_traces().pushed(), 3u);
  auto slow = service.DrainSlowTraces();
  ASSERT_EQ(slow.size(), 2u);  // Capacity 2: oldest dropped.
  for (const obs::RequestTrace& trace : slow) {
    EXPECT_EQ(trace.op, "execute");
    EXPECT_EQ(trace.rows_scanned, kRows);
    EXPECT_EQ(trace.blocks.size(), 4u);
    // ToJson renders without throwing and names the op.
    EXPECT_NE(trace.ToJson().find("\"op\": \"execute\""),
              std::string::npos);
  }
  EXPECT_TRUE(service.DrainSlowTraces().empty());
}

TEST_F(TraceServeTest, GatherProducesTraceAndCounters) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 0, .registry = &registry});

  // Rows from blocks 0 and 2 only: the trace must show exactly those
  // two blocks touched.
  const std::vector<uint64_t> rows = {5, 700, 2100, 2999};
  const std::vector<size_t> columns = {0, 1};
  obs::RequestTrace trace;
  auto result = service.Gather(*reader.value(), columns, rows, &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(result.value()[0][i], ship_[rows[i]]);
    EXPECT_EQ(result.value()[1][i], receipt_[rows[i]]);
  }

  EXPECT_EQ(trace.op, "gather");
  EXPECT_EQ(trace.rows_matched, rows.size());
  ASSERT_EQ(trace.blocks.size(), 2u);
  EXPECT_EQ(trace.blocks[0].block, 0u);
  EXPECT_EQ(trace.blocks[0].rows, 2u);
  EXPECT_EQ(trace.blocks[1].block, 2u);
  EXPECT_EQ(trace.blocks[1].rows, 2u);
  for (const obs::BlockSpan& span : trace.blocks) {
    EXPECT_EQ(span.schemes, "0:FOR,1:Corra-Diff");
    EXPECT_FALSE(span.cache_hit);
  }
  EXPECT_LE(trace.PhaseTotalNs(), trace.total_ns);

  const obs::RegistrySnapshot snap = registry.Snapshot();
  uint64_t gather_requests = 0, gather_rows = 0;
  for (const auto& [n, v] : snap.counters) {
    if (n == "serve.gather_requests") {
      gather_requests = v;
    } else if (n == "serve.gather_rows") {
      gather_rows = v;
    }
  }
  EXPECT_EQ(gather_requests, 1u);
  EXPECT_EQ(gather_rows, rows.size());
}

TEST_F(TraceServeTest, DisabledObservabilityYieldsNoTrace) {
  obs::Registry registry;
  auto cache = std::make_shared<BlockCache>(
      BlockCacheOptions{.registry = &registry});
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 0,
                       .registry = &registry,
                       .slow_trace_ns = 0});

  obs::SetEnabled(false);
  ScanRequest request;
  request.project_columns = {0};
  request.collect_trace = true;  // Ignored while disabled.
  auto result = service.Execute(*reader.value(), request);
  obs::SetEnabled(true);

  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().trace.has_value());
  EXPECT_EQ(service.slow_traces().pushed(), 0u);
  // Nothing was recorded anywhere.
  const obs::RegistrySnapshot snap = registry.Snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, 0u) << name;
  }
  for (const auto& [name, hist] : snap.histograms) {
    EXPECT_EQ(hist.count, 0u) << name;
  }
}

// The per-scheme kernel counters fire in the process-default registry;
// a scan through the service must leave decode/filter rows attributed
// to the schemes the plan forced.
TEST_F(TraceServeTest, KernelCountersAttributeRowsToSchemes) {
  obs::Registry& reg = obs::Registry::Default();
  const uint64_t for_filter_before =
      reg.counter("query.filter_rows{scheme=\"FOR\"}").Value();
  const uint64_t diff_decode_before =
      reg.counter("query.decode_rows{scheme=\"Corra-Diff\"}").Value();

  auto cache = std::make_shared<BlockCache>();
  auto reader = TableReader::Open(path_, cache);
  ASSERT_TRUE(reader.ok());
  ScanService service({.num_threads = 0});
  ScanRequest request;
  request.filter_column = 0;
  request.filter_lo = INT64_MIN;  // No pruning: every block scans.
  request.filter_hi = INT64_MAX;
  request.project_columns = {1};
  auto result = service.Execute(*reader.value(), request);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(reg.counter("query.filter_rows{scheme=\"FOR\"}").Value() -
                for_filter_before,
            kRows);
  // The all-matching selection is contiguous, so projection goes down
  // the dense ranged-decode path.
  EXPECT_EQ(reg.counter("query.decode_rows{scheme=\"Corra-Diff\"}").Value() -
                diff_decode_before,
            kRows);
}

}  // namespace
}  // namespace corra::serve
