#include "serve/coalescer.h"

#include <algorithm>
#include <string>

#include "encoding/scheme.h"
#include "query/scan.h"

namespace corra::serve {

std::string SchemesAnnotation(const Block& block,
                              std::span<const size_t> columns) {
  std::string out;
  for (size_t col : columns) {
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(col);
    out += ':';
    out += enc::SchemeToString(block.column(col).scheme());
  }
  return out;
}

namespace {

// Completes a unit that never touched the block (expired deadline or a
// failed pin): its whole life was queue wait.
template <typename Unit>
void FinishWithoutWork(Unit& unit, Status status, uint64_t now) {
  if (unit.status != nullptr) {
    *unit.status = std::move(status);
  }
  if (unit.span != nullptr && now > unit.enqueue_ns) {
    unit.span->queue_ns = now - unit.enqueue_ns;
  }
  if (unit.done) {
    unit.done();
  }
}

}  // namespace

template <typename Unit>
bool Coalescer::Submit(const Key& key, Unit unit,
                       std::vector<Unit> Batch::*member, bool is_scan) {
  MutexLock lock(mu_);
  std::deque<Batch>& queue = pending_[key];
  if (enabled_ && !queue.empty()) {
    (queue.back().*member).push_back(std::move(unit));
    return false;
  }
  Batch& batch = queue.emplace_back();
  batch.first_is_scan = is_scan;
  (batch.*member).push_back(std::move(unit));
  return true;
}

bool Coalescer::SubmitGather(const TableReader& reader, size_t block,
                             GatherUnit unit) {
  return Submit(Key{&reader, block}, std::move(unit), &Batch::gathers,
                /*is_scan=*/false);
}

bool Coalescer::SubmitScan(const TableReader& reader, size_t block,
                           ScanUnit unit) {
  return Submit(Key{&reader, block}, std::move(unit), &Batch::scans,
                /*is_scan=*/true);
}

void Coalescer::RunBatch(const TableReader* reader, size_t block) {
  Batch batch;
  {
    MutexLock lock(mu_);
    auto it = pending_.find(Key{reader, block});
    if (it == pending_.end() || it->second.empty()) {
      return;  // An earlier executor already served this batch's units.
    }
    batch = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) {
      pending_.erase(it);
    }
  }
  ExecuteBatch(reader, block, std::move(batch));
}

void Coalescer::ExecuteBatch(const TableReader* reader, size_t block,
                             Batch batch) {
  const bool tracing = obs::Enabled();

  // Drop expired units before any block work: they are completed with
  // DeadlineExceeded and excluded from the merge, so an expired
  // deadline never reaches decode.
  bool any_deadline = false;
  for (const GatherUnit& u : batch.gathers) {
    any_deadline |= u.deadline_ns != 0;
  }
  for (const ScanUnit& u : batch.scans) {
    any_deadline |= u.deadline_ns != 0;
  }
  const uint64_t deadline_now = any_deadline ? obs::MonotonicNs() : 0;

  std::vector<GatherUnit*> gathers;
  std::vector<ScanUnit*> scans;
  gathers.reserve(batch.gathers.size());
  scans.reserve(batch.scans.size());
  for (GatherUnit& u : batch.gathers) {
    if (u.deadline_ns != 0 && deadline_now > u.deadline_ns) {
      FinishWithoutWork(
          u, Status::DeadlineExceeded("deadline expired before block scan"),
          deadline_now);
    } else {
      gathers.push_back(&u);
    }
  }
  for (ScanUnit& u : batch.scans) {
    if (u.deadline_ns != 0 && deadline_now > u.deadline_ns) {
      FinishWithoutWork(
          u, Status::DeadlineExceeded("deadline expired before block scan"),
          deadline_now);
    } else {
      scans.push_back(&u);
    }
  }
  if (gathers.empty() && scans.empty()) {
    return;
  }

  const size_t live = gathers.size() + scans.size();
  if (live >= 2) {
    counters_.batches->Increment();
    counters_.coalesced->Add(live - 1);
  }

  // The leader — the unit that opened the batch, or the first live unit
  // if it expired — is the one request that pays (and is charged) the
  // pin and any miss fill.
  GatherUnit* lead_gather = nullptr;
  ScanUnit* lead_scan = nullptr;
  if (batch.first_is_scan && !scans.empty()) {
    lead_scan = scans[0];
  } else if (!gathers.empty()) {
    lead_gather = gathers[0];
  } else {
    lead_scan = scans[0];
  }

  // Completions fire only after the scope below releases the shared
  // pin: a caller observing its request complete must also observe the
  // block unpinned (stats samplers and capacity accounting would
  // otherwise see a pin that outlives every request holding it). The
  // units live in `batch` until this function returns, so deferring
  // the callbacks is safe.
  std::vector<const std::function<void()>*> dones;
  dones.reserve(live);
  {
    const uint64_t t_exec = tracing ? obs::MonotonicNs() : 0;
    BlockFetchStats fetch;
    auto handle = reader->GetBlock(block, tracing ? &fetch : nullptr);
    if (!handle.ok()) {
      const uint64_t now = tracing ? obs::MonotonicNs() : 0;
      for (GatherUnit* u : gathers) {
        FinishWithoutWork(*u, handle.status(), now);
      }
      for (ScanUnit* u : scans) {
        FinishWithoutWork(*u, handle.status(), now);
      }
      return;
    }
    const uint64_t t_pinned = tracing ? obs::MonotonicNs() : 0;
    const Block& blk = *handle.value();

    // Span bookkeeping shared by both unit kinds. Leaders absorb the
    // batch's pin/fill; piggybacked units carry coalesced = true and
    // account their life up to being served as queue wait.
    const auto charge = [&](auto& unit, bool is_leader, uint64_t t_work,
                            uint64_t decode_ns, uint64_t scatter_ns) {
      obs::BlockSpan* span = unit.span;
      if (span == nullptr) {
        return;
      }
      span->block = static_cast<uint32_t>(block);
      span->decode_ns = decode_ns;
      span->scatter_ns = scatter_ns;
      if (is_leader) {
        span->cache_hit = !fetch.miss;
        span->retried = fetch.retries > 0;
        span->queue_ns = t_exec > unit.enqueue_ns ? t_exec - unit.enqueue_ns : 0;
        span->fill_ns = fetch.fill_ns;
        const uint64_t pin_total = t_pinned - t_exec;
        span->pin_ns = pin_total > fetch.fill_ns ? pin_total - fetch.fill_ns : 0;
      } else {
        span->coalesced = true;
        span->cache_hit = true;  // Served off the leader's pin.
        span->queue_ns = t_work > unit.enqueue_ns ? t_work - unit.enqueue_ns : 0;
      }
    };

    if (gathers.size() == 1) {
      // Uncontended fast path: gather straight into the caller's output,
      // no merge, no scratch, no scatter.
      GatherUnit& u = *gathers[0];
      const uint64_t t0 = tracing ? obs::MonotonicNs() : 0;
      for (size_t c = 0; c < u.columns.size(); ++c) {
        query::ScanColumn(blk, u.columns[c], u.rows, u.outs[c]);
      }
      const uint64_t t1 = tracing ? obs::MonotonicNs() : 0;
      charge(u, lead_gather == &u, t0, t1 - t0, 0);
      if (u.span != nullptr) {
        u.span->rows = u.rows.size();
        u.span->schemes = SchemesAnnotation(blk, u.columns);
      }
      dones.push_back(&u.done);
    } else if (gathers.size() >= 2) {
      // Merged gather: one deduplicated sorted union of every unit's row
      // set, one ScanColumn per distinct column, then a per-caller
      // scatter. Byte-identical to independent gathers because the union
      // preserves every selected position's value.
      size_t total_rows = 0;
      for (const GatherUnit* u : gathers) {
        total_rows += u->rows.size();
      }
      std::vector<uint32_t> merged;
      merged.reserve(total_rows);
      for (const GatherUnit* u : gathers) {
        merged.insert(merged.end(), u->rows.begin(), u->rows.end());
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

      std::vector<size_t> cols;
      for (const GatherUnit* u : gathers) {
        for (size_t col : u->columns) {
          if (std::find(cols.begin(), cols.end(), col) == cols.end()) {
            cols.push_back(col);
          }
        }
      }

      const uint64_t t0 = tracing ? obs::MonotonicNs() : 0;
      std::vector<std::vector<int64_t>> scratch(cols.size());
      for (size_t c = 0; c < cols.size(); ++c) {
        scratch[c].resize(merged.size());
        query::ScanColumn(blk, cols[c], merged, scratch[c].data());
      }
      const uint64_t t1 = tracing ? obs::MonotonicNs() : 0;

      for (GatherUnit* up : gathers) {
        GatherUnit& u = *up;
        const uint64_t ts0 = tracing ? obs::MonotonicNs() : 0;
        // Both the unit's rows and the merged union are sorted, so each
        // unit scatters with one forward pass (duplicates in the unit's
        // rows simply re-read the same merged slot).
        std::vector<size_t> idx(u.columns.size());
        for (size_t c = 0; c < u.columns.size(); ++c) {
          idx[c] = static_cast<size_t>(
              std::find(cols.begin(), cols.end(), u.columns[c]) - cols.begin());
        }
        size_t j = 0;
        for (size_t i = 0; i < u.rows.size(); ++i) {
          while (merged[j] < u.rows[i]) {
            ++j;
          }
          for (size_t c = 0; c < u.columns.size(); ++c) {
            u.outs[c][i] = scratch[idx[c]][j];
          }
        }
        const uint64_t ts1 = tracing ? obs::MonotonicNs() : 0;
        const bool is_leader = lead_gather == up;
        charge(u, is_leader, ts0, is_leader ? t1 - t0 : 0, ts1 - ts0);
        if (u.span != nullptr) {
          u.span->rows = u.rows.size();
          u.span->schemes = SchemesAnnotation(blk, u.columns);
        }
        dones.push_back(&u.done);
      }
    }

    // Scan units share the pin but not their decode: each carries its own
    // predicate, so its decode time is its own — only piggybacked pins
    // are deduplicated.
    for (ScanUnit* up : scans) {
      ScanUnit& u = *up;
      const uint64_t tr0 = tracing ? obs::MonotonicNs() : 0;
      u.run(blk);
      const uint64_t tr1 = tracing ? obs::MonotonicNs() : 0;
      charge(u, lead_scan == up, tr0, tr1 - tr0, 0);
      dones.push_back(&u.done);
    }
  }

  for (const std::function<void()>* done : dones) {
    if (*done) {
      (*done)();
    }
  }
}

}  // namespace corra::serve
