// BlockCache — the memory budget of the out-of-core serving layer.
//
// A sharded, capacity-bounded LRU over deserialized Blocks, keyed by
// (file id, block index). Readers never hold whole tables in memory:
// they ask the cache for one block at a time, and the cache either hands
// back a cached copy (hit) or runs the caller's loader exactly once per
// missing block (misses by concurrent callers for the same block wait
// for the single in-flight load instead of re-reading the file).
//
// Returned blocks are wrapped in a pinning Handle: while at least one
// handle to a block is alive, the block is exempt from eviction, so a
// scan in progress can never have its block reclaimed underneath it.
// Eviction strikes the least-recently-used unpinned entry whenever a
// shard exceeds its share of the block/byte budget.
//
// Sharding bounds lock contention under concurrent scans: each key maps
// to one shard with its own mutex and LRU list. The block and byte
// budgets are global — a shard evicts its own LRU tail while the cache
// as a whole is over budget — so a budget smaller than shard_count
// blocks still caches, it never degenerates to per-shard slices of less
// than one block. When the block capacity is smaller than the requested
// shard count, the shard count shrinks to match (a capacity of one
// block really caches one block, not one per shard).

#ifndef CORRA_SERVE_BLOCK_CACHE_H_
#define CORRA_SERVE_BLOCK_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/result.h"
#include "obs/metrics.h"
#include "storage/block.h"

namespace corra::serve {

/// Identifies one block of one open file. File ids come from
/// BlockCache::RegisterFile so two readers of different files sharing a
/// cache can never collide.
struct BlockKey {
  uint64_t file_id = 0;
  uint64_t block_index = 0;

  friend bool operator==(const BlockKey&, const BlockKey&) = default;
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& key) const {
    // splitmix64-style mix of the two halves.
    uint64_t x = key.file_id * 0x9E3779B97F4A7C15ull + key.block_index;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

struct BlockCacheOptions {
  /// Maximum cached blocks (0 = unlimited). Pinned blocks may push the
  /// cache over this bound; it is restored as pins are released.
  size_t capacity_blocks = 64;
  /// Optional byte budget over Block::GetStats().encoded_bytes
  /// (0 = unlimited).
  size_t capacity_bytes = 0;
  /// Desired shard count; clamped to capacity_blocks when that is
  /// smaller, and to at least 1.
  size_t shards = 8;
  /// Metrics registry the cache reports into (hits/misses/evictions as
  /// counters, resident/pinned blocks and bytes as gauges, all under
  /// "cache."). Null means obs::Registry::Default(). Several caches
  /// sharing one registry aggregate into the same series.
  obs::Registry* registry = nullptr;
  /// Quarantine TTL: a block whose load fails with a persistent status
  /// (Corruption or IOError — not deadline/admission classes) enters a
  /// bounded negative cache for this long, and requests arriving inside
  /// the window fail fast with the original Status instead of hammering
  /// the disk with loads that cannot succeed. 0 disables quarantine
  /// (every request re-runs the loader, the pre-quarantine behavior).
  uint64_t quarantine_ttl_ms = 2000;
  /// Upper bound on quarantined blocks across all shards; the oldest
  /// entry is dropped first (it simply becomes loadable again early).
  size_t quarantine_capacity = 256;
};

/// Coherent point-in-time snapshot of the cache (see GetStats).
///
/// Ledger invariant — because the snapshot is taken with every shard
/// locked at once, it holds *exactly*, not just eventually:
///
///   misses == cached_blocks + loading_blocks
///           + evictions + failed_loads + erased_blocks
///
/// Every miss creates exactly one entry, and every entry is either
/// still loading, resident, or was removed by exactly one of eviction,
/// load failure, or EraseFile (immediately, or deferred to the last
/// unpin of a doomed entry — counted as erased either way).
///
/// Quarantine sits outside the ledger: a failed load counts toward
/// failed_loads exactly once whether or not it quarantines the block,
/// and a request rejected by the quarantine (quarantine_fastfails)
/// never creates an entry — it is neither a hit nor a miss, so the
/// equation above is untouched by any quarantine traffic.
struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t failed_loads = 0;
  /// Entries removed by EraseFile (including doomed entries dropped at
  /// their last unpin) — removals that are neither evictions nor
  /// failures, kept separate so the ledger invariant stays exact.
  uint64_t erased_blocks = 0;
  /// Hits that first waited out another caller's in-flight load of the
  /// same block (single-flight absorption — e.g. a scan arriving while
  /// the read-ahead thread is still filling the block). A subset of
  /// hits; not part of the ledger invariant.
  uint64_t load_waits = 0;
  /// Requests failed fast by the quarantine with the original load
  /// error (no loader run, no entry created).
  uint64_t quarantine_fastfails = 0;
  size_t cached_blocks = 0;
  size_t cached_bytes = 0;
  size_t pinned_blocks = 0;
  /// Entries whose loader is still running (missed, not yet resident).
  size_t loading_blocks = 0;
  /// Blocks currently held in the quarantine negative cache (their
  /// expiry may have passed; expired entries are reaped lazily on the
  /// next request for the block).
  size_t quarantined = 0;

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class BlockCache {
 public:
  /// Loads a block on a miss. Runs outside any shard lock.
  using Loader =
      std::function<Result<std::shared_ptr<const Block>>()>;

  struct State;  // Internal shards + budgets, co-owned by Handles.

  /// RAII pin: keeps the block unevictable while alive. Default
  /// instances are empty (operator bool is false). A handle co-owns the
  /// cache's internal state, so it stays valid (and its block readable)
  /// even if it outlives the BlockCache that issued it.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept;
    Handle& operator=(Handle&& other) noexcept;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle();

    explicit operator bool() const { return block_ != nullptr; }
    const Block& operator*() const { return *block_; }
    const Block* operator->() const { return block_.get(); }
    [[nodiscard]] const std::shared_ptr<const Block>& block() const {
      return block_;
    }

    /// Releases the pin early (idempotent).
    void Release();

   private:
    friend class BlockCache;
    Handle(std::shared_ptr<State> state, BlockKey key,
           std::shared_ptr<const Block> block)
        : state_(std::move(state)), key_(key), block_(std::move(block)) {}

    std::shared_ptr<State> state_;
    BlockKey key_{};
    std::shared_ptr<const Block> block_;
  };

  explicit BlockCache(BlockCacheOptions options = {});
  ~BlockCache() = default;
  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns a process-unique file id for keying a newly opened file.
  [[nodiscard]] uint64_t RegisterFile();

  /// Returns a pinned handle for `key`, running `loader` if (and only
  /// if) the block is not cached and no other caller is already loading
  /// it. Loader failures are propagated and nothing is cached; a
  /// persistent failure (Corruption/IOError) additionally quarantines
  /// the key (see BlockCacheOptions::quarantine_ttl_ms), so callers —
  /// including waiters woken from the failed single-flight load — fail
  /// fast with that same status until the TTL expires.
  [[nodiscard]] Result<Handle> GetOrLoad(const BlockKey& key,
                                         const Loader& loader);

  /// True if `key` is resident (does not touch LRU order or stats).
  [[nodiscard]] bool Contains(const BlockKey& key) const;

  /// Drops every unpinned entry of `file_id` (a closing reader's blocks
  /// stop occupying budget). Entries still pinned or mid-load are
  /// dropped when their last pin is released — they never linger as
  /// unreachable residents. The file's quarantine entries are dropped
  /// too (file ids are never reused, so they could only leak).
  void EraseFile(uint64_t file_id);

  /// Empties the quarantine: every quarantined block becomes loadable
  /// again immediately (operational unblock after replacing a bad
  /// file, and the test hook for TTL-independent recovery).
  void ClearQuarantine();

  /// Coherent snapshot: taken with every shard lock held at once, so
  /// the BlockCacheStats ledger invariant (see its comment) holds
  /// exactly even while concurrent loads, unpins, and evictions are in
  /// flight. Safe against the eviction path's lock order (no code path
  /// holds two shard locks, and GetStats acquires them in index order).
  [[nodiscard]] BlockCacheStats GetStats() const;

  [[nodiscard]] size_t capacity_blocks() const;
  [[nodiscard]] size_t capacity_bytes() const;
  [[nodiscard]] size_t num_shards() const;

 private:
  // All mutable cache machinery (shards, budgets, counters) lives in
  // State, shared between the cache and its outstanding Handles so a
  // handle released after the cache is destroyed unpins safely.
  std::shared_ptr<State> state_;
};

}  // namespace corra::serve

#endif  // CORRA_SERVE_BLOCK_CACHE_H_
