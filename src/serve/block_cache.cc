#include "serve/block_cache.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "obs/trace.h"

namespace corra::serve {

namespace {

// Statuses that quarantine a block: the *data* is bad (or the medium
// persistently failed after retries), so re-running the loader cannot
// help. Transient classes — deadline, admission, internal hiccups —
// never quarantine; the next request simply retries the load.
bool QuarantineEligible(const Status& status) {
  return status.IsCorruption() || status.IsIOError();
}

}  // namespace

// All cache machinery lives here; Handles co-own it so pin release is
// safe even after the issuing BlockCache is gone.
struct BlockCache::State {
  struct Entry {
    BlockKey key{};
    std::shared_ptr<const Block> block;
    size_t bytes = 0;
    int pins = 0;
    bool loading = true;
    // Set by EraseFile on entries it cannot drop yet (pinned or mid
    // load). The file id is never reused, so no lookup can reach the
    // entry again; the last unpin erases it instead of re-filing it.
    bool doomed = false;
    // Valid only when pins == 0 && !loading (entry sits in the LRU).
    std::list<Entry*>::iterator lru_it{};
    bool in_lru = false;
  };

  // One quarantined block: the load error to replay and when the block
  // becomes loadable again.
  struct Quarantined {
    Status status;
    uint64_t expire_ns = 0;
  };

  // Entry objects themselves carry no annotations: an Entry is only
  // reachable through its shard's guarded containers, so every access
  // already runs under that shard's mu (raw Entry* copies never escape
  // a locked region).
  struct Shard {
    mutable Mutex mu;
    CondVar cv;  // Signals load completions.
    std::unordered_map<BlockKey, std::unique_ptr<Entry>, BlockKeyHash>
        entries CORRA_GUARDED_BY(mu);
    // Front = most recently used, unpinned only.
    std::list<Entry*> lru CORRA_GUARDED_BY(mu);
    // Negative cache of persistently failing blocks; bounded by the
    // cache-wide quarantine_capacity split across shards. The FIFO
    // holds insertion order so the oldest entry is dropped first when
    // the shard's share of the bound is exceeded.
    std::unordered_map<BlockKey, Quarantined, BlockKeyHash> quarantine
        CORRA_GUARDED_BY(mu);
    std::deque<BlockKey> quarantine_fifo CORRA_GUARDED_BY(mu);
    size_t bytes CORRA_GUARDED_BY(mu) = 0;
    uint64_t hits CORRA_GUARDED_BY(mu) = 0;
    uint64_t misses CORRA_GUARDED_BY(mu) = 0;
    uint64_t evictions CORRA_GUARDED_BY(mu) = 0;
    uint64_t failed_loads CORRA_GUARDED_BY(mu) = 0;
    // EraseFile removals (incl. doomed unpins).
    uint64_t erased CORRA_GUARDED_BY(mu) = 0;
    // Hits that waited out an in-flight load.
    uint64_t load_waits CORRA_GUARDED_BY(mu) = 0;
    uint64_t quarantine_fastfails CORRA_GUARDED_BY(mu) = 0;
  };

  // Cached registry series; resolved once at construction so cache
  // events are lock-free counter/gauge updates. The counters mirror the
  // per-shard stats; the gauges track residency levels, replacing the
  // ad-hoc GetStats polling the serving benches used to do.
  struct Metrics {
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* evictions;
    obs::Counter* failed_loads;
    obs::Counter* load_waits;
    obs::Counter* quarantine_fastfails;
    obs::Gauge* cached_blocks;
    obs::Gauge* cached_bytes;
    obs::Gauge* pinned_blocks;
    obs::Gauge* pinned_bytes;
    obs::Gauge* quarantined_blocks;

    explicit Metrics(obs::Registry& registry)
        : hits(&registry.counter("cache.hits")),
          misses(&registry.counter("cache.misses")),
          evictions(&registry.counter("cache.evictions")),
          failed_loads(&registry.counter("cache.failed_loads")),
          load_waits(&registry.counter("cache.load_waits")),
          quarantine_fastfails(
              &registry.counter("cache.quarantine_fastfails")),
          cached_blocks(&registry.gauge("cache.cached_blocks")),
          cached_bytes(&registry.gauge("cache.cached_bytes")),
          pinned_blocks(&registry.gauge("cache.pinned_blocks")),
          pinned_bytes(&registry.gauge("cache.pinned_bytes")),
          quarantined_blocks(&registry.gauge("cache.quarantined_blocks")) {}
  };

  BlockCacheOptions options;
  std::unique_ptr<Metrics> metrics;
  // Per-shard quarantine bound (quarantine_capacity split across
  // shards, at least 1 each); 0 when quarantine is disabled.
  size_t quarantine_per_shard = 0;
  // Budgets are enforced globally (per-shard slices would starve the
  // cache whenever capacity / shards is smaller than a block); a shard
  // can only evict its own entries, so an overshoot in one shard drains
  // as soon as that shard sees an unpin or an insert.
  std::atomic<size_t> total_blocks{0};  // Fully loaded entries.
  std::atomic<size_t> total_bytes{0};
  // Serializes the over-budget check with the evictions it triggers.
  // Without it, two shards (say an unpin re-filing its entry while
  // another shard finishes an insert) can both observe the same
  // one-block overshoot and both evict — double-counting the eviction
  // and draining the cache below its budget. Ordering: always acquired
  // *after* a shard mutex, and never acquires one itself, so there is
  // no lock cycle. Only contended when the cache is actually over
  // budget: EvictOverflow pre-checks the atomics lock-free and takes
  // this mutex (re-checking under it) only on an observed overshoot.
  // No fields are guarded by it — it serializes the check-and-evict
  // sequence, not any particular datum.
  Mutex evict_mu;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<uint64_t> next_file_id{1};

  Shard& ShardFor(const BlockKey& key) {
    return *shards[BlockKeyHash{}(key) % shards.size()];
  }
  const Shard& ShardFor(const BlockKey& key) const {
    return *shards[BlockKeyHash{}(key) % shards.size()];
  }

  // Evicts this shard's LRU-tail entries while the cache exceeds its
  // global budget.
  void EvictOverflow(Shard& shard) CORRA_REQUIRES(shard.mu) {
    const auto over = [&] {
      if (options.capacity_blocks > 0 &&
          total_blocks.load(std::memory_order_relaxed) >
              options.capacity_blocks) {
        return true;
      }
      if (options.capacity_bytes > 0 &&
          total_bytes.load(std::memory_order_relaxed) >
              options.capacity_bytes) {
        return true;
      }
      return false;
    };
    // Steady state (under budget) stays lock-free: an unpin or insert
    // that observes no overshoot must not funnel every shard through
    // the global mutex. The check is conservative — a transient miss
    // just leaves the overshoot for the next operation to drain.
    if (!over()) {
      return;
    }
    // Check-and-evict must be atomic across shards once over budget:
    // see evict_mu. The over() re-check below runs under the lock.
    MutexLock evict_lock(evict_mu);
    // Only unpinned, fully loaded entries sit in the LRU list; pinned
    // entries (and residents of other shards) can carry the cache over
    // budget until their pins drop or their shard sees traffic.
    while (over() && !shard.lru.empty()) {
      Entry* victim = shard.lru.back();
      shard.lru.pop_back();
      victim->in_lru = false;
      shard.bytes -= victim->bytes;
      total_blocks.fetch_sub(1, std::memory_order_relaxed);
      total_bytes.fetch_sub(victim->bytes, std::memory_order_relaxed);
      ++shard.evictions;
      metrics->evictions->Increment();
      metrics->cached_blocks->Sub(1);
      metrics->cached_bytes->Sub(static_cast<int64_t>(victim->bytes));
      // Copy: erase(key) must not receive a reference into the node it
      // is destroying.
      const BlockKey victim_key = victim->key;
      shard.entries.erase(victim_key);
    }
  }

  // Quarantine bookkeeping.
  void RemoveQuarantineLocked(Shard& shard, const BlockKey& key)
      CORRA_REQUIRES(shard.mu) {
    auto it = shard.quarantine.find(key);
    if (it == shard.quarantine.end()) {
      return;
    }
    shard.quarantine.erase(it);
    auto fit = std::find(shard.quarantine_fifo.begin(),
                         shard.quarantine_fifo.end(), key);
    if (fit != shard.quarantine_fifo.end()) {
      shard.quarantine_fifo.erase(fit);
    }
    metrics->quarantined_blocks->Sub(1);
  }

  void InsertQuarantineLocked(Shard& shard, const BlockKey& key,
                              const Status& status)
      CORRA_REQUIRES(shard.mu) {
    const uint64_t expire_ns =
        obs::MonotonicNs() + options.quarantine_ttl_ms * 1'000'000ull;
    auto it = shard.quarantine.find(key);
    if (it != shard.quarantine.end()) {
      // Re-failure refreshes the window and the status; the FIFO slot
      // keeps its original position (age by first failure).
      it->second = Quarantined{status, expire_ns};
      return;
    }
    shard.quarantine.emplace(key, Quarantined{status, expire_ns});
    shard.quarantine_fifo.push_back(key);
    metrics->quarantined_blocks->Add(1);
    while (shard.quarantine.size() > quarantine_per_shard) {
      const BlockKey oldest = shard.quarantine_fifo.front();
      shard.quarantine_fifo.pop_front();
      shard.quarantine.erase(oldest);
      metrics->quarantined_blocks->Sub(1);
    }
  }

  // Removes the pin added by a Handle; re-files the entry in the LRU.
  void Unpin(const BlockKey& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      return;  // Entry was erased (EraseFile) while pinned.
    }
    Entry* entry = it->second.get();
    if (--entry->pins > 0) {
      return;
    }
    metrics->pinned_blocks->Sub(1);
    metrics->pinned_bytes->Sub(static_cast<int64_t>(entry->bytes));
    if (entry->doomed) {
      // The owning file was erased while this pin was out; the entry is
      // unreachable (file ids are never reused), so drop it now.
      shard.bytes -= entry->bytes;
      total_blocks.fetch_sub(1, std::memory_order_relaxed);
      total_bytes.fetch_sub(entry->bytes, std::memory_order_relaxed);
      ++shard.erased;
      metrics->cached_blocks->Sub(1);
      metrics->cached_bytes->Sub(static_cast<int64_t>(entry->bytes));
      shard.entries.erase(it);
      return;
    }
    // Last pin released: the entry becomes evictable at the MRU
    // position.
    shard.lru.push_front(entry);
    entry->lru_it = shard.lru.begin();
    entry->in_lru = true;
    EvictOverflow(shard);
  }

  // Blocks still resident when the cache dies stop being resident: give
  // their share of the process-wide residency gauges back, so many
  // short-lived caches (benches, tests) don't drift the gauges upward.
  ~State() {
    for (const auto& shard_ptr : shards) {
      // The last co-owner (cache or outstanding Handle) runs this, so
      // by shared_ptr ordering no *other* thread still touches the
      // shards — but a Handle released on another thread moments ago
      // may not have published its Unpin writes to this one. Locking
      // each shard both satisfies the guarded-field contract and
      // provides the release/acquire edge that makes the final gauge
      // accounting read those writes.
      MutexLock lock(shard_ptr->mu);
      for (const auto& [key, entry] : shard_ptr->entries) {
        if (entry->loading) {
          continue;
        }
        metrics->cached_blocks->Sub(1);
        metrics->cached_bytes->Sub(static_cast<int64_t>(entry->bytes));
        if (entry->pins > 0) {
          metrics->pinned_blocks->Sub(1);
          metrics->pinned_bytes->Sub(static_cast<int64_t>(entry->bytes));
        }
      }
      metrics->quarantined_blocks->Sub(
          static_cast<int64_t>(shard_ptr->quarantine.size()));
    }
  }
};

// --- Handle -----------------------------------------------------------------

BlockCache::Handle::Handle(Handle&& other) noexcept
    : state_(std::move(other.state_)), key_(other.key_),
      block_(std::move(other.block_)) {
  other.state_ = nullptr;
  other.block_ = nullptr;
}

BlockCache::Handle& BlockCache::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    Release();
    state_ = std::move(other.state_);
    key_ = other.key_;
    block_ = std::move(other.block_);
    other.state_ = nullptr;
    other.block_ = nullptr;
  }
  return *this;
}

BlockCache::Handle::~Handle() { Release(); }

void BlockCache::Handle::Release() {
  if (state_ != nullptr && block_ != nullptr) {
    state_->Unpin(key_);
  }
  state_ = nullptr;
  block_ = nullptr;
}

// --- BlockCache -------------------------------------------------------------

BlockCache::BlockCache(BlockCacheOptions options)
    : state_(std::make_shared<State>()) {
  state_->options = options;
  state_->metrics = std::make_unique<State::Metrics>(
      options.registry != nullptr ? *options.registry
                                  : obs::Registry::Default());
  size_t shards = std::max<size_t>(options.shards, 1);
  if (options.capacity_blocks > 0) {
    // Never more shards than blocks: a tiny cache degenerates to one
    // LRU so an insert can always evict the over-budget entry itself.
    shards = std::min(shards, options.capacity_blocks);
  }
  state_->shards.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    state_->shards.push_back(std::make_unique<State::Shard>());
  }
  if (options.quarantine_ttl_ms > 0 && options.quarantine_capacity > 0) {
    state_->quarantine_per_shard =
        std::max<size_t>(1, options.quarantine_capacity / shards);
  }
}

uint64_t BlockCache::RegisterFile() {
  return state_->next_file_id.fetch_add(1, std::memory_order_relaxed);
}

size_t BlockCache::capacity_blocks() const {
  return state_->options.capacity_blocks;
}

size_t BlockCache::capacity_bytes() const {
  return state_->options.capacity_bytes;
}

size_t BlockCache::num_shards() const { return state_->shards.size(); }

Result<BlockCache::Handle> BlockCache::GetOrLoad(const BlockKey& key,
                                                 const Loader& loader) {
  State::Shard& shard = state_->ShardFor(key);
  MutexLock lock(shard.mu);
  bool waited = false;  // Blocked on another caller's in-flight load.
  for (;;) {
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      break;  // Miss: this caller becomes the loader.
    }
    State::Entry* entry = it->second.get();
    if (!entry->loading) {
      ++shard.hits;
      state_->metrics->hits->Increment();
      if (waited) {
        // Single-flight in action: this caller's miss was absorbed by a
        // concurrent load (e.g. the read-ahead thread's) — it paid a
        // wait, not a fill.
        ++shard.load_waits;
        state_->metrics->load_waits->Increment();
      }
      if (entry->in_lru) {
        shard.lru.erase(entry->lru_it);
        entry->in_lru = false;
      }
      if (entry->pins++ == 0) {
        state_->metrics->pinned_blocks->Add(1);
        state_->metrics->pinned_bytes->Add(
            static_cast<int64_t>(entry->bytes));
      }
      return Handle(state_, key, entry->block);
    }
    // Another caller is loading this block; wait for it to finish, then
    // re-check (the entry may be gone if the load failed).
    waited = true;
    shard.cv.Wait(shard.mu);
  }

  // Quarantine check before becoming the loader: a block that failed
  // persistently moments ago fails fast with that same status — this
  // is also what waiters woken from a failed single-flight load hit,
  // so a pile-up on a bad block produces one disk read, not N.
  if (state_->quarantine_per_shard > 0) {
    auto qit = shard.quarantine.find(key);
    if (qit != shard.quarantine.end()) {
      if (obs::MonotonicNs() < qit->second.expire_ns) {
        ++shard.quarantine_fastfails;
        state_->metrics->quarantine_fastfails->Increment();
        return qit->second.status;
      }
      // Expired: the block earns a fresh load attempt.
      state_->RemoveQuarantineLocked(shard, key);
    }
  }

  auto placeholder = std::make_unique<State::Entry>();
  placeholder->key = key;
  State::Entry* entry = placeholder.get();
  shard.entries.emplace(key, std::move(placeholder));
  ++shard.misses;
  state_->metrics->misses->Increment();
  lock.Unlock();

  Result<std::shared_ptr<const Block>> loaded = loader();

  lock.Lock();
  if (!loaded.ok() || loaded.value() == nullptr) {
    ++shard.failed_loads;
    state_->metrics->failed_loads->Increment();
    shard.entries.erase(key);
    Status failure =
        loaded.ok() ? Status::Internal("block loader returned null block")
                    : loaded.status();
    // Quarantine before waking the waiters: each of them re-checks the
    // map, finds no entry, and hits the quarantine — every waiter gets
    // this failure without any of them re-running a doomed loader.
    if (state_->quarantine_per_shard > 0 && QuarantineEligible(failure)) {
      state_->InsertQuarantineLocked(shard, key, failure);
    }
    shard.cv.NotifyAll();
    return failure;
  }
  entry->block = std::move(loaded).value();
  entry->bytes = entry->block->GetStats().encoded_bytes;
  entry->loading = false;
  entry->pins = 1;  // The returned handle's pin; not in the LRU yet.
  shard.bytes += entry->bytes;
  state_->total_blocks.fetch_add(1, std::memory_order_relaxed);
  state_->total_bytes.fetch_add(entry->bytes, std::memory_order_relaxed);
  state_->metrics->cached_blocks->Add(1);
  state_->metrics->cached_bytes->Add(static_cast<int64_t>(entry->bytes));
  state_->metrics->pinned_blocks->Add(1);
  state_->metrics->pinned_bytes->Add(static_cast<int64_t>(entry->bytes));
  shard.cv.NotifyAll();
  state_->EvictOverflow(shard);
  return Handle(state_, key, entry->block);
}

bool BlockCache::Contains(const BlockKey& key) const {
  const State::Shard& shard =
      static_cast<const State&>(*state_).ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(key);
  return it != shard.entries.end() && !it->second->loading;
}

void BlockCache::EraseFile(uint64_t file_id) {
  for (auto& shard_ptr : state_->shards) {
    State::Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (auto qit = shard.quarantine.begin();
         qit != shard.quarantine.end();) {
      if (qit->first.file_id == file_id) {
        auto fit = std::find(shard.quarantine_fifo.begin(),
                             shard.quarantine_fifo.end(), qit->first);
        if (fit != shard.quarantine_fifo.end()) {
          shard.quarantine_fifo.erase(fit);
        }
        state_->metrics->quarantined_blocks->Sub(1);
        qit = shard.quarantine.erase(qit);
      } else {
        ++qit;
      }
    }
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      State::Entry* entry = it->second.get();
      if (entry->key.file_id != file_id) {
        ++it;
        continue;
      }
      if (entry->loading || entry->pins > 0) {
        // Cannot drop yet; the last unpin (or the loader's handle
        // release) will erase it instead of re-filing it in the LRU.
        entry->doomed = true;
        ++it;
        continue;
      }
      if (entry->in_lru) {
        shard.lru.erase(entry->lru_it);
      }
      shard.bytes -= entry->bytes;
      state_->total_blocks.fetch_sub(1, std::memory_order_relaxed);
      state_->total_bytes.fetch_sub(entry->bytes,
                                    std::memory_order_relaxed);
      ++shard.erased;
      state_->metrics->cached_blocks->Sub(1);
      state_->metrics->cached_bytes->Sub(
          static_cast<int64_t>(entry->bytes));
      it = shard.entries.erase(it);
    }
  }
}

void BlockCache::ClearQuarantine() {
  for (auto& shard_ptr : state_->shards) {
    State::Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    state_->metrics->quarantined_blocks->Sub(
        static_cast<int64_t>(shard.quarantine.size()));
    shard.quarantine.clear();
    shard.quarantine_fifo.clear();
  }
}

// Thread-safety analysis is off here by design: the function locks a
// *dynamic* set of mutexes (one per shard, discovered at runtime),
// which the static analysis cannot model — there is no per-shard
// capability expression to name at compile time. The locking protocol
// is reviewed by hand instead and documented below.
BlockCacheStats BlockCache::GetStats() const
    CORRA_NO_THREAD_SAFETY_ANALYSIS {
  // Coherent snapshot: every shard lock is held for the whole
  // aggregation, so no load can complete, no pin can drop, and no
  // eviction can run while counting — the ledger invariant documented
  // on BlockCacheStats holds exactly, never just transiently. (Locking
  // all shards is deadlock-free: no other path ever holds two shard
  // locks, and the eviction mutex is only ever taken *after* a shard
  // lock, never before one.) Shard-at-a-time aggregation would instead
  // let a block finish loading in shard A after A was counted but
  // before B was — a reader could then see misses != evictions +
  // cached_blocks + loading_blocks even with the per-shard counters
  // individually exact.
  for (const auto& shard_ptr : state_->shards) {
    shard_ptr->mu.Lock();
  }
  BlockCacheStats stats;
  for (const auto& shard_ptr : state_->shards) {
    const State::Shard& shard = *shard_ptr;
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.failed_loads += shard.failed_loads;
    stats.erased_blocks += shard.erased;
    stats.load_waits += shard.load_waits;
    stats.quarantine_fastfails += shard.quarantine_fastfails;
    stats.quarantined += shard.quarantine.size();
    stats.cached_bytes += shard.bytes;
    for (const auto& [key, entry] : shard.entries) {
      if (entry->loading) {
        ++stats.loading_blocks;
        continue;
      }
      ++stats.cached_blocks;
      if (entry->pins > 0) {
        ++stats.pinned_blocks;
      }
    }
  }
  for (const auto& shard_ptr : state_->shards) {
    shard_ptr->mu.Unlock();
  }
  return stats;
}

}  // namespace corra::serve
