// TableReader — a lazily loading view of one CORF file.
//
// Open parses the header and directory exactly once (CorfFile keeps the
// file descriptor for positional reads); block payloads stay on disk
// until a scan asks for them. GetBlock routes through the shared
// BlockCache, so concurrent scans over the same reader — or over many
// readers sharing a cache — each deserialize a block at most once while
// it stays resident.
//
// The directory's per-block row counts give the reader its global row
// coordinate system (block_row_offsets) without touching any payload,
// which is what lets ScanService route global positions to blocks.
//
// A TableReader is immutable after Open; all methods are const and
// thread-safe.

#ifndef CORRA_SERVE_TABLE_READER_H_
#define CORRA_SERVE_TABLE_READER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/block_cache.h"
#include "storage/file_io.h"

namespace corra::serve {

struct TableReaderOptions {
  /// Validate payload checksums and run block integrity checks on every
  /// load (the cost is paid once per cache miss, not per scan).
  bool verify_blocks = false;
  /// Retry/backoff policy for the underlying CorfFile's reads.
  CorfFileOptions io = {};
};

/// What one GetBlock call actually did — filled only when the caller
/// asks for it (the serving layer's trace spans split pin wait from
/// miss fill with this).
struct BlockFetchStats {
  /// True when this call ran the loader (a cold read + deserialize);
  /// false for a cache hit or for waiting out another caller's load.
  bool miss = false;
  /// Wall time spent inside the loader when miss is true.
  uint64_t fill_ns = 0;
  /// Read retries (re-issued preads + checksum re-reads) the loader
  /// absorbed — nonzero means the block was served despite faults.
  uint32_t retries = 0;
};

class TableReader {
 public:
  /// Opens `path`, registering it with `cache` (which must outlive the
  /// reader and must not be null).
  static Result<std::unique_ptr<TableReader>> Open(
      const std::string& path, std::shared_ptr<BlockCache> cache,
      TableReaderOptions options = {});

  /// Releases the reader's unpinned cache entries.
  ~TableReader();

  TableReader(const TableReader&) = delete;
  TableReader& operator=(const TableReader&) = delete;

  const std::string& path() const { return file_.path(); }
  const Schema& schema() const { return file_.info().schema; }
  const FileInfo& info() const { return file_.info(); }
  size_t num_blocks() const { return file_.num_blocks(); }
  uint64_t num_rows() const { return row_offsets_.back(); }
  uint64_t file_id() const { return file_id_; }

  /// Cumulative row offsets: offsets[b] is the global position of block
  /// b's first row; offsets.back() == num_rows() (num_blocks + 1
  /// entries). Suitable for query::SplitSelectionByBlocks.
  std::span<const uint64_t> block_row_offsets() const {
    return row_offsets_;
  }
  uint64_t block_rows(size_t b) const {
    return row_offsets_[b + 1] - row_offsets_[b];
  }

  /// Returns block `index`, pinned; loads (and caches) it on a miss.
  /// With a non-null `fetch` (and observability enabled), reports
  /// whether this call loaded the block and how long the load took.
  Result<BlockCache::Handle> GetBlock(
      size_t index, BlockFetchStats* fetch = nullptr) const;

  const std::shared_ptr<BlockCache>& cache() const { return cache_; }

 private:
  TableReader(CorfFile file, std::shared_ptr<BlockCache> cache,
              uint64_t file_id, TableReaderOptions options);

  CorfFile file_;
  std::shared_ptr<BlockCache> cache_;
  uint64_t file_id_ = 0;
  TableReaderOptions options_;
  std::vector<uint64_t> row_offsets_;
};

}  // namespace corra::serve

#endif  // CORRA_SERVE_TABLE_READER_H_
