// ReadAhead — asynchronous cold reads for the serving front door.
//
// One background thread issues block fetches in scan order, ahead of
// the pool workers consuming them. A prefetched block enters the
// BlockCache through the same single-flight GetOrLoad as any other
// load, so a worker arriving at a block the prefetcher is still filling
// waits on the cache's in-flight-load signal (attributed as cache_pin)
// instead of running the loader itself (miss_fill) — for sequential
// scans the disk time moves off the request's critical path entirely,
// and workers mostly pin already-resident blocks.
//
// Requests open a Session naming the ordered blocks they will touch;
// the prefetcher interleaves sessions FIFO. A session's destructor
// cancels its outstanding prefetches and waits out an in-flight one, so
// the reader a session borrows can never be dereferenced after the
// owning request returns.
//
// Prefetch failures are deliberately swallowed: the scan path re-runs
// the same load and surfaces the error with full context.

#ifndef CORRA_SERVE_READ_AHEAD_H_
#define CORRA_SERVE_READ_AHEAD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "obs/metrics.h"
#include "serve/table_reader.h"

namespace corra::serve {

class ReadAhead {
 public:
  /// Registry series (resolved by the owning service; never null).
  struct Counters {
    obs::Counter* issued = nullptr;   // Prefetch loads actually started.
    obs::Counter* skipped = nullptr;  // Blocks already resident/cancelled.
  };

  explicit ReadAhead(Counters counters);
  ~ReadAhead();
  ReadAhead(const ReadAhead&) = delete;
  ReadAhead& operator=(const ReadAhead&) = delete;

  /// One request's prefetch plan; destroying it cancels whatever has
  /// not been issued yet and blocks until any in-flight fetch for this
  /// session finishes (bounded by one block load).
  class Session {
   public:
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

   private:
    friend class ReadAhead;
    Session(ReadAhead* owner, uint64_t id) : owner_(owner), id_(id) {}
    ReadAhead* owner_;
    uint64_t id_;
  };

  /// Queues `blocks` of `reader` for prefetch, in order. The reader
  /// must outlive the returned session.
  std::unique_ptr<Session> Start(const TableReader& reader,
                                 std::vector<size_t> blocks);

 private:
  struct Job {
    uint64_t session = 0;
    const TableReader* reader = nullptr;
    size_t block = 0;
  };

  void Loop();
  void Cancel(uint64_t session_id);

  Counters counters_;
  Mutex mu_;
  CondVar cv_;  // Signals new jobs, shutdown, and fetch completion.
  std::deque<Job> jobs_ CORRA_GUARDED_BY(mu_);
  // Session of the job being fetched.
  uint64_t active_session_ CORRA_GUARDED_BY(mu_) = 0;
  uint64_t next_session_ CORRA_GUARDED_BY(mu_) = 1;
  bool stop_ CORRA_GUARDED_BY(mu_) = false;
  std::thread thread_;  // Written by the ctor only.
};

}  // namespace corra::serve

#endif  // CORRA_SERVE_READ_AHEAD_H_
