#include "serve/table_reader.h"

#include "common/failpoint.h"
#include "obs/trace.h"

namespace corra::serve {

Result<std::unique_ptr<TableReader>> TableReader::Open(
    const std::string& path, std::shared_ptr<BlockCache> cache,
    TableReaderOptions options) {
  if (cache == nullptr) {
    return Status::InvalidArgument("TableReader needs a BlockCache");
  }
  CORRA_ASSIGN_OR_RETURN(CorfFile file, CorfFile::Open(path, options.io));
  const uint64_t file_id = cache->RegisterFile();
  return std::unique_ptr<TableReader>(new TableReader(
      std::move(file), std::move(cache), file_id, options));
}

TableReader::TableReader(CorfFile file, std::shared_ptr<BlockCache> cache,
                         uint64_t file_id, TableReaderOptions options)
    : file_(std::move(file)),
      cache_(std::move(cache)),
      file_id_(file_id),
      options_(options) {
  const FileInfo& info = file_.info();
  row_offsets_.resize(info.num_blocks + 1, 0);
  for (size_t b = 0; b < info.num_blocks; ++b) {
    row_offsets_[b + 1] = row_offsets_[b] + info.block_rows[b];
  }
}

TableReader::~TableReader() { cache_->EraseFile(file_id_); }

Result<BlockCache::Handle> TableReader::GetBlock(
    size_t index, BlockFetchStats* fetch) const {
  if (index >= file_.num_blocks()) {
    return Status::OutOfRange("block index out of range");
  }
  const BlockKey key{file_id_, index};
  // The loader runs synchronously inside GetOrLoad, and only in the one
  // caller that wins the load — so writing through `fetch` from it
  // attributes the fill to exactly the request that paid for it.
  return cache_->GetOrLoad(key, [this, index, fetch]()
                               -> Result<std::shared_ptr<const Block>> {
    // Fault injection for the cache's failure paths (quarantine,
    // waiter wakeup) without involving the file at all.
    if (CORRA_FAILPOINT("cache.load_error")) {
      return Status::IOError("injected block loader failure (file '" +
                             file_.path() + "', block " +
                             std::to_string(index) + ")");
    }
    const bool timed = fetch != nullptr && obs::Enabled();
    const uint64_t begin = timed ? obs::MonotonicNs() : 0;
    BlockReadStats read_stats;
    CORRA_ASSIGN_OR_RETURN(
        Block block,
        file_.ReadBlock(index, options_.verify_blocks, &read_stats));
    if (timed) {
      fetch->miss = true;
      fetch->fill_ns = obs::MonotonicNs() - begin;
    }
    if (fetch != nullptr) {
      fetch->retries = read_stats.retries + read_stats.checksum_rereads;
    }
    return std::make_shared<const Block>(std::move(block));
  });
}

}  // namespace corra::serve
