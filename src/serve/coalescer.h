// Coalescer — cross-request block batching for the serving front door.
//
// Concurrent requests whose row sets land in the same block used to pay
// one cache pin and one positioned gather *each*. The coalescer batches
// them: per (reader, block) there is at most one open batch; the first
// submitter becomes the batch's leader and enqueues exactly one
// executor task on the pool, and every unit submitted before that
// executor runs piggybacks onto the batch for free. The executor closes
// the batch, pins the block once, serves every unit against the shared
// pin — gather units through one merged, deduplicated ScanColumn per
// column with a per-caller scatter, scan units by running their decode
// closure — and completes each unit's request.
//
// Results are byte-identical to independent execution: the merged
// selection is the sorted union of the units' (already sorted) row
// sets, and each caller's outputs are scattered back from the merged
// gather by position, so every out[i] holds exactly the value the
// caller's own ScanColumn would have produced.
//
// Phase attribution under coalescing (RequestTrace): the block's
// cache_pin / miss_fill / decode_filter time is charged once, to the
// leader (the executing request). A piggybacked unit's span carries
// coalesced = true, its wait until the batch served it as queue_ns, and
// only its own scatter as scatter_ns — never a duplicated decode — so
// per-phase sums still explain each request's latency.
//
// Deadlines: a unit whose deadline has passed when the executor runs is
// completed with DeadlineExceeded without touching the block (an
// expired unit is dropped from the merge and never reaches decode).
//
// Thread safety: Submit*/RunBatch are called concurrently from request
// threads and pool workers. A batch executor never waits on another
// batch, so batches cannot deadlock each other. Executors are
// interchangeable: each RunBatch call closes and executes the oldest
// pending batch for its key, and exactly one executor is enqueued per
// batch created, so every batch is executed exactly once.
//
// Lifetimes: a unit's borrowed storage (rows span, output pointers,
// span, status) belongs to its waiting request and is only touched
// before the unit's done() fires. The reader behind a key is only
// dereferenced while the batch holds live units, whose requests are
// still blocked on them — so an executor running after "its" units were
// served by an earlier executor never touches a dead reader.

#ifndef CORRA_SERVE_COALESCER_H_
#define CORRA_SERVE_COALESCER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/table_reader.h"

namespace corra::serve {

/// "index:scheme" comma-joined for `columns` of one block — the trace's
/// per-block kernel annotation. Schemes are per block (auto-selection
/// can differ block to block), so this runs against the pinned block.
std::string SchemesAnnotation(const Block& block,
                              std::span<const size_t> columns);

/// One gather request's share of one block: materialize `columns` at
/// the block-local sorted positions `rows` into `outs` (one output
/// pointer per column, each with room for rows.size() values).
struct GatherUnit {
  std::vector<size_t> columns;
  std::span<const uint32_t> rows;  // Sorted non-decreasing, block-local.
  std::vector<int64_t*> outs;      // Parallel to columns.
  uint64_t enqueue_ns = 0;         // For queue-wait attribution.
  uint64_t deadline_ns = 0;        // Absolute MonotonicNs; 0 = none.
  Status* status = nullptr;
  obs::BlockSpan* span = nullptr;  // Null when tracing is off.
  std::function<void()> done;      // Fired exactly once, last.
};

/// One scan request's share of one block: arbitrary decode work against
/// the pinned block (predicate + projection + aggregate). Scans cannot
/// merge their decode (each carries its own predicate), but they share
/// the batch's single pin.
struct ScanUnit {
  std::function<void(const Block&)> run;
  uint64_t enqueue_ns = 0;
  uint64_t deadline_ns = 0;
  Status* status = nullptr;
  obs::BlockSpan* span = nullptr;
  std::function<void()> done;
};

class Coalescer {
 public:
  /// Registry series the coalescer reports into (resolved by the
  /// owning service; never null).
  struct Counters {
    obs::Counter* batches = nullptr;     // Batches executed with 2+ live units.
    obs::Counter* coalesced = nullptr;   // Units served by piggybacking.
  };

  Coalescer(bool enabled, Counters counters)
      : enabled_(enabled), counters_(counters) {}
  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  /// Files `unit` under (reader, block). Returns true when the caller
  /// must enqueue one executor task (RunBatch for the same key) — the
  /// unit opened a new batch; false when it piggybacked onto a batch
  /// whose executor is already pending. With coalescing disabled every
  /// unit opens its own batch.
  bool SubmitGather(const TableReader& reader, size_t block,
                    GatherUnit unit);
  bool SubmitScan(const TableReader& reader, size_t block, ScanUnit unit);

  /// Pool-task body: closes the oldest pending batch for (reader,
  /// block) and executes it. `reader` is only dereferenced if the batch
  /// holds units that have not expired.
  void RunBatch(const TableReader* reader, size_t block);

 private:
  struct Batch {
    std::vector<GatherUnit> gathers;
    std::vector<ScanUnit> scans;
    bool first_is_scan = false;  // Which vector holds the first unit.
  };
  struct Key {
    const TableReader* reader = nullptr;
    size_t block = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return BlockKeyHash{}(BlockKey{
          reinterpret_cast<uint64_t>(key.reader), key.block});
    }
  };

  // Appends to the open batch (true) or opens a new one (false).
  // Returns whether the caller owns enqueueing the executor.
  template <typename Unit>
  bool Submit(const Key& key, Unit unit, std::vector<Unit> Batch::*member,
              bool is_scan);

  void ExecuteBatch(const TableReader* reader, size_t block, Batch batch);

  const bool enabled_;
  Counters counters_;
  Mutex mu_;
  // Per key: pending batches oldest-first. With coalescing enabled the
  // deque never exceeds one batch (a new batch is only opened when the
  // deque is empty); disabled, every unit is its own batch.
  std::unordered_map<Key, std::deque<Batch>, KeyHash> pending_
      CORRA_GUARDED_BY(mu_);
};

}  // namespace corra::serve

#endif  // CORRA_SERVE_COALESCER_H_
