#include "serve/scan_service.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "encoding/scheme.h"
#include "query/aggregate.h"
#include "query/filter.h"
#include "query/scan.h"
#include "query/table_scan.h"

namespace corra::serve {

namespace {

// Partial results of one block's share of a request; merged in block
// order after the pool drains.
struct BlockPartial {
  Status status;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  std::vector<uint64_t> positions;
  std::vector<std::vector<int64_t>> columns;
  uint64_t agg_sum = 0;  // Wrap-around, like query::SumColumn.
  std::optional<int64_t> agg_min;
  std::optional<int64_t> agg_max;
};

Status ValidateColumns(const TableReader& reader,
                       const ScanRequest& request) {
  const size_t fields = reader.schema().num_fields();
  if (request.filter_column && *request.filter_column >= fields) {
    return Status::InvalidArgument("filter column out of range");
  }
  for (size_t col : request.project_columns) {
    if (col >= fields) {
      return Status::InvalidArgument("projected column out of range");
    }
  }
  if (request.aggregate && request.aggregate_column >= fields) {
    return Status::InvalidArgument("aggregate column out of range");
  }
  return Status::OK();
}

void FoldAggregate(AggregateOp op, std::span<const int64_t> values,
                   BlockPartial* out) {
  for (int64_t v : values) {
    switch (op) {
      case AggregateOp::kSum:
        out->agg_sum += static_cast<uint64_t>(v);
        break;
      case AggregateOp::kMin:
        out->agg_min = out->agg_min ? std::min(*out->agg_min, v) : v;
        break;
      case AggregateOp::kMax:
        out->agg_max = out->agg_max ? std::max(*out->agg_max, v) : v;
        break;
    }
  }
}

// Executes `request` against one pinned block. `base` is the global
// position of the block's first row.
void ScanOneBlock(const Block& block, uint64_t base,
                  const ScanRequest& request, BlockPartial* out) {
  out->rows_scanned = block.rows();

  // Selection: predicate pushdown, or the whole block.
  std::vector<uint32_t> selection;
  const bool all_rows = !request.filter_column.has_value();
  if (!all_rows) {
    selection = query::FilterToSelection(
        block.column(*request.filter_column), request.filter_lo,
        request.filter_hi);
    out->rows_matched = selection.size();
  } else {
    out->rows_matched = block.rows();
  }

  if (request.return_positions) {
    if (all_rows) {
      out->positions.resize(block.rows());
      std::iota(out->positions.begin(), out->positions.end(), base);
    } else {
      out->positions.reserve(selection.size());
      for (uint32_t row : selection) {
        out->positions.push_back(base + row);
      }
    }
  }

  out->columns.reserve(request.project_columns.size());
  for (size_t col : request.project_columns) {
    if (all_rows) {
      // Whole-block morsel decode through the ranged kernel — no
      // position vector is materialized for a dense scan.
      std::vector<int64_t> values(block.rows());
      query::ScanColumnRange(block, col, 0, block.rows(), values.data());
      out->columns.push_back(std::move(values));
    } else {
      out->columns.push_back(query::ScanColumn(block, col, selection));
    }
  }

  if (request.aggregate) {
    const size_t col = request.aggregate_column;
    if (all_rows) {
      // Whole-block aggregates run in the compressed domain.
      switch (*request.aggregate) {
        case AggregateOp::kSum:
          out->agg_sum =
              static_cast<uint64_t>(query::SumColumn(block.column(col)));
          break;
        case AggregateOp::kMin:
          out->agg_min = query::MinColumn(block.column(col));
          break;
        case AggregateOp::kMax:
          out->agg_max = query::MaxColumn(block.column(col));
          break;
      }
    } else {
      // Reuse the projection's decode when the aggregate column was
      // already materialized for this selection.
      const auto projected = std::find(request.project_columns.begin(),
                                       request.project_columns.end(), col);
      if (projected != request.project_columns.end()) {
        FoldAggregate(
            *request.aggregate,
            out->columns[static_cast<size_t>(
                projected - request.project_columns.begin())],
            out);
      } else {
        const std::vector<int64_t> values =
            query::ScanColumn(block, col, selection);
        FoldAggregate(*request.aggregate, values, out);
      }
    }
  }
}

// The distinct columns a request touches, in first-use order (filter,
// then projections, then the aggregate) — the trace's per-block scheme
// annotation covers exactly these.
std::vector<size_t> TouchedColumns(const ScanRequest& request) {
  std::vector<size_t> cols;
  auto add = [&cols](size_t col) {
    if (std::find(cols.begin(), cols.end(), col) == cols.end()) {
      cols.push_back(col);
    }
  };
  if (request.filter_column) {
    add(*request.filter_column);
  }
  for (size_t col : request.project_columns) {
    add(col);
  }
  if (request.aggregate) {
    add(request.aggregate_column);
  }
  return cols;
}

// "index:scheme" comma-joined for the touched columns of one block.
// Schemes are per block (auto-selection can differ block to block), so
// this runs inside the block task, against the pinned block.
std::string SchemesAnnotation(const Block& block,
                              std::span<const size_t> columns) {
  std::string out;
  for (size_t col : columns) {
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(col);
    out += ':';
    out += enc::SchemeToString(block.column(col).scheme());
  }
  return out;
}

}  // namespace

ScanService::ScanService() : ScanService(Options{}) {}

ScanService::ScanService(Options options)
    : slow_trace_ns_(options.slow_trace_ns),
      slow_traces_(options.slow_trace_capacity) {
  obs::Registry& reg =
      options.registry != nullptr ? *options.registry : obs::Registry::Default();
  metrics_.requests = &reg.counter("serve.requests");
  metrics_.gather_requests = &reg.counter("serve.gather_requests");
  metrics_.rows_scanned = &reg.counter("serve.rows_scanned");
  metrics_.rows_matched = &reg.counter("serve.rows_matched");
  metrics_.gather_rows = &reg.counter("serve.gather_rows");
  metrics_.blocks_pruned = &reg.counter("serve.blocks_pruned");
  metrics_.latency_us =
      &reg.histogram("serve.request_latency_us", obs::LatencyBucketBoundsUs());
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    std::string name = "serve.phase_us{phase=\"";
    name += obs::PhaseName(static_cast<obs::Phase>(p));
    name += "\"}";
    metrics_.phase_us[p] =
        &reg.histogram(name, obs::LatencyBucketBoundsUs());
  }
  workers_.reserve(options.num_threads);
  for (size_t t = 0; t < options.num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ScanService::FinishRequest(obs::RequestTrace trace, uint64_t start_ns,
                                obs::RequestTrace* sink) {
  trace.total_ns = obs::MonotonicNs() - start_ns;
  metrics_.latency_us->Record(trace.total_ns / 1000);
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    metrics_.phase_us[p]->Record(trace.phase_ns[p] / 1000);
  }
  metrics_.rows_scanned->Add(trace.rows_scanned);
  metrics_.rows_matched->Add(trace.rows_matched);
  uint64_t pruned = 0;
  for (const obs::BlockSpan& span : trace.blocks) {
    pruned += span.pruned ? 1 : 0;
  }
  metrics_.blocks_pruned->Add(pruned);
  if (trace.total_ns >= slow_trace_ns_) {
    if (sink != nullptr) {
      slow_traces_.Push(trace);  // The caller keeps the original.
    } else {
      slow_traces_.Push(std::move(trace));
      return;
    }
  }
  if (sink != nullptr) {
    *sink = std::move(trace);
  }
}

ScanService::~ScanService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ScanService::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stop_ set and queue drained.
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ScanService::RunTasks(std::vector<std::function<void()>> tasks) {
  if (workers_.empty()) {
    for (auto& task : tasks) {
      task();
    }
    return;
  }
  // Count down completions on a shared latch; the request thread blocks
  // until its own tasks (and only those) are done.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& task : tasks) {
      tasks_.push_back([task = std::move(task), latch] {
        task();
        std::lock_guard<std::mutex> task_lock(latch->mu);
        if (--latch->remaining == 0) {
          latch->cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

Result<ScanResult> ScanService::Execute(const TableReader& reader,
                                        const ScanRequest& request) {
  CORRA_RETURN_NOT_OK(ValidateColumns(reader, request));
  const size_t num_blocks = reader.num_blocks();
  std::vector<BlockPartial> partials(num_blocks);

  // All telemetry below keys off this one gate: with observability off
  // the request takes zero clock reads and allocates no spans.
  const bool tracing = obs::Enabled();
  const bool pooled = !workers_.empty();
  const uint64_t t_start = tracing ? obs::MonotonicNs() : 0;
  obs::RequestTrace trace;
  trace.op = "execute";
  std::vector<obs::BlockSpan> spans;
  std::vector<size_t> touched;
  if (tracing) {
    spans.resize(num_blocks);
    touched = TouchedColumns(request);
  }

  // Stats pruning: a filtered request skips every block whose persisted
  // [min, max] cannot intersect the predicate — the block is never
  // fetched or decoded. Results are identical to the unpruned scan
  // because a disjoint range admits no matching row.
  const FileInfo& info = reader.info();
  const bool can_prune =
      request.filter_column.has_value() && info.has_column_stats;
  uint64_t blocks_skipped = 0;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_blocks);
  // Queue wait is measured from request start: the build loop ahead of
  // the actual enqueue is pointer pushes and stats compares, so pickup
  // minus this is (attributed) time the task spent waiting on the pool.
  const uint64_t t_enqueue = t_start;
  for (size_t b = 0; b < num_blocks; ++b) {
    if (can_prune) {
      const ColumnStats& stats = info.Stats(b, *request.filter_column);
      if (request.filter_lo > stats.max || request.filter_hi < stats.min) {
        partials[b].rows_scanned = reader.block_rows(b);
        ++blocks_skipped;
        if (tracing) {
          spans[b].block = static_cast<uint32_t>(b);
          spans[b].rows = reader.block_rows(b);
          spans[b].pruned = true;
        }
        continue;
      }
    }
    obs::BlockSpan* span = tracing ? &spans[b] : nullptr;
    tasks.push_back([&reader, &request, &touched, b, pooled, t_enqueue,
                     partial = &partials[b], span] {
      const uint64_t t_task = span != nullptr ? obs::MonotonicNs() : 0;
      BlockFetchStats fetch;
      auto handle = reader.GetBlock(b, span != nullptr ? &fetch : nullptr);
      if (!handle.ok()) {
        partial->status = handle.status();
        return;
      }
      const uint64_t t_pinned = span != nullptr ? obs::MonotonicNs() : 0;
      ScanOneBlock(*handle.value(), reader.block_row_offsets()[b],
                   request, partial);
      if (span != nullptr) {
        const uint64_t t_done = obs::MonotonicNs();
        span->block = static_cast<uint32_t>(b);
        span->rows = partial->rows_scanned;
        span->cache_hit = !fetch.miss;
        // Inline execution has no queue: the task runs the instant it
        // would have been enqueued.
        span->queue_ns = pooled ? t_task - t_enqueue : 0;
        span->fill_ns = fetch.fill_ns;
        const uint64_t pin_total = t_pinned - t_task;
        span->pin_ns = pin_total > fetch.fill_ns ? pin_total - fetch.fill_ns : 0;
        span->decode_ns = t_done - t_pinned;
        span->schemes = SchemesAnnotation(*handle.value(), touched);
      }
    });
  }
  const uint64_t t_built = tracing ? obs::MonotonicNs() : 0;
  RunTasks(std::move(tasks));
  const uint64_t t_merge = tracing ? obs::MonotonicNs() : 0;

  // Merge in block order.
  ScanResult result;
  result.blocks_skipped = blocks_skipped;
  result.columns.resize(request.project_columns.size());
  uint64_t agg_sum = 0;
  for (BlockPartial& partial : partials) {
    CORRA_RETURN_NOT_OK(partial.status);
    result.rows_scanned += partial.rows_scanned;
    result.rows_matched += partial.rows_matched;
    result.positions.insert(result.positions.end(),
                            partial.positions.begin(),
                            partial.positions.end());
    // Stats-pruned blocks carry no column vectors at all.
    for (size_t c = 0; c < partial.columns.size(); ++c) {
      result.columns[c].insert(result.columns[c].end(),
                               partial.columns[c].begin(),
                               partial.columns[c].end());
    }
    agg_sum += partial.agg_sum;
    if (partial.agg_min) {
      result.agg_min = result.agg_min
                           ? std::min(*result.agg_min, *partial.agg_min)
                           : partial.agg_min;
    }
    if (partial.agg_max) {
      result.agg_max = result.agg_max
                           ? std::max(*result.agg_max, *partial.agg_max)
                           : partial.agg_max;
    }
  }
  result.agg_sum = static_cast<int64_t>(agg_sum);

  if (tracing) {
    trace.rows_scanned = result.rows_scanned;
    trace.rows_matched = result.rows_matched;
    auto phase = [&trace](obs::Phase p) -> uint64_t& {
      return trace.phase_ns[static_cast<size_t>(p)];
    };
    phase(obs::Phase::kBlockPrune) = t_built - t_start;
    phase(obs::Phase::kMerge) = obs::MonotonicNs() - t_merge;
    for (const obs::BlockSpan& span : spans) {
      phase(obs::Phase::kQueueWait) += span.queue_ns;
      phase(obs::Phase::kCachePin) += span.pin_ns;
      phase(obs::Phase::kMissFill) += span.fill_ns;
      phase(obs::Phase::kDecodeFilter) += span.decode_ns;
    }
    trace.blocks = std::move(spans);
    metrics_.requests->Increment();
    FinishRequest(std::move(trace), t_start,
                  request.collect_trace ? &result.trace.emplace() : nullptr);
  }
  return result;
}

Result<std::vector<std::vector<int64_t>>> ScanService::Gather(
    const TableReader& reader, std::span<const size_t> columns,
    std::span<const uint64_t> rows, obs::RequestTrace* trace_out) {
  const size_t fields = reader.schema().num_fields();
  for (size_t col : columns) {
    if (col >= fields) {
      return Status::InvalidArgument("gathered column out of range");
    }
  }

  const bool tracing = obs::Enabled();
  const bool pooled = !workers_.empty();
  const uint64_t t_start = tracing ? obs::MonotonicNs() : 0;

  CORRA_ASSIGN_OR_RETURN(
      auto slices,
      query::SplitSelectionByBlocks(reader.block_row_offsets(), rows));

  std::vector<std::vector<int64_t>> out(columns.size());
  for (auto& column : out) {
    column.resize(rows.size());
  }
  std::vector<Status> statuses(slices.size());
  std::vector<obs::BlockSpan> spans;
  if (tracing) {
    spans.resize(slices.size());
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(slices.size());
  const uint64_t t_enqueue = t_start;
  for (size_t s = 0; s < slices.size(); ++s) {
    obs::BlockSpan* span = tracing ? &spans[s] : nullptr;
    tasks.push_back([&reader, &columns, &out, pooled, t_enqueue,
                     slice = &slices[s], status = &statuses[s], span] {
      const uint64_t t_task = span != nullptr ? obs::MonotonicNs() : 0;
      BlockFetchStats fetch;
      auto handle =
          reader.GetBlock(slice->block, span != nullptr ? &fetch : nullptr);
      if (!handle.ok()) {
        *status = handle.status();
        return;
      }
      const uint64_t t_pinned = span != nullptr ? obs::MonotonicNs() : 0;
      for (size_t c = 0; c < columns.size(); ++c) {
        query::ScanColumn(*handle.value(), columns[c], slice->local_rows,
                          out[c].data() + slice->out_offset);
      }
      if (span != nullptr) {
        const uint64_t t_done = obs::MonotonicNs();
        span->block = static_cast<uint32_t>(slice->block);
        span->rows = slice->local_rows.size();
        span->cache_hit = !fetch.miss;
        span->queue_ns = pooled ? t_task - t_enqueue : 0;
        span->fill_ns = fetch.fill_ns;
        const uint64_t pin_total = t_pinned - t_task;
        span->pin_ns = pin_total > fetch.fill_ns ? pin_total - fetch.fill_ns : 0;
        span->decode_ns = t_done - t_pinned;
        span->schemes = SchemesAnnotation(*handle.value(), columns);
      }
    });
  }
  RunTasks(std::move(tasks));

  for (const Status& status : statuses) {
    CORRA_RETURN_NOT_OK(status);
  }

  if (tracing) {
    obs::RequestTrace trace;
    trace.op = "gather";
    trace.rows_scanned = rows.size();
    trace.rows_matched = rows.size();
    for (const obs::BlockSpan& span : spans) {
      trace.phase_ns[static_cast<size_t>(obs::Phase::kQueueWait)] +=
          span.queue_ns;
      trace.phase_ns[static_cast<size_t>(obs::Phase::kCachePin)] +=
          span.pin_ns;
      trace.phase_ns[static_cast<size_t>(obs::Phase::kMissFill)] +=
          span.fill_ns;
      trace.phase_ns[static_cast<size_t>(obs::Phase::kDecodeFilter)] +=
          span.decode_ns;
    }
    trace.blocks = std::move(spans);
    metrics_.gather_requests->Increment();
    metrics_.gather_rows->Add(rows.size());
    FinishRequest(std::move(trace), t_start, trace_out);
  }
  return out;
}

}  // namespace corra::serve
