#include "serve/scan_service.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "query/aggregate.h"
#include "query/filter.h"
#include "query/scan.h"
#include "query/table_scan.h"

namespace corra::serve {

namespace {

// Partial results of one block's share of a request; merged in block
// order after the pool drains.
struct BlockPartial {
  Status status;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  std::vector<uint64_t> positions;
  std::vector<std::vector<int64_t>> columns;
  uint64_t agg_sum = 0;  // Wrap-around, like query::SumColumn.
  std::optional<int64_t> agg_min;
  std::optional<int64_t> agg_max;
};

// Counts down one slot per block unit; the request thread blocks until
// every one of its units is done — possibly served by another request's
// batch executor (see Coalescer).
struct Completion {
  Mutex mu;
  CondVar cv;
  size_t remaining CORRA_GUARDED_BY(mu);
  explicit Completion(size_t n) : remaining(n) {}
  void Done() {
    MutexLock lock(mu);
    if (--remaining == 0) {
      cv.NotifyAll();
    }
  }
  void Wait() {
    MutexLock lock(mu);
    while (remaining != 0) {
      cv.Wait(mu);
    }
  }
};

Status ValidateColumns(const TableReader& reader,
                       const ScanRequest& request) {
  const size_t fields = reader.schema().num_fields();
  if (request.filter_column && *request.filter_column >= fields) {
    return Status::InvalidArgument("filter column out of range");
  }
  for (size_t col : request.project_columns) {
    if (col >= fields) {
      return Status::InvalidArgument("projected column out of range");
    }
  }
  if (request.aggregate && request.aggregate_column >= fields) {
    return Status::InvalidArgument("aggregate column out of range");
  }
  return Status::OK();
}

void FoldAggregate(AggregateOp op, std::span<const int64_t> values,
                   BlockPartial* out) {
  for (int64_t v : values) {
    switch (op) {
      case AggregateOp::kSum:
        out->agg_sum += static_cast<uint64_t>(v);
        break;
      case AggregateOp::kMin:
        out->agg_min = out->agg_min ? std::min(*out->agg_min, v) : v;
        break;
      case AggregateOp::kMax:
        out->agg_max = out->agg_max ? std::max(*out->agg_max, v) : v;
        break;
    }
  }
}

// Executes `request` against one pinned block. `base` is the global
// position of the block's first row.
void ScanOneBlock(const Block& block, uint64_t base,
                  const ScanRequest& request, BlockPartial* out) {
  out->rows_scanned = block.rows();

  // Selection: predicate pushdown, or the whole block.
  std::vector<uint32_t> selection;
  const bool all_rows = !request.filter_column.has_value();
  if (!all_rows) {
    selection = query::FilterToSelection(
        block.column(*request.filter_column), request.filter_lo,
        request.filter_hi);
    out->rows_matched = selection.size();
  } else {
    out->rows_matched = block.rows();
  }

  if (request.return_positions) {
    if (all_rows) {
      out->positions.resize(block.rows());
      std::iota(out->positions.begin(), out->positions.end(), base);
    } else {
      out->positions.reserve(selection.size());
      for (uint32_t row : selection) {
        out->positions.push_back(base + row);
      }
    }
  }

  out->columns.reserve(request.project_columns.size());
  for (size_t col : request.project_columns) {
    if (all_rows) {
      // Whole-block morsel decode through the ranged kernel — no
      // position vector is materialized for a dense scan.
      std::vector<int64_t> values(block.rows());
      query::ScanColumnRange(block, col, 0, block.rows(), values.data());
      out->columns.push_back(std::move(values));
    } else {
      out->columns.push_back(query::ScanColumn(block, col, selection));
    }
  }

  if (request.aggregate) {
    const size_t col = request.aggregate_column;
    if (all_rows) {
      // Whole-block aggregates run in the compressed domain.
      switch (*request.aggregate) {
        case AggregateOp::kSum:
          out->agg_sum =
              static_cast<uint64_t>(query::SumColumn(block.column(col)));
          break;
        case AggregateOp::kMin:
          out->agg_min = query::MinColumn(block.column(col));
          break;
        case AggregateOp::kMax:
          out->agg_max = query::MaxColumn(block.column(col));
          break;
      }
    } else {
      // Reuse the projection's decode when the aggregate column was
      // already materialized for this selection.
      const auto projected = std::find(request.project_columns.begin(),
                                       request.project_columns.end(), col);
      if (projected != request.project_columns.end()) {
        FoldAggregate(
            *request.aggregate,
            out->columns[static_cast<size_t>(
                projected - request.project_columns.begin())],
            out);
      } else {
        const std::vector<int64_t> values =
            query::ScanColumn(block, col, selection);
        FoldAggregate(*request.aggregate, values, out);
      }
    }
  }
}

// The distinct columns a request touches, in first-use order (filter,
// then projections, then the aggregate) — the trace's per-block scheme
// annotation covers exactly these.
std::vector<size_t> TouchedColumns(const ScanRequest& request) {
  std::vector<size_t> cols;
  auto add = [&cols](size_t col) {
    if (std::find(cols.begin(), cols.end(), col) == cols.end()) {
      cols.push_back(col);
    }
  };
  if (request.filter_column) {
    add(*request.filter_column);
  }
  for (size_t col : request.project_columns) {
    add(col);
  }
  if (request.aggregate) {
    add(request.aggregate_column);
  }
  return cols;
}

// First non-OK status across a request's block units, if any.
Status FirstError(std::span<const Status> statuses) {
  for (const Status& status : statuses) {
    if (!status.ok()) {
      return status;
    }
  }
  return Status::OK();
}

}  // namespace

ScanService::ScanService() : ScanService(Options{}) {}

ScanService::ScanService(Options options)
    : slow_trace_ns_(options.slow_trace_ns),
      slow_traces_(options.slow_trace_capacity),
      max_inflight_(options.max_inflight_requests) {
  obs::Registry& reg =
      options.registry != nullptr ? *options.registry : obs::Registry::Default();
  metrics_.requests = &reg.counter("serve.requests");
  metrics_.gather_requests = &reg.counter("serve.gather_requests");
  metrics_.rows_scanned = &reg.counter("serve.rows_scanned");
  metrics_.rows_matched = &reg.counter("serve.rows_matched");
  metrics_.gather_rows = &reg.counter("serve.gather_rows");
  metrics_.blocks_pruned = &reg.counter("serve.blocks_pruned");
  metrics_.rejected = &reg.counter("serve.rejected");
  metrics_.deadline_missed = &reg.counter("serve.deadline_missed");
  metrics_.partial_results = &reg.counter("serve.partial_results");
  metrics_.coalesced_requests = &reg.counter("serve.coalesced_requests");
  metrics_.coalesced_batches = &reg.counter("serve.coalesced_batches");
  metrics_.prefetch_issued = &reg.counter("serve.prefetch_issued");
  metrics_.prefetch_skipped = &reg.counter("serve.prefetch_skipped");
  metrics_.queue_depth = &reg.gauge("serve.queue_depth");
  metrics_.inflight = &reg.gauge("serve.inflight_requests");
  metrics_.latency_us =
      &reg.histogram("serve.request_latency_us", obs::LatencyBucketBoundsUs());
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    std::string name = "serve.phase_us{phase=\"";
    name += obs::PhaseName(static_cast<obs::Phase>(p));
    name += "\"}";
    metrics_.phase_us[p] =
        &reg.histogram(name, obs::LatencyBucketBoundsUs());
  }
  coalescer_ = std::make_unique<Coalescer>(
      options.coalescing,
      Coalescer::Counters{metrics_.coalesced_batches,
                          metrics_.coalesced_requests});
  workers_.reserve(options.num_threads);
  for (size_t t = 0; t < options.num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (!workers_.empty() && options.read_ahead) {
    read_ahead_ = std::make_unique<ReadAhead>(ReadAhead::Counters{
        metrics_.prefetch_issued, metrics_.prefetch_skipped});
  }
}

void ScanService::FinishRequest(obs::RequestTrace trace, uint64_t start_ns,
                                obs::RequestTrace* sink) {
  trace.total_ns = obs::MonotonicNs() - start_ns;
  metrics_.latency_us->Record(trace.total_ns / 1000);
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    metrics_.phase_us[p]->Record(trace.phase_ns[p] / 1000);
  }
  metrics_.rows_scanned->Add(trace.rows_scanned);
  metrics_.rows_matched->Add(trace.rows_matched);
  uint64_t pruned = 0;
  for (const obs::BlockSpan& span : trace.blocks) {
    pruned += span.pruned ? 1 : 0;
  }
  metrics_.blocks_pruned->Add(pruned);
  if (trace.total_ns >= slow_trace_ns_) {
    if (sink != nullptr) {
      slow_traces_.Push(trace);  // The caller keeps the original.
    } else {
      slow_traces_.Push(std::move(trace));
      return;
    }
  }
  if (sink != nullptr) {
    *sink = std::move(trace);
  }
}

Status ScanService::Admit(uint64_t deadline_ns) {
  if (deadline_ns != 0 && obs::MonotonicNs() > deadline_ns) {
    metrics_.deadline_missed->Increment();
    return Status::DeadlineExceeded("deadline expired before admission");
  }
  const size_t prior = inflight_.fetch_add(1, std::memory_order_relaxed);
  if (max_inflight_ != 0 && prior >= max_inflight_) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    metrics_.rejected->Increment();
    return Status::ResourceExhausted("scan service over max in-flight requests");
  }
  metrics_.inflight->Add(1);
  return Status::OK();
}

void ScanService::ReleaseSlot() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  metrics_.inflight->Sub(1);
}

ScanService::~ScanService() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ScanService::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) {
        cv_.Wait(mu_);
      }
      if (tasks_.empty()) {
        return;  // stop_ set and queue drained.
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    metrics_.queue_depth->Sub(1);
    task();
  }
}

void ScanService::EnqueueTask(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  metrics_.queue_depth->Add(1);
  cv_.NotifyOne();
}

Result<ScanResult> ScanService::Execute(const TableReader& reader,
                                        const ScanRequest& request) {
  CORRA_RETURN_NOT_OK(ValidateColumns(reader, request));
  CORRA_RETURN_NOT_OK(Admit(request.deadline_ns));
  struct Slot {
    ScanService* service;
    ~Slot() { service->ReleaseSlot(); }
  } slot{this};

  const size_t num_blocks = reader.num_blocks();
  std::vector<BlockPartial> partials(num_blocks);

  // All telemetry below keys off this one gate: with observability off
  // the request takes zero clock reads and allocates no spans.
  const bool tracing = obs::Enabled();
  const bool pooled = !workers_.empty();
  const uint64_t t_start = tracing ? obs::MonotonicNs() : 0;
  obs::RequestTrace trace;
  trace.op = "execute";
  std::vector<obs::BlockSpan> spans;
  std::vector<size_t> touched;
  if (tracing) {
    spans.resize(num_blocks);
    touched = TouchedColumns(request);
  }

  // Stats pruning: a filtered request skips every block whose persisted
  // [min, max] cannot intersect the predicate — the block is never
  // fetched or decoded. Results are identical to the unpruned scan
  // because a disjoint range admits no matching row.
  const FileInfo& info = reader.info();
  const bool can_prune =
      request.filter_column.has_value() && info.has_column_stats;
  uint64_t blocks_skipped = 0;
  std::vector<size_t> runnable;
  runnable.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    if (can_prune) {
      const ColumnStats& stats = info.Stats(b, *request.filter_column);
      if (request.filter_lo > stats.max || request.filter_hi < stats.min) {
        partials[b].rows_scanned = reader.block_rows(b);
        ++blocks_skipped;
        if (tracing) {
          spans[b].block = static_cast<uint32_t>(b);
          spans[b].rows = reader.block_rows(b);
          spans[b].pruned = true;
        }
        continue;
      }
    }
    runnable.push_back(b);
  }
  const uint64_t t_built = tracing ? obs::MonotonicNs() : 0;

  if (!pooled) {
    // Inline execution on the calling thread: no queue, no coalescing,
    // no read-ahead — the front door only exists for pooled services.
    // The deadline is still honored between blocks.
    for (size_t b : runnable) {
      if (request.deadline_ns != 0 &&
          obs::MonotonicNs() > request.deadline_ns) {
        partials[b].status =
            Status::DeadlineExceeded("deadline expired during scan");
        break;
      }
      obs::BlockSpan* span = tracing ? &spans[b] : nullptr;
      const uint64_t t_task = tracing ? obs::MonotonicNs() : 0;
      BlockFetchStats fetch;
      auto handle = reader.GetBlock(b, span != nullptr ? &fetch : nullptr);
      if (!handle.ok()) {
        partials[b].status = handle.status();
        continue;
      }
      const uint64_t t_pinned = tracing ? obs::MonotonicNs() : 0;
      ScanOneBlock(*handle.value(), reader.block_row_offsets()[b], request,
                   &partials[b]);
      if (span != nullptr) {
        const uint64_t t_done = obs::MonotonicNs();
        span->block = static_cast<uint32_t>(b);
        span->rows = partials[b].rows_scanned;
        span->cache_hit = !fetch.miss;
        span->retried = fetch.retries > 0;
        span->queue_ns = 0;
        span->fill_ns = fetch.fill_ns;
        const uint64_t pin_total = t_pinned - t_task;
        span->pin_ns = pin_total > fetch.fill_ns ? pin_total - fetch.fill_ns : 0;
        span->decode_ns = t_done - t_pinned;
        span->schemes = SchemesAnnotation(*handle.value(), touched);
      }
    }
  } else {
    // Pooled: every runnable block becomes one coalescer unit. Blocks
    // this request leads get one executor task each; blocks another
    // in-flight request already opened a batch for are served off that
    // request's pin for free.
    std::unique_ptr<ReadAhead::Session> session;
    if (read_ahead_ != nullptr && runnable.size() > 1) {
      session = read_ahead_->Start(reader, runnable);
    }
    auto completion = std::make_shared<Completion>(runnable.size());
    for (size_t b : runnable) {
      obs::BlockSpan* span = tracing ? &spans[b] : nullptr;
      if (span != nullptr) {
        // Identify the span even when the unit finishes without work
        // (expired deadline or a failed pin never reaches the
        // coalescer's charge path, which is what sets it otherwise).
        span->block = static_cast<uint32_t>(b);
      }
      ScanUnit unit;
      unit.enqueue_ns = t_start;
      unit.deadline_ns = request.deadline_ns;
      unit.status = &partials[b].status;
      unit.span = span;
      unit.done = [completion] { completion->Done(); };
      unit.run = [&reader, &request, &touched, b, partial = &partials[b],
                  span](const Block& block) {
        ScanOneBlock(block, reader.block_row_offsets()[b], request, partial);
        if (span != nullptr) {
          span->rows = partial->rows_scanned;
          span->schemes = SchemesAnnotation(block, touched);
        }
      };
      if (coalescer_->SubmitScan(reader, b, std::move(unit))) {
        EnqueueTask([this, reader_ptr = &reader, b] {
          coalescer_->RunBatch(reader_ptr, b);
        });
      }
    }
    completion->Wait();
  }
  const uint64_t t_merge = tracing ? obs::MonotonicNs() : 0;

  // With allow_partial, per-block failures degrade the result instead
  // of failing it: the block's original status lands on failed_blocks
  // and the merge skips it. DeadlineExceeded is never downgraded.
  Status first_error;
  std::vector<ScanResult::BlockError> failed_blocks;
  for (size_t b = 0; b < partials.size(); ++b) {
    const Status& status = partials[b].status;
    if (status.ok()) {
      continue;
    }
    if (status.IsDeadlineExceeded() || !request.allow_partial) {
      first_error = status;
      break;
    }
    failed_blocks.push_back({static_cast<uint64_t>(b), status});
  }
  if (!first_error.ok()) {
    if (first_error.IsDeadlineExceeded()) {
      metrics_.deadline_missed->Increment();
    }
    return first_error;
  }

  // Merge in block order.
  ScanResult result;
  result.blocks_skipped = blocks_skipped;
  result.columns.resize(request.project_columns.size());
  uint64_t agg_sum = 0;
  for (BlockPartial& partial : partials) {
    if (!partial.status.ok()) {
      continue;  // Reported on failed_blocks; contributes nothing.
    }
    result.rows_scanned += partial.rows_scanned;
    result.rows_matched += partial.rows_matched;
    result.positions.insert(result.positions.end(),
                            partial.positions.begin(),
                            partial.positions.end());
    // Stats-pruned blocks carry no column vectors at all.
    for (size_t c = 0; c < partial.columns.size(); ++c) {
      result.columns[c].insert(result.columns[c].end(),
                               partial.columns[c].begin(),
                               partial.columns[c].end());
    }
    agg_sum += partial.agg_sum;
    if (partial.agg_min) {
      result.agg_min = result.agg_min
                           ? std::min(*result.agg_min, *partial.agg_min)
                           : partial.agg_min;
    }
    if (partial.agg_max) {
      result.agg_max = result.agg_max
                           ? std::max(*result.agg_max, *partial.agg_max)
                           : partial.agg_max;
    }
  }
  result.agg_sum = static_cast<int64_t>(agg_sum);
  result.failed_blocks = std::move(failed_blocks);
  if (!result.failed_blocks.empty()) {
    metrics_.partial_results->Increment();
  }

  if (tracing) {
    trace.rows_scanned = result.rows_scanned;
    trace.rows_matched = result.rows_matched;
    auto phase = [&trace](obs::Phase p) -> uint64_t& {
      return trace.phase_ns[static_cast<size_t>(p)];
    };
    phase(obs::Phase::kBlockPrune) = t_built - t_start;
    phase(obs::Phase::kMerge) = obs::MonotonicNs() - t_merge;
    for (const obs::BlockSpan& span : spans) {
      phase(obs::Phase::kQueueWait) += span.queue_ns;
      phase(obs::Phase::kCachePin) += span.pin_ns;
      phase(obs::Phase::kMissFill) += span.fill_ns;
      phase(obs::Phase::kDecodeFilter) += span.decode_ns;
      phase(obs::Phase::kScatter) += span.scatter_ns;
    }
    trace.blocks = std::move(spans);
    metrics_.requests->Increment();
    FinishRequest(std::move(trace), t_start,
                  request.collect_trace ? &result.trace.emplace() : nullptr);
  }
  return result;
}

Result<std::vector<std::vector<int64_t>>> ScanService::Gather(
    const TableReader& reader, std::span<const size_t> columns,
    std::span<const uint64_t> rows, obs::RequestTrace* trace_out) {
  GatherOptions options;
  options.trace = trace_out;
  return Gather(reader, columns, rows, options);
}

Result<std::vector<std::vector<int64_t>>> ScanService::Gather(
    const TableReader& reader, std::span<const size_t> columns,
    std::span<const uint64_t> rows, const GatherOptions& options) {
  const size_t fields = reader.schema().num_fields();
  for (size_t col : columns) {
    if (col >= fields) {
      return Status::InvalidArgument("gathered column out of range");
    }
  }
  CORRA_RETURN_NOT_OK(Admit(options.deadline_ns));
  struct Slot {
    ScanService* service;
    ~Slot() { service->ReleaseSlot(); }
  } slot{this};

  const bool tracing = obs::Enabled();
  const bool pooled = !workers_.empty();
  const uint64_t t_start = tracing ? obs::MonotonicNs() : 0;

  CORRA_ASSIGN_OR_RETURN(
      auto slices,
      query::SplitSelectionByBlocks(reader.block_row_offsets(), rows));

  std::vector<std::vector<int64_t>> out(columns.size());
  for (auto& column : out) {
    column.resize(rows.size());
  }
  std::vector<Status> statuses(slices.size());
  std::vector<obs::BlockSpan> spans;
  if (tracing) {
    spans.resize(slices.size());
  }

  if (!pooled) {
    for (size_t s = 0; s < slices.size(); ++s) {
      if (options.deadline_ns != 0 &&
          obs::MonotonicNs() > options.deadline_ns) {
        statuses[s] = Status::DeadlineExceeded("deadline expired during gather");
        break;
      }
      obs::BlockSpan* span = tracing ? &spans[s] : nullptr;
      const query::SelectionSlice& slice = slices[s];
      const uint64_t t_task = tracing ? obs::MonotonicNs() : 0;
      BlockFetchStats fetch;
      auto handle =
          reader.GetBlock(slice.block, span != nullptr ? &fetch : nullptr);
      if (!handle.ok()) {
        statuses[s] = handle.status();
        continue;
      }
      const uint64_t t_pinned = tracing ? obs::MonotonicNs() : 0;
      for (size_t c = 0; c < columns.size(); ++c) {
        query::ScanColumn(*handle.value(), columns[c], slice.local_rows,
                          out[c].data() + slice.out_offset);
      }
      if (span != nullptr) {
        const uint64_t t_done = obs::MonotonicNs();
        span->block = static_cast<uint32_t>(slice.block);
        span->rows = slice.local_rows.size();
        span->cache_hit = !fetch.miss;
        span->retried = fetch.retries > 0;
        span->queue_ns = 0;
        span->fill_ns = fetch.fill_ns;
        const uint64_t pin_total = t_pinned - t_task;
        span->pin_ns = pin_total > fetch.fill_ns ? pin_total - fetch.fill_ns : 0;
        span->decode_ns = t_done - t_pinned;
        span->schemes = SchemesAnnotation(*handle.value(), columns);
      }
    }
  } else {
    std::unique_ptr<ReadAhead::Session> session;
    if (read_ahead_ != nullptr && slices.size() > 1) {
      std::vector<size_t> blocks;
      blocks.reserve(slices.size());
      for (const query::SelectionSlice& slice : slices) {
        blocks.push_back(slice.block);
      }
      session = read_ahead_->Start(reader, std::move(blocks));
    }
    auto completion = std::make_shared<Completion>(slices.size());
    const std::vector<size_t> cols(columns.begin(), columns.end());
    for (size_t s = 0; s < slices.size(); ++s) {
      const query::SelectionSlice& slice = slices[s];
      GatherUnit unit;
      unit.columns = cols;
      unit.rows = slice.local_rows;
      unit.outs.reserve(cols.size());
      for (size_t c = 0; c < cols.size(); ++c) {
        unit.outs.push_back(out[c].data() + slice.out_offset);
      }
      unit.enqueue_ns = t_start;
      unit.deadline_ns = options.deadline_ns;
      unit.status = &statuses[s];
      unit.span = tracing ? &spans[s] : nullptr;
      unit.done = [completion] { completion->Done(); };
      if (coalescer_->SubmitGather(reader, slice.block, std::move(unit))) {
        EnqueueTask([this, reader_ptr = &reader, block = slice.block] {
          coalescer_->RunBatch(reader_ptr, block);
        });
      }
    }
    completion->Wait();
  }

  const Status first_error = FirstError(statuses);
  if (!first_error.ok()) {
    if (first_error.IsDeadlineExceeded()) {
      metrics_.deadline_missed->Increment();
    }
    return first_error;
  }

  if (tracing) {
    obs::RequestTrace trace;
    trace.op = "gather";
    trace.rows_scanned = rows.size();
    trace.rows_matched = rows.size();
    for (const obs::BlockSpan& span : spans) {
      trace.phase_ns[static_cast<size_t>(obs::Phase::kQueueWait)] +=
          span.queue_ns;
      trace.phase_ns[static_cast<size_t>(obs::Phase::kCachePin)] +=
          span.pin_ns;
      trace.phase_ns[static_cast<size_t>(obs::Phase::kMissFill)] +=
          span.fill_ns;
      trace.phase_ns[static_cast<size_t>(obs::Phase::kDecodeFilter)] +=
          span.decode_ns;
      trace.phase_ns[static_cast<size_t>(obs::Phase::kScatter)] +=
          span.scatter_ns;
    }
    trace.blocks = std::move(spans);
    metrics_.gather_requests->Increment();
    metrics_.gather_rows->Add(rows.size());
    FinishRequest(std::move(trace), t_start, options.trace);
  }
  return out;
}

}  // namespace corra::serve
