// ScanService — concurrent out-of-core query execution over CORF files.
//
// A small shared worker pool executes scan requests block-by-block:
// every block task pins its block through the reader's BlockCache, runs
// the morsel-based query kernels (query::FilterToSelection, ranged
// scans, aggregate pushdown) against the compressed representation, and
// releases the pin. Per-block partial results are merged in block
// order, so the output is byte-identical to materializing the whole
// table and scanning it in memory — without ever holding more than
// cache-capacity blocks resident.
//
// Filtered requests prune first: a block whose persisted min/max range
// (CORF v3 stats, checked against the directory without any payload
// read) cannot intersect the predicate is skipped entirely — it is
// neither fetched nor decoded, and only counts toward rows_scanned /
// blocks_skipped.
//
// One ScanService instance is meant to be shared by many concurrent
// clients (Execute and Gather are thread-safe); all of them draw from
// the same worker pool and, through their readers, the same cache.
// Requests must come from outside the pool: a block task must not
// call back into Execute/Gather, or the pool can deadlock on itself.
//
// The front door (pooled services only; inline execution bypasses it):
//  * Coalescing — concurrent requests whose row sets land in the same
//    block batch into one shared pin and one merged, deduplicated
//    gather per block (src/serve/coalescer.h); results stay
//    byte-identical to independent execution. Disable per service with
//    Options::coalescing = false (the A/B lever the closed-loop bench
//    uses).
//  * Admission control — Options::max_inflight_requests bounds the
//    requests in flight; arrivals past the bound are rejected with
//    ResourceExhausted ("serve.rejected") instead of queueing without
//    bound, and a request whose ScanRequest::deadline_ns has already
//    passed is rejected with DeadlineExceeded ("serve.deadline_missed")
//    before touching any block. Degrade, don't collapse.
//  * Read-ahead — a prefetch thread (src/serve/read_ahead.h) issues the
//    request's block fetches in scan order ahead of the workers, so for
//    sequential scans miss_fill moves off the critical path and workers
//    mostly pin resident blocks.
//
// Telemetry (src/obs/): every request feeds the registry's serving
// histograms (total latency plus per-phase queue wait / cache pin /
// miss fill / decode / merge) and counters, at a cost of a handful of
// clock reads per block — never per row. A request with collect_trace
// set additionally returns the full obs::RequestTrace (per-block scheme
// annotations, pruned/hit flags, span timings) on ScanResult::trace,
// and any request slower than Options::slow_trace_ns is retained in a
// last-N ring (DrainSlowTraces) whether or not it opted in. All of it
// is inert — no clock reads, no traces — when obs::Enabled() is false
// (env CORRA_OBS_OFF, or compiled out).

#ifndef CORRA_SERVE_SCAN_SERVICE_H_
#define CORRA_SERVE_SCAN_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/coalescer.h"
#include "serve/read_ahead.h"
#include "serve/table_reader.h"

namespace corra::serve {

enum class AggregateOp { kSum, kMin, kMax };

/// One scan over one table: an optional range predicate, optional
/// projections, optional positions, optional aggregate — evaluated in a
/// single pass over each block.
struct ScanRequest {
  /// Range predicate filter_lo <= value <= filter_hi on this column;
  /// absent means every row matches.
  std::optional<size_t> filter_column;
  int64_t filter_lo = INT64_MIN;
  int64_t filter_hi = INT64_MAX;

  /// Columns to materialize at the matching rows.
  std::vector<size_t> project_columns;

  /// Also return the global row positions of the matching rows.
  bool return_positions = false;

  /// Aggregate over `aggregate_column` at the matching rows. Without a
  /// filter this uses the compressed-domain pushdown kernels.
  std::optional<AggregateOp> aggregate;
  size_t aggregate_column = 0;

  /// Return the full per-request trace (phase timings + per-block
  /// scheme/rows/pruned annotations) on ScanResult::trace. Ignored —
  /// the trace stays nullopt — when observability is disabled.
  bool collect_trace = false;

  /// Absolute deadline (obs::MonotonicNs clock; 0 = none). A request
  /// whose deadline has already passed is rejected before touching any
  /// block, and one that expires mid-flight stops scanning further
  /// blocks; both return DeadlineExceeded and count toward
  /// "serve.deadline_missed".
  uint64_t deadline_ns = 0;

  /// Degrade instead of fail: when set, a block whose fetch or load
  /// fails (Corruption, IOError, quarantine fast-fail, ...) is reported
  /// on ScanResult::failed_blocks — with its original status, context
  /// intact — while every healthy block's results are still returned
  /// and stay byte-identical to a fault-free scan of those blocks.
  /// DeadlineExceeded is never downgraded: an expired deadline fails
  /// the whole request either way, because a partial answer past the
  /// deadline helps no one.
  bool allow_partial = false;
};

/// Per-call options for ScanService::Gather (the positional twin of the
/// fields ScanRequest carries for Execute).
struct GatherOptions {
  /// Absolute deadline (obs::MonotonicNs clock; 0 = none); semantics as
  /// ScanRequest::deadline_ns.
  uint64_t deadline_ns = 0;
  /// With a non-null trace (and observability enabled), receives the
  /// request's full attribution.
  obs::RequestTrace* trace = nullptr;
};

struct ScanResult {
  uint64_t rows_scanned = 0;  // Rows covered across all blocks (a
                              // stats-pruned block counts as covered:
                              // its rows were answered without a read).
  uint64_t rows_matched = 0;  // Rows passing the predicate.
  uint64_t blocks_skipped = 0;  // Blocks pruned via the CORF v3 per-block
                                // min/max stats (never read from disk).

  /// Global row ids of matches (when return_positions), ascending.
  std::vector<uint64_t> positions;

  /// Materialized values, parallel to ScanRequest::project_columns;
  /// each vector has rows_matched entries in position order.
  std::vector<std::vector<int64_t>> columns;

  /// Aggregate outputs (sum wraps around like query::SumColumn).
  int64_t agg_sum = 0;
  std::optional<int64_t> agg_min;
  std::optional<int64_t> agg_max;

  /// One block that failed under ScanRequest::allow_partial.
  struct BlockError {
    uint64_t block = 0;  // Block index within the table.
    Status status;       // The original fetch/load failure.
  };

  /// Blocks whose fetch failed, ascending by index; only ever non-empty
  /// under allow_partial (without it the first failure fails the whole
  /// request). A failed block contributes nothing to rows_scanned /
  /// rows_matched / positions / columns / aggregates — callers that
  /// need exact coverage must check this before trusting totals.
  std::vector<BlockError> failed_blocks;

  /// Full request attribution (ScanRequest::collect_trace only): where
  /// the latency went, block by block and phase by phase.
  std::optional<obs::RequestTrace> trace;
};

class ScanService {
 public:
  struct Options {
    /// Worker threads shared by all requests; 0 runs block tasks inline
    /// on the calling thread.
    size_t num_threads = 4;

    /// Registry receiving the serving histograms and counters
    /// ("serve.*"); null means obs::Registry::Default().
    obs::Registry* registry = nullptr;

    /// Requests at least this slow are retained in the slow-trace ring
    /// (0 retains every request). Default 10 ms.
    uint64_t slow_trace_ns = 10'000'000;

    /// Slow-trace ring capacity (last N retained).
    size_t slow_trace_capacity = 32;

    /// Batch concurrent requests touching the same block into one pin +
    /// one merged gather (pooled services only; inline execution never
    /// coalesces). Results are byte-identical either way.
    bool coalescing = true;

    /// Reject (ResourceExhausted) requests arriving while this many are
    /// already in flight; 0 means unbounded.
    size_t max_inflight_requests = 0;

    /// Prefetch a request's blocks in scan order on a background thread
    /// (pooled services only), so workers mostly pin resident blocks.
    bool read_ahead = true;
  };

  ScanService();  // Default Options.
  explicit ScanService(Options options);
  ~ScanService();
  ScanService(const ScanService&) = delete;
  ScanService& operator=(const ScanService&) = delete;

  /// Runs `request` over every block of `reader`, fanning blocks out to
  /// the pool and merging partial results in block order.
  Result<ScanResult> Execute(const TableReader& reader,
                             const ScanRequest& request);

  /// Materializes `columns` at the sorted global positions `rows`,
  /// touching (and caching) only the blocks that own selected rows.
  /// Each block slice goes through query::ScanColumn's sparse/dense
  /// strategy split — positioned GatherRange kernels below the
  /// selectivity crossover, dense ranged decode above it — so gather
  /// requests never round-trip through a per-row virtual Get. Tables
  /// that serve mostly this path should be compressed with
  /// CompressionPlan::workload = WorkloadHint::kPointServing: Delta
  /// columns then carry inline checkpoints, making each sparse access
  /// one contiguous window touch instead of checkpoint-array + stream.
  /// Returns one value vector per requested column. With a non-null
  /// `trace` (and observability enabled), fills it with the request's
  /// full attribution, like ScanRequest::collect_trace does for
  /// Execute.
  Result<std::vector<std::vector<int64_t>>> Gather(
      const TableReader& reader, std::span<const size_t> columns,
      std::span<const uint64_t> rows,
      obs::RequestTrace* trace = nullptr);

  /// Gather with per-call options (deadline + trace sink). The
  /// trace-pointer overload above forwards here.
  Result<std::vector<std::vector<int64_t>>> Gather(
      const TableReader& reader, std::span<const size_t> columns,
      std::span<const uint64_t> rows, const GatherOptions& options);

  size_t num_threads() const { return workers_.size(); }

  /// Traces that breached Options::slow_trace_ns, oldest first (at most
  /// the last slow_trace_capacity of them); leaves the ring empty.
  [[nodiscard]] std::vector<obs::RequestTrace> DrainSlowTraces() {
    return slow_traces_.Drain();
  }
  const obs::TraceRing& slow_traces() const { return slow_traces_; }

 private:
  // Cached registry series (resolved once in the constructor).
  struct Metrics {
    obs::Counter* requests;
    obs::Counter* gather_requests;
    obs::Counter* rows_scanned;
    obs::Counter* rows_matched;
    obs::Counter* gather_rows;
    obs::Counter* blocks_pruned;
    obs::Counter* rejected;          // Admission-control fast rejects.
    obs::Counter* deadline_missed;   // DeadlineExceeded returns.
    obs::Counter* partial_results;   // allow_partial scans that lost
                                     // at least one block.
    obs::Counter* coalesced_requests;  // Units served by piggybacking.
    obs::Counter* coalesced_batches;   // Batches with 2+ live units.
    obs::Counter* prefetch_issued;
    obs::Counter* prefetch_skipped;
    obs::Gauge* queue_depth;         // Tasks waiting for a worker.
    obs::Gauge* inflight;            // Admitted, not yet returned.
    obs::Histogram* latency_us;
    std::array<obs::Histogram*, obs::kNumPhases> phase_us;
  };

  // Records histograms/counters for a finished request and files the
  // trace (slow ring, and the caller's sink when opted in).
  void FinishRequest(obs::RequestTrace trace, uint64_t start_ns,
                     obs::RequestTrace* sink);

  // Admission: deadline-expired or over-limit requests are rejected
  // before any block work. Admit() takes an in-flight slot on success;
  // ReleaseSlot() returns it.
  Status Admit(uint64_t deadline_ns);
  void ReleaseSlot();

  void EnqueueTask(std::function<void()> task);
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;  // Signals new tasks and shutdown.
  std::deque<std::function<void()>> tasks_ CORRA_GUARDED_BY(mu_);
  bool stop_ CORRA_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // Written by the ctor only.
  Metrics metrics_{};
  uint64_t slow_trace_ns_ = 0;
  obs::TraceRing slow_traces_;
  size_t max_inflight_ = 0;
  std::atomic<size_t> inflight_{0};
  std::unique_ptr<Coalescer> coalescer_;
  std::unique_ptr<ReadAhead> read_ahead_;  // Pooled + read_ahead only.
};

}  // namespace corra::serve

#endif  // CORRA_SERVE_SCAN_SERVICE_H_
