#include "serve/read_ahead.h"

#include <algorithm>

namespace corra::serve {

ReadAhead::ReadAhead(Counters counters) : counters_(counters) {
  thread_ = std::thread([this] { Loop(); });
}

ReadAhead::~ReadAhead() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
}

ReadAhead::Session::~Session() { owner_->Cancel(id_); }

std::unique_ptr<ReadAhead::Session> ReadAhead::Start(
    const TableReader& reader, std::vector<size_t> blocks) {
  uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_session_++;
    for (size_t block : blocks) {
      jobs_.push_back(Job{id, &reader, block});
    }
  }
  cv_.NotifyOne();
  return std::unique_ptr<Session>(new Session(this, id));
}

void ReadAhead::Cancel(uint64_t session_id) {
  size_t dropped = 0;
  {
    MutexLock lock(mu_);
    const size_t before = jobs_.size();
    jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                               [session_id](const Job& job) {
                                 return job.session == session_id;
                               }),
                jobs_.end());
    dropped = before - jobs_.size();
    // The session's reader dies with the request: wait out an in-flight
    // fetch so the prefetch thread never touches a dead reader. Bounded
    // by a single block load.
    while (active_session_ == session_id) {
      cv_.Wait(mu_);
    }
  }
  if (dropped > 0) {
    counters_.skipped->Add(dropped);
  }
}

void ReadAhead::Loop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!stop_ && jobs_.empty()) {
      cv_.Wait(mu_);
    }
    if (stop_) {
      return;  // Sessions die before the service, so the queue is empty.
    }
    const Job job = jobs_.front();
    jobs_.pop_front();
    active_session_ = job.session;
    lock.Unlock();

    const BlockKey key{job.reader->file_id(), job.block};
    if (job.reader->cache()->Contains(key)) {
      counters_.skipped->Increment();
    } else {
      counters_.issued->Increment();
      // The pin is dropped immediately — the point is residency, not
      // ownership. Failures are left for the scan path to re-surface.
      auto handle = job.reader->GetBlock(job.block);
      (void)handle;
    }

    lock.Lock();
    active_session_ = 0;
    cv_.NotifyAll();
  }
}

}  // namespace corra::serve
