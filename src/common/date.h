// Civil-date arithmetic for the date-valued columns in TPC-H and Taxi.
//
// Dates are stored as int64 "days since 1970-01-01" (negative before).
// The conversions implement Howard Hinnant's public-domain algorithms and
// are exact over the proleptic Gregorian calendar.

#ifndef CORRA_COMMON_DATE_H_
#define CORRA_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace corra {

/// A calendar date (proleptic Gregorian).
struct CivilDate {
  int32_t year;
  int32_t month;  // 1..12
  int32_t day;    // 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// Days since 1970-01-01 for the given civil date.
int64_t ToDays(const CivilDate& date);

/// Civil date for the given number of days since 1970-01-01.
CivilDate FromDays(int64_t days);

/// Parses "YYYY-MM-DD". Rejects malformed strings and invalid dates
/// (e.g. month 13, Feb 30).
Result<int64_t> ParseDate(const std::string& text);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

/// True if `year` is a leap year in the Gregorian calendar.
bool IsLeapYear(int32_t year);

/// Number of days in `month` of `year` (month 1..12).
int32_t DaysInMonth(int32_t year, int32_t month);

}  // namespace corra

#endif  // CORRA_COMMON_DATE_H_
