#include "common/bit_stream.h"

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra {

BitWriter::BitWriter(int bit_width) : bit_width_(bit_width) {}

void BitWriter::Append(uint64_t value) {
  ++count_;
  if (bit_width_ == 0) {
    return;
  }
  pending_ |= value << pending_bits_;
  pending_bits_ += bit_width_;
  if (pending_bits_ >= 64) {
    // Flush a full 64-bit word; carry the overflow bits.
    uint64_t word = pending_;
    const size_t old = bytes_.size();
    bytes_.resize(old + 8);
    std::memcpy(bytes_.data() + old, &word, 8);
    pending_bits_ -= 64;
    const int consumed = bit_width_ - pending_bits_;
    pending_ = consumed >= 64 ? 0 : value >> consumed;
  }
}

void BitWriter::AppendAll(std::span<const uint64_t> values) {
  for (uint64_t v : values) {
    Append(v);
  }
}

std::vector<uint8_t> BitWriter::Finish() && {
  if (bit_width_ > 0) {
    while (pending_bits_ > 0) {
      bytes_.push_back(static_cast<uint8_t>(pending_ & 0xFF));
      pending_ >>= 8;
      pending_bits_ -= 8;
    }
  }
  // Pad so BitReader::Get can always issue a full 64-bit load.
  const size_t padded = bit_util::PackedBytes(count_, bit_width_);
  bytes_.resize(padded, 0);
  return std::move(bytes_);
}

void BitReader::DecodeAll(uint64_t* out) const {
  DecodeRange(0, count_, out);
}

void BitReader::DecodeRange(size_t begin, size_t count,
                            uint64_t* out) const {
  // Thin wrapper over the SIMD kernel layer: per-bit-width specialized
  // 64-value unpackers (AVX2 under runtime dispatch, unrolled scalar
  // otherwise) for widths <= 32, sequential-cursor decode above that.
  simd::UnpackRange(data_, bit_width_, begin, count, out);
}

}  // namespace corra
