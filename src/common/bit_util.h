// Bit-level helpers shared by all encoding schemes: bit-width computation,
// ZigZag transforms for signed values, and alignment arithmetic.

#ifndef CORRA_COMMON_BIT_UTIL_H_
#define CORRA_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace corra::bit_util {

/// Number of bits needed to represent the unsigned value `v`.
/// BitWidth(0) == 0, BitWidth(1) == 1, BitWidth(255) == 8.
constexpr int BitWidth(uint64_t v) {
  return v == 0 ? 0 : 64 - std::countl_zero(v);
}

/// ZigZag-maps a signed value to an unsigned one so that values of small
/// magnitude (of either sign) map to small unsigned values:
/// 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
constexpr uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

/// Inverse of ZigZagEncode.
constexpr int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Rounds `v` up to the next multiple of `factor` (a power of two).
constexpr size_t RoundUpPow2(size_t v, size_t factor) {
  return (v + factor - 1) & ~(factor - 1);
}

/// Ceil division for non-negative integers.
constexpr size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

/// Readable slack bytes every decodable bit-packed buffer carries past
/// its payload. 32 bytes, not 8: the AVX2 unpack kernels issue full
/// 32-byte vector loads whose tails may cross the last packed byte (the
/// scalar path only needs the 8-byte window of BitReader::Get).
inline constexpr size_t kDecodePadBytes = 32;

/// Exact payload bytes of `count` values of `bit_width` bits each — the
/// wire-format quantity Deserialize checks against (old files carry less
/// slack than kDecodePadBytes; decoders re-pad their owned copy).
constexpr size_t PackedDataBytes(size_t count, int bit_width) {
  return CeilDiv(count * static_cast<size_t>(bit_width), 8);
}

/// Bytes to *allocate* for a decodable packed buffer of `count` values of
/// `bit_width` bits: payload plus kDecodePadBytes of load slack.
constexpr size_t PackedBytes(size_t count, int bit_width) {
  return PackedDataBytes(count, bit_width) + kDecodePadBytes;
}

/// Number of bits needed after zig-zag for the most negative/positive value
/// in `values` (0 for an empty or all-zero span).
int MaxZigZagBitWidth(std::span<const int64_t> values);

/// Bit width of the largest value in `values` after subtracting `base`
/// (frame-of-reference width). All values must be >= base.
int MaxForBitWidth(std::span<const int64_t> values, int64_t base);

/// Minimum and maximum of a non-empty span in a single pass.
struct MinMax {
  int64_t min;
  int64_t max;
};
MinMax ComputeMinMax(std::span<const int64_t> values);

}  // namespace corra::bit_util

#endif  // CORRA_COMMON_BIT_UTIL_H_
