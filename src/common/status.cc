#include "common/status.h"

namespace corra {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kIOError:
      return "I/O error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

}  // namespace corra
