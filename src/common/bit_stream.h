// Fixed-width bit packing primitives.
//
// PackedArray stores `n` unsigned values of a fixed bit width back to back.
// It supports O(1) random access via a single unaligned 64-bit load (the
// buffer is padded accordingly), which is the property the paper's baseline
// (FOR/Dict + bit-packing) relies on for fast selective scans.

#ifndef CORRA_COMMON_BIT_STREAM_H_
#define CORRA_COMMON_BIT_STREAM_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace corra {

/// Append-only writer of fixed-width values into a byte vector.
class BitWriter {
 public:
  /// Creates a writer producing values of `bit_width` bits (0..64).
  /// With bit_width == 0 the writer stores nothing (all values are zero).
  explicit BitWriter(int bit_width);

  /// Appends `value`; the top bits beyond `bit_width` must be zero.
  void Append(uint64_t value);

  /// Appends every element of `values`.
  void AppendAll(std::span<const uint64_t> values);

  /// Number of values appended so far.
  size_t size() const { return count_; }
  int bit_width() const { return bit_width_; }

  /// Finalizes and returns the packed bytes (padded for unaligned reads).
  /// The writer is left in a moved-from state.
  std::vector<uint8_t> Finish() &&;

 private:
  int bit_width_;
  size_t count_ = 0;
  uint64_t pending_ = 0;  // Bits not yet flushed to bytes_.
  int pending_bits_ = 0;
  std::vector<uint8_t> bytes_;
};

/// Random-access reader over bytes produced by BitWriter (or any
/// identically laid out buffer). Does not own the bytes.
class BitReader {
 public:
  BitReader() = default;

  /// `data` must stay alive while the reader is used and must include
  /// the bit_util::kDecodePadBytes of readable slack that
  /// BitWriter::Finish appends (the SIMD unpack kernels behind
  /// DecodeRange issue full 32-byte loads near the payload end).
  BitReader(const uint8_t* data, int bit_width, size_t count)
      : data_(data), bit_width_(bit_width), count_(count) {}

  /// Value at position `i` (unchecked; i < size()).
  uint64_t Get(size_t i) const {
    if (bit_width_ == 0) {
      return 0;
    }
    const size_t bit_pos = i * static_cast<size_t>(bit_width_);
    const size_t byte = bit_pos >> 3;
    const int shift = static_cast<int>(bit_pos & 7);
    uint64_t word;
    std::memcpy(&word, data_ + byte, sizeof(word));
    uint64_t v = word >> shift;
    if (shift + bit_width_ > 64) {
      // Widths > 57 bits can straddle 9 bytes; splice in the tail. `shift`
      // is >= 1 here, so the left shift below is well defined.
      uint64_t next;
      std::memcpy(&next, data_ + byte + 8, sizeof(next));
      v |= next << (64 - shift);
    }
    return v & mask();
  }

  /// Decodes all values into `out` (must have room for size() values).
  void DecodeAll(uint64_t* out) const;

  /// Decodes the `count` values starting at position `begin` into `out`
  /// (must have room for `count` values; begin + count <= size()). The
  /// ranged building block of the morsel decode pipeline: a thin wrapper
  /// over the SIMD kernel layer's per-bit-width unpackers (see
  /// common/simd/simd.h). `data` must carry bit_util::kDecodePadBytes of
  /// readable slack, as BitWriter::Finish and every Deserialize ensure.
  void DecodeRange(size_t begin, size_t count, uint64_t* out) const;

  size_t size() const { return count_; }
  int bit_width() const { return bit_width_; }

 private:
  uint64_t mask() const { return ~uint64_t{0} >> (64 - bit_width_); }

  const uint8_t* data_ = nullptr;
  int bit_width_ = 0;
  size_t count_ = 0;
};

}  // namespace corra

#endif  // CORRA_COMMON_BIT_STREAM_H_
