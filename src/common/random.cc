#include "common/random.h"

#include <cmath>
#include <numbers>

namespace corra {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (range == ~uint64_t{0}) {
    return static_cast<int64_t>(Next());
  }
  // Lemire's nearly-divisionless bounded generation with rejection.
  const uint64_t bound = range + 1;
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<int64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 == 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace corra
