#include "common/buffer.h"

namespace corra {

void BufferWriter::WriteBytes(std::span<const uint8_t> data) {
  Write<uint64_t>(data.size());
  const size_t old = bytes_.size();
  bytes_.resize(old + data.size());
  if (!data.empty()) {
    std::memcpy(bytes_.data() + old, data.data(), data.size());
  }
}

void BufferWriter::WriteString(std::string_view s) {
  WriteBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

void BufferWriter::WriteInt64Array(std::span<const int64_t> values) {
  Write<uint64_t>(values.size());
  const size_t old = bytes_.size();
  bytes_.resize(old + values.size() * sizeof(int64_t));
  if (!values.empty()) {
    std::memcpy(bytes_.data() + old, values.data(),
                values.size() * sizeof(int64_t));
  }
}

void BufferWriter::WriteUint32Array(std::span<const uint32_t> values) {
  Write<uint64_t>(values.size());
  const size_t old = bytes_.size();
  bytes_.resize(old + values.size() * sizeof(uint32_t));
  if (!values.empty()) {
    std::memcpy(bytes_.data() + old, values.data(),
                values.size() * sizeof(uint32_t));
  }
}

Status BufferReader::ReadLength(size_t element_size, size_t* out_count) {
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(Read(&count));
  if (element_size > 0 && count > remaining() / element_size) {
    return Status::Corruption("length prefix exceeds remaining bytes");
  }
  *out_count = static_cast<size_t>(count);
  return Status::OK();
}

Status BufferReader::ReadBytes(std::span<const uint8_t>* out) {
  size_t count = 0;
  CORRA_RETURN_NOT_OK(ReadLength(1, &count));
  *out = data_.subspan(pos_, count);
  pos_ += count;
  return Status::OK();
}

Status BufferReader::ReadString(std::string* out) {
  std::span<const uint8_t> bytes;
  CORRA_RETURN_NOT_OK(ReadBytes(&bytes));
  out->assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return Status::OK();
}

Status BufferReader::ReadInt64Array(std::vector<int64_t>* out) {
  size_t count = 0;
  CORRA_RETURN_NOT_OK(ReadLength(sizeof(int64_t), &count));
  out->resize(count);
  if (count > 0) {
    std::memcpy(out->data(), data_.data() + pos_, count * sizeof(int64_t));
  }
  pos_ += count * sizeof(int64_t);
  return Status::OK();
}

Status BufferReader::ReadInt64Values(size_t count,
                                     std::vector<int64_t>* out) {
  if (count > remaining() / sizeof(int64_t)) {
    return Status::Corruption("int64 value count exceeds remaining bytes");
  }
  out->resize(count);
  if (count > 0) {
    std::memcpy(out->data(), data_.data() + pos_, count * sizeof(int64_t));
  }
  pos_ += count * sizeof(int64_t);
  return Status::OK();
}

Status BufferReader::ReadUint32Array(std::vector<uint32_t>* out) {
  size_t count = 0;
  CORRA_RETURN_NOT_OK(ReadLength(sizeof(uint32_t), &count));
  out->resize(count);
  if (count > 0) {
    std::memcpy(out->data(), data_.data() + pos_, count * sizeof(uint32_t));
  }
  pos_ += count * sizeof(uint32_t);
  return Status::OK();
}

}  // namespace corra
