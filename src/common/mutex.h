// Annotated mutex/condvar wrappers — the only place in src/ that may
// name std::mutex (scripts/corra_lint.py enforces this).
//
// corra::Mutex is std::mutex plus the Clang Thread Safety capability
// attributes (common/thread_annotations.h): fields declared
// CORRA_GUARDED_BY(mu) are compiler-checked to only be touched under
// mu, and helpers declared CORRA_REQUIRES(mu) are compiler-checked at
// every call site. The wrappers are header-only forwarding shims — no
// state beyond the wrapped primitive, no behavior change — so the
// sanitizer and benchmark CI jobs see identical codegen.
//
// Usage:
//   corra::Mutex mu;
//   int value CORRA_GUARDED_BY(mu);
//
//   corra::MutexLock lock(mu);     // RAII; Unlock()/Lock() for windows
//                                  // where work must run unlocked.
//   corra::CondVar cv;
//   while (!ready) cv.Wait(mu);    // Explicit predicate loops (the
//                                  // analysis can't see wait lambdas).

#ifndef CORRA_COMMON_MUTEX_H_
#define CORRA_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace corra {

class CondVar;

/// std::mutex as a Clang TSA capability.
class CORRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CORRA_ACQUIRE() { mu_.lock(); }
  void Unlock() CORRA_RELEASE() { mu_.unlock(); }
  bool TryLock() CORRA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock. Acquires in the constructor, releases in the destructor.
/// Unlock()/Lock() open an unlocked window mid-scope (e.g. running a
/// cache loader outside the shard lock) while the analysis keeps
/// tracking the lock state.
class CORRA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CORRA_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() CORRA_RELEASE() {
    if (held_) {
      mu_.Unlock();
    }
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early; the destructor becomes a no-op until Lock().
  void Unlock() CORRA_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  /// Re-acquires after Unlock().
  void Lock() CORRA_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to corra::Mutex. Wait() declares (and the
/// compiler checks) that the caller holds the mutex; it is released for
/// the duration of the wait and re-held on return, like
/// std::condition_variable::wait. Callers write explicit predicate
/// loops — `while (!pred) cv.Wait(mu);` — because the analysis treats
/// wait-predicate lambdas as unrelated functions.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CORRA_REQUIRES(mu) {
    // Adopt the already-held mutex for the wait, then release the
    // unique_lock's ownership so the caller keeps holding it — the
    // analysis sees the lock state unchanged across the call.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace corra

#endif  // CORRA_COMMON_MUTEX_H_
