#include "common/date.h"

#include <cstdio>

namespace corra {

namespace {
constexpr int32_t kDaysPerMonth[] = {31, 28, 31, 30, 31, 30,
                                     31, 31, 30, 31, 30, 31};
}  // namespace

bool IsLeapYear(int32_t year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int32_t DaysInMonth(int32_t year, int32_t month) {
  if (month == 2 && IsLeapYear(year)) {
    return 29;
  }
  return kDaysPerMonth[month - 1];
}

int64_t ToDays(const CivilDate& date) {
  // Hinnant's days_from_civil.
  int64_t y = date.year;
  const int64_t m = date.month;
  const int64_t d = date.day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                          // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + doe - 719468;
}

CivilDate FromDays(int64_t days) {
  // Hinnant's civil_from_days.
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                                // [0, 146096]
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);         // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                              // [0, 11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;                      // [1, 31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                           // [1, 12]
  return CivilDate{static_cast<int32_t>(y + (m <= 2)),
                   static_cast<int32_t>(m), static_cast<int32_t>(d)};
}

Result<int64_t> ParseDate(const std::string& text) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return Status::InvalidArgument("date must be YYYY-MM-DD: " + text);
  }
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (text[i] < '0' || text[i] > '9') {
      return Status::InvalidArgument("non-digit in date: " + text);
    }
  }
  const int32_t year = (text[0] - '0') * 1000 + (text[1] - '0') * 100 +
                       (text[2] - '0') * 10 + (text[3] - '0');
  const int32_t month = (text[5] - '0') * 10 + (text[6] - '0');
  const int32_t day = (text[8] - '0') * 10 + (text[9] - '0');
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " + text);
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + text);
  }
  return ToDays(CivilDate{year, month, day});
}

std::string FormatDate(int64_t days) {
  const CivilDate d = FromDays(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return std::string(buf);
}

}  // namespace corra
