// Failpoints — runtime fault injection for robustness testing.
//
// A failpoint is a named site in production code that can be armed to
// "fire" (report true) on a configurable schedule. Production code asks
// `CORRA_FAILPOINT("corf.pread.eio")` at the site and injects its fault
// (a synthetic errno, a flipped byte, an early error return) only when
// the site fires. With nothing armed, a site costs one relaxed atomic
// load; with `-DCORRA_FAILPOINTS_OFF=ON` every site folds to a
// compile-time `false` and the framework compiles out entirely.
//
// Trigger specs (string grammar, used by Configure and the env):
//   "off"             never fires (parks the site but keeps its stats)
//   "prob:P"          fires each evaluation with probability P in [0,1]
//   "prob:P:SEED"     same, with an explicit RNG seed (deterministic
//                     schedules for the chaos soak)
//   "every:N"         fires every Nth evaluation (N >= 1)
//   "times:N"         fires the first N evaluations, then never again
//
// Configuration sources, later wins per site:
//   * the CORRA_FAILPOINTS environment variable, parsed once on first
//     use: "site=spec;site2=spec" (e.g.
//     CORRA_FAILPOINTS="corf.pread.eio=prob:0.01;cache.load_error=every:7")
//   * programmatic Configure()/ScopedFailpoint (tests).
//
// Sites are evaluated under a mutex — firing schedules stay exact under
// concurrency — but only *armed* sites ever reach that mutex. The fast
// path for an unarmed process is a single relaxed load of the global
// armed-site count, mirroring obs::Enabled().
//
// This framework is a testing tool: arming failpoints in production
// serving processes is not supported (the per-evaluation mutex on armed
// sites is deliberate, favoring exact schedules over hot-path speed).

#ifndef CORRA_COMMON_FAILPOINT_H_
#define CORRA_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace corra::fail {

/// False when the framework was compiled out (-DCORRA_FAILPOINTS_OFF);
/// tests that need live sites skip themselves on this.
constexpr bool CompiledIn() {
#ifdef CORRA_FAILPOINTS_OFF
  return false;
#else
  return true;
#endif
}

#ifndef CORRA_FAILPOINTS_OFF
namespace internal {
/// Number of armed sites; -1 until CORRA_FAILPOINTS has been parsed.
/// One relaxed load of this gates every site in the process.
extern std::atomic<int> g_armed;
/// Slow path: parses the env on first use, then evaluates `site`
/// against the armed table (exact schedules, under a mutex).
bool EvaluateSlow(const char* site);
}  // namespace internal
#endif

/// Evaluates the site: true when the site is armed and its trigger
/// fires this evaluation. Production code calls this through
/// CORRA_FAILPOINT so the whole expression disappears when the
/// framework is compiled out.
[[nodiscard]] inline bool Triggered(const char* site) {
#ifdef CORRA_FAILPOINTS_OFF
  (void)site;
  return false;
#else
  if (internal::g_armed.load(std::memory_order_relaxed) == 0) {
    return false;  // Nothing armed anywhere: the common (release) case.
  }
  return internal::EvaluateSlow(site);
#endif
}

/// Arms `site` with trigger `spec` (grammar above), replacing any prior
/// trigger and resetting the site's counters. InvalidArgument on a
/// malformed spec; NotImplemented when the framework is compiled out.
Status Configure(std::string_view site, std::string_view spec);

/// Arms every "site=spec" pair in `config` (';'-separated, the
/// CORRA_FAILPOINTS grammar). Stops at the first malformed pair.
Status ConfigureFromString(std::string_view config);

/// Disarms one site / every site. Counters are discarded.
void Clear(std::string_view site);
void ClearAll();

/// Times the site was evaluated / fired since it was (re)configured.
/// 0 for unknown sites.
[[nodiscard]] uint64_t Evaluations(std::string_view site);
[[nodiscard]] uint64_t Fires(std::string_view site);

/// RAII arming for tests: configures on construction, clears the site
/// on destruction. A malformed spec is surfaced via status().
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view site, std::string_view spec)
      : site_(site), status_(Configure(site, spec)) {}
  ~ScopedFailpoint() { Clear(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  std::string site_;
  Status status_;
};

}  // namespace corra::fail

/// Site check for production code. Reads as a condition:
///   if (CORRA_FAILPOINT("corf.pread.eio")) { inject EIO; }
#ifdef CORRA_FAILPOINTS_OFF
#define CORRA_FAILPOINT(site) (false)
#else
#define CORRA_FAILPOINT(site) (::corra::fail::Triggered(site))
#endif

#endif  // CORRA_COMMON_FAILPOINT_H_
