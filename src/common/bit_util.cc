#include "common/bit_util.h"

#include <algorithm>

namespace corra::bit_util {

int MaxZigZagBitWidth(std::span<const int64_t> values) {
  uint64_t max_zz = 0;
  for (int64_t v : values) {
    max_zz = std::max(max_zz, ZigZagEncode(v));
  }
  return BitWidth(max_zz);
}

int MaxForBitWidth(std::span<const int64_t> values, int64_t base) {
  uint64_t max_delta = 0;
  for (int64_t v : values) {
    max_delta = std::max(
        max_delta, static_cast<uint64_t>(v) - static_cast<uint64_t>(base));
  }
  return BitWidth(max_delta);
}

MinMax ComputeMinMax(std::span<const int64_t> values) {
  MinMax mm{values.empty() ? 0 : values[0], values.empty() ? 0 : values[0]};
  for (int64_t v : values) {
    mm.min = std::min(mm.min, v);
    mm.max = std::max(mm.max, v);
  }
  return mm;
}

}  // namespace corra::bit_util
