#include "common/failpoint.h"

#include <cstdlib>
#include <map>

#include "common/mutex.h"
#include "common/random.h"

namespace corra::fail {

#ifdef CORRA_FAILPOINTS_OFF

// Compiled out: arming is an explicit error (so a test that forgot to
// gate on CompiledIn() fails loudly instead of silently never firing),
// everything else is inert.
Status Configure(std::string_view, std::string_view) {
  return Status::NotImplemented("failpoints compiled out");
}
Status ConfigureFromString(std::string_view) {
  return Status::NotImplemented("failpoints compiled out");
}
void Clear(std::string_view) {}
void ClearAll() {}
uint64_t Evaluations(std::string_view) { return 0; }
uint64_t Fires(std::string_view) { return 0; }

#else

namespace {

enum class Mode { kOff, kProb, kEvery, kTimes };

struct Site {
  Mode mode = Mode::kOff;
  double prob = 0.0;     // kProb
  uint64_t n = 0;        // kEvery period / kTimes budget
  Rng rng{0};            // kProb; seeded at Configure for determinism
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

struct Table {
  Mutex mu;
  // less<> so string_view lookups don't allocate.
  std::map<std::string, Site, std::less<>> sites CORRA_GUARDED_BY(mu);
};

Table& GetTable() {
  static Table* table = new Table();  // Leaked: sites may be evaluated
  return *table;                      // during static destruction.
}

// Parses "mode[:arg[:seed]]" into *site. The caller holds no lock.
Status ParseSpec(std::string_view spec, std::string_view name,
                 Site* site) {
  const auto bad = [&](const char* what) {
    return Status::InvalidArgument("failpoint '" + std::string(name) +
                                   "': " + what + " in spec '" +
                                   std::string(spec) + "'");
  };
  const size_t colon = spec.find(':');
  const std::string_view mode = spec.substr(0, colon);
  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  const size_t colon2 = rest.find(':');
  const std::string arg(rest.substr(0, colon2));
  const std::string seed_str(
      colon2 == std::string_view::npos ? std::string_view{}
                                       : rest.substr(colon2 + 1));

  if (mode == "off") {
    if (!arg.empty()) {
      return bad("'off' takes no argument");
    }
    site->mode = Mode::kOff;
    return Status::OK();
  }
  if (mode == "prob") {
    char* end = nullptr;
    const double p = arg.empty() ? -1.0 : std::strtod(arg.c_str(), &end);
    // !(p >= 0 && p <= 1) rather than (p < 0 || p > 1) so NaN — which
    // compares false to everything — is rejected too.
    if (arg.empty() || *end != '\0' || !(p >= 0.0 && p <= 1.0)) {
      return bad("probability must be in [0, 1]");
    }
    uint64_t seed = 0x5DEECE66Dull;
    if (!seed_str.empty()) {
      char* send = nullptr;
      seed = std::strtoull(seed_str.c_str(), &send, 10);
      if (*send != '\0') {
        return bad("seed must be an unsigned integer");
      }
    }
    site->mode = Mode::kProb;
    site->prob = p;
    site->rng = Rng(seed);
    return Status::OK();
  }
  if (mode == "every" || mode == "times") {
    if (!seed_str.empty()) {
      return bad("only 'prob' takes a seed");
    }
    char* end = nullptr;
    const uint64_t n =
        arg.empty() ? 0 : std::strtoull(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || (mode == "every" && n == 0)) {
      return bad("count must be a positive integer");
    }
    site->mode = mode == "every" ? Mode::kEvery : Mode::kTimes;
    site->n = n;
    return Status::OK();
  }
  return bad("unknown mode (want off|prob|every|times)");
}

// Parses "site=spec;site=spec" pairs into the table.
Status ConfigureLocked(Table& table, std::string_view config)
    CORRA_REQUIRES(table.mu) {
  while (!config.empty()) {
    const size_t semi = config.find(';');
    const std::string_view pair = config.substr(0, semi);
    config = semi == std::string_view::npos ? std::string_view{}
                                            : config.substr(semi + 1);
    if (pair.empty()) {
      continue;  // Tolerate empty segments ("a=b;;c=d", trailing ';').
    }
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          "failpoint config: expected 'site=spec', got '" +
          std::string(pair) + "'");
    }
    Site site;
    CORRA_RETURN_NOT_OK(
        ParseSpec(pair.substr(eq + 1), pair.substr(0, eq), &site));
    table.sites.insert_or_assign(std::string(pair.substr(0, eq)),
                                 std::move(site));
  }
  return Status::OK();
}

// First-use env parse. Idempotent: after this, g_armed is >= 0 and
// reflects the table size.
void InitFromEnvLocked(Table& table) CORRA_REQUIRES(table.mu) {
  if (internal::g_armed.load(std::memory_order_relaxed) >= 0) {
    return;
  }
  if (const char* env = std::getenv("CORRA_FAILPOINTS")) {
    // A malformed env spec is ignored from the hot path (no channel to
    // report it); ConfigureFromString surfaces it to explicit callers.
    (void)ConfigureLocked(table, env);
  }
  internal::g_armed.store(static_cast<int>(table.sites.size()),
                          std::memory_order_relaxed);
}

}  // namespace

namespace internal {

std::atomic<int> g_armed{-1};

bool EvaluateSlow(const char* site) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  InitFromEnvLocked(table);
  auto it = table.sites.find(std::string_view(site));
  if (it == table.sites.end()) {
    return false;
  }
  Site& s = it->second;
  ++s.evaluations;
  bool fired = false;
  switch (s.mode) {
    case Mode::kOff:
      break;
    case Mode::kProb:
      fired = s.rng.Bernoulli(s.prob);
      break;
    case Mode::kEvery:
      fired = s.evaluations % s.n == 0;
      break;
    case Mode::kTimes:
      fired = s.evaluations <= s.n;
      break;
  }
  s.fires += fired ? 1 : 0;
  return fired;
}

}  // namespace internal

Status Configure(std::string_view site, std::string_view spec) {
  if (site.empty()) {
    return Status::InvalidArgument("failpoint site name is empty");
  }
  Site parsed;
  CORRA_RETURN_NOT_OK(ParseSpec(spec, site, &parsed));
  Table& table = GetTable();
  MutexLock lock(table.mu);
  InitFromEnvLocked(table);
  table.sites.insert_or_assign(std::string(site), std::move(parsed));
  internal::g_armed.store(static_cast<int>(table.sites.size()),
                          std::memory_order_relaxed);
  return Status::OK();
}

Status ConfigureFromString(std::string_view config) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  InitFromEnvLocked(table);
  const Status status = ConfigureLocked(table, config);
  internal::g_armed.store(static_cast<int>(table.sites.size()),
                          std::memory_order_relaxed);
  return status;
}

void Clear(std::string_view site) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  InitFromEnvLocked(table);
  auto it = table.sites.find(site);
  if (it != table.sites.end()) {
    table.sites.erase(it);
  }
  internal::g_armed.store(static_cast<int>(table.sites.size()),
                          std::memory_order_relaxed);
}

void ClearAll() {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  table.sites.clear();
  // Also swallows any pending env config: ClearAll means "no sites".
  internal::g_armed.store(0, std::memory_order_relaxed);
}

uint64_t Evaluations(std::string_view site) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  auto it = table.sites.find(site);
  return it == table.sites.end() ? 0 : it->second.evaluations;
}

uint64_t Fires(std::string_view site) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  auto it = table.sites.find(site);
  return it == table.sites.end() ? 0 : it->second.fires;
}

#endif  // CORRA_FAILPOINTS_OFF

}  // namespace corra::fail
