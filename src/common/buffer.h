// Byte-buffer serialization primitives used by the block format.
//
// BufferWriter appends primitive values and byte ranges to a growable
// vector; BufferReader consumes them with strict bounds checking so that a
// corrupted or truncated block is reported as Status::Corruption instead of
// reading out of bounds.

#ifndef CORRA_COMMON_BUFFER_H_
#define CORRA_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace corra {

/// Append-only little-endian serializer.
class BufferWriter {
 public:
  BufferWriter() = default;

  /// Appends a fixed-width primitive (integral types only).
  template <typename T>
  void Write(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t old = bytes_.size();
    bytes_.resize(old + sizeof(T));
    std::memcpy(bytes_.data() + old, &value, sizeof(T));
  }

  /// Appends a length-prefixed (uint64) byte blob.
  void WriteBytes(std::span<const uint8_t> data);

  /// Appends a length-prefixed string.
  void WriteString(std::string_view s);

  /// Appends a length-prefixed array of int64 values.
  void WriteInt64Array(std::span<const int64_t> values);

  /// Appends a length-prefixed array of uint32 values.
  void WriteUint32Array(std::span<const uint32_t> values);

  size_t size() const { return bytes_.size(); }

  /// Returns the accumulated bytes, leaving the writer empty.
  std::vector<uint8_t> Finish() && { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked little-endian deserializer over a non-owned byte span.
class BufferReader {
 public:
  explicit BufferReader(std::span<const uint8_t> data) : data_(data) {}

  /// Reads a fixed-width primitive into `out`.
  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::Corruption("buffer truncated reading primitive");
    }
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  /// Reads a length-prefixed blob written by WriteBytes. The returned span
  /// aliases the underlying buffer.
  Status ReadBytes(std::span<const uint8_t>* out);

  /// Reads a length-prefixed string written by WriteString.
  Status ReadString(std::string* out);

  /// Reads a length-prefixed int64 array written by WriteInt64Array.
  Status ReadInt64Array(std::vector<int64_t>* out);

  /// Reads exactly `count` raw int64 values (no length prefix). Used by
  /// readers that already consumed the length — e.g. format sniffers
  /// that distinguish a legacy array length from an extension marker.
  Status ReadInt64Values(size_t count, std::vector<int64_t>* out);

  /// Reads a length-prefixed uint32 array written by WriteUint32Array.
  Status ReadUint32Array(std::vector<uint32_t>* out);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  // Validates a length prefix against the remaining bytes.
  Status ReadLength(size_t element_size, size_t* out_count);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace corra

#endif  // CORRA_COMMON_BUFFER_H_
