// Scalar backend of the SIMD kernel layer, plus the width-generic unpack
// driver shared by every backend.
//
// The 64-value unpack kernels are generated per bit width from one
// template: the block's 8*W payload bytes are loaded into whole words
// once, then all 64 extractions run with compile-time word indices and
// shifts (the classic fully unrolled "fastunpack" shape, which the
// compiler schedules branch-free and partially vectorizes). This is the
// fallback the AVX2 table must agree with bit-for-bit — and the floor
// the dispatcher guarantees on machines without AVX2.

#include <array>
#include <cstring>
#include <utility>

#include "common/simd/kernel_table.h"

namespace corra::simd::internal {

namespace {

constexpr uint64_t WidthMask(int width) {
  return width >= 64 ? ~uint64_t{0}
                     : (uint64_t{1} << width) - 1;
}

// One compile-time extraction: value J of a 64-value block of width W,
// given the block's payload preloaded into `words` (W whole words).
template <int W, size_t J>
inline uint64_t ExtractAt(const uint64_t* words) {
  constexpr size_t bit = static_cast<size_t>(W) * J;
  constexpr size_t word = bit >> 6;
  constexpr int shift = static_cast<int>(bit & 63);
  uint64_t v = words[word] >> shift;
  if constexpr (shift + W > 64) {
    v |= words[word + 1] << (64 - shift);
  }
  return v & WidthMask(W);
}

template <int W>
void Unpack64Scalar(const uint8_t* in, uint64_t* out) {
  if constexpr (W == 0) {
    std::memset(out, 0, kUnpackBlock * sizeof(uint64_t));
  } else {
    uint64_t words[W];
    std::memcpy(words, in, sizeof(words));  // Exactly the block's 8*W bytes.
    [&]<size_t... J>(std::index_sequence<J...>) {
      ((out[J] = ExtractAt<W, J>(words)), ...);
    }(std::make_index_sequence<kUnpackBlock>{});
  }
}

constexpr auto kScalarUnpack =
    []<size_t... W>(std::index_sequence<W...>) {
      return std::array<Unpack64Fn, kMaxKernelWidth + 1>{
          &Unpack64Scalar<static_cast<int>(W)>...};
    }(std::make_index_sequence<kMaxKernelWidth + 1>{});

// Branchless staged select: out_rows[n] = row; n += matched. A matching
// row costs a store instead of a mispredicted branch.
size_t FilterI64Scalar(const int64_t* values, size_t count, int64_t lo,
                       int64_t hi, uint32_t row_base, uint32_t* out_rows) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    out_rows[n] = row_base + static_cast<uint32_t>(i);
    n += static_cast<size_t>(values[i] >= lo && values[i] <= hi);
  }
  return n;
}

size_t FilterU64Scalar(const uint64_t* codes, size_t count, uint64_t lo,
                       uint64_t hi, uint32_t row_base, uint32_t* out_rows) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    out_rows[n] = row_base + static_cast<uint32_t>(i);
    n += static_cast<size_t>(codes[i] >= lo && codes[i] <= hi);
  }
  return n;
}

uint64_t SumU64ScalarImpl(const uint64_t* values, size_t count) {
  // Four independent accumulators break the loop-carried dependency so
  // the adds pipeline; the compiler turns this into SSE2 lanes.
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    s0 += values[i];
    s1 += values[i + 1];
    s2 += values[i + 2];
    s3 += values[i + 3];
  }
  for (; i < count; ++i) {
    s0 += values[i];
  }
  return s0 + s1 + s2 + s3;
}

void MinMaxI64ScalarImpl(const int64_t* values, size_t count, int64_t* min,
                         int64_t* max) {
  int64_t lo = values[0];
  int64_t hi = values[0];
  for (size_t i = 1; i < count; ++i) {
    lo = values[i] < lo ? values[i] : lo;
    hi = values[i] > hi ? values[i] : hi;
  }
  *min = lo;
  *max = hi;
}

void MinMaxU64ScalarImpl(const uint64_t* values, size_t count, uint64_t* min,
                         uint64_t* max) {
  uint64_t lo = values[0];
  uint64_t hi = values[0];
  for (size_t i = 1; i < count; ++i) {
    lo = values[i] < lo ? values[i] : lo;
    hi = values[i] > hi ? values[i] : hi;
  }
  *min = lo;
  *max = hi;
}

void TranslateCodesScalarImpl(const int64_t* dict, const uint64_t* codes,
                              size_t count, int64_t* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = dict[codes[i]];
  }
}

void AddConstScalarImpl(int64_t* values, size_t count, int64_t base) {
  for (size_t i = 0; i < count; ++i) {
    values[i] = static_cast<int64_t>(static_cast<uint64_t>(values[i]) +
                                     static_cast<uint64_t>(base));
  }
}

void AddRefBaseScalarImpl(const int64_t* ref, const uint64_t* deltas,
                          int64_t base, size_t count, int64_t* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(ref[i]) +
                                  static_cast<uint64_t>(base) + deltas[i]);
  }
}

void AddRefZigZagScalarImpl(const int64_t* ref, const uint64_t* zigzag,
                            size_t count, int64_t* out) {
  for (size_t i = 0; i < count; ++i) {
    // ZigZagDecode inlined so this file has no bit_util dependency.
    const uint64_t z = zigzag[i];
    const uint64_t delta = (z >> 1) ^ (~(z & 1) + 1);
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(ref[i]) + delta);
  }
}

// ZigZagDecode inlined so this file has no bit_util dependency.
inline uint64_t ZigZagDecodeOne(uint64_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

void ZigZagPrefixSumScalarImpl(const uint64_t* zigzag, size_t count,
                               int64_t seed, int64_t* out) {
  // The sum itself is a serial dependency; unrolling by 2 lets the
  // zig-zag decodes of the next pair overlap the adds of the current one.
  uint64_t acc = static_cast<uint64_t>(seed);
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64_t d0 = ZigZagDecodeOne(zigzag[i]);
    const uint64_t d1 = ZigZagDecodeOne(zigzag[i + 1]);
    out[i] = static_cast<int64_t>(acc + d0);
    acc += d0 + d1;
    out[i + 1] = static_cast<int64_t>(acc);
  }
  if (i < count) {
    acc += ZigZagDecodeOne(zigzag[i]);
    out[i] = static_cast<int64_t>(acc);
  }
}

int64_t ZigZagSumPackedScalarImpl(const uint8_t* data, int bit_width,
                                  size_t begin, size_t count) {
  if (bit_width == 0 || count == 0) {
    return 0;
  }
  const uint64_t mask = WidthMask(bit_width);
  const size_t w = static_cast<size_t>(bit_width);
  size_t bit = begin * w;
  uint64_t acc0 = 0;
  uint64_t acc1 = 0;
  size_t i = 0;
  if (bit_width <= 28) {
    // Two values per 8-byte load: shift + width stays <= 63 for the
    // second value too (in-word shift <= 7 + 2*28).
    for (; i + 2 <= count; i += 2, bit += 2 * w) {
      uint64_t word;
      std::memcpy(&word, data + (bit >> 3), sizeof(word));
      const int shift = static_cast<int>(bit & 7);
      acc0 += ZigZagDecodeOne((word >> shift) & mask);
      acc1 += ZigZagDecodeOne((word >> (shift + bit_width)) & mask);
    }
  } else if (bit_width > 57) {
    // A value can straddle 9 bytes; splice the tail from the next word.
    for (; i < count; ++i, bit += w) {
      const size_t byte = bit >> 3;
      const int shift = static_cast<int>(bit & 7);
      uint64_t word;
      std::memcpy(&word, data + byte, sizeof(word));
      uint64_t v = word >> shift;
      if (shift + bit_width > 64) {
        uint64_t next;
        std::memcpy(&next, data + byte + 8, sizeof(next));
        v |= next << (64 - shift);
      }
      acc0 += ZigZagDecodeOne(v & mask);
    }
  }
  for (; i < count; ++i, bit += w) {
    uint64_t word;
    std::memcpy(&word, data + (bit >> 3), sizeof(word));
    acc0 += ZigZagDecodeOne((word >> (bit & 7)) & mask);
  }
  return static_cast<int64_t>(acc0 + acc1);
}

void DeltaDecodeScalarImpl(const uint8_t* data, int bit_width, size_t begin,
                           size_t count, int64_t seed, int64_t* out) {
  if (bit_width == 0) {
    for (size_t i = 0; i < count; ++i) {
      out[i] = seed;
    }
    return;
  }
  // Chunked unpack + prefix sum through the existing kernels: the chunk
  // stays L1-resident and both passes are already unrolled.
  uint64_t deltas[512];
  size_t done = 0;
  while (done < count) {
    const size_t len = count - done < 512 ? count - done : 512;
    UnpackRangeWith(ScalarTable(), data, bit_width, begin + done, len,
                    deltas);
    ZigZagPrefixSumScalarImpl(deltas, len, seed, out + done);
    seed = out[done + len - 1];
    done += len;
  }
}


int64_t DeltaPointScalarImpl(const uint8_t* data, int bit_width,
                      const int64_t* checkpoints, int interval_shift,
                      size_t column_rows, size_t row) {
  // Nearest-checkpoint seek with the fold direction picked by
  // conditional select (no hard-to-predict branch before the fold).
  const size_t interval = size_t{1} << interval_shift;
  const size_t checkpoint = row >> interval_shift;
  const size_t checkpoint_row = checkpoint << interval_shift;
  const size_t next_row = checkpoint_row + interval;
  const size_t forward = row - checkpoint_row;
  const bool backward = forward > interval / 2 && next_row < column_rows;
  const size_t begin = backward ? row + 1 : checkpoint_row + 1;
  const size_t count = backward ? next_row - row : forward;
  const uint64_t anchor =
      static_cast<uint64_t>(checkpoints[checkpoint + (backward ? 1 : 0)]);
  const uint64_t sum =
      static_cast<uint64_t>(ZigZagSumPackedScalarImpl(data, bit_width, begin, count));
  return static_cast<int64_t>(anchor + (backward ? ~sum + 1 : sum));
}

void DeltaGatherScalarImpl(const uint8_t* data, int bit_width,
                           const int64_t* checkpoints, int interval_shift,
                           size_t column_rows, const uint32_t* rows,
                           size_t count, int64_t* out) {
  // Running-cursor walk over the selection; every gap is one fused
  // packed zig-zag fold, and a position that is closer to a checkpoint
  // than to the cursor (or behind the cursor) re-anchors through the
  // nearest checkpoint instead.
  const size_t interval = size_t{1} << interval_shift;
  size_t pos = 0;
  uint64_t value = 0;
  bool primed = false;
  for (size_t i = 0; i < count; ++i) {
    const size_t row = rows[i];
    const size_t checkpoint = row >> interval_shift;
    const size_t checkpoint_row = checkpoint << interval_shift;
    if (!primed || row < pos || checkpoint_row > pos) {
      const size_t next_row = checkpoint_row + interval;
      const size_t forward = row - checkpoint_row;
      if (forward <= interval / 2 || next_row >= column_rows) {
        value = static_cast<uint64_t>(checkpoints[checkpoint]) +
                static_cast<uint64_t>(ZigZagSumPackedScalarImpl(
                    data, bit_width, checkpoint_row + 1, forward));
      } else {
        value = static_cast<uint64_t>(checkpoints[checkpoint + 1]) -
                static_cast<uint64_t>(ZigZagSumPackedScalarImpl(
                    data, bit_width, row + 1, next_row - row));
      }
      pos = row;
      primed = true;
    } else if (row > pos) {
      value += static_cast<uint64_t>(
          ZigZagSumPackedScalarImpl(data, bit_width, pos + 1, row - pos));
      pos = row;
    }
    out[i] = static_cast<int64_t>(value);
  }
}

// Inline-checkpoint layout (see simd.h): window k = 8-byte absolute
// value of row k << shift, then `interval` bit-packed zig-zag delta
// slots; slot j covers row (k << shift) + 1 + j, so the last slot is the
// delta into the *next* window's checkpoint row and a backward seek
// never leaves the window's delta region.
int64_t DeltaPointInlineScalarImpl(const uint8_t* data, int bit_width,
                                   int interval_shift, size_t window_stride,
                                   size_t column_rows, size_t row) {
  const size_t interval = size_t{1} << interval_shift;
  const size_t k = row >> interval_shift;
  const uint8_t* window = data + k * window_stride;
  const size_t forward = row - (k << interval_shift);
  const size_t next_first = (k + 1) << interval_shift;
  const bool backward = forward > interval / 2 && next_first < column_rows;
  if (backward) {
    // Anchor on the next window's inline checkpoint (directly after this
    // window's delta region) and fold the remaining slots backward.
    uint64_t anchor;
    std::memcpy(&anchor, window + window_stride, sizeof(anchor));
    const uint64_t sum = static_cast<uint64_t>(ZigZagSumPackedScalarImpl(
        window + 8, bit_width, forward, interval - forward));
    return static_cast<int64_t>(anchor - sum);
  }
  uint64_t anchor;
  std::memcpy(&anchor, window, sizeof(anchor));
  const uint64_t sum = static_cast<uint64_t>(
      ZigZagSumPackedScalarImpl(window + 8, bit_width, 0, forward));
  return static_cast<int64_t>(anchor + sum);
}

void DeltaGatherInlineScalarImpl(const uint8_t* data, int bit_width,
                                 int interval_shift, size_t window_stride,
                                 size_t column_rows, const uint32_t* rows,
                                 size_t count, int64_t* out) {
  // Every position is one independent single-window fold. A running
  // cursor (as in the out-of-band gather) buys nothing here: the fold
  // is already bounded by interval/2 slots inside one window, and the
  // cursor's reuse-or-reanchor branch is data-dependent — at mid
  // densities it mispredicts ~50/50 and costs more than the fold it
  // skips (measured). Independent folds also pipeline across positions.
  for (size_t i = 0; i < count; ++i) {
    out[i] = DeltaPointInlineScalarImpl(data, bit_width, interval_shift,
                                        window_stride, column_rows, rows[i]);
  }
}

void ExpandRunsScalarImpl(const int64_t* run_values, const uint32_t* run_ends,
                          size_t run_begin, size_t row_begin, size_t count,
                          int64_t* out) {
  const size_t end = row_begin + count;
  size_t run = run_begin;
  size_t row = row_begin;
  while (row < end) {
    const size_t stop = run_ends[run] < end ? run_ends[run] : end;
    const int64_t v = run_values[run];
    size_t n = stop - row;
    int64_t* dst = out + (row - row_begin);
    // Word-at-a-time fill; the compiler widens this to vector stores.
    for (; n >= 4; n -= 4, dst += 4) {
      dst[0] = v;
      dst[1] = v;
      dst[2] = v;
      dst[3] = v;
    }
    for (; n > 0; --n, ++dst) {
      *dst = v;
    }
    row = stop;
    ++run;
  }
}

void GatherBitsScalarImpl(const uint8_t* data, int bit_width,
                          const uint32_t* rows, size_t count, uint64_t* out) {
  if (bit_width == 0) {
    std::memset(out, 0, count * sizeof(uint64_t));
    return;
  }
  const uint64_t mask = WidthMask(bit_width);
  if (bit_width > 57) {
    // A value can straddle 9 bytes; splice the tail from the next word.
    for (size_t i = 0; i < count; ++i) {
      const size_t bit_pos =
          static_cast<size_t>(rows[i]) * static_cast<size_t>(bit_width);
      const size_t byte = bit_pos >> 3;
      const int shift = static_cast<int>(bit_pos & 7);
      uint64_t word;
      std::memcpy(&word, data + byte, sizeof(word));
      uint64_t v = word >> shift;
      if (shift + bit_width > 64) {
        uint64_t next;
        std::memcpy(&next, data + byte + 8, sizeof(next));
        v |= next << (64 - shift);
      }
      out[i] = v & mask;
    }
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    const size_t bit_pos =
        static_cast<size_t>(rows[i]) * static_cast<size_t>(bit_width);
    uint64_t word;
    std::memcpy(&word, data + (bit_pos >> 3), sizeof(word));
    out[i] = (word >> (bit_pos & 7)) & mask;
  }
}

constexpr KernelTable MakeScalarTable() {
  KernelTable table{};
  for (int w = 0; w <= kMaxKernelWidth; ++w) {
    table.unpack64[w] = kScalarUnpack[static_cast<size_t>(w)];
  }
  table.filter_i64 = &FilterI64Scalar;
  table.filter_u64 = &FilterU64Scalar;
  table.sum_u64 = &SumU64ScalarImpl;
  table.minmax_i64 = &MinMaxI64ScalarImpl;
  table.minmax_u64 = &MinMaxU64ScalarImpl;
  table.translate_codes = &TranslateCodesScalarImpl;
  table.add_const = &AddConstScalarImpl;
  table.add_ref_base = &AddRefBaseScalarImpl;
  table.add_ref_zigzag = &AddRefZigZagScalarImpl;
  table.zigzag_prefix_sum = &ZigZagPrefixSumScalarImpl;
  table.zigzag_sum_packed = &ZigZagSumPackedScalarImpl;
  table.delta_decode = &DeltaDecodeScalarImpl;
  table.delta_point = &DeltaPointScalarImpl;
  table.delta_gather = &DeltaGatherScalarImpl;
  table.delta_point_inline = &DeltaPointInlineScalarImpl;
  table.delta_gather_inline = &DeltaGatherInlineScalarImpl;
  table.expand_runs = &ExpandRunsScalarImpl;
  table.gather_bits = &GatherBitsScalarImpl;
  table.name = "scalar";
  return table;
}

constexpr KernelTable kScalarTable = MakeScalarTable();

// Sequential-cursor decode for widths the kernel table does not cover
// (33..64) and for the sub-block head/tail of narrow widths.
void UnpackGeneric(const uint8_t* data, int bit_width, size_t begin,
                   size_t count, uint64_t* out) {
  const uint64_t mask = WidthMask(bit_width);
  size_t bit_pos = begin * static_cast<size_t>(bit_width);
  if (bit_width > 57) {
    // A value can straddle 9 bytes; splice the tail from the next word.
    for (size_t i = 0; i < count; ++i, bit_pos += bit_width) {
      const size_t byte = bit_pos >> 3;
      const int shift = static_cast<int>(bit_pos & 7);
      uint64_t word;
      std::memcpy(&word, data + byte, sizeof(word));
      uint64_t v = word >> shift;
      if (shift + bit_width > 64) {
        uint64_t next;
        std::memcpy(&next, data + byte + 8, sizeof(next));
        v |= next << (64 - shift);
      }
      out[i] = v & mask;
    }
    return;
  }
  for (size_t i = 0; i < count; ++i, bit_pos += bit_width) {
    uint64_t word;
    std::memcpy(&word, data + (bit_pos >> 3), sizeof(word));
    out[i] = (word >> (bit_pos & 7)) & mask;
  }
}

}  // namespace

const KernelTable& ScalarTable() { return kScalarTable; }

void UnpackRangeWith(const KernelTable& table, const uint8_t* data,
                     int bit_width, size_t begin, size_t count,
                     uint64_t* out) {
  if (count == 0) {
    return;
  }
  if (bit_width == 0) {
    std::memset(out, 0, count * sizeof(uint64_t));
    return;
  }
  if (bit_width > kMaxKernelWidth) {
    UnpackGeneric(data, bit_width, begin, count, out);
    return;
  }
  // Head: decode up to the next 64-value boundary, where the stream is
  // byte-aligned and the specialized kernels take over.
  const size_t misalign = begin % kUnpackBlock;
  if (misalign != 0) {
    const size_t head = kUnpackBlock - misalign < count
                            ? kUnpackBlock - misalign
                            : count;
    UnpackGeneric(data, bit_width, begin, head, out);
    begin += head;
    count -= head;
    out += head;
  }
  const Unpack64Fn kernel = table.unpack64[bit_width];
  while (count >= kUnpackBlock) {
    // begin is a multiple of 64, so begin * width is a whole byte count.
    kernel(data + ((begin * static_cast<size_t>(bit_width)) >> 3), out);
    begin += kUnpackBlock;
    count -= kUnpackBlock;
    out += kUnpackBlock;
  }
  if (count > 0) {
    UnpackGeneric(data, bit_width, begin, count, out);
  }
}

}  // namespace corra::simd::internal
