// AVX2 backend of the SIMD kernel layer. Compiled with -mavx2 (per-file
// compile flag in CMakeLists.txt); never executed unless runtime
// dispatch confirmed AVX2 support, and compiled out entirely under
// -DCORRA_FORCE_SCALAR=ON.
//
// Unpack kernels: a 64-value block of width W occupies exactly 8*W bytes
// starting byte-aligned, so all byte offsets, dword permutation indices,
// and lane shifts are compile-time constants per width. Each group of 4
// output values is produced by one 32-byte load, one vpermd that routes
// the two dwords covering each value into its 64-bit lane, one variable
// 64-bit shift, and one mask — ~5 instructions per 4 values, no scalar
// bit arithmetic in the loop.
//
// Predicate kernels: 8 values are compared per iteration (two 4-lane
// vpcmpgtq pairs), the sign bits become an 8-bit mask via movemask, and
// a 256-entry permutation table left-packs the matching row ids into the
// selection vector with a single vpermd + store. The store always writes
// 8 lanes; since matches <= elements processed, the slack stays inside
// the caller's count-sized buffer.
//
// Aggregate kernels: 4-lane accumulators, horizontal reduce once per
// call. AVX2 has no 64-bit min/max instruction, so min/max are a
// compare + blend pair (and the unsigned variants flip the sign bit to
// reuse the signed compare).

#if !defined(CORRA_FORCE_SCALAR) && defined(__x86_64__)

#include <immintrin.h>

#include <array>
#include <cstring>
#include <utility>

#include "common/simd/kernel_table.h"

namespace corra::simd::internal {

namespace {

constexpr uint64_t WidthMask(int width) {
  return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

// Unpacks values 4*G .. 4*G+3 of a 64-value block of width W starting at
// byte-aligned `in`.
template <int W, size_t G>
inline void UnpackGroup4(const uint8_t* in, uint64_t* out) {
  constexpr size_t base_bit = 4 * G * static_cast<size_t>(W);
  constexpr int r0 = static_cast<int>(base_bit & 7);
  // Lane l's value occupies bits [r0 + l*W, r0 + l*W + W) of the 32-byte
  // load; with W <= 32 that is always inside dwords q_l and q_l + 1, and
  // the in-lane shift s_l stays <= 31 so s_l + W <= 63 fits the lane.
  constexpr int q0 = (r0 + 0 * W) >> 5, s0 = (r0 + 0 * W) & 31;
  constexpr int q1 = (r0 + 1 * W) >> 5, s1 = (r0 + 1 * W) & 31;
  constexpr int q2 = (r0 + 2 * W) >> 5, s2 = (r0 + 2 * W) & 31;
  constexpr int q3 = (r0 + 3 * W) >> 5, s3 = (r0 + 3 * W) & 31;
  const __m256i raw = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(in + (base_bit >> 3)));
  const __m256i idx =
      _mm256_setr_epi32(q0, q0 + 1, q1, q1 + 1, q2, q2 + 1, q3, q3 + 1);
  const __m256i shifts = _mm256_setr_epi64x(s0, s1, s2, s3);
  const __m256i lanes = _mm256_permutevar8x32_epi32(raw, idx);
  const __m256i vals =
      _mm256_and_si256(_mm256_srlv_epi64(lanes, shifts),
                       _mm256_set1_epi64x(static_cast<int64_t>(WidthMask(W))));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * G), vals);
}

template <int W>
void Unpack64Avx2(const uint8_t* in, uint64_t* out) {
  if constexpr (W == 0) {
    std::memset(out, 0, kUnpackBlock * sizeof(uint64_t));
  } else {
    [&]<size_t... G>(std::index_sequence<G...>) {
      (UnpackGroup4<W, G>(in, out), ...);
    }(std::make_index_sequence<kUnpackBlock / 4>{});
  }
}

constexpr auto kAvx2Unpack =
    []<size_t... W>(std::index_sequence<W...>) {
      return std::array<Unpack64Fn, kMaxKernelWidth + 1>{
          &Unpack64Avx2<static_cast<int>(W)>...};
    }(std::make_index_sequence<kMaxKernelWidth + 1>{});

// 256-entry left-pack table: entry m lists the set bit positions of m
// first, so vpermd compacts the matching lanes' row ids to the front.
struct alignas(32) PermTable {
  int32_t perm[256][8];
};

constexpr PermTable MakePermTable() {
  PermTable t{};
  for (int m = 0; m < 256; ++m) {
    int n = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if (m & (1 << bit)) {
        t.perm[m][n++] = bit;
      }
    }
    for (int rest = 0; n < 8; ++n, ++rest) {
      t.perm[m][n] = rest;  // Don't-care lanes.
    }
  }
  return t;
}

constexpr PermTable kPermTable = MakePermTable();

// Shared core of the signed/unsigned filters: `bias` is XORed into both
// the values and the bounds before the signed compare (0 for signed,
// 1 << 63 to order unsigned inputs).
template <uint64_t Bias, typename T>
size_t FilterRangeAvx2(const T* values, size_t count, T lo, T hi,
                       uint32_t row_base, uint32_t* out_rows) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<int64_t>(Bias));
  const __m256i vlo = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<int64_t>(lo)), bias);
  const __m256i vhi = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<int64_t>(hi)), bias);
  size_t n = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i a = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        bias);
    const __m256i b = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 4)),
        bias);
    const __m256i bad_a = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, a),
                                          _mm256_cmpgt_epi64(a, vhi));
    const __m256i bad_b = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, b),
                                          _mm256_cmpgt_epi64(b, vhi));
    const int mask_a = _mm256_movemask_pd(_mm256_castsi256_pd(bad_a));
    const int mask_b = _mm256_movemask_pd(_mm256_castsi256_pd(bad_b));
    const unsigned good =
        static_cast<unsigned>(~(mask_a | (mask_b << 4))) & 0xFFu;
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPermTable.perm[good]));
    const __m256i lane_rows = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int32_t>(row_base + i)),
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
    // Write all 8 lanes; only the first popcount(good) are kept. n <= i
    // here, so the 8-lane store ends at most at index i + 8 <= count.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_rows + n),
                        _mm256_permutevar8x32_epi32(lane_rows, perm));
    n += static_cast<size_t>(__builtin_popcount(good));
  }
  for (; i < count; ++i) {
    out_rows[n] = row_base + static_cast<uint32_t>(i);
    const uint64_t v = static_cast<uint64_t>(values[i]);
    n += static_cast<size_t>(v - static_cast<uint64_t>(lo) <=
                             static_cast<uint64_t>(hi) -
                                 static_cast<uint64_t>(lo));
  }
  return n;
}

size_t FilterI64Avx2(const int64_t* values, size_t count, int64_t lo,
                     int64_t hi, uint32_t row_base, uint32_t* out_rows) {
  if (lo > hi) {
    return 0;
  }
  return FilterRangeAvx2<0>(values, count, lo, hi, row_base, out_rows);
}

size_t FilterU64Avx2(const uint64_t* codes, size_t count, uint64_t lo,
                     uint64_t hi, uint32_t row_base, uint32_t* out_rows) {
  if (lo > hi) {
    return 0;
  }
  return FilterRangeAvx2<uint64_t{1} << 63>(codes, count, lo, hi, row_base,
                                            out_rows);
}

uint64_t SumU64Avx2(const uint64_t* values, size_t count) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)));
    acc1 = _mm256_add_epi64(
        acc1,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 4)));
  }
  acc0 = _mm256_add_epi64(acc0, acc1);
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc0);
  uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < count; ++i) {
    sum += values[i];
  }
  return sum;
}

inline __m256i Min64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i Max64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

// `Bias` as in FilterRangeAvx2: flips unsigned inputs into signed order.
template <uint64_t Bias>
void MinMax64Avx2(const uint64_t* values, size_t count, uint64_t* out_min,
                  uint64_t* out_max) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<int64_t>(Bias));
  const uint64_t seed = values[0] ^ Bias;
  __m256i vmin = _mm256_set1_epi64x(static_cast<int64_t>(seed));
  __m256i vmax = vmin;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        bias);
    vmin = Min64(vmin, v);
    vmax = Max64(vmax, v);
  }
  alignas(32) int64_t mins[4];
  alignas(32) int64_t maxs[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(mins), vmin);
  _mm256_store_si256(reinterpret_cast<__m256i*>(maxs), vmax);
  int64_t lo = mins[0];
  int64_t hi = maxs[0];
  for (int lane = 1; lane < 4; ++lane) {
    lo = mins[lane] < lo ? mins[lane] : lo;
    hi = maxs[lane] > hi ? maxs[lane] : hi;
  }
  for (; i < count; ++i) {
    const int64_t v = static_cast<int64_t>(values[i] ^ Bias);
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  *out_min = static_cast<uint64_t>(lo) ^ Bias;
  *out_max = static_cast<uint64_t>(hi) ^ Bias;
}

void MinMaxI64Avx2(const int64_t* values, size_t count, int64_t* min,
                   int64_t* max) {
  MinMax64Avx2<0>(reinterpret_cast<const uint64_t*>(values), count,
                  reinterpret_cast<uint64_t*>(min),
                  reinterpret_cast<uint64_t*>(max));
}

void MinMaxU64Avx2(const uint64_t* values, size_t count, uint64_t* min,
                   uint64_t* max) {
  MinMax64Avx2<uint64_t{1} << 63>(values, count, min, max);
}

void TranslateCodesAvx2(const int64_t* dict, const uint64_t* codes,
                        size_t count, int64_t* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m256i vals = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(dict), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < count; ++i) {
    out[i] = dict[codes[i]];
  }
}

void AddConstAvx2(int64_t* values, size_t count, int64_t base) {
  const __m256i vbase = _mm256_set1_epi64x(base);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i* p = reinterpret_cast<__m256i*>(values + i);
    _mm256_storeu_si256(p, _mm256_add_epi64(_mm256_loadu_si256(p), vbase));
  }
  for (; i < count; ++i) {
    values[i] = static_cast<int64_t>(static_cast<uint64_t>(values[i]) +
                                     static_cast<uint64_t>(base));
  }
}

void AddRefBaseAvx2(const int64_t* ref, const uint64_t* deltas, int64_t base,
                    size_t count, int64_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(base);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ref + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(deltas + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(_mm256_add_epi64(r, vbase), d));
  }
  for (; i < count; ++i) {
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(ref[i]) +
                                  static_cast<uint64_t>(base) + deltas[i]);
  }
}

void AddRefZigZagAvx2(const int64_t* ref, const uint64_t* zigzag,
                      size_t count, int64_t* out) {
  const __m256i one = _mm256_set1_epi64x(1);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ref + i));
    const __m256i z =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zigzag + i));
    // ZigZagDecode(z) = (z >> 1) ^ -(z & 1).
    const __m256i half = _mm256_srli_epi64(z, 1);
    const __m256i sign = _mm256_sub_epi64(_mm256_setzero_si256(),
                                          _mm256_and_si256(z, one));
    const __m256i delta = _mm256_xor_si256(half, sign);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(r, delta));
  }
  for (; i < count; ++i) {
    const uint64_t z = zigzag[i];
    const uint64_t delta = (z >> 1) ^ (~(z & 1) + 1);
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(ref[i]) + delta);
  }
}

// Vector zig-zag decode: (z >> 1) ^ -(z & 1) per 64-bit lane.
inline __m256i ZigZagDecode4(__m256i z) {
  const __m256i half = _mm256_srli_epi64(z, 1);
  const __m256i sign = _mm256_sub_epi64(
      _mm256_setzero_si256(), _mm256_and_si256(z, _mm256_set1_epi64x(1)));
  return _mm256_xor_si256(half, sign);
}

// In-register inclusive prefix sum of 4 qword lanes:
// [a, b, c, d] -> [a, a+b, a+b+c, a+b+c+d].
inline __m256i PrefixSum4(__m256i d) {
  // Log-step within each 128-bit lane: [a, a+b | c, c+d].
  d = _mm256_add_epi64(d, _mm256_slli_si256(d, 8));
  // Carry the low lane's total (a+b) into the high lane.
  const __m256i low_total =
      _mm256_permute4x64_epi64(d, _MM_SHUFFLE(1, 1, 1, 1));
  return _mm256_add_epi64(
      d, _mm256_blend_epi32(_mm256_setzero_si256(), low_total, 0xF0));
}

void ZigZagPrefixSumAvx2(const uint64_t* zigzag, size_t count, int64_t seed,
                         int64_t* out) {
  // Two independent 4-lane prefix sums per iteration; the loop-carried
  // dependency is one add + one lane broadcast per 8 values instead of
  // one add per value.
  __m256i carry = _mm256_set1_epi64x(seed);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i p0 = PrefixSum4(ZigZagDecode4(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(zigzag + i))));
    const __m256i p1 = PrefixSum4(ZigZagDecode4(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(zigzag + i + 4))));
    const __m256i o0 = _mm256_add_epi64(p0, carry);
    const __m256i o1 = _mm256_add_epi64(
        p1, _mm256_permute4x64_epi64(o0, _MM_SHUFFLE(3, 3, 3, 3)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), o0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), o1);
    carry = _mm256_permute4x64_epi64(o1, _MM_SHUFFLE(3, 3, 3, 3));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), carry);
  uint64_t acc = lanes[0];
  for (; i < count; ++i) {
    const uint64_t z = zigzag[i];
    acc += (z >> 1) ^ (~(z & 1) + 1);
    out[i] = static_cast<int64_t>(acc);
  }
}

int64_t ZigZagSumPackedAvx2(const uint8_t* data, int bit_width, size_t begin,
                            size_t count) {
  if (bit_width == 0 || count == 0) {
    return 0;
  }
  const uint64_t mask = WidthMask(bit_width);
  const size_t w = static_cast<size_t>(bit_width);
  size_t bit = begin * w;
  size_t i = 0;
  uint64_t sum = 0;
  if (bit_width <= 14) {
    // Four consecutive values fit one 8-byte load (7 + 4*14 <= 63):
    // broadcast the word, shift each lane to its value, decode, add.
    const __m256i vmask = _mm256_set1_epi64x(static_cast<int64_t>(mask));
    const __m256i lane_shift = _mm256_setr_epi64x(
        0, bit_width, 2 * bit_width, 3 * bit_width);
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= count; i += 4, bit += 4 * w) {
      uint64_t word;
      std::memcpy(&word, data + (bit >> 3), sizeof(word));
      const __m256i shift = _mm256_add_epi64(
          _mm256_set1_epi64x(static_cast<int64_t>(bit & 7)), lane_shift);
      const __m256i v = _mm256_and_si256(
          _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<int64_t>(word)),
                            shift),
          vmask);
      acc = _mm256_add_epi64(acc, ZigZagDecode4(v));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  }
  if (bit_width <= 28) {
    // Widths 15..28 (and the narrow-width tail): two values per 8-byte
    // load, same shape as the scalar backend.
    uint64_t acc0 = 0;
    uint64_t acc1 = 0;
    for (; i + 2 <= count; i += 2, bit += 2 * w) {
      uint64_t word;
      std::memcpy(&word, data + (bit >> 3), sizeof(word));
      const int shift = static_cast<int>(bit & 7);
      const uint64_t z0 = (word >> shift) & mask;
      const uint64_t z1 = (word >> (shift + bit_width)) & mask;
      acc0 += (z0 >> 1) ^ (~(z0 & 1) + 1);
      acc1 += (z1 >> 1) ^ (~(z1 & 1) + 1);
    }
    sum += acc0 + acc1;
  }
  // Per-value tail, and the whole fold for widths > 28.
  for (; i < count; ++i, bit += w) {
    const size_t byte = bit >> 3;
    const int shift = static_cast<int>(bit & 7);
    uint64_t word;
    std::memcpy(&word, data + byte, sizeof(word));
    uint64_t v = word >> shift;
    if (bit_width > 57 && shift + bit_width > 64) {
      uint64_t next;
      std::memcpy(&next, data + byte + 8, sizeof(next));
      v |= next << (64 - shift);
    }
    v &= mask;
    sum += (v >> 1) ^ (~(v & 1) + 1);
  }
  return static_cast<int64_t>(sum);
}

void DeltaDecodeAvx2(const uint8_t* data, int bit_width, size_t begin,
                     size_t count, int64_t seed, int64_t* out) {
  if (bit_width == 0) {
    const __m256i v = _mm256_set1_epi64x(seed);
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    }
    for (; i < count; ++i) {
      out[i] = seed;
    }
    return;
  }
  const size_t w = static_cast<size_t>(bit_width);
  size_t i = 0;
  if (bit_width <= 14) {
    // Fully fused: 8 values per iteration come out of two 8-byte loads,
    // are zig-zag decoded and prefix-summed in registers, and stored —
    // the packed window never hits a scratch buffer. The loop-carried
    // carry is one add + one lane broadcast per 8 values.
    const __m256i vmask =
        _mm256_set1_epi64x(static_cast<int64_t>(WidthMask(bit_width)));
    const __m256i lane_shift = _mm256_setr_epi64x(
        0, bit_width, 2 * bit_width, 3 * bit_width);
    __m256i carry = _mm256_set1_epi64x(seed);
    size_t bit = begin * w;
    // The in-word phase repeats every iteration (the cursor advances by
    // 8*w bits, a whole byte count), so both shift vectors hoist out of
    // the loop.
    const __m256i sh0 = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<int64_t>(bit & 7)), lane_shift);
    const __m256i sh1 = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<int64_t>((bit + 4 * w) & 7)),
        lane_shift);
    for (; i + 8 <= count; i += 8, bit += 8 * w) {
      uint64_t word0;
      uint64_t word1;
      std::memcpy(&word0, data + (bit >> 3), sizeof(word0));
      std::memcpy(&word1, data + ((bit + 4 * w) >> 3), sizeof(word1));
      const __m256i z0 = _mm256_and_si256(
          _mm256_srlv_epi64(
              _mm256_set1_epi64x(static_cast<int64_t>(word0)), sh0),
          vmask);
      const __m256i z1 = _mm256_and_si256(
          _mm256_srlv_epi64(
              _mm256_set1_epi64x(static_cast<int64_t>(word1)), sh1),
          vmask);
      const __m256i p0 = PrefixSum4(ZigZagDecode4(z0));
      const __m256i p1 = PrefixSum4(ZigZagDecode4(z1));
      const __m256i o0 = _mm256_add_epi64(p0, carry);
      const __m256i o1 = _mm256_add_epi64(
          p1, _mm256_permute4x64_epi64(o0, _MM_SHUFFLE(3, 3, 3, 3)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), o0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), o1);
      carry = _mm256_permute4x64_epi64(o1, _MM_SHUFFLE(3, 3, 3, 3));
    }
    if (i > 0) {
      seed = out[i - 1];
    }
    // Scalar tail.
    uint64_t acc = static_cast<uint64_t>(seed);
    const uint64_t mask = WidthMask(bit_width);
    for (; i < count; ++i, bit += w) {
      uint64_t word;
      std::memcpy(&word, data + (bit >> 3), sizeof(word));
      const uint64_t z = (word >> (bit & 7)) & mask;
      acc += (z >> 1) ^ (~(z & 1) + 1);
      out[i] = static_cast<int64_t>(acc);
    }
    return;
  }
  // Wider deltas: chunked unpack through the specialized kernels, then
  // the in-register prefix sum.
  uint64_t deltas[512];
  while (i < count) {
    const size_t len = count - i < 512 ? count - i : 512;
    UnpackRangeWith(*Avx2Table(), data, bit_width, begin + i, len, deltas);
    ZigZagPrefixSumAvx2(deltas, len, seed, out + i);
    seed = out[i + len - 1];
    i += len;
  }
}


// Fold of exactly `fixed` delta slots starting at `begin`, with only the
// first `count` contributing (lane-index mask). The trip count depends
// only on `fixed` — constant for a given column — so the loop exit is
// perfectly predicted even though `count` varies per access; replay
// windows with data-dependent lengths would otherwise cost 2-3 branch
// mispredicts per point access. Caller guarantees begin + fixed <=
// column_rows (packed-stream reads stay inside the payload + pad),
// 1 <= bit_width <= 14, and fixed % 4 == 0.
template <size_t kIters>
int64_t MaskedZigZagFoldUnrolledAvx2(const uint8_t* data, int bit_width,
                                     size_t begin, size_t count) {
  const size_t w = static_cast<size_t>(bit_width);
  const __m256i vmask =
      _mm256_set1_epi64x(static_cast<int64_t>(WidthMask(bit_width)));
  const __m256i lane_shift =
      _mm256_setr_epi64x(0, bit_width, 2 * bit_width, 3 * bit_width);
  const __m256i vcount = _mm256_set1_epi64x(static_cast<int64_t>(count));
  const size_t begin_bit = begin * w;
  // The cursor advances 4*w bits per group, so the in-word phase
  // alternates with period two; both shift vectors hoist out.
  const __m256i sh[2] = {
      _mm256_add_epi64(
          _mm256_set1_epi64x(static_cast<int64_t>(begin_bit & 7)),
          lane_shift),
      _mm256_add_epi64(
          _mm256_set1_epi64x(static_cast<int64_t>((begin_bit + 4 * w) & 7)),
          lane_shift)};
  __m256i acc = _mm256_setzero_si256();
  [&]<size_t... K>(std::index_sequence<K...>) {
    ((acc = _mm256_add_epi64(
          acc,
          [&] {
            const size_t bit = begin_bit + 4 * K * w;
            uint64_t word;
            std::memcpy(&word, data + (bit >> 3), sizeof(word));
            const __m256i z = _mm256_and_si256(
                _mm256_srlv_epi64(
                    _mm256_set1_epi64x(static_cast<int64_t>(word)),
                    sh[K & 1]),
                vmask);
            const __m256i live = _mm256_cmpgt_epi64(
                vcount, _mm256_setr_epi64x(4 * K, 4 * K + 1, 4 * K + 2,
                                           4 * K + 3));
            return _mm256_and_si256(ZigZagDecode4(z), live);
          }())),
     ...);
  }(std::make_index_sequence<kIters>{});
  const __m128i halves = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                       _mm256_extracti128_si256(acc, 1));
  return _mm_cvtsi128_si64(
      _mm_add_epi64(halves, _mm_unpackhi_epi64(halves, halves)));
}

int64_t MaskedZigZagFoldAvx2(const uint8_t* data, int bit_width,
                             size_t begin, size_t count, size_t fixed) {
  // The default intervals' folds (16 and 32 slots, plus the inline
  // layout's 8-slot half-window) are fully unrolled with compile-time
  // lane indices; other fixed sizes take the generic loop (still a
  // constant trip count per column).
  if (fixed == 8) {
    return MaskedZigZagFoldUnrolledAvx2<2>(data, bit_width, begin, count);
  }
  if (fixed == 16) {
    return MaskedZigZagFoldUnrolledAvx2<4>(data, bit_width, begin, count);
  }
  if (fixed == 32) {
    return MaskedZigZagFoldUnrolledAvx2<8>(data, bit_width, begin, count);
  }
  const size_t w = static_cast<size_t>(bit_width);
  const __m256i vmask =
      _mm256_set1_epi64x(static_cast<int64_t>(WidthMask(bit_width)));
  const __m256i lane_shift =
      _mm256_setr_epi64x(0, bit_width, 2 * bit_width, 3 * bit_width);
  const __m256i vcount = _mm256_set1_epi64x(static_cast<int64_t>(count));
  __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i four = _mm256_set1_epi64x(4);
  __m256i acc = _mm256_setzero_si256();
  size_t bit = begin * w;
  for (size_t k = 0; k < fixed; k += 4, bit += 4 * w) {
    uint64_t word;
    std::memcpy(&word, data + (bit >> 3), sizeof(word));
    const __m256i shift = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<int64_t>(bit & 7)), lane_shift);
    const __m256i z = _mm256_and_si256(
        _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<int64_t>(word)),
                          shift),
        vmask);
    const __m256i live = _mm256_cmpgt_epi64(vcount, idx);
    acc = _mm256_add_epi64(acc, _mm256_and_si256(ZigZagDecode4(z), live));
    idx = _mm256_add_epi64(idx, four);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<int64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

int64_t DeltaPointAvx2(const uint8_t* data, int bit_width,
                      const int64_t* checkpoints, int interval_shift,
                      size_t column_rows, size_t row) {
  // Nearest-checkpoint seek with the fold direction picked by pure
  // arithmetic select: `backward` is 50/50 on uniform accesses, so a
  // data-dependent branch here would mispredict half the time and cost
  // more than the whole fold. The only remaining branch (the stream-end
  // fallback) is taken for a handful of rows per column.
  const size_t interval = size_t{1} << interval_shift;
  const size_t checkpoint = row >> interval_shift;
  const size_t checkpoint_row = checkpoint << interval_shift;
  const size_t next_row = checkpoint_row + interval;
  const size_t forward = row - checkpoint_row;
  const size_t backward = static_cast<size_t>(
      static_cast<size_t>(forward > interval / 2) &
      static_cast<size_t>(next_row < column_rows));
  // Arithmetic selects, not ternaries: gcc lowers these flag-multiplies
  // to branch-free code, while the equivalent ternaries compiled to a
  // 50/50-mispredicting branch and cost ~4 ns/access (measured).
  const size_t begin = checkpoint_row + 1 + backward * forward;
  const size_t count = forward + backward * (interval - 2 * forward);
  const uint64_t anchor =
      static_cast<uint64_t>(checkpoints[checkpoint + backward]);
  const size_t fixed = interval / 2;
  // The masked path needs count <= fixed; the last interval's forward
  // replay can exceed it (no next checkpoint to seek back from).
  uint64_t sum;
  if (bit_width >= 1 && bit_width <= 14 && count <= fixed &&
      begin + fixed <= column_rows) [[likely]] {
    sum = static_cast<uint64_t>(
        MaskedZigZagFoldAvx2(data, bit_width, begin, count, fixed));
  } else {
    sum = static_cast<uint64_t>(
        ZigZagSumPackedAvx2(data, bit_width, begin, count));
  }
  // Negate the fold for a backward seek: value = next_checkpoint - sum.
  const uint64_t sign = 0 - static_cast<uint64_t>(backward);
  return static_cast<int64_t>(anchor + ((sum ^ sign) - sign));
}

int64_t DeltaPointInlineAvx2(const uint8_t* data, int bit_width,
                             int interval_shift, size_t window_stride,
                             size_t column_rows, size_t row) {
  // Inline-checkpoint layout (see simd.h): the anchor and the replay
  // slots live in one fixed-stride window, so the whole access is one
  // contiguous touch. Direction is picked by the same arithmetic select
  // as DeltaPointAvx2 (a data-dependent branch here is 50/50 on uniform
  // accesses and costs more than the fold).
  const size_t interval = size_t{1} << interval_shift;
  const size_t k = row >> interval_shift;
  const uint8_t* window = data + k * window_stride;
  const size_t forward = row - (k << interval_shift);
  const size_t next_first = (k + 1) << interval_shift;
  const size_t backward =
      static_cast<size_t>(static_cast<size_t>(forward > interval / 2) &
                          static_cast<size_t>(next_first < column_rows));
  const size_t begin = backward * forward;
  const size_t count = forward + backward * (interval - 2 * forward);
  uint64_t anchor;
  std::memcpy(&anchor, window + backward * window_stride, sizeof(anchor));
  const size_t fixed = interval / 2;
  uint64_t sum;
  // The masked fixed-trip fold may read up to begin + fixed slots; every
  // window (including the last) occupies its full stride and a backward
  // seek implies a successor window, so those reads stay inside the
  // allocation for any begin the select can produce.
  if (bit_width >= 1 && bit_width <= 14 && count <= fixed) [[likely]] {
    sum = static_cast<uint64_t>(
        MaskedZigZagFoldAvx2(window + 8, bit_width, begin, count, fixed));
  } else {
    sum = static_cast<uint64_t>(
        ZigZagSumPackedAvx2(window + 8, bit_width, begin, count));
  }
  const uint64_t sign = 0 - static_cast<uint64_t>(backward);
  return static_cast<int64_t>(anchor + ((sum ^ sign) - sign));
}

void DeltaGatherInlineAvx2(const uint8_t* data, int bit_width,
                           int interval_shift, size_t window_stride,
                           size_t column_rows, const uint32_t* rows,
                           size_t count, int64_t* out) {
  // Every position is one independent single-window fold (inlined — no
  // dispatch inside the loop). A running cursor buys nothing on this
  // layout: the fold is already bounded by interval/2 in-window slots,
  // and the cursor's reuse-or-reanchor branch mispredicts ~50/50 at mid
  // densities (measured ~18 vs ~6 ns/row at 10% selectivity). The
  // branch-free independent folds also pipeline across positions.
  for (size_t i = 0; i < count; ++i) {
    out[i] = DeltaPointInlineAvx2(data, bit_width, interval_shift,
                                  window_stride, column_rows, rows[i]);
  }
}

void DeltaGatherAvx2(const uint8_t* data, int bit_width,
                     const int64_t* checkpoints, int interval_shift,
                     size_t column_rows, const uint32_t* rows, size_t count,
                     int64_t* out) {
  // Same running-cursor walk as the scalar backend; the per-gap folds
  // land on the vectorized ZigZagSumPackedAvx2 (inlined — no dispatch
  // inside the loop).
  const size_t interval = size_t{1} << interval_shift;
  size_t pos = 0;
  uint64_t value = 0;
  bool primed = false;
  for (size_t i = 0; i < count; ++i) {
    const size_t row = rows[i];
    const size_t checkpoint = row >> interval_shift;
    const size_t checkpoint_row = checkpoint << interval_shift;
    if (!primed || row < pos || checkpoint_row > pos) {
      const size_t next_row = checkpoint_row + interval;
      const size_t forward = row - checkpoint_row;
      if (forward <= interval / 2 || next_row >= column_rows) {
        value = static_cast<uint64_t>(checkpoints[checkpoint]) +
                static_cast<uint64_t>(ZigZagSumPackedAvx2(
                    data, bit_width, checkpoint_row + 1, forward));
      } else {
        value = static_cast<uint64_t>(checkpoints[checkpoint + 1]) -
                static_cast<uint64_t>(ZigZagSumPackedAvx2(
                    data, bit_width, row + 1, next_row - row));
      }
      pos = row;
      primed = true;
    } else if (row > pos) {
      value += static_cast<uint64_t>(
          ZigZagSumPackedAvx2(data, bit_width, pos + 1, row - pos));
      pos = row;
    }
    out[i] = static_cast<int64_t>(value);
  }
}

void ExpandRunsAvx2(const int64_t* run_values, const uint32_t* run_ends,
                    size_t run_begin, size_t row_begin, size_t count,
                    int64_t* out) {
  const size_t end = row_begin + count;
  size_t run = run_begin;
  size_t row = row_begin;
  while (row < end) {
    const size_t stop = run_ends[run] < end ? run_ends[run] : end;
    const int64_t value = run_values[run];
    const __m256i v = _mm256_set1_epi64x(value);
    int64_t* dst = out + (row - row_begin);
    const size_t n = stop - row;
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j), v);
    }
    for (; j < n; ++j) {
      dst[j] = value;
    }
    row = stop;
    ++run;
  }
}

void GatherBitsAvx2(const uint8_t* data, int bit_width, const uint32_t* rows,
                    size_t count, uint64_t* out) {
  if (bit_width == 0) {
    std::memset(out, 0, count * sizeof(uint64_t));
    return;
  }
  const uint64_t mask = WidthMask(bit_width);
  if (bit_width > 57) {
    // shift + width can exceed the 8-byte load window; splice scalar.
    for (size_t i = 0; i < count; ++i) {
      const size_t bit_pos =
          static_cast<size_t>(rows[i]) * static_cast<size_t>(bit_width);
      const size_t byte = bit_pos >> 3;
      const int shift = static_cast<int>(bit_pos & 7);
      uint64_t word;
      std::memcpy(&word, data + byte, sizeof(word));
      uint64_t v = word >> shift;
      if (shift + bit_width > 64) {
        uint64_t next;
        std::memcpy(&next, data + byte + 8, sizeof(next));
        v |= next << (64 - shift);
      }
      out[i] = v & mask;
    }
    return;
  }
  // 4 positions per iteration: bit offsets via a 32x32->64 multiply
  // (rows < 2^32, width <= 57, so the product fits), one vpgatherqq of
  // the 8-byte windows, one variable shift, one mask. shift <= 7 and
  // width <= 57 keep every value inside its gathered qword.
  const __m256i vmask = _mm256_set1_epi64x(static_cast<int64_t>(mask));
  const __m256i vwidth = _mm256_set1_epi64x(bit_width);
  const __m256i vseven = _mm256_set1_epi64x(7);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i idx32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    const __m256i rows64 = _mm256_cvtepu32_epi64(idx32);
    const __m256i bit_pos = _mm256_mul_epu32(rows64, vwidth);
    const __m256i byte = _mm256_srli_epi64(bit_pos, 3);
    const __m256i shift = _mm256_and_si256(bit_pos, vseven);
    const __m256i words = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(data), byte, 1);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_and_si256(_mm256_srlv_epi64(words, shift), vmask));
  }
  for (; i < count; ++i) {
    const size_t bit_pos =
        static_cast<size_t>(rows[i]) * static_cast<size_t>(bit_width);
    uint64_t word;
    std::memcpy(&word, data + (bit_pos >> 3), sizeof(word));
    out[i] = (word >> (bit_pos & 7)) & mask;
  }
}

constexpr KernelTable MakeAvx2Table() {
  KernelTable table{};
  for (int w = 0; w <= kMaxKernelWidth; ++w) {
    table.unpack64[w] = kAvx2Unpack[static_cast<size_t>(w)];
  }
  table.filter_i64 = &FilterI64Avx2;
  table.filter_u64 = &FilterU64Avx2;
  table.sum_u64 = &SumU64Avx2;
  table.minmax_i64 = &MinMaxI64Avx2;
  table.minmax_u64 = &MinMaxU64Avx2;
  table.translate_codes = &TranslateCodesAvx2;
  table.add_const = &AddConstAvx2;
  table.add_ref_base = &AddRefBaseAvx2;
  table.add_ref_zigzag = &AddRefZigZagAvx2;
  table.zigzag_prefix_sum = &ZigZagPrefixSumAvx2;
  table.zigzag_sum_packed = &ZigZagSumPackedAvx2;
  table.delta_decode = &DeltaDecodeAvx2;
  table.delta_point = &DeltaPointAvx2;
  table.delta_gather = &DeltaGatherAvx2;
  table.delta_point_inline = &DeltaPointInlineAvx2;
  table.delta_gather_inline = &DeltaGatherInlineAvx2;
  table.expand_runs = &ExpandRunsAvx2;
  table.gather_bits = &GatherBitsAvx2;
  table.name = "avx2";
  return table;
}

constexpr KernelTable kAvx2Table = MakeAvx2Table();

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace corra::simd::internal

#else  // CORRA_FORCE_SCALAR or non-x86 target: no AVX2 table.

#include "common/simd/kernel_table.h"

namespace corra::simd::internal {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace corra::simd::internal

#endif
