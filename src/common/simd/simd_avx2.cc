// AVX2 backend of the SIMD kernel layer. Compiled with -mavx2 (per-file
// compile flag in CMakeLists.txt); never executed unless runtime
// dispatch confirmed AVX2 support, and compiled out entirely under
// -DCORRA_FORCE_SCALAR=ON.
//
// Unpack kernels: a 64-value block of width W occupies exactly 8*W bytes
// starting byte-aligned, so all byte offsets, dword permutation indices,
// and lane shifts are compile-time constants per width. Each group of 4
// output values is produced by one 32-byte load, one vpermd that routes
// the two dwords covering each value into its 64-bit lane, one variable
// 64-bit shift, and one mask — ~5 instructions per 4 values, no scalar
// bit arithmetic in the loop.
//
// Predicate kernels: 8 values are compared per iteration (two 4-lane
// vpcmpgtq pairs), the sign bits become an 8-bit mask via movemask, and
// a 256-entry permutation table left-packs the matching row ids into the
// selection vector with a single vpermd + store. The store always writes
// 8 lanes; since matches <= elements processed, the slack stays inside
// the caller's count-sized buffer.
//
// Aggregate kernels: 4-lane accumulators, horizontal reduce once per
// call. AVX2 has no 64-bit min/max instruction, so min/max are a
// compare + blend pair (and the unsigned variants flip the sign bit to
// reuse the signed compare).

#if !defined(CORRA_FORCE_SCALAR) && defined(__x86_64__)

#include <immintrin.h>

#include <array>
#include <cstring>
#include <utility>

#include "common/simd/kernel_table.h"

namespace corra::simd::internal {

namespace {

constexpr uint64_t WidthMask(int width) {
  return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

// Unpacks values 4*G .. 4*G+3 of a 64-value block of width W starting at
// byte-aligned `in`.
template <int W, size_t G>
inline void UnpackGroup4(const uint8_t* in, uint64_t* out) {
  constexpr size_t base_bit = 4 * G * static_cast<size_t>(W);
  constexpr int r0 = static_cast<int>(base_bit & 7);
  // Lane l's value occupies bits [r0 + l*W, r0 + l*W + W) of the 32-byte
  // load; with W <= 32 that is always inside dwords q_l and q_l + 1, and
  // the in-lane shift s_l stays <= 31 so s_l + W <= 63 fits the lane.
  constexpr int q0 = (r0 + 0 * W) >> 5, s0 = (r0 + 0 * W) & 31;
  constexpr int q1 = (r0 + 1 * W) >> 5, s1 = (r0 + 1 * W) & 31;
  constexpr int q2 = (r0 + 2 * W) >> 5, s2 = (r0 + 2 * W) & 31;
  constexpr int q3 = (r0 + 3 * W) >> 5, s3 = (r0 + 3 * W) & 31;
  const __m256i raw = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(in + (base_bit >> 3)));
  const __m256i idx =
      _mm256_setr_epi32(q0, q0 + 1, q1, q1 + 1, q2, q2 + 1, q3, q3 + 1);
  const __m256i shifts = _mm256_setr_epi64x(s0, s1, s2, s3);
  const __m256i lanes = _mm256_permutevar8x32_epi32(raw, idx);
  const __m256i vals =
      _mm256_and_si256(_mm256_srlv_epi64(lanes, shifts),
                       _mm256_set1_epi64x(static_cast<int64_t>(WidthMask(W))));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * G), vals);
}

template <int W>
void Unpack64Avx2(const uint8_t* in, uint64_t* out) {
  if constexpr (W == 0) {
    std::memset(out, 0, kUnpackBlock * sizeof(uint64_t));
  } else {
    [&]<size_t... G>(std::index_sequence<G...>) {
      (UnpackGroup4<W, G>(in, out), ...);
    }(std::make_index_sequence<kUnpackBlock / 4>{});
  }
}

constexpr auto kAvx2Unpack =
    []<size_t... W>(std::index_sequence<W...>) {
      return std::array<Unpack64Fn, kMaxKernelWidth + 1>{
          &Unpack64Avx2<static_cast<int>(W)>...};
    }(std::make_index_sequence<kMaxKernelWidth + 1>{});

// 256-entry left-pack table: entry m lists the set bit positions of m
// first, so vpermd compacts the matching lanes' row ids to the front.
struct alignas(32) PermTable {
  int32_t perm[256][8];
};

constexpr PermTable MakePermTable() {
  PermTable t{};
  for (int m = 0; m < 256; ++m) {
    int n = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if (m & (1 << bit)) {
        t.perm[m][n++] = bit;
      }
    }
    for (int rest = 0; n < 8; ++n, ++rest) {
      t.perm[m][n] = rest;  // Don't-care lanes.
    }
  }
  return t;
}

constexpr PermTable kPermTable = MakePermTable();

// Shared core of the signed/unsigned filters: `bias` is XORed into both
// the values and the bounds before the signed compare (0 for signed,
// 1 << 63 to order unsigned inputs).
template <uint64_t Bias, typename T>
size_t FilterRangeAvx2(const T* values, size_t count, T lo, T hi,
                       uint32_t row_base, uint32_t* out_rows) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<int64_t>(Bias));
  const __m256i vlo = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<int64_t>(lo)), bias);
  const __m256i vhi = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<int64_t>(hi)), bias);
  size_t n = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i a = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        bias);
    const __m256i b = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 4)),
        bias);
    const __m256i bad_a = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, a),
                                          _mm256_cmpgt_epi64(a, vhi));
    const __m256i bad_b = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, b),
                                          _mm256_cmpgt_epi64(b, vhi));
    const int mask_a = _mm256_movemask_pd(_mm256_castsi256_pd(bad_a));
    const int mask_b = _mm256_movemask_pd(_mm256_castsi256_pd(bad_b));
    const unsigned good =
        static_cast<unsigned>(~(mask_a | (mask_b << 4))) & 0xFFu;
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPermTable.perm[good]));
    const __m256i lane_rows = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int32_t>(row_base + i)),
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
    // Write all 8 lanes; only the first popcount(good) are kept. n <= i
    // here, so the 8-lane store ends at most at index i + 8 <= count.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_rows + n),
                        _mm256_permutevar8x32_epi32(lane_rows, perm));
    n += static_cast<size_t>(__builtin_popcount(good));
  }
  for (; i < count; ++i) {
    out_rows[n] = row_base + static_cast<uint32_t>(i);
    const uint64_t v = static_cast<uint64_t>(values[i]);
    n += static_cast<size_t>(v - static_cast<uint64_t>(lo) <=
                             static_cast<uint64_t>(hi) -
                                 static_cast<uint64_t>(lo));
  }
  return n;
}

size_t FilterI64Avx2(const int64_t* values, size_t count, int64_t lo,
                     int64_t hi, uint32_t row_base, uint32_t* out_rows) {
  if (lo > hi) {
    return 0;
  }
  return FilterRangeAvx2<0>(values, count, lo, hi, row_base, out_rows);
}

size_t FilterU64Avx2(const uint64_t* codes, size_t count, uint64_t lo,
                     uint64_t hi, uint32_t row_base, uint32_t* out_rows) {
  if (lo > hi) {
    return 0;
  }
  return FilterRangeAvx2<uint64_t{1} << 63>(codes, count, lo, hi, row_base,
                                            out_rows);
}

uint64_t SumU64Avx2(const uint64_t* values, size_t count) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)));
    acc1 = _mm256_add_epi64(
        acc1,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 4)));
  }
  acc0 = _mm256_add_epi64(acc0, acc1);
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc0);
  uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < count; ++i) {
    sum += values[i];
  }
  return sum;
}

inline __m256i Min64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i Max64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

// `Bias` as in FilterRangeAvx2: flips unsigned inputs into signed order.
template <uint64_t Bias>
void MinMax64Avx2(const uint64_t* values, size_t count, uint64_t* out_min,
                  uint64_t* out_max) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<int64_t>(Bias));
  const uint64_t seed = values[0] ^ Bias;
  __m256i vmin = _mm256_set1_epi64x(static_cast<int64_t>(seed));
  __m256i vmax = vmin;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        bias);
    vmin = Min64(vmin, v);
    vmax = Max64(vmax, v);
  }
  alignas(32) int64_t mins[4];
  alignas(32) int64_t maxs[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(mins), vmin);
  _mm256_store_si256(reinterpret_cast<__m256i*>(maxs), vmax);
  int64_t lo = mins[0];
  int64_t hi = maxs[0];
  for (int lane = 1; lane < 4; ++lane) {
    lo = mins[lane] < lo ? mins[lane] : lo;
    hi = maxs[lane] > hi ? maxs[lane] : hi;
  }
  for (; i < count; ++i) {
    const int64_t v = static_cast<int64_t>(values[i] ^ Bias);
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  *out_min = static_cast<uint64_t>(lo) ^ Bias;
  *out_max = static_cast<uint64_t>(hi) ^ Bias;
}

void MinMaxI64Avx2(const int64_t* values, size_t count, int64_t* min,
                   int64_t* max) {
  MinMax64Avx2<0>(reinterpret_cast<const uint64_t*>(values), count,
                  reinterpret_cast<uint64_t*>(min),
                  reinterpret_cast<uint64_t*>(max));
}

void MinMaxU64Avx2(const uint64_t* values, size_t count, uint64_t* min,
                   uint64_t* max) {
  MinMax64Avx2<uint64_t{1} << 63>(values, count, min, max);
}

void TranslateCodesAvx2(const int64_t* dict, const uint64_t* codes,
                        size_t count, int64_t* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m256i vals = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(dict), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < count; ++i) {
    out[i] = dict[codes[i]];
  }
}

void AddConstAvx2(int64_t* values, size_t count, int64_t base) {
  const __m256i vbase = _mm256_set1_epi64x(base);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i* p = reinterpret_cast<__m256i*>(values + i);
    _mm256_storeu_si256(p, _mm256_add_epi64(_mm256_loadu_si256(p), vbase));
  }
  for (; i < count; ++i) {
    values[i] = static_cast<int64_t>(static_cast<uint64_t>(values[i]) +
                                     static_cast<uint64_t>(base));
  }
}

void AddRefBaseAvx2(const int64_t* ref, const uint64_t* deltas, int64_t base,
                    size_t count, int64_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(base);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ref + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(deltas + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(_mm256_add_epi64(r, vbase), d));
  }
  for (; i < count; ++i) {
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(ref[i]) +
                                  static_cast<uint64_t>(base) + deltas[i]);
  }
}

void AddRefZigZagAvx2(const int64_t* ref, const uint64_t* zigzag,
                      size_t count, int64_t* out) {
  const __m256i one = _mm256_set1_epi64x(1);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ref + i));
    const __m256i z =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zigzag + i));
    // ZigZagDecode(z) = (z >> 1) ^ -(z & 1).
    const __m256i half = _mm256_srli_epi64(z, 1);
    const __m256i sign = _mm256_sub_epi64(_mm256_setzero_si256(),
                                          _mm256_and_si256(z, one));
    const __m256i delta = _mm256_xor_si256(half, sign);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(r, delta));
  }
  for (; i < count; ++i) {
    const uint64_t z = zigzag[i];
    const uint64_t delta = (z >> 1) ^ (~(z & 1) + 1);
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(ref[i]) + delta);
  }
}

constexpr KernelTable MakeAvx2Table() {
  KernelTable table{};
  for (int w = 0; w <= kMaxKernelWidth; ++w) {
    table.unpack64[w] = kAvx2Unpack[static_cast<size_t>(w)];
  }
  table.filter_i64 = &FilterI64Avx2;
  table.filter_u64 = &FilterU64Avx2;
  table.sum_u64 = &SumU64Avx2;
  table.minmax_i64 = &MinMaxI64Avx2;
  table.minmax_u64 = &MinMaxU64Avx2;
  table.translate_codes = &TranslateCodesAvx2;
  table.add_const = &AddConstAvx2;
  table.add_ref_base = &AddRefBaseAvx2;
  table.add_ref_zigzag = &AddRefZigZagAvx2;
  table.name = "avx2";
  return table;
}

constexpr KernelTable kAvx2Table = MakeAvx2Table();

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace corra::simd::internal

#else  // CORRA_FORCE_SCALAR or non-x86 target: no AVX2 table.

#include "common/simd/kernel_table.h"

namespace corra::simd::internal {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace corra::simd::internal

#endif
