// The SIMD kernel layer: the branchless building blocks every morsel of
// the batch decode pipeline bottoms out in.
//
// Three kernel families, each with an AVX2 implementation selected by
// runtime CPU dispatch and an unrolled scalar fallback:
//
//   * Unpack kernels  — per-bit-width specialized bit-unpackers (widths
//     0..32 via a generated kernel table processing 64 values per call;
//     a generic sequential-cursor path covers 33..64). BitReader::
//     DecodeRange is a thin wrapper over UnpackRange, so BitPack, FOR,
//     Dict, Delta, DFOR, Diff and every other bit-packed scheme inherit
//     the same kernels.
//   * Predicate kernels — range compares producing selection-vector
//     positions directly (compare -> movemask -> permutation-table
//     left-pack), used by query/filter.cc in value space and — for
//     FOR/Dict — in *code* space with the predicate rebased, so
//     non-matching morsels are never reconstructed.
//   * Aggregate kernels — 4-lane sum/min/max folds with one horizontal
//     reduce per call, used by query/aggregate.cc.
//
// Dispatch: the first call probes the CPU once. The environment variable
// CORRA_FORCE_SCALAR (any value but "0") forces the scalar table at run
// time; building with -DCORRA_FORCE_SCALAR=ON compiles the AVX2 table
// out entirely. Every kernel also has a *Scalar twin so tests can prove
// the two paths agree bit-for-bit in a single process.
//
// Alignment contract: packed buffers must carry bit_util::kDecodePadBytes
// (32) readable bytes past the payload — BitWriter::Finish and every
// Deserialize allocate them — because the AVX2 unpackers issue full
// 32-byte loads whose tails may cross the last packed byte.

#ifndef CORRA_COMMON_SIMD_SIMD_H_
#define CORRA_COMMON_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace corra::simd {

/// Kernel backend picked by runtime dispatch.
enum class Backend {
  kScalar,
  kAvx2,
};

/// The backend the dispatched kernels run on (resolved once per process).
Backend ActiveBackend();

/// Human-readable name of the active backend ("scalar" / "avx2").
const char* BackendName();

// --- Unpack kernels ---------------------------------------------------------

/// Unpacks `count` fixed-width values starting at value index `begin`
/// from the bit-packed stream `data` (width 0..64, values laid out back
/// to back from bit 0, as written by BitWriter). `data` must include
/// bit_util::kDecodePadBytes of readable slack past the payload.
void UnpackRange(const uint8_t* data, int bit_width, size_t begin,
                 size_t count, uint64_t* out);

/// Forced-scalar twin of UnpackRange (equivalence tests, diagnostics).
void UnpackRangeScalar(const uint8_t* data, int bit_width, size_t begin,
                       size_t count, uint64_t* out);

// --- Predicate kernels ------------------------------------------------------

/// Writes the row ids `row_base + i` of every `values[i]` in [lo, hi]
/// to `out_rows` (ascending) and returns how many matched. `out_rows`
/// must hold `count` entries; the kernel never writes past the slot of
/// the last processed element's potential match.
size_t FilterInRange(const int64_t* values, size_t count, int64_t lo,
                     int64_t hi, uint32_t row_base, uint32_t* out_rows);
size_t FilterInRangeScalar(const int64_t* values, size_t count, int64_t lo,
                           int64_t hi, uint32_t row_base,
                           uint32_t* out_rows);

/// Unsigned variant for code-space predicates (FOR offsets, Dict codes):
/// matches codes[i] in [lo, hi] with full-range uint64 compares.
size_t FilterInRangeU64(const uint64_t* codes, size_t count, uint64_t lo,
                        uint64_t hi, uint32_t row_base, uint32_t* out_rows);
size_t FilterInRangeU64Scalar(const uint64_t* codes, size_t count,
                              uint64_t lo, uint64_t hi, uint32_t row_base,
                              uint32_t* out_rows);

// --- Aggregate kernels ------------------------------------------------------

/// Sum with wrap-around (two's complement: also the correct int64 sum).
uint64_t SumU64(const uint64_t* values, size_t count);
uint64_t SumU64Scalar(const uint64_t* values, size_t count);

/// Min and max of a non-empty span in one pass (count >= 1).
void MinMaxI64(const int64_t* values, size_t count, int64_t* min,
               int64_t* max);
void MinMaxI64Scalar(const int64_t* values, size_t count, int64_t* min,
                     int64_t* max);
void MinMaxU64(const uint64_t* values, size_t count, uint64_t* min,
               uint64_t* max);
void MinMaxU64Scalar(const uint64_t* values, size_t count, uint64_t* min,
                     uint64_t* max);

// --- Value-reconstruction kernels -------------------------------------------

/// out[i] = dict[codes[i]] — the per-morsel dictionary gather. Codes
/// must be < the dictionary size.
void TranslateCodes(const int64_t* dict, const uint64_t* codes, size_t count,
                    int64_t* out);
void TranslateCodesScalar(const int64_t* dict, const uint64_t* codes,
                          size_t count, int64_t* out);

/// values[i] += base in place — the FOR rebase pass.
void AddConst(int64_t* values, size_t count, int64_t base);
void AddConstScalar(int64_t* values, size_t count, int64_t base);

/// out[i] = ref[i] + base + (int64)deltas[i] — the Diff (raw/window) and
/// DFOR reconstruction: reference morsel plus unpacked diff codes.
void AddRefAndBase(const int64_t* ref, const uint64_t* deltas, int64_t base,
                   size_t count, int64_t* out);
void AddRefAndBaseScalar(const int64_t* ref, const uint64_t* deltas,
                         int64_t base, size_t count, int64_t* out);

/// out[i] = ref[i] + ZigZagDecode(zigzag[i]) — the Diff zig-zag mode.
void AddRefZigZag(const int64_t* ref, const uint64_t* zigzag, size_t count,
                  int64_t* out);
void AddRefZigZagScalar(const int64_t* ref, const uint64_t* zigzag,
                        size_t count, int64_t* out);

}  // namespace corra::simd

#endif  // CORRA_COMMON_SIMD_SIMD_H_
