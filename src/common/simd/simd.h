// The SIMD kernel layer: the branchless building blocks every morsel of
// the batch decode pipeline bottoms out in.
//
// Three kernel families, each with an AVX2 implementation selected by
// runtime CPU dispatch and an unrolled scalar fallback:
//
//   * Unpack kernels  — per-bit-width specialized bit-unpackers (widths
//     0..32 via a generated kernel table processing 64 values per call;
//     a generic sequential-cursor path covers 33..64). BitReader::
//     DecodeRange is a thin wrapper over UnpackRange, so BitPack, FOR,
//     Dict, Delta, DFOR, Diff and every other bit-packed scheme inherit
//     the same kernels.
//   * Predicate kernels — range compares producing selection-vector
//     positions directly (compare -> movemask -> permutation-table
//     left-pack), used by query/filter.cc in value space and — for
//     FOR/Dict — in *code* space with the predicate rebased, so
//     non-matching morsels are never reconstructed.
//   * Aggregate kernels — 4-lane sum/min/max folds with one horizontal
//     reduce per call, used by query/aggregate.cc.
//
// Dispatch: the first call probes the CPU once. The environment variable
// CORRA_FORCE_SCALAR (any value but "0") forces the scalar table at run
// time; building with -DCORRA_FORCE_SCALAR=ON compiles the AVX2 table
// out entirely. Every kernel also has a *Scalar twin so tests can prove
// the two paths agree bit-for-bit in a single process.
//
// Alignment contract: packed buffers must carry bit_util::kDecodePadBytes
// (32) readable bytes past the payload — BitWriter::Finish and every
// Deserialize allocate them — because the AVX2 unpackers issue full
// 32-byte loads whose tails may cross the last packed byte.

#ifndef CORRA_COMMON_SIMD_SIMD_H_
#define CORRA_COMMON_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace corra::simd {

/// Kernel backend picked by runtime dispatch.
enum class Backend {
  kScalar,
  kAvx2,
};

/// The backend the dispatched kernels run on (resolved once per process).
Backend ActiveBackend();

/// Human-readable name of the active backend ("scalar" / "avx2").
const char* BackendName();

// --- Unpack kernels ---------------------------------------------------------

/// Unpacks `count` fixed-width values starting at value index `begin`
/// from the bit-packed stream `data` (width 0..64, values laid out back
/// to back from bit 0, as written by BitWriter). `data` must include
/// bit_util::kDecodePadBytes of readable slack past the payload.
void UnpackRange(const uint8_t* data, int bit_width, size_t begin,
                 size_t count, uint64_t* out);

/// Forced-scalar twin of UnpackRange (equivalence tests, diagnostics).
void UnpackRangeScalar(const uint8_t* data, int bit_width, size_t begin,
                       size_t count, uint64_t* out);

// --- Predicate kernels ------------------------------------------------------

/// Writes the row ids `row_base + i` of every `values[i]` in [lo, hi]
/// to `out_rows` (ascending) and returns how many matched. `out_rows`
/// must hold `count` entries; the kernel never writes past the slot of
/// the last processed element's potential match.
size_t FilterInRange(const int64_t* values, size_t count, int64_t lo,
                     int64_t hi, uint32_t row_base, uint32_t* out_rows);
size_t FilterInRangeScalar(const int64_t* values, size_t count, int64_t lo,
                           int64_t hi, uint32_t row_base,
                           uint32_t* out_rows);

/// Unsigned variant for code-space predicates (FOR offsets, Dict codes):
/// matches codes[i] in [lo, hi] with full-range uint64 compares.
size_t FilterInRangeU64(const uint64_t* codes, size_t count, uint64_t lo,
                        uint64_t hi, uint32_t row_base, uint32_t* out_rows);
size_t FilterInRangeU64Scalar(const uint64_t* codes, size_t count,
                              uint64_t lo, uint64_t hi, uint32_t row_base,
                              uint32_t* out_rows);

// --- Aggregate kernels ------------------------------------------------------

/// Sum with wrap-around (two's complement: also the correct int64 sum).
uint64_t SumU64(const uint64_t* values, size_t count);
uint64_t SumU64Scalar(const uint64_t* values, size_t count);

/// Min and max of a non-empty span in one pass (count >= 1).
void MinMaxI64(const int64_t* values, size_t count, int64_t* min,
               int64_t* max);
void MinMaxI64Scalar(const int64_t* values, size_t count, int64_t* min,
                     int64_t* max);
void MinMaxU64(const uint64_t* values, size_t count, uint64_t* min,
               uint64_t* max);
void MinMaxU64Scalar(const uint64_t* values, size_t count, uint64_t* min,
                     uint64_t* max);

// --- Value-reconstruction kernels -------------------------------------------

/// out[i] = dict[codes[i]] — the per-morsel dictionary gather. Codes
/// must be < the dictionary size.
void TranslateCodes(const int64_t* dict, const uint64_t* codes, size_t count,
                    int64_t* out);
void TranslateCodesScalar(const int64_t* dict, const uint64_t* codes,
                          size_t count, int64_t* out);

/// values[i] += base in place — the FOR rebase pass.
void AddConst(int64_t* values, size_t count, int64_t base);
void AddConstScalar(int64_t* values, size_t count, int64_t base);

/// out[i] = ref[i] + base + (int64)deltas[i] — the Diff (raw/window) and
/// DFOR reconstruction: reference morsel plus unpacked diff codes.
void AddRefAndBase(const int64_t* ref, const uint64_t* deltas, int64_t base,
                   size_t count, int64_t* out);
void AddRefAndBaseScalar(const int64_t* ref, const uint64_t* deltas,
                         int64_t base, size_t count, int64_t* out);

/// out[i] = ref[i] + ZigZagDecode(zigzag[i]) — the Diff zig-zag mode.
void AddRefZigZag(const int64_t* ref, const uint64_t* zigzag, size_t count,
                  int64_t* out);
void AddRefZigZagScalar(const int64_t* ref, const uint64_t* zigzag,
                        size_t count, int64_t* out);

// --- Sparse-decode kernels ------------------------------------------------

/// out[i] = seed + ZigZagDecode(zigzag[0]) + ... + ZigZagDecode(zigzag[i])
/// (wrap-around arithmetic) — the Delta reconstruction: a running prefix
/// sum over zig-zag deltas seeded with a checkpoint value. The AVX2
/// backend runs a log-step in-register prefix sum (shift-add within the
/// 128-bit lanes, then a cross-lane carry broadcast), so the loop-carried
/// dependency is per 8 values instead of per value.
void ZigZagPrefixSum(const uint64_t* zigzag, size_t count, int64_t seed,
                     int64_t* out);
void ZigZagPrefixSumScalar(const uint64_t* zigzag, size_t count, int64_t seed,
                           int64_t* out);

/// Wrap-around sum of ZigZagDecode over `count` consecutive values of the
/// bit-packed stream, starting at value index `begin` — the Delta
/// point-access fold (checkpoint + fold of the replay window), fused with
/// the unpack so the replay never materializes: narrow widths (<= 14)
/// decode four values per 8-byte load with one variable shift, medium
/// widths (<= 28) two per load, and the whole fold is ~3 instructions per
/// delta. `data` must carry bit_util::kDecodePadBytes of readable slack.
int64_t ZigZagSumPacked(const uint8_t* data, int bit_width, size_t begin,
                        size_t count);
int64_t ZigZagSumPackedScalar(const uint8_t* data, int bit_width,
                              size_t begin, size_t count);

/// Expands run-length runs into the dense row range [row_begin,
/// row_begin + count): run r covers rows [run_ends[r-1], run_ends[r]),
/// and `run_begin` must be the run containing row_begin. Runs are
/// emitted with full-width broadcast stores instead of a per-row loop.
void ExpandRuns(const int64_t* run_values, const uint32_t* run_ends,
                size_t run_begin, size_t row_begin, size_t count,
                int64_t* out);
void ExpandRunsScalar(const int64_t* run_values, const uint32_t* run_ends,
                      size_t run_begin, size_t row_begin, size_t count,
                      int64_t* out);

/// Fused Delta range decode: out[i] = seed + ZigZagDecode(delta[begin]) +
/// ... + ZigZagDecode(delta[begin + i]) for i in [0, count), reading the
/// deltas straight from the bit-packed stream (unpack, zig-zag decode,
/// and log-step prefix sum in one pass — the packed window is never
/// materialized). `data` must carry bit_util::kDecodePadBytes of slack.
void DeltaDecodePacked(const uint8_t* data, int bit_width, size_t begin,
                       size_t count, int64_t seed, int64_t* out);
void DeltaDecodePackedScalar(const uint8_t* data, int bit_width, size_t begin,
                             size_t count, int64_t seed, int64_t* out);

/// Signature of the per-backend Delta point kernel (DeltaPointPacked).
using DeltaPointFn = int64_t (*)(const uint8_t* data, int bit_width,
                                 const int64_t* checkpoints,
                                 int interval_shift, size_t column_rows,
                                 size_t row);

/// The active backend's Delta point kernel, for callers that cache the
/// resolved pointer next to their column state: point access is the one
/// kernel invoked per *row* rather than per range, so the wrapper hop
/// and dispatch-table load are a measurable share of its budget.
DeltaPointFn ResolveDeltaPointKernel();

/// Single-row Delta point access: the reconstructed value at `row` of a
/// checkpointed zig-zag delta stream (same layout as DeltaGatherPacked).
/// Seeks from the *nearest* checkpoint — a forward fold from the
/// covering checkpoint or a backward fold from the next one — with the
/// direction chosen by conditional select, so the expected replay is
/// interval/4 deltas and the only hard-to-predict branch is the fold's
/// loop exit.
int64_t DeltaPointPacked(const uint8_t* data, int bit_width,
                         const int64_t* checkpoints, int interval_shift,
                         size_t column_rows, size_t row);
int64_t DeltaPointPackedScalar(const uint8_t* data, int bit_width,
                               const int64_t* checkpoints, int interval_shift,
                               size_t column_rows, size_t row);

/// Batched Delta sparse gather: out[i] = the reconstructed value at row
/// rows[i] of a checkpointed zig-zag delta stream. `checkpoints[k]` is
/// the absolute value at row k << interval_shift; `column_rows` is the
/// stream's total row count. The whole selection walk runs inside one
/// kernel call: a running (position, value) cursor advances by fused
/// packed zig-zag folds over each gap, re-anchoring through the nearest
/// checkpoint (forward or backward) whenever that is closer — so the
/// per-row cost is bounded by interval/2 deltas and there is no
/// per-position call overhead. Tolerates out-of-order positions (they
/// re-anchor). `data` must carry bit_util::kDecodePadBytes of slack.
void DeltaGatherPacked(const uint8_t* data, int bit_width,
                       const int64_t* checkpoints, int interval_shift,
                       size_t column_rows, const uint32_t* rows, size_t count,
                       int64_t* out);
void DeltaGatherPackedScalar(const uint8_t* data, int bit_width,
                             const int64_t* checkpoints, int interval_shift,
                             size_t column_rows, const uint32_t* rows,
                             size_t count, int64_t* out);

// --- Inline-checkpoint Delta kernels ----------------------------------------
//
// Wire/memory layout shared by the kernels below (the DeltaColumn
// "inline" layout): the stream is an array of fixed-stride windows, one
// per checkpoint interval. Window k starts at byte k * window_stride and
// holds
//
//   [ 8-byte little-endian absolute value of row k << interval_shift ]
//   [ interval zig-zag delta slots, bit-packed from bit 0: slot j is
//     the delta of row (k << interval_shift) + 1 + j ]
//
// window_stride = 8 + RoundUpPow2(CeilDiv(interval * bit_width, 8), 8),
// so every window's checkpoint load is 8-byte aligned relative to the
// stream base and the whole window (checkpoint + expected replay) sits
// in one contiguous cache line for typical widths at interval 32. The
// last slot of window k is the delta *into* row (k+1) << interval_shift,
// so a backward seek folds entirely inside window k and anchors on the
// next window's head — one contiguous touch either direction, where the
// out-of-band layout pays two dependent lines (checkpoint array +
// packed stream). Every window, including a partial last one, occupies
// the full stride (unused slots are zero), and the stream must carry
// bit_util::kDecodePadBytes of readable slack past the last window.

/// Signature of the per-backend inline-layout Delta point kernel.
using DeltaPointInlineFn = int64_t (*)(const uint8_t* data, int bit_width,
                                       int interval_shift,
                                       size_t window_stride,
                                       size_t column_rows, size_t row);

/// The active backend's inline-layout point kernel (same caching
/// rationale as ResolveDeltaPointKernel).
DeltaPointInlineFn ResolveDeltaPointInlineKernel();

/// Single-row point access on the inline-checkpoint layout: one window
/// address computation, one in-window checkpoint load, one fused masked
/// fold over at most interval/2 delta slots — no out-of-band metadata is
/// ever touched.
int64_t DeltaPointInline(const uint8_t* data, int bit_width,
                         int interval_shift, size_t window_stride,
                         size_t column_rows, size_t row);
int64_t DeltaPointInlineScalar(const uint8_t* data, int bit_width,
                               int interval_shift, size_t window_stride,
                               size_t column_rows, size_t row);

/// Batched sparse gather on the inline-checkpoint layout: out[i] = the
/// reconstructed value at rows[i], each position one independent
/// single-window fold through the nearest inline checkpoint (forward or
/// backward). No cursor state: the fold is already bounded by
/// interval/2 in-window slots, a reuse-or-reanchor branch would
/// mispredict at mid densities, and independent folds pipeline across
/// positions. Order-immune (out-of-order and duplicate positions cost
/// nothing extra).
void DeltaGatherInline(const uint8_t* data, int bit_width,
                       int interval_shift, size_t window_stride,
                       size_t column_rows, const uint32_t* rows, size_t count,
                       int64_t* out);
void DeltaGatherInlineScalar(const uint8_t* data, int bit_width,
                             int interval_shift, size_t window_stride,
                             size_t column_rows, const uint32_t* rows,
                             size_t count, int64_t* out);

/// Positioned gather from a bit-packed stream: out[i] = the value at
/// position rows[i] (width 0..64; rows need not be sorted). This is the
/// selection-driven counterpart of UnpackRange — selected values are
/// reconstructed directly from their bit offsets (vpgatherqq + variable
/// shift on AVX2), never materializing the rows in between. `data` must
/// carry bit_util::kDecodePadBytes of readable slack.
void GatherBits(const uint8_t* data, int bit_width, const uint32_t* rows,
                size_t count, uint64_t* out);
void GatherBitsScalar(const uint8_t* data, int bit_width,
                      const uint32_t* rows, size_t count, uint64_t* out);

}  // namespace corra::simd

#endif  // CORRA_COMMON_SIMD_SIMD_H_
