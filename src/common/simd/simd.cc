// Runtime dispatch of the SIMD kernel layer: probe the CPU once, honor
// the CORRA_FORCE_SCALAR escape hatch, and expose the public kernels as
// thin wrappers over the selected table.

#include "common/simd/simd.h"

#include <cstdlib>
#include <cstring>

#include "common/simd/kernel_table.h"

namespace corra::simd {

namespace internal {

namespace {

bool ForceScalarFromEnv() {
  // Set to anything but "0" — including the empty string — to force the
  // scalar table, matching the documented contract in simd.h.
  const char* value = std::getenv("CORRA_FORCE_SCALAR");
  return value != nullptr && std::strcmp(value, "0") != 0;
}

bool CpuHasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelTable& SelectTable() {
  if (const KernelTable* avx2 = Avx2Table();
      avx2 != nullptr && CpuHasAvx2() && !ForceScalarFromEnv()) {
    return *avx2;
  }
  return ScalarTable();
}

}  // namespace

const KernelTable& ActiveTable() {
  // Resolved once; every later call is a single load.
  static const KernelTable& table = SelectTable();
  return table;
}

}  // namespace internal

using internal::ActiveTable;
using internal::ScalarTable;

Backend ActiveBackend() {
  return &ActiveTable() == &ScalarTable() ? Backend::kScalar : Backend::kAvx2;
}

const char* BackendName() { return ActiveTable().name; }

void UnpackRange(const uint8_t* data, int bit_width, size_t begin,
                 size_t count, uint64_t* out) {
  internal::UnpackRangeWith(ActiveTable(), data, bit_width, begin, count,
                            out);
}

void UnpackRangeScalar(const uint8_t* data, int bit_width, size_t begin,
                       size_t count, uint64_t* out) {
  internal::UnpackRangeWith(ScalarTable(), data, bit_width, begin, count,
                            out);
}

size_t FilterInRange(const int64_t* values, size_t count, int64_t lo,
                     int64_t hi, uint32_t row_base, uint32_t* out_rows) {
  return ActiveTable().filter_i64(values, count, lo, hi, row_base, out_rows);
}

size_t FilterInRangeScalar(const int64_t* values, size_t count, int64_t lo,
                           int64_t hi, uint32_t row_base,
                           uint32_t* out_rows) {
  return ScalarTable().filter_i64(values, count, lo, hi, row_base, out_rows);
}

size_t FilterInRangeU64(const uint64_t* codes, size_t count, uint64_t lo,
                        uint64_t hi, uint32_t row_base, uint32_t* out_rows) {
  return ActiveTable().filter_u64(codes, count, lo, hi, row_base, out_rows);
}

size_t FilterInRangeU64Scalar(const uint64_t* codes, size_t count,
                              uint64_t lo, uint64_t hi, uint32_t row_base,
                              uint32_t* out_rows) {
  return ScalarTable().filter_u64(codes, count, lo, hi, row_base, out_rows);
}

uint64_t SumU64(const uint64_t* values, size_t count) {
  return ActiveTable().sum_u64(values, count);
}

uint64_t SumU64Scalar(const uint64_t* values, size_t count) {
  return ScalarTable().sum_u64(values, count);
}

void MinMaxI64(const int64_t* values, size_t count, int64_t* min,
               int64_t* max) {
  ActiveTable().minmax_i64(values, count, min, max);
}

void MinMaxI64Scalar(const int64_t* values, size_t count, int64_t* min,
                     int64_t* max) {
  ScalarTable().minmax_i64(values, count, min, max);
}

void MinMaxU64(const uint64_t* values, size_t count, uint64_t* min,
               uint64_t* max) {
  ActiveTable().minmax_u64(values, count, min, max);
}

void MinMaxU64Scalar(const uint64_t* values, size_t count, uint64_t* min,
                     uint64_t* max) {
  ScalarTable().minmax_u64(values, count, min, max);
}

void TranslateCodes(const int64_t* dict, const uint64_t* codes, size_t count,
                    int64_t* out) {
  ActiveTable().translate_codes(dict, codes, count, out);
}

void TranslateCodesScalar(const int64_t* dict, const uint64_t* codes,
                          size_t count, int64_t* out) {
  ScalarTable().translate_codes(dict, codes, count, out);
}

void AddConst(int64_t* values, size_t count, int64_t base) {
  ActiveTable().add_const(values, count, base);
}

void AddConstScalar(int64_t* values, size_t count, int64_t base) {
  ScalarTable().add_const(values, count, base);
}

void AddRefAndBase(const int64_t* ref, const uint64_t* deltas, int64_t base,
                   size_t count, int64_t* out) {
  ActiveTable().add_ref_base(ref, deltas, base, count, out);
}

void AddRefAndBaseScalar(const int64_t* ref, const uint64_t* deltas,
                         int64_t base, size_t count, int64_t* out) {
  ScalarTable().add_ref_base(ref, deltas, base, count, out);
}

void AddRefZigZag(const int64_t* ref, const uint64_t* zigzag, size_t count,
                  int64_t* out) {
  ActiveTable().add_ref_zigzag(ref, zigzag, count, out);
}

void AddRefZigZagScalar(const int64_t* ref, const uint64_t* zigzag,
                        size_t count, int64_t* out) {
  ScalarTable().add_ref_zigzag(ref, zigzag, count, out);
}

void ZigZagPrefixSum(const uint64_t* zigzag, size_t count, int64_t seed,
                     int64_t* out) {
  ActiveTable().zigzag_prefix_sum(zigzag, count, seed, out);
}

void ZigZagPrefixSumScalar(const uint64_t* zigzag, size_t count, int64_t seed,
                           int64_t* out) {
  ScalarTable().zigzag_prefix_sum(zigzag, count, seed, out);
}

int64_t ZigZagSumPacked(const uint8_t* data, int bit_width, size_t begin,
                        size_t count) {
  return ActiveTable().zigzag_sum_packed(data, bit_width, begin, count);
}

int64_t ZigZagSumPackedScalar(const uint8_t* data, int bit_width,
                              size_t begin, size_t count) {
  return ScalarTable().zigzag_sum_packed(data, bit_width, begin, count);
}

void DeltaDecodePacked(const uint8_t* data, int bit_width, size_t begin,
                       size_t count, int64_t seed, int64_t* out) {
  ActiveTable().delta_decode(data, bit_width, begin, count, seed, out);
}

void DeltaDecodePackedScalar(const uint8_t* data, int bit_width, size_t begin,
                             size_t count, int64_t seed, int64_t* out) {
  ScalarTable().delta_decode(data, bit_width, begin, count, seed, out);
}

DeltaPointFn ResolveDeltaPointKernel() { return ActiveTable().delta_point; }

int64_t DeltaPointPacked(const uint8_t* data, int bit_width,
                         const int64_t* checkpoints, int interval_shift,
                         size_t column_rows, size_t row) {
  return ActiveTable().delta_point(data, bit_width, checkpoints,
                                   interval_shift, column_rows, row);
}

int64_t DeltaPointPackedScalar(const uint8_t* data, int bit_width,
                               const int64_t* checkpoints, int interval_shift,
                               size_t column_rows, size_t row) {
  return ScalarTable().delta_point(data, bit_width, checkpoints,
                                   interval_shift, column_rows, row);
}

void DeltaGatherPacked(const uint8_t* data, int bit_width,
                       const int64_t* checkpoints, int interval_shift,
                       size_t column_rows, const uint32_t* rows, size_t count,
                       int64_t* out) {
  ActiveTable().delta_gather(data, bit_width, checkpoints, interval_shift,
                             column_rows, rows, count, out);
}

void DeltaGatherPackedScalar(const uint8_t* data, int bit_width,
                             const int64_t* checkpoints, int interval_shift,
                             size_t column_rows, const uint32_t* rows,
                             size_t count, int64_t* out) {
  ScalarTable().delta_gather(data, bit_width, checkpoints, interval_shift,
                             column_rows, rows, count, out);
}

DeltaPointInlineFn ResolveDeltaPointInlineKernel() {
  return ActiveTable().delta_point_inline;
}

int64_t DeltaPointInline(const uint8_t* data, int bit_width,
                         int interval_shift, size_t window_stride,
                         size_t column_rows, size_t row) {
  return ActiveTable().delta_point_inline(data, bit_width, interval_shift,
                                          window_stride, column_rows, row);
}

int64_t DeltaPointInlineScalar(const uint8_t* data, int bit_width,
                               int interval_shift, size_t window_stride,
                               size_t column_rows, size_t row) {
  return ScalarTable().delta_point_inline(data, bit_width, interval_shift,
                                          window_stride, column_rows, row);
}

void DeltaGatherInline(const uint8_t* data, int bit_width,
                       int interval_shift, size_t window_stride,
                       size_t column_rows, const uint32_t* rows, size_t count,
                       int64_t* out) {
  ActiveTable().delta_gather_inline(data, bit_width, interval_shift,
                                    window_stride, column_rows, rows, count,
                                    out);
}

void DeltaGatherInlineScalar(const uint8_t* data, int bit_width,
                             int interval_shift, size_t window_stride,
                             size_t column_rows, const uint32_t* rows,
                             size_t count, int64_t* out) {
  ScalarTable().delta_gather_inline(data, bit_width, interval_shift,
                                    window_stride, column_rows, rows, count,
                                    out);
}

void ExpandRuns(const int64_t* run_values, const uint32_t* run_ends,
                size_t run_begin, size_t row_begin, size_t count,
                int64_t* out) {
  ActiveTable().expand_runs(run_values, run_ends, run_begin, row_begin,
                            count, out);
}

void ExpandRunsScalar(const int64_t* run_values, const uint32_t* run_ends,
                      size_t run_begin, size_t row_begin, size_t count,
                      int64_t* out) {
  ScalarTable().expand_runs(run_values, run_ends, run_begin, row_begin,
                            count, out);
}

void GatherBits(const uint8_t* data, int bit_width, const uint32_t* rows,
                size_t count, uint64_t* out) {
  ActiveTable().gather_bits(data, bit_width, rows, count, out);
}

void GatherBitsScalar(const uint8_t* data, int bit_width,
                      const uint32_t* rows, size_t count, uint64_t* out) {
  ScalarTable().gather_bits(data, bit_width, rows, count, out);
}

}  // namespace corra::simd
