// Internal dispatch table of the SIMD kernel layer (see simd.h).
//
// One KernelTable per backend: simd_scalar.cc always provides one,
// simd_avx2.cc provides one unless compiled out (CORRA_FORCE_SCALAR
// build option or a non-x86 target). simd.cc picks the active table
// once per process.

#ifndef CORRA_COMMON_SIMD_KERNEL_TABLE_H_
#define CORRA_COMMON_SIMD_KERNEL_TABLE_H_

#include <cstddef>
#include <cstdint>

namespace corra::simd::internal {

/// Unpacks exactly 64 values of a fixed width (the table index) from the
/// byte-aligned position `in`. 64 values x W bits = 8*W bytes, so every
/// 64-value block of a packed stream starts on a byte boundary — the
/// property that lets the kernels be specialized per width with all bit
/// positions known at compile time.
using Unpack64Fn = void (*)(const uint8_t* in, uint64_t* out);

/// Widths served by the specialized 64-value kernels; wider values take
/// the generic sequential-cursor path.
inline constexpr int kMaxKernelWidth = 32;

/// Values per specialized unpack kernel call.
inline constexpr size_t kUnpackBlock = 64;

struct KernelTable {
  Unpack64Fn unpack64[kMaxKernelWidth + 1];  // Indexed by bit width.
  size_t (*filter_i64)(const int64_t*, size_t, int64_t, int64_t, uint32_t,
                       uint32_t*);
  size_t (*filter_u64)(const uint64_t*, size_t, uint64_t, uint64_t, uint32_t,
                       uint32_t*);
  uint64_t (*sum_u64)(const uint64_t*, size_t);
  void (*minmax_i64)(const int64_t*, size_t, int64_t*, int64_t*);
  void (*minmax_u64)(const uint64_t*, size_t, uint64_t*, uint64_t*);
  void (*translate_codes)(const int64_t*, const uint64_t*, size_t, int64_t*);
  void (*add_const)(int64_t*, size_t, int64_t);
  void (*add_ref_base)(const int64_t*, const uint64_t*, int64_t, size_t,
                       int64_t*);
  void (*add_ref_zigzag)(const int64_t*, const uint64_t*, size_t, int64_t*);
  void (*zigzag_prefix_sum)(const uint64_t*, size_t, int64_t, int64_t*);
  int64_t (*zigzag_sum_packed)(const uint8_t*, int, size_t, size_t);
  void (*delta_decode)(const uint8_t*, int, size_t, size_t, int64_t,
                       int64_t*);
  int64_t (*delta_point)(const uint8_t*, int, const int64_t*, int, size_t,
                         size_t);
  void (*delta_gather)(const uint8_t*, int, const int64_t*, int, size_t,
                       const uint32_t*, size_t, int64_t*);
  int64_t (*delta_point_inline)(const uint8_t*, int, int, size_t, size_t,
                                size_t);
  void (*delta_gather_inline)(const uint8_t*, int, int, size_t, size_t,
                              const uint32_t*, size_t, int64_t*);
  void (*expand_runs)(const int64_t*, const uint32_t*, size_t, size_t,
                      size_t, int64_t*);
  void (*gather_bits)(const uint8_t*, int, const uint32_t*, size_t,
                      uint64_t*);
  const char* name;
};

/// The always-available unrolled scalar table.
const KernelTable& ScalarTable();

/// The AVX2 table, or nullptr when compiled out.
const KernelTable* Avx2Table();

/// The table runtime dispatch selected (CPU probe + CORRA_FORCE_SCALAR).
const KernelTable& ActiveTable();

/// Shared driver: scalar head until the next 64-value boundary, then the
/// table's specialized kernel per full block, then a scalar tail. Widths
/// outside [1, kMaxKernelWidth] take the generic path.
void UnpackRangeWith(const KernelTable& table, const uint8_t* data,
                     int bit_width, size_t begin, size_t count,
                     uint64_t* out);

}  // namespace corra::simd::internal

#endif  // CORRA_COMMON_SIMD_KERNEL_TABLE_H_
