// Clang Thread Safety Analysis attributes, CORRA_-prefixed.
//
// These macros turn the repo's locking disciplines — which previously
// lived in comments like "Caller holds shard.mu" — into contracts the
// compiler checks on every Clang build (-Wthread-safety, promoted to an
// error in the static-analysis CI job):
//
//   * CORRA_GUARDED_BY(mu)   on a field: reads and writes require mu.
//   * CORRA_REQUIRES(mu)     on a function: callers must hold mu.
//   * CORRA_ACQUIRE/RELEASE  on lock/unlock-shaped functions.
//   * CORRA_EXCLUDES(mu)     on a function: callers must NOT hold mu
//                            (self-deadlock documentation).
//
// Under GCC (or any compiler without the attributes) every macro
// expands to nothing, so annotated code compiles identically everywhere
// and the wrappers in common/mutex.h stay zero-overhead.
//
// CORRA_NO_THREAD_SAFETY_ANALYSIS is the audited escape hatch for the
// few shapes the analysis cannot follow (e.g. BlockCache::GetStats
// taking a dynamic number of shard locks at once). Every use must carry
// a why-comment; scripts/corra_lint.py keeps new bare std::mutex uses
// out of src/ so coverage cannot silently erode.

#ifndef CORRA_COMMON_THREAD_ANNOTATIONS_H_
#define CORRA_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define CORRA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CORRA_THREAD_ANNOTATION_(x)  // No-op outside Clang.
#endif

/// Marks a type as a lockable capability ("mutex").
#define CORRA_CAPABILITY(x) CORRA_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define CORRA_SCOPED_CAPABILITY CORRA_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be touched while holding the given mutex.
#define CORRA_GUARDED_BY(x) CORRA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the given mutex.
#define CORRA_PT_GUARDED_BY(x) CORRA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and still
/// held on exit).
#define CORRA_REQUIRES(...) \
  CORRA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit).
#define CORRA_ACQUIRE(...) \
  CORRA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define CORRA_RELEASE(...) \
  CORRA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define CORRA_TRY_ACQUIRE(...) \
  CORRA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (the function acquires
/// them itself; holding one on entry would self-deadlock).
#define CORRA_EXCLUDES(...) \
  CORRA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (for the analysis, not at runtime) that the capability is
/// held — for code reached only while locked in ways the analysis
/// cannot prove.
#define CORRA_ASSERT_CAPABILITY(x) \
  CORRA_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability.
#define CORRA_RETURN_CAPABILITY(x) CORRA_THREAD_ANNOTATION_(lock_returned(x))

/// Audited opt-out: the function's locking is correct but beyond the
/// analysis (dynamic lock sets, lock handoff). Every use carries a
/// why-comment.
#define CORRA_NO_THREAD_SAFETY_ANALYSIS \
  CORRA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CORRA_COMMON_THREAD_ANNOTATIONS_H_
