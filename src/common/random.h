// Deterministic pseudo-random number generation for data generators and
// benchmarks. Uses xoshiro256** (public domain, Blackman & Vigna): fast,
// high quality, and reproducible across platforms — std::mt19937 plus
// std::uniform_int_distribution is not bit-stable across standard libraries.

#ifndef CORRA_COMMON_RANDOM_H_
#define CORRA_COMMON_RANDOM_H_

#include <cstdint>

namespace corra {

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Satisfies std::uniform_random_bit_generator so Rng can drive
  /// std::shuffle and friends.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return Next(); }

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace corra

#endif  // CORRA_COMMON_RANDOM_H_
