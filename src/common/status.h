// Error model for Corra: a lightweight, Arrow-style Status object.
//
// Corra never throws exceptions on data paths. Fallible operations return
// `Status` (or `Result<T>`, see result.h) and callers propagate errors with
// the CORRA_RETURN_NOT_OK / CORRA_ASSIGN_OR_RETURN macros.

#ifndef CORRA_COMMON_STATUS_H_
#define CORRA_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace corra {

/// Machine-readable category of an error.
enum class StatusCode : int {
  kOk = 0,
  /// A caller-supplied argument is malformed or out of contract.
  kInvalidArgument = 1,
  /// An index or value falls outside the valid domain.
  kOutOfRange = 2,
  /// Serialized bytes are damaged, truncated, or inconsistent.
  kCorruption = 3,
  /// The requested operation exists in the API but has no implementation
  /// for the given configuration.
  kNotImplemented = 4,
  /// An invariant inside the library was violated; always a bug.
  kInternal = 5,
  /// The requested item does not exist.
  kNotFound = 6,
  /// A bounded resource (admission queue, memory budget) is full; the
  /// request was rejected rather than queued unboundedly. Retryable.
  kResourceExhausted = 7,
  /// The request's deadline passed before (or while) it was served.
  kDeadlineExceeded = 8,
  /// A syscall-level I/O failure (EIO, unreadable fd) — the *medium*
  /// failed, as opposed to kCorruption where the bytes arrived but are
  /// damaged. Retryable at the storage layer's discretion.
  kIOError = 9,
};

/// Returns a human-readable name for `code` ("OK", "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK (the common case, represented
/// without allocation) or an error code plus message.
///
/// Status is cheap to copy when OK and cheap to move always. It is
/// [[nodiscard]]: ignoring a Status is a compile-time warning.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return state_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  [[nodiscard]] const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  [[nodiscard]] bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  [[nodiscard]] bool IsOutOfRange() const {
    return code() == StatusCode::kOutOfRange;
  }
  [[nodiscard]] bool IsCorruption() const {
    return code() == StatusCode::kCorruption;
  }
  [[nodiscard]] bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  [[nodiscard]] bool IsInternal() const {
    return code() == StatusCode::kInternal;
  }
  [[nodiscard]] bool IsNotFound() const {
    return code() == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  [[nodiscard]] bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  [[nodiscard]] bool IsIOError() const {
    return code() == StatusCode::kIOError;
  }

  /// "OK" or "<category>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK; shared_ptr keeps copies cheap and Status small.
  std::shared_ptr<const State> state_;
};

}  // namespace corra

/// Propagates a non-OK Status to the caller.
#define CORRA_RETURN_NOT_OK(expr)             \
  do {                                        \
    ::corra::Status _corra_status = (expr);   \
    if (!_corra_status.ok()) {                \
      return _corra_status;                   \
    }                                         \
  } while (false)

#endif  // CORRA_COMMON_STATUS_H_
