// Result<T>: value-or-Status, the return type of fallible factories.
//
// A Result is either a T (then `ok()` is true) or an error Status. Accessing
// the value of an errored Result aborts the process; call sites either check
// `ok()` explicitly or use CORRA_ASSIGN_OR_RETURN.

#ifndef CORRA_COMMON_RESULT_H_
#define CORRA_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace corra {

namespace internal {
[[noreturn]] inline void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

/// Holds either a successfully produced `T` or the `Status` explaining why
/// production failed. Implicitly constructible from both, so functions can
/// `return Status::InvalidArgument(...)` or `return value;` directly.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT: implicit
    if (this->status().ok()) {
      internal::DieOnBadResult(
          Status::Internal("Result constructed from OK status"));
    }
  }

  /// Constructs a successful result.
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error (or OK if this result holds a value).
  [[nodiscard]] Status status() const {
    if (ok()) {
      return Status::OK();
    }
    return std::get<Status>(data_);
  }

  /// The contained value; aborts if this result holds an error.
  [[nodiscard]] const T& value() const& {
    if (!ok()) {
      internal::DieOnBadResult(std::get<Status>(data_));
    }
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) {
      internal::DieOnBadResult(std::get<Status>(data_));
    }
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) {
      internal::DieOnBadResult(std::get<Status>(data_));
    }
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  [[nodiscard]] T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> data_;
};

}  // namespace corra

// Two-level concat so __LINE__ expands.
#define CORRA_CONCAT_IMPL(a, b) a##b
#define CORRA_CONCAT(a, b) CORRA_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// moves the value into `lhs`. `lhs` may be a declaration ("auto x") or an
/// existing variable.
#define CORRA_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto CORRA_CONCAT(_corra_result_, __LINE__) = (rexpr);            \
  if (!CORRA_CONCAT(_corra_result_, __LINE__).ok()) {               \
    return CORRA_CONCAT(_corra_result_, __LINE__).status();         \
  }                                                                 \
  lhs = std::move(CORRA_CONCAT(_corra_result_, __LINE__)).value()

#endif  // CORRA_COMMON_RESULT_H_
