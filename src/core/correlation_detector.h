// Automatic correlation detection — the extension the paper names as
// future work ("we envision Corra to support ... automatic correlation
// detection", Sec. 4).
//
// The detector samples all ordered column pairs and estimates, for each
// Corra scheme, the compressed size the target would have against that
// reference. Suggestions above a saving threshold are returned ranked, so
// a user (or the compressor) can build a CompressionPlan without knowing
// the data's correlations in advance.

#ifndef CORRA_CORE_CORRELATION_DETECTOR_H_
#define CORRA_CORE_CORRELATION_DETECTOR_H_

#include <span>
#include <vector>

#include "core/config_optimizer.h"
#include "encoding/scheme.h"

namespace corra {

/// One detected opportunity: encode `target` horizontally w.r.t.
/// `reference` using `scheme`.
struct CorrelationSuggestion {
  enc::Scheme scheme;
  uint32_t target;
  uint32_t reference;
  size_t vertical_bytes;    // Best single-column estimate for target.
  size_t horizontal_bytes;  // Estimate under the suggested scheme.
  double saving_rate;       // 1 - horizontal / vertical.
};

struct DetectorOptions {
  /// Rows sampled (strided) per pair; 0 = all rows.
  size_t sample_limit = 1 << 16;
  /// Suggestions below this saving rate are dropped.
  double min_saving_rate = 0.05;
  bool consider_diff = true;
  bool consider_hierarchical = true;
  DiffOptions diff_options;
};

/// Scans all ordered pairs of `columns` and returns suggestions sorted by
/// descending saving rate. At most one suggestion (the best scheme) is
/// emitted per (target, reference) pair.
Result<std::vector<CorrelationSuggestion>> DetectCorrelations(
    std::span<const CandidateColumn> columns,
    const DetectorOptions& options = {});

}  // namespace corra

#endif  // CORRA_CORE_CORRELATION_DETECTOR_H_
