#include "core/hierarchical_encoding.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra {

namespace {

// Upper bound on the reference cardinality: a reference column with more
// distinct codes than this is not "hierarchical" in any useful sense, and
// the offsets metadata would dwarf the savings.
constexpr int64_t kMaxRefCardinality = int64_t{1} << 26;

}  // namespace

HierarchicalColumn::HierarchicalColumn(uint32_t ref_index,
                                       std::vector<int64_t> values,
                                       std::vector<uint32_t> offsets,
                                       std::vector<uint8_t> bytes,
                                       int bit_width, size_t count)
    : SingleRefColumn(ref_index),
      values_(std::move(values)),
      offsets_(std::move(offsets)),
      bytes_(std::move(bytes)),
      local_(bytes_.data(), bit_width, count) {}

Result<std::unique_ptr<HierarchicalColumn>> HierarchicalColumn::Encode(
    std::span<const int64_t> target, std::span<const int64_t> ref_codes,
    uint32_t ref_index) {
  if (target.size() != ref_codes.size()) {
    return Status::InvalidArgument("target/reference length mismatch");
  }
  int64_t max_code = -1;
  for (int64_t c : ref_codes) {
    if (c < 0) {
      return Status::InvalidArgument(
          "hierarchical reference codes must be non-negative");
    }
    max_code = std::max(max_code, c);
  }
  if (max_code >= kMaxRefCardinality) {
    return Status::InvalidArgument("reference cardinality too large");
  }
  const size_t cardinality = static_cast<size_t>(max_code + 1);

  // Per-reference local dictionaries, in first-seen order (the paper builds
  // them "on the fly" with a hashtable during compression).
  std::vector<std::vector<int64_t>> local_values(cardinality);
  std::vector<std::unordered_map<int64_t, uint32_t>> local_index(cardinality);
  std::vector<uint32_t> local_codes(target.size());
  uint32_t max_local = 0;
  for (size_t i = 0; i < target.size(); ++i) {
    const size_t ref = static_cast<size_t>(ref_codes[i]);
    auto& index = local_index[ref];
    auto [it, inserted] =
        index.emplace(target[i], static_cast<uint32_t>(index.size()));
    if (inserted) {
      local_values[ref].push_back(target[i]);
    }
    local_codes[i] = it->second;
    max_local = std::max(max_local, it->second);
  }

  // Flatten into the paper's (values, offsets) metadata.
  std::vector<uint32_t> offsets(cardinality + 1, 0);
  size_t total = 0;
  for (size_t c = 0; c < cardinality; ++c) {
    offsets[c] = static_cast<uint32_t>(total);
    total += local_values[c].size();
  }
  offsets[cardinality] = static_cast<uint32_t>(total);
  std::vector<int64_t> values;
  values.reserve(total);
  for (auto& lv : local_values) {
    values.insert(values.end(), lv.begin(), lv.end());
  }

  const int width = bit_util::BitWidth(max_local);
  BitWriter writer(width);
  for (uint32_t code : local_codes) {
    writer.Append(code);
  }
  return std::unique_ptr<HierarchicalColumn>(new HierarchicalColumn(
      ref_index, std::move(values), std::move(offsets),
      std::move(writer).Finish(), width, target.size()));
}

size_t HierarchicalColumn::EstimateSizeBytes(
    std::span<const int64_t> target, std::span<const int64_t> ref_codes) {
  if (target.size() != ref_codes.size()) {
    return SIZE_MAX;
  }
  int64_t max_code = -1;
  for (int64_t c : ref_codes) {
    if (c < 0) {
      return SIZE_MAX;
    }
    max_code = std::max(max_code, c);
  }
  if (max_code >= kMaxRefCardinality) {
    return SIZE_MAX;
  }
  const size_t cardinality = static_cast<size_t>(max_code + 1);
  std::vector<std::unordered_map<int64_t, uint32_t>> local_index(cardinality);
  uint32_t max_local = 0;
  size_t total_values = 0;
  for (size_t i = 0; i < target.size(); ++i) {
    auto& index = local_index[static_cast<size_t>(ref_codes[i])];
    auto [it, inserted] =
        index.emplace(target[i], static_cast<uint32_t>(index.size()));
    if (inserted) {
      ++total_values;
    }
    max_local = std::max(max_local, it->second);
  }
  const int width = bit_util::BitWidth(max_local);
  return bit_util::CeilDiv(target.size() * width, 8) +
         total_values * sizeof(int64_t) +
         (cardinality + 1) * sizeof(uint32_t);
}

Result<std::unique_ptr<HierarchicalColumn>> HierarchicalColumn::Deserialize(
    BufferReader* reader) {
  uint32_t ref_index = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&ref_index));
  std::vector<int64_t> values;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&values));
  std::vector<uint32_t> offsets;
  CORRA_RETURN_NOT_OK(reader->ReadUint32Array(&offsets));
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != values.size()) {
    return Status::Corruption("hierarchical offsets inconsistent");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Corruption("hierarchical offsets not monotone");
    }
  }
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (width > 64) {
    return Status::Corruption("hierarchical width > 64");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("hierarchical payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  return std::unique_ptr<HierarchicalColumn>(new HierarchicalColumn(
      ref_index, std::move(values), std::move(offsets), std::move(bytes),
      width, count));
}

size_t HierarchicalColumn::SizeBytes() const {
  return bit_util::CeilDiv(local_.size() * local_.bit_width(), 8) +
         values_.size() * sizeof(int64_t) +
         offsets_.size() * sizeof(uint32_t);
}

int64_t HierarchicalColumn::Get(size_t row) const {
  assert(ref_ != nullptr && "reference not bound");
  const size_t ref = static_cast<size_t>(ref_->Get(row));
  return values_[offsets_[ref] + local_.Get(row)];
}

void HierarchicalColumn::GatherWithReference(std::span<const uint32_t> rows,
                                             const int64_t* ref_values,
                                             int64_t* out) const {
  // Positioned SIMD gather of the packed local indices, then Alg. 1's
  // metadata translation over the staged chunk.
  uint64_t local[enc::kMorselRows];
  size_t done = 0;
  while (done < rows.size()) {
    const size_t len = std::min(rows.size() - done, enc::kMorselRows);
    simd::GatherBits(bytes_.data(), local_.bit_width(), rows.data() + done,
                     len, local);
    for (size_t i = 0; i < len; ++i) {
      const size_t ref = static_cast<size_t>(ref_values[done + i]);
      out[done + i] = values_[offsets_[ref] + local[i]];
    }
    done += len;
  }
}

void HierarchicalColumn::DecodeRangeWithReference(size_t row_begin,
                                                  size_t count,
                                                  const int64_t* ref_values,
                                                  int64_t* out) const {
  // Alg. 1 over a morsel: unpack the local indices sequentially into
  // `out`, then translate each (ref code, local index) pair through the
  // flattened metadata in place.
  local_.DecodeRange(row_begin, count, reinterpret_cast<uint64_t*>(out));
  for (size_t i = 0; i < count; ++i) {
    const size_t ref = static_cast<size_t>(ref_values[i]);
    out[i] = values_[offsets_[ref] + static_cast<uint64_t>(out[i])];
  }
}

Status HierarchicalColumn::VerifyWithReference() const {
  if (ref_ == nullptr) {
    return Status::InvalidArgument("reference not bound");
  }
  const size_t n = local_.size();
  for (size_t i = 0; i < n; ++i) {
    const int64_t ref = ref_->Get(i);
    if (ref < 0 ||
        static_cast<size_t>(ref) >= offsets_.size() - 1) {
      return Status::Corruption("reference code out of metadata range");
    }
    const uint64_t local = local_.Get(i);
    const size_t begin = offsets_[static_cast<size_t>(ref)];
    const size_t end = offsets_[static_cast<size_t>(ref) + 1];
    if (begin + local >= end) {
      return Status::Corruption("local index exceeds local dictionary");
    }
  }
  return Status::OK();
}

void HierarchicalColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(enc::Scheme::kHierarchical));
  writer->Write<uint32_t>(ref_index_);
  writer->WriteInt64Array(values_);
  writer->WriteUint32Array(offsets_);
  writer->Write<uint8_t>(static_cast<uint8_t>(local_.bit_width()));
  writer->Write<uint64_t>(local_.size());
  writer->WriteBytes(bytes_);
}

}  // namespace corra
