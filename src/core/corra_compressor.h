// CorraCompressor — the library's top-level entry point.
//
// A CompressionPlan assigns every table column either a vertical scheme
// (explicit, or auto-selected by the baseline selector) or one of Corra's
// horizontal schemes together with its reference column(s). Compress then
// splits the table into self-contained blocks (1M rows by default, as in
// the paper) and encodes each block under the plan.
//
// Typical use:
//
//   corra::Table table = ...;
//   corra::CompressionPlan plan =
//       corra::CompressionPlan::AllAuto(table.num_columns());
//   plan.columns[receipt_idx].scheme = corra::enc::Scheme::kDiff;
//   plan.columns[receipt_idx].reference = ship_idx;
//   CORRA_ASSIGN_OR_RETURN(auto compressed,
//                          corra::CorraCompressor::Compress(table, plan));

#ifndef CORRA_CORE_CORRA_COMPRESSOR_H_
#define CORRA_CORE_CORRA_COMPRESSOR_H_

#include <vector>

#include "core/config_optimizer.h"
#include "core/diff_encoding.h"
#include "core/multi_ref_encoding.h"
#include "encoding/selector.h"
#include "storage/table.h"

namespace corra {

/// How one column is to be compressed.
struct ColumnPlan {
  /// When true the baseline selector picks the cheapest vertical scheme
  /// and `scheme` is ignored.
  bool auto_vertical = true;

  /// Explicit scheme (vertical or horizontal) when auto_vertical is false.
  enc::Scheme scheme = enc::Scheme::kPlain;

  /// Table-level index of the reference column (single-reference
  /// horizontal schemes). The reference must not be the column itself.
  int reference = -1;

  /// Options for Scheme::kDiff.
  DiffOptions diff_options;

  /// Formula table for Scheme::kMultiRef. Group members are table-level
  /// column indices (block-local indices coincide with table indices).
  FormulaTable formulas;

  /// Outlier budget for kMultiRef / kC3OneToOne.
  double max_outlier_fraction = 0.05;
};

struct CompressionPlan {
  std::vector<ColumnPlan> columns;
  /// Rows per self-contained block (paper: 1M tuples).
  size_t block_rows = kDefaultBlockRows;
  /// Worker threads compressing blocks concurrently (blocks are
  /// independent, so the output is identical for any thread count).
  size_t num_threads = 1;

  /// Expected access pattern, steering physical-layout choices inside a
  /// scheme (auto-selected *and* explicit): kPointServing encodes Delta
  /// columns with the inline-checkpoint layout so ScanService point and
  /// gather requests touch one contiguous window per access, while the
  /// default kAnalytic keeps the packed layout dense scans want.
  enc::WorkloadHint workload = enc::WorkloadHint::kAnalytic;

  /// Every column auto-selected vertical (the paper's baseline).
  static CompressionPlan AllAuto(size_t num_columns);

  /// Every column stored Plain (the paper's "uncompressed" latency case).
  static CompressionPlan AllPlain(size_t num_columns);
};

class CorraCompressor {
 public:
  /// Compresses `table` under `plan`, producing one block per
  /// plan.block_rows rows.
  static Result<CompressedTable> Compress(const Table& table,
                                          const CompressionPlan& plan);

  /// Fully decompresses back into an in-memory Table (string columns get
  /// their dictionaries rebuilt from block 0's copy). Inverse of
  /// Compress up to dictionary code assignment.
  static Result<Table> Decompress(const CompressedTable& compressed);

  /// Convenience: runs the Fig. 2 optimizer over the listed columns and
  /// converts its assignment into a plan (all other columns auto
  /// vertical).
  static Result<CompressionPlan> PlanFromOptimizer(
      const Table& table, std::span<const size_t> candidate_columns,
      const OptimizerOptions& options = {});
};

}  // namespace corra

#endif  // CORRA_CORE_CORRA_COMPRESSOR_H_
