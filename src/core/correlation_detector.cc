#include "core/correlation_detector.h"

#include <algorithm>
#include <unordered_map>

#include "core/diff_encoding.h"
#include "core/hierarchical_encoding.h"
#include "encoding/selector.h"

namespace corra {

namespace {

// Aligned strided sample of a column pair.
void PairedSample(std::span<const int64_t> a, std::span<const int64_t> b,
                  size_t limit, std::vector<int64_t>* out_a,
                  std::vector<int64_t>* out_b) {
  if (limit == 0 || a.size() <= limit) {
    out_a->assign(a.begin(), a.end());
    out_b->assign(b.begin(), b.end());
    return;
  }
  const size_t stride = a.size() / limit;
  out_a->clear();
  out_b->clear();
  for (size_t i = 0; i < a.size() && out_a->size() < limit; i += stride) {
    out_a->push_back(a[i]);
    out_b->push_back(b[i]);
  }
}

size_t ScaleEstimate(size_t sample_bytes, size_t sample_rows,
                     size_t full_rows) {
  if (sample_rows == 0 || sample_bytes == SIZE_MAX) {
    return sample_bytes;
  }
  return static_cast<size_t>(static_cast<double>(sample_bytes) *
                             static_cast<double>(full_rows) /
                             static_cast<double>(sample_rows));
}

// Densifies arbitrary reference values into codes 0..C-1 (first-seen
// order) so the hierarchical estimator can run on any column.
std::vector<int64_t> Densify(std::span<const int64_t> values) {
  std::unordered_map<int64_t, int64_t> codes;
  std::vector<int64_t> out;
  out.reserve(values.size());
  for (int64_t v : values) {
    const auto [it, inserted] =
        codes.emplace(v, static_cast<int64_t>(codes.size()));
    out.push_back(it->second);
  }
  return out;
}

}  // namespace

Result<std::vector<CorrelationSuggestion>> DetectCorrelations(
    std::span<const CandidateColumn> columns,
    const DetectorOptions& options) {
  const size_t n = columns.size();
  if (n < 2) {
    return Status::InvalidArgument("need at least two columns");
  }
  const size_t rows = columns[0].values.size();
  for (const auto& c : columns) {
    if (c.values.size() != rows) {
      return Status::InvalidArgument("columns differ in length");
    }
  }

  // Vertical baselines per column (on samples).
  std::vector<size_t> vertical(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<int64_t> sample;
    std::vector<int64_t> unused;
    PairedSample(columns[i].values, columns[i].values, options.sample_limit,
                 &sample, &unused);
    size_t best = SIZE_MAX;
    for (const auto& e : enc::EstimateSchemes(
             sample, enc::SelectionPolicy::kConstantTimeAccessOnly)) {
      best = std::min(best, e.size_bytes);
    }
    vertical[i] = ScaleEstimate(best, sample.size(), rows);
  }

  std::vector<CorrelationSuggestion> suggestions;
  std::vector<int64_t> target_sample;
  std::vector<int64_t> ref_sample;
  for (uint32_t t = 0; t < n; ++t) {
    for (uint32_t r = 0; r < n; ++r) {
      if (t == r) {
        continue;
      }
      PairedSample(columns[t].values, columns[r].values,
                   options.sample_limit, &target_sample, &ref_sample);
      CorrelationSuggestion best;
      best.scheme = enc::Scheme::kDiff;
      best.target = t;
      best.reference = r;
      best.vertical_bytes = vertical[t];
      best.horizontal_bytes = SIZE_MAX;
      if (options.consider_diff) {
        const size_t est = ScaleEstimate(
            DiffEncodedColumn::EstimateSizeBytes(target_sample, ref_sample,
                                                 options.diff_options),
            target_sample.size(), rows);
        if (est < best.horizontal_bytes) {
          best.horizontal_bytes = est;
          best.scheme = enc::Scheme::kDiff;
        }
      }
      if (options.consider_hierarchical) {
        // Note: metadata scales sublinearly with rows, so the scaled
        // estimate is conservative (an upper bound) for the metadata part.
        const std::vector<int64_t> dense = Densify(ref_sample);
        const size_t est = ScaleEstimate(
            HierarchicalColumn::EstimateSizeBytes(target_sample, dense),
            target_sample.size(), rows);
        if (est < best.horizontal_bytes) {
          best.horizontal_bytes = est;
          best.scheme = enc::Scheme::kHierarchical;
        }
      }
      if (best.horizontal_bytes == SIZE_MAX || best.vertical_bytes == 0) {
        continue;
      }
      best.saving_rate = 1.0 - static_cast<double>(best.horizontal_bytes) /
                                   static_cast<double>(best.vertical_bytes);
      if (best.saving_rate >= options.min_saving_rate) {
        suggestions.push_back(best);
      }
    }
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const CorrelationSuggestion& a,
               const CorrelationSuggestion& b) {
              if (a.saving_rate != b.saving_rate) {
                return a.saving_rate > b.saving_rate;
              }
              if (a.target != b.target) {
                return a.target < b.target;
              }
              return a.reference < b.reference;
            });
  return suggestions;
}

}  // namespace corra
