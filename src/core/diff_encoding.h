// Non-hierarchical (diff) encoding — the paper's Sec. 2.1.
//
// The diff-encoded column stores, per row, the difference to a reference
// column ("horizontal" encoding): commitdate is stored as
// commitdate - shipdate. Because such differences are bounded in correlated
// data, the bit width collapses (12 bits -> 5 bits for TPC-H receiptdate,
// Table 2).
//
// Storage of the diffs follows the paper exactly (the Fig. 2 edge weights
// pin it down):
//   * all diffs non-negative -> raw bit-packing
//     (receiptdate - shipdate in [1, 30]: 5 bits -> 37.5 MB at SF 10);
//   * any negative diff -> zig-zag then bit-packing
//     (shipdate - receiptdate in [-30, -1]: 6 bits -> 45 MB — the paper's
//     asymmetric edge weights that make shipdate the greedy reference).
//
// When the outlier store is enabled (Sec. 2.1 "Outlier Detection"), the
// scheme switches to a windowed frame-of-reference over the diffs: rare
// wide diffs move to the side store and the window is chosen by total
// cost. This mode generalizes the paper's outlier architecture.

#ifndef CORRA_CORE_DIFF_ENCODING_H_
#define CORRA_CORE_DIFF_ENCODING_H_

#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "core/horizontal.h"
#include "core/outlier_store.h"

namespace corra {

/// Tuning knobs for diff encoding.
struct DiffOptions {
  /// Enables the outlier store. Off by default: in the paper's datasets,
  /// "the simple case of single reference columns did not require any
  /// special outlier handling".
  bool use_outliers = false;
  /// Upper bound on the fraction of rows allowed to become outliers.
  double max_outlier_fraction = 0.01;
};

/// How the packed diff payload is interpreted.
enum class DiffMode : uint8_t {
  kRaw = 0,     // diff = packed value (all diffs >= 0).
  kZigZag = 1,  // diff = ZigZagDecode(packed value).
  kWindow = 2,  // diff = base + packed value; outliers in the side store.
};

class DiffEncodedColumn final : public SingleRefColumn {
 public:
  /// Diff-encodes `target` against `reference` (same length).
  /// `ref_index` is the block-local index of the reference column.
  static Result<std::unique_ptr<DiffEncodedColumn>> Encode(
      std::span<const int64_t> target, std::span<const int64_t> reference,
      uint32_t ref_index, const DiffOptions& options = {});

  /// Compressed size `target` would have when diff-encoded against
  /// `reference`, without encoding. This is the edge weight of the
  /// optimizer graph (paper Fig. 2).
  static size_t EstimateSizeBytes(std::span<const int64_t> target,
                                  std::span<const int64_t> reference,
                                  const DiffOptions& options = {});

  static Result<std::unique_ptr<DiffEncodedColumn>> Deserialize(
      BufferReader* reader);

  enc::Scheme scheme() const override { return enc::Scheme::kDiff; }
  size_t size() const override { return packed_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherWithReference(std::span<const uint32_t> rows,
                           const int64_t* ref_values,
                           int64_t* out) const override;
  void DecodeRangeWithReference(size_t row_begin, size_t count,
                                const int64_t* ref_values,
                                int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  DiffMode mode() const { return mode_; }
  int bit_width() const { return packed_.bit_width(); }
  int64_t base() const { return base_; }
  const OutlierStore& outliers() const { return outliers_; }

 private:
  DiffEncodedColumn(uint32_t ref_index, DiffMode mode, int64_t base,
                    std::vector<uint8_t> bytes, int bit_width, size_t count,
                    OutlierStore outliers);

  // The decoded diff at `row` (window-mode outliers not considered).
  int64_t DiffAt(size_t row) const;

  DiffMode mode_;
  int64_t base_;                  // Window base (kWindow mode only).
  std::vector<uint8_t> bytes_;    // Bit-packed diffs.
  BitReader packed_;
  OutlierStore outliers_;
};

}  // namespace corra

#endif  // CORRA_CORE_DIFF_ENCODING_H_
