#include "core/corra_compressor.h"

#include <algorithm>
#include <thread>

#include "core/c3/dfor.h"
#include "core/c3/numerical.h"
#include "core/c3/one_to_one.h"
#include "core/hierarchical_encoding.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"
#include "encoding/rle.h"
#include "encoding/selector.h"

namespace corra {

CompressionPlan CompressionPlan::AllAuto(size_t num_columns) {
  CompressionPlan plan;
  plan.columns.resize(num_columns);
  return plan;
}

CompressionPlan CompressionPlan::AllPlain(size_t num_columns) {
  CompressionPlan plan;
  plan.columns.resize(num_columns);
  for (auto& c : plan.columns) {
    c.auto_vertical = false;
    c.scheme = enc::Scheme::kPlain;
  }
  return plan;
}

namespace {

Status ValidatePlan(const Table& table, const CompressionPlan& plan) {
  if (plan.columns.size() != table.num_columns()) {
    return Status::InvalidArgument("plan/table column count mismatch");
  }
  if (plan.block_rows == 0) {
    return Status::InvalidArgument("block_rows must be positive");
  }
  const int n = static_cast<int>(table.num_columns());
  for (size_t i = 0; i < plan.columns.size(); ++i) {
    const ColumnPlan& cp = plan.columns[i];
    if (cp.auto_vertical) {
      continue;
    }
    const bool single_ref = cp.scheme == enc::Scheme::kDiff ||
                            cp.scheme == enc::Scheme::kHierarchical ||
                            cp.scheme == enc::Scheme::kC3Dfor ||
                            cp.scheme == enc::Scheme::kC3Numerical ||
                            cp.scheme == enc::Scheme::kC3OneToOne;
    if (single_ref) {
      if (cp.reference < 0 || cp.reference >= n ||
          cp.reference == static_cast<int>(i)) {
        return Status::InvalidArgument(
            "horizontal scheme needs a valid reference column");
      }
    }
    if (cp.scheme == enc::Scheme::kMultiRef) {
      CORRA_RETURN_NOT_OK(cp.formulas.Validate());
      for (const auto& group : cp.formulas.groups) {
        for (uint32_t col : group) {
          if (col >= static_cast<uint32_t>(n) || col == i) {
            return Status::InvalidArgument(
                "multi-ref group member out of range");
          }
        }
      }
    }
  }
  return Status::OK();
}

// Encodes one column slice under an explicit vertical scheme. The
// workload hint steers physical-layout choices (Delta's checkpoint
// layout), mirroring what the auto selector does.
Result<std::unique_ptr<enc::EncodedColumn>> EncodeVertical(
    enc::Scheme scheme, std::span<const int64_t> values,
    enc::WorkloadHint workload) {
  switch (scheme) {
    case enc::Scheme::kPlain:
      return std::unique_ptr<enc::EncodedColumn>(
          enc::PlainColumn::Encode(values));
    case enc::Scheme::kBitPack: {
      CORRA_ASSIGN_OR_RETURN(auto col, enc::BitPackColumn::Encode(values));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kFor: {
      CORRA_ASSIGN_OR_RETURN(auto col, enc::ForColumn::Encode(values));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kDict: {
      CORRA_ASSIGN_OR_RETURN(auto col, enc::DictColumn::Encode(values));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kDelta: {
      const enc::DeltaLayout layout =
          workload == enc::WorkloadHint::kPointServing
              ? enc::DeltaLayout::kInline
              : enc::DeltaLayout::kPacked;
      CORRA_ASSIGN_OR_RETURN(
          auto col,
          enc::DeltaColumn::Encode(
              values, enc::DeltaColumn::DefaultIntervalFor(layout), layout));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kRle: {
      CORRA_ASSIGN_OR_RETURN(auto col, enc::RleColumn::Encode(values));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    default:
      return Status::InvalidArgument("not a vertical scheme");
  }
}

}  // namespace

namespace {

// Compresses rows [begin, begin+len) of every column into one block.
Result<Block> CompressOneBlock(const Table& table,
                               const CompressionPlan& plan, size_t begin,
                               size_t len) {
  std::vector<BlockColumn> block_columns(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const ColumnPlan& cp = plan.columns[i];
    const auto slice = table.column(i).values().subspan(begin, len);
    BlockColumn& out = block_columns[i];
    out.dict = table.column(i).dictionary();

    if (cp.auto_vertical) {
      CORRA_ASSIGN_OR_RETURN(
          out.encoded,
          enc::SelectBestScheme(
              slice, enc::SelectionOptions{.workload = plan.workload}));
      continue;
    }
    switch (cp.scheme) {
      case enc::Scheme::kDiff: {
        const auto ref =
            table.column(cp.reference).values().subspan(begin, len);
        CORRA_ASSIGN_OR_RETURN(
            auto col, DiffEncodedColumn::Encode(
                          slice, ref, static_cast<uint32_t>(cp.reference),
                          cp.diff_options));
        out.encoded = std::move(col);
        break;
      }
      case enc::Scheme::kHierarchical: {
        const auto ref =
            table.column(cp.reference).values().subspan(begin, len);
        CORRA_ASSIGN_OR_RETURN(
            auto col,
            HierarchicalColumn::Encode(
                slice, ref, static_cast<uint32_t>(cp.reference)));
        out.encoded = std::move(col);
        break;
      }
      case enc::Scheme::kMultiRef: {
        const auto resolver = [&table, begin,
                               len](uint32_t col) -> std::span<const int64_t> {
          return table.column(col).values().subspan(begin, len);
        };
        CORRA_ASSIGN_OR_RETURN(
            auto col, MultiRefColumn::Encode(slice, resolver, cp.formulas,
                                             cp.max_outlier_fraction));
        out.encoded = std::move(col);
        break;
      }
      case enc::Scheme::kC3Dfor: {
        const auto ref =
            table.column(cp.reference).values().subspan(begin, len);
        CORRA_ASSIGN_OR_RETURN(
            auto col, c3::DforColumn::Encode(
                          slice, ref, static_cast<uint32_t>(cp.reference)));
        out.encoded = std::move(col);
        break;
      }
      case enc::Scheme::kC3Numerical: {
        const auto ref =
            table.column(cp.reference).values().subspan(begin, len);
        CORRA_ASSIGN_OR_RETURN(
            auto col, c3::NumericalColumn::Encode(
                          slice, ref, static_cast<uint32_t>(cp.reference)));
        out.encoded = std::move(col);
        break;
      }
      case enc::Scheme::kC3OneToOne: {
        const auto ref =
            table.column(cp.reference).values().subspan(begin, len);
        CORRA_ASSIGN_OR_RETURN(
            auto col, c3::OneToOneColumn::Encode(
                          slice, ref, static_cast<uint32_t>(cp.reference),
                          cp.max_outlier_fraction));
        out.encoded = std::move(col);
        break;
      }
      default: {
        CORRA_ASSIGN_OR_RETURN(
            out.encoded, EncodeVertical(cp.scheme, slice, plan.workload));
        break;
      }
    }
  }
  return Block::Build(std::move(block_columns));
}

}  // namespace

Result<CompressedTable> CorraCompressor::Compress(
    const Table& table, const CompressionPlan& plan) {
  CORRA_RETURN_NOT_OK(ValidatePlan(table, plan));
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot compress an empty table");
  }
  const size_t rows = table.num_rows();
  const size_t num_blocks = (rows + plan.block_rows - 1) / plan.block_rows;

  // Blocks are independent: compress them on num_threads workers (strided
  // assignment keeps the output order deterministic regardless of thread
  // count).
  std::vector<std::unique_ptr<Block>> block_slots(num_blocks);
  std::vector<Status> block_status(num_blocks);
  const auto worker = [&](size_t thread_id, size_t stride) {
    for (size_t b = thread_id; b < num_blocks; b += stride) {
      const size_t begin = b * plan.block_rows;
      const size_t len = std::min(plan.block_rows, rows - begin);
      auto block = CompressOneBlock(table, plan, begin, len);
      if (block.ok()) {
        block_slots[b] =
            std::make_unique<Block>(std::move(block).value());
      } else {
        block_status[b] = block.status();
      }
    }
  };
  const size_t threads =
      std::clamp<size_t>(plan.num_threads, 1, std::max<size_t>(num_blocks, 1));
  if (threads <= 1) {
    worker(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t, threads);
    }
    for (auto& thread : pool) {
      thread.join();
    }
  }
  std::vector<Block> blocks;
  blocks.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    CORRA_RETURN_NOT_OK(block_status[b]);
    blocks.push_back(std::move(*block_slots[b]));
  }
  return CompressedTable(table.schema(), std::move(blocks));
}

Result<Table> CorraCompressor::Decompress(
    const CompressedTable& compressed) {
  if (compressed.num_blocks() == 0) {
    return Status::InvalidArgument("compressed table has no blocks");
  }
  Table table;
  for (size_t c = 0; c < compressed.schema().num_fields(); ++c) {
    const Field& field = compressed.schema().field(c);
    std::vector<int64_t> values = compressed.DecodeColumn(c);
    switch (field.type) {
      case LogicalType::kInt64: {
        CORRA_RETURN_NOT_OK(
            table.AddColumn(Column::Int64(field.name, std::move(values))));
        break;
      }
      case LogicalType::kDate: {
        CORRA_RETURN_NOT_OK(
            table.AddColumn(Column::Date(field.name, std::move(values))));
        break;
      }
      case LogicalType::kTimestamp: {
        CORRA_RETURN_NOT_OK(table.AddColumn(
            Column::Timestamp(field.name, std::move(values))));
        break;
      }
      case LogicalType::kMoney: {
        CORRA_RETURN_NOT_OK(
            table.AddColumn(Column::Money(field.name, std::move(values))));
        break;
      }
      case LogicalType::kString: {
        // All blocks carry the same dictionary (the compressor shares the
        // source column's); block 0's copy restores the column.
        const enc::StringDictionary* dict = compressed.block(0).dictionary(c);
        if (dict == nullptr) {
          return Status::Corruption("string column without dictionary");
        }
        auto shared = std::make_shared<enc::StringDictionary>();
        for (size_t code = 0; code < dict->size(); ++code) {
          shared->GetOrInsert((*dict)[code]);
        }
        CORRA_ASSIGN_OR_RETURN(
            Column column,
            Column::StringFromCodes(field.name, std::move(values),
                                    std::move(shared)));
        CORRA_RETURN_NOT_OK(table.AddColumn(std::move(column)));
        break;
      }
    }
  }
  return table;
}

Result<CompressionPlan> CorraCompressor::PlanFromOptimizer(
    const Table& table, std::span<const size_t> candidate_columns,
    const OptimizerOptions& options) {
  std::vector<CandidateColumn> candidates;
  candidates.reserve(candidate_columns.size());
  for (size_t idx : candidate_columns) {
    if (idx >= table.num_columns()) {
      return Status::InvalidArgument("candidate column index out of range");
    }
    candidates.push_back(
        {table.column(idx).name(), table.column(idx).values()});
  }
  CORRA_ASSIGN_OR_RETURN(DiffConfig config,
                         OptimizeDiffConfig(candidates, options));

  CompressionPlan plan = CompressionPlan::AllAuto(table.num_columns());
  for (size_t c = 0; c < candidate_columns.size(); ++c) {
    const ColumnAssignment& a = config.assignments[c];
    if (a.role == ColumnRole::kDiffEncoded) {
      ColumnPlan& cp = plan.columns[candidate_columns[c]];
      cp.auto_vertical = false;
      cp.scheme = enc::Scheme::kDiff;
      cp.reference =
          static_cast<int>(candidate_columns[static_cast<size_t>(a.reference)]);
      cp.diff_options = options.diff_options;
    }
  }
  return plan;
}

}  // namespace corra
