// Devirtualization helper for the hot query paths of horizontal columns.
//
// A horizontal column's Gather calls ref->Get(row) once per selected row;
// through the EncodedColumn vtable that is an indirect call per row. The
// reference is almost always one of the final vertical classes (BitPack,
// FOR, Dict — the baseline pool), so dispatching once per *batch* and
// running a typed loop lets the compiler inline the accessor.

#ifndef CORRA_CORE_REF_DISPATCH_H_
#define CORRA_CORE_REF_DISPATCH_H_

#include "encoding/bitpack.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"

namespace corra {

/// Invokes `fn` with `ref` downcast to its concrete final type when it is
/// one of the common vertical schemes, or with the base reference
/// otherwise. `fn` must be callable with any of these as a const ref.
template <typename Fn>
void DispatchRef(const enc::EncodedColumn& ref, Fn&& fn) {
  if (const auto* bitpack = dynamic_cast<const enc::BitPackColumn*>(&ref)) {
    fn(*bitpack);
  } else if (const auto* fr = dynamic_cast<const enc::ForColumn*>(&ref)) {
    fn(*fr);
  } else if (const auto* dict = dynamic_cast<const enc::DictColumn*>(&ref)) {
    fn(*dict);
  } else if (const auto* plain =
                 dynamic_cast<const enc::PlainColumn*>(&ref)) {
    fn(*plain);
  } else {
    fn(ref);
  }
}

}  // namespace corra

#endif  // CORRA_CORE_REF_DISPATCH_H_
