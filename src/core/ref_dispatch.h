// Devirtualization helper for the hot query paths of horizontal columns.
//
// A horizontal column's gather/ranged kernels touch the reference column
// once per selected row or morsel; through the EncodedColumn vtable that
// is an indirect call each time. The reference is almost always one of
// the final vertical classes (BitPack, FOR, Dict — the baseline pool),
// so dispatching once per *batch* on scheme() and running a typed loop
// lets the compiler inline the accessor.
//
// scheme() uniquely identifies the concrete final class, so the downcast
// is a static_cast — no dynamic_cast, and the library builds with
// -fno-rtti (see CORRA_NO_RTTI in CMakeLists.txt).

#ifndef CORRA_CORE_REF_DISPATCH_H_
#define CORRA_CORE_REF_DISPATCH_H_

#include "encoding/bitpack.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"

namespace corra {

/// Invokes `fn` with `ref` downcast to its concrete final type when it is
/// one of the common vertical schemes, or with the base reference
/// otherwise. `fn` must be callable with any of these as a const ref.
template <typename Fn>
void DispatchRef(const enc::EncodedColumn& ref, Fn&& fn) {
  switch (ref.scheme()) {
    case enc::Scheme::kBitPack:
      fn(static_cast<const enc::BitPackColumn&>(ref));
      break;
    case enc::Scheme::kFor:
      fn(static_cast<const enc::ForColumn&>(ref));
      break;
    case enc::Scheme::kDict:
      fn(static_cast<const enc::DictColumn&>(ref));
      break;
    case enc::Scheme::kPlain:
      fn(static_cast<const enc::PlainColumn&>(ref));
      break;
    default:
      fn(ref);
      break;
  }
}

}  // namespace corra

#endif  // CORRA_CORE_REF_DISPATCH_H_
