#include "core/outlier_store.h"

#include <algorithm>

#include "common/bit_util.h"

namespace corra {

Result<OutlierStore> OutlierStore::Build(std::span<const uint32_t> rows,
                                         std::span<const int64_t> values) {
  if (rows.size() != values.size()) {
    return Status::InvalidArgument("outlier rows/values length mismatch");
  }
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i] <= rows[i - 1]) {
      return Status::InvalidArgument("outlier rows must strictly increase");
    }
  }
  OutlierStore store;
  store.rows_.assign(rows.begin(), rows.end());
  const auto mm = bit_util::ComputeMinMax(values);
  store.base_ = values.empty() ? 0 : mm.min;
  const int width = bit_util::MaxForBitWidth(values, store.base_);
  BitWriter writer(width);
  for (int64_t v : values) {
    writer.Append(static_cast<uint64_t>(v) -
                  static_cast<uint64_t>(store.base_));
  }
  store.value_bytes_ = std::move(writer).Finish();
  store.values_ = BitReader(store.value_bytes_.data(), width, values.size());
  return store;
}

Result<OutlierStore> OutlierStore::Deserialize(BufferReader* reader) {
  std::vector<uint32_t> rows;
  CORRA_RETURN_NOT_OK(reader->ReadUint32Array(&rows));
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i] <= rows[i - 1]) {
      return Status::Corruption("outlier rows not strictly increasing");
    }
  }
  int64_t base = 0;
  uint8_t width = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&base));
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  if (width > 64) {
    return Status::Corruption("outlier value width > 64");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(rows.size(), width)) {
    return Status::Corruption("outlier values truncated");
  }
  OutlierStore store;
  store.rows_ = std::move(rows);
  store.base_ = base;
  store.value_bytes_.assign(payload.begin(), payload.end());
  // Re-pad the owned copy before handing it to the reader: the wire
  // payload may carry less than kDecodePadBytes of slack.
  store.value_bytes_.resize(bit_util::PackedBytes(store.rows_.size(), width),
                            0);
  store.values_ =
      BitReader(store.value_bytes_.data(), width, store.rows_.size());
  return store;
}

void OutlierStore::Serialize(BufferWriter* writer) const {
  writer->WriteUint32Array(rows_);
  writer->Write<int64_t>(base_);
  writer->Write<uint8_t>(static_cast<uint8_t>(values_.bit_width()));
  writer->WriteBytes(value_bytes_);
}

std::optional<int64_t> OutlierStore::Find(uint32_t row) const {
  const auto it = std::lower_bound(rows_.begin(), rows_.end(), row);
  if (it == rows_.end() || *it != row) {
    return std::nullopt;
  }
  return value(static_cast<size_t>(it - rows_.begin()));
}

void OutlierStore::Patch(std::span<const uint32_t> rows, int64_t* out) const {
  if (rows_.empty() || rows.empty()) {
    return;
  }
  // Both sequences are sorted: advance through the outlier list once.
  size_t o = std::lower_bound(rows_.begin(), rows_.end(), rows.front()) -
             rows_.begin();
  for (size_t i = 0; i < rows.size() && o < rows_.size(); ++i) {
    while (o < rows_.size() && rows_[o] < rows[i]) {
      ++o;
    }
    if (o < rows_.size() && rows_[o] == rows[i]) {
      out[i] = value(o);
      ++o;
    }
  }
}

void OutlierStore::PatchRange(size_t row_begin, size_t count,
                              int64_t* out) const {
  if (rows_.empty() || count == 0) {
    return;
  }
  const size_t end = row_begin + count;
  size_t o = std::lower_bound(rows_.begin(), rows_.end(),
                              static_cast<uint32_t>(row_begin)) -
             rows_.begin();
  for (; o < rows_.size() && rows_[o] < end; ++o) {
    out[rows_[o] - row_begin] = value(o);
  }
}

size_t OutlierStore::SizeBytes() const {
  return rows_.size() * sizeof(uint32_t) +
         bit_util::CeilDiv(rows_.size() * values_.bit_width(), 8) +
         (rows_.empty() ? 0 : sizeof(int64_t));
}

}  // namespace corra
