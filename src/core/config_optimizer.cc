#include "core/config_optimizer.h"

#include <algorithm>

#include "encoding/selector.h"

namespace corra {

std::string_view ColumnRoleToString(ColumnRole role) {
  switch (role) {
    case ColumnRole::kVertical:
      return "vertical";
    case ColumnRole::kReference:
      return "reference";
    case ColumnRole::kDiffEncoded:
      return "diff-encoded";
  }
  return "unknown";
}

namespace {

// Strided sample of `values` with at most `limit` elements (0 = all).
std::vector<int64_t> StridedSample(std::span<const int64_t> values,
                                   size_t limit) {
  if (limit == 0 || values.size() <= limit) {
    return std::vector<int64_t>(values.begin(), values.end());
  }
  const size_t stride = values.size() / limit;
  std::vector<int64_t> sample;
  sample.reserve(limit);
  for (size_t i = 0; i < values.size() && sample.size() < limit;
       i += stride) {
    sample.push_back(values[i]);
  }
  return sample;
}

// Paired strided sample: row i of both columns is kept or dropped together
// (diff estimation needs aligned rows).
void PairedSample(std::span<const int64_t> a, std::span<const int64_t> b,
                  size_t limit, std::vector<int64_t>* out_a,
                  std::vector<int64_t>* out_b) {
  if (limit == 0 || a.size() <= limit) {
    out_a->assign(a.begin(), a.end());
    out_b->assign(b.begin(), b.end());
    return;
  }
  const size_t stride = a.size() / limit;
  out_a->clear();
  out_b->clear();
  out_a->reserve(limit);
  out_b->reserve(limit);
  for (size_t i = 0; i < a.size() && out_a->size() < limit; i += stride) {
    out_a->push_back(a[i]);
    out_b->push_back(b[i]);
  }
}

// Rescales a sample-based estimate to the full row count. Estimates are
// dominated by the per-row payload, which scales linearly.
size_t ScaleEstimate(size_t sample_bytes, size_t sample_rows,
                     size_t full_rows) {
  if (sample_rows == 0 || sample_bytes == SIZE_MAX) {
    return sample_bytes;
  }
  const double factor = static_cast<double>(full_rows) /
                        static_cast<double>(sample_rows);
  return static_cast<size_t>(static_cast<double>(sample_bytes) * factor);
}

size_t BestVerticalEstimate(std::span<const int64_t> sample,
                            size_t full_rows) {
  const auto estimates = enc::EstimateSchemes(
      sample, enc::SelectionPolicy::kConstantTimeAccessOnly);
  size_t best = SIZE_MAX;
  for (const auto& e : estimates) {
    best = std::min(best, e.size_bytes);
  }
  return ScaleEstimate(best, sample.size(), full_rows);
}

}  // namespace

Result<DiffConfig> OptimizeDiffConfig(
    std::span<const CandidateColumn> candidates,
    const OptimizerOptions& options) {
  const size_t n = candidates.size();
  if (n < 2) {
    return Status::InvalidArgument("need at least two candidate columns");
  }
  const size_t rows = candidates[0].values.size();
  for (const auto& c : candidates) {
    if (c.values.size() != rows) {
      return Status::InvalidArgument("candidate columns differ in length");
    }
  }
  if (options.max_chain_depth < 1) {
    return Status::InvalidArgument("max_chain_depth must be >= 1");
  }

  DiffConfig config;
  config.assignments.resize(n);
  config.edge_sizes.assign(n, std::vector<size_t>(n, SIZE_MAX));

  // Vertex weights: best single-column size.
  for (size_t i = 0; i < n; ++i) {
    const auto sample = StridedSample(candidates[i].values,
                                      options.sample_limit);
    config.assignments[i].vertical_size =
        BestVerticalEstimate(sample, rows);
    config.assignments[i].assigned_size =
        config.assignments[i].vertical_size;
  }

  // Edge weights: size of a diff-encoded w.r.t. b, for all ordered pairs.
  std::vector<int64_t> sample_a;
  std::vector<int64_t> sample_b;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) {
        continue;
      }
      PairedSample(candidates[a].values, candidates[b].values,
                   options.sample_limit, &sample_a, &sample_b);
      const size_t est = DiffEncodedColumn::EstimateSizeBytes(
          sample_a, sample_b, options.diff_options);
      config.edge_sizes[a][b] = ScaleEstimate(est, sample_a.size(), rows);
    }
  }

  // Cost-based greedy: repeatedly take the edge with the largest positive
  // saving whose source is still unassigned and whose target is allowed to
  // serve as a reference at the current chain depth.
  std::vector<bool> is_reference(n, false);
  while (true) {
    size_t best_a = n;
    size_t best_b = n;
    size_t best_saving = 0;
    for (size_t a = 0; a < n; ++a) {
      const auto& aa = config.assignments[a];
      // A column that is already diff-encoded or already serves as a
      // reference keeps its role.
      if (aa.role != ColumnRole::kVertical || is_reference[a]) {
        continue;
      }
      for (size_t b = 0; b < n; ++b) {
        if (a == b || config.edge_sizes[a][b] == SIZE_MAX) {
          continue;
        }
        const auto& ab = config.assignments[b];
        // The reference's own chain depth must leave room for one more
        // hop. Depth 0 (vertical/reference) always qualifies; depth d
        // qualifies iff d < max_chain_depth.
        if (ab.role == ColumnRole::kDiffEncoded &&
            ab.chain_depth >= options.max_chain_depth) {
          continue;
        }
        if (config.edge_sizes[a][b] >= aa.vertical_size) {
          continue;
        }
        const size_t saving =
            aa.vertical_size - config.edge_sizes[a][b];
        if (saving > best_saving) {
          best_saving = saving;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == n) {
      break;
    }
    auto& src = config.assignments[best_a];
    auto& ref = config.assignments[best_b];
    src.role = ColumnRole::kDiffEncoded;
    src.reference = static_cast<int>(best_b);
    src.assigned_size = config.edge_sizes[best_a][best_b];
    src.chain_depth = ref.chain_depth + 1;
    is_reference[best_b] = true;
    if (ref.role == ColumnRole::kVertical) {
      ref.role = ColumnRole::kReference;
    }
  }

  for (const auto& a : config.assignments) {
    config.total_vertical_bytes += a.vertical_size;
    config.total_assigned_bytes += a.assigned_size;
  }
  return config;
}

}  // namespace corra
