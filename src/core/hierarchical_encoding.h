// Hierarchical encoding — the paper's Sec. 2.2 (Fig. 3, Alg. 1).
//
// For column pairs with hierarchical structure (city -> zip_code), each
// distinct reference value owns a small local dictionary of the target
// values observed under it. The metadata is exactly the paper's layout:
//
//   values  : all local dictionaries concatenated ("zip_codes" array)
//   offsets : start of each reference value's slice ("offsets" array)
//
// A row stores only its *local* index, whose bit width is dictated by the
// largest local dictionary — typically far below the global distinct count
// (a city has dozens of zip codes; the state has tens of thousands).
//
// Decompression is Alg. 1 verbatim:
//   ref  <- Fetch(city)[tid]
//   diff <- Fetch(zip_code)[tid]
//   return values[offsets[ref] + diff]
//
// Precondition: the reference column's logical values are dense codes in
// [0, C) — e.g. dictionary codes of a string column, or LDBC's countryid.
// CorraCompressor dict-encodes reference columns that are not yet dense.

#ifndef CORRA_CORE_HIERARCHICAL_ENCODING_H_
#define CORRA_CORE_HIERARCHICAL_ENCODING_H_

#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "core/horizontal.h"

namespace corra {

class HierarchicalColumn final : public SingleRefColumn {
 public:
  /// Encodes `target` against the dense reference codes `ref_codes`
  /// (same length, each in [0, max_code]). `ref_index` is the block-local
  /// index of the reference column.
  static Result<std::unique_ptr<HierarchicalColumn>> Encode(
      std::span<const int64_t> target, std::span<const int64_t> ref_codes,
      uint32_t ref_index);

  /// Compressed size `target` would have under hierarchical encoding
  /// against `ref_codes`, without building the packed payload.
  /// SIZE_MAX when inapplicable (non-dense reference).
  static size_t EstimateSizeBytes(std::span<const int64_t> target,
                                  std::span<const int64_t> ref_codes);

  static Result<std::unique_ptr<HierarchicalColumn>> Deserialize(
      BufferReader* reader);

  enc::Scheme scheme() const override { return enc::Scheme::kHierarchical; }
  size_t size() const override { return local_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherWithReference(std::span<const uint32_t> rows,
                           const int64_t* ref_values,
                           int64_t* out) const override;
  void DecodeRangeWithReference(size_t row_begin, size_t count,
                                const int64_t* ref_values,
                                int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  /// Exhaustively checks that every row's (ref code, local index) pair is
  /// within bounds. O(n); used after deserializing untrusted bytes.
  Status VerifyWithReference() const;

  int bit_width() const { return local_.bit_width(); }
  /// Number of distinct reference codes covered by the metadata.
  size_t ref_cardinality() const { return offsets_.size() - 1; }
  /// Total distinct (ref, target) pairs — the length of the values array.
  size_t value_count() const { return values_.size(); }

 private:
  HierarchicalColumn(uint32_t ref_index, std::vector<int64_t> values,
                     std::vector<uint32_t> offsets,
                     std::vector<uint8_t> bytes, int bit_width, size_t count);

  std::vector<int64_t> values_;    // Concatenated local dictionaries.
  std::vector<uint32_t> offsets_;  // ref_cardinality()+1 entries.
  std::vector<uint8_t> bytes_;     // Bit-packed local indices.
  BitReader local_;
};

}  // namespace corra

#endif  // CORRA_CORE_HIERARCHICAL_ENCODING_H_
