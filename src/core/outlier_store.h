// Outlier storage architecture (paper Sec. 2.1/2.3, Fig. 4).
//
// Rows whose value cannot be produced by the horizontal encoding are kept
// aside as (row index, original value) pairs. Indices are sorted, so
// decompression checks membership with a binary search (point access) or a
// linear merge (batched access). Because the *indices* identify outliers,
// no sentinel code is needed in the main code stream — the paper's argument
// for keeping 2-bit codes despite having a fifth "none" case.
//
// Values are stored frame-of-reference bit-packed, indices as uint32.

#ifndef CORRA_CORE_OUTLIER_STORE_H_
#define CORRA_CORE_OUTLIER_STORE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "common/buffer.h"
#include "common/result.h"

namespace corra {

class OutlierStore {
 public:
  /// An empty store (no outliers).
  OutlierStore() = default;

  OutlierStore(const OutlierStore&) = delete;
  OutlierStore& operator=(const OutlierStore&) = delete;
  OutlierStore(OutlierStore&&) = default;
  OutlierStore& operator=(OutlierStore&&) = default;

  /// Builds a store from parallel arrays. `rows` must be strictly
  /// increasing.
  static Result<OutlierStore> Build(std::span<const uint32_t> rows,
                                    std::span<const int64_t> values);

  static Result<OutlierStore> Deserialize(BufferReader* reader);
  void Serialize(BufferWriter* writer) const;

  /// The outlier value at `row`, or nullopt if `row` is not an outlier.
  /// O(log n) binary search.
  std::optional<int64_t> Find(uint32_t row) const;

  /// True iff `row` is an outlier.
  bool Contains(uint32_t row) const { return Find(row).has_value(); }

  /// Patches `out` (values for the sorted row positions `rows`) with any
  /// outlier values, using a linear merge over both sorted sequences.
  void Patch(std::span<const uint32_t> rows, int64_t* out) const;

  /// Patches `out` (values for the dense row range [row_begin,
  /// row_begin + count)) with any outlier values: one binary search to
  /// locate the first covered outlier, then a linear walk.
  void PatchRange(size_t row_begin, size_t count, int64_t* out) const;

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Compressed footprint: uint32 indices + FOR-packed values.
  size_t SizeBytes() const;

  /// Row index of the i-th outlier (ascending).
  uint32_t row(size_t i) const { return rows_[i]; }
  /// Value of the i-th outlier.
  int64_t value(size_t i) const {
    return base_ + static_cast<int64_t>(values_.Get(i));
  }

 private:
  std::vector<uint32_t> rows_;       // Strictly increasing.
  int64_t base_ = 0;                 // FOR base of the packed values.
  std::vector<uint8_t> value_bytes_; // Bit-packed value offsets.
  BitReader values_;
};

}  // namespace corra

#endif  // CORRA_CORE_OUTLIER_STORE_H_
