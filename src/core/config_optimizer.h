// Optimal diff-encoding configuration — the paper's Fig. 2.
//
// Build a complete directed graph over candidate columns: the weight of an
// edge a -> b is the compressed size column a would have when diff-encoded
// with b as its reference; vertex weights are the best single-column sizes.
// A cost-based greedy pass (the strategy of CorBit, Lyu et al.) then picks
// which columns become references and which get diff-encoded. On TPC-H's
// three date columns this selects shipdate as the reference of both
// commitdate and receiptdate, saving 82.5 MB at SF 10.
//
// The paper leaves "a diff-encoded column becomes itself a reference"
// (chains) as future work; max_chain_depth > 1 enables that extension here.

#ifndef CORRA_CORE_CONFIG_OPTIMIZER_H_
#define CORRA_CORE_CONFIG_OPTIMIZER_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/diff_encoding.h"

namespace corra {

/// A named column participating in the optimization.
struct CandidateColumn {
  std::string name;
  std::span<const int64_t> values;
};

/// What the optimizer decided for one column.
enum class ColumnRole {
  kVertical,     // Best single-column scheme.
  kReference,    // Stays vertical; other columns diff against it.
  kDiffEncoded,  // Diff-encoded against `reference`.
};

std::string_view ColumnRoleToString(ColumnRole role);

struct ColumnAssignment {
  ColumnRole role = ColumnRole::kVertical;
  int reference = -1;        // Candidate index, when role == kDiffEncoded.
  size_t vertical_size = 0;  // Estimated best single-column size (bytes).
  size_t assigned_size = 0;  // Estimated size under the chosen role.
  int chain_depth = 0;       // 0 for vertical/reference, >=1 when diffed.
};

struct OptimizerOptions {
  /// Rows sampled (strided) for size estimation; 0 = use all rows.
  size_t sample_limit = 1 << 16;
  /// Options forwarded to the diff-size estimator.
  DiffOptions diff_options;
  /// 1 reproduces the paper (diff-encoded columns cannot be references);
  /// larger values allow reference chains of that depth.
  int max_chain_depth = 1;
};

/// The optimizer's output: per-column roles plus the full edge-weight
/// matrix (Fig. 2's graph) for inspection.
struct DiffConfig {
  std::vector<ColumnAssignment> assignments;
  /// edge_sizes[a][b] = estimated bytes of column a diff-encoded w.r.t. b
  /// (SIZE_MAX on the diagonal / inapplicable pairs).
  std::vector<std::vector<size_t>> edge_sizes;
  size_t total_vertical_bytes = 0;
  size_t total_assigned_bytes = 0;

  size_t saving_bytes() const {
    return total_vertical_bytes - total_assigned_bytes;
  }
};

/// Runs the cost-based greedy configuration search.
Result<DiffConfig> OptimizeDiffConfig(
    std::span<const CandidateColumn> candidates,
    const OptimizerOptions& options = {});

}  // namespace corra

#endif  // CORRA_CORE_CONFIG_OPTIMIZER_H_
