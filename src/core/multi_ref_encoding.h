// Non-hierarchical encoding with multiple reference columns — Sec. 2.3.
//
// The target column (Taxi's total_amount) is usually an arithmetic
// combination of *groups* of reference columns:
//
//   group A: mta_tax + fare_amount + improvement_surcharge + extra
//            + tip_amount + tolls_amount
//   group B: congestion_surcharge
//   group C: airport_fee
//
//   code 00 -> A          (31.19% of rows)
//   code 01 -> A + B      (62.44%)
//   code 10 -> A + C      ( 2.69%)
//   code 11 -> A + B + C  ( 3.33%)
//   outlier  (no formula)  ( 0.32%)         [paper Table 1]
//
// Each row stores only the 2-bit code of the formula reconstructing it;
// rows matching no formula go to the outlier store (Fig. 4). Because the
// outlier indices identify outliers, no fifth sentinel code is needed and
// 2 bits suffice — the paper's closing argument in Sec. 2.3.
//
// The implementation generalizes the example: any number of groups G <= 8,
// any formula set (bitmasks over groups), any code width 1..8 bits.

#ifndef CORRA_CORE_MULTI_REF_ENCODING_H_
#define CORRA_CORE_MULTI_REF_ENCODING_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "core/outlier_store.h"
#include "encoding/encoded_column.h"

namespace corra {

/// The arithmetic logic of a multi-reference encoding: which columns form
/// which group, and which group subsets are expressible as row codes.
struct FormulaTable {
  /// Block-local column indices per group. Group g's contribution to a row
  /// is the sum of its columns' values at that row.
  std::vector<std::vector<uint32_t>> groups;
  /// One bitmask per code value: bit g set => add group g's sum.
  std::vector<uint8_t> formulas;
  /// Bits stored per row (1..8); formulas.size() <= 2^code_bits.
  int code_bits = 2;

  /// Structural validation (group/formula/bit-width consistency).
  Status Validate() const;
};

/// Resolves a block-local column index to its values at encode time.
using ColumnResolver = std::function<std::span<const int64_t>(uint32_t)>;

class MultiRefColumn final : public enc::EncodedColumn {
 public:
  /// Encodes `target` using the formulas in `table`; reference values are
  /// obtained through `resolver`. Rows matching no formula become
  /// outliers. Fails if the outlier fraction exceeds
  /// `max_outlier_fraction`.
  static Result<std::unique_ptr<MultiRefColumn>> Encode(
      std::span<const int64_t> target, const ColumnResolver& resolver,
      const FormulaTable& table, double max_outlier_fraction = 0.05);

  /// Learns the most frequent formulas from the data (the "automatic
  /// correlation detection" the paper lists as future work): counts, on up
  /// to `sample_limit` rows, how often each non-empty subset of groups sums
  /// to the target, and keeps the 2^code_bits most frequent subsets.
  static Result<FormulaTable> DeriveFormulas(
      std::span<const int64_t> target, const ColumnResolver& resolver,
      std::vector<std::vector<uint32_t>> groups, int code_bits = 2,
      size_t sample_limit = 65536);

  static Result<std::unique_ptr<MultiRefColumn>> Deserialize(
      BufferReader* reader);

  enc::Scheme scheme() const override { return enc::Scheme::kMultiRef; }
  size_t size() const override { return codes_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  std::vector<uint32_t> ReferenceIndices() const override;
  Status BindReferences(
      std::span<const enc::EncodedColumn* const> references) override;

  const FormulaTable& table() const { return table_; }
  const OutlierStore& outliers() const { return outliers_; }
  double outlier_fraction() const {
    return size() == 0 ? 0.0
                       : static_cast<double>(outliers_.size()) /
                             static_cast<double>(size());
  }

  /// Per-code row counts (excluding outlier rows) plus the outlier count —
  /// the measured version of the paper's Table 1.
  struct CodeStats {
    std::vector<size_t> code_counts;
    size_t outlier_count = 0;
  };
  CodeStats ComputeCodeStats() const;

 private:
  MultiRefColumn(FormulaTable table, std::vector<uint8_t> bytes,
                 size_t count, OutlierStore outliers);

  // Sum of the bound columns of group `g` at `row`.
  int64_t GroupSum(size_t g, size_t row) const;

  FormulaTable table_;
  std::vector<uint8_t> bytes_;  // Bit-packed formula codes.
  BitReader codes_;
  OutlierStore outliers_;
  // Bound reference columns, aligned with table_.groups.
  std::vector<std::vector<const enc::EncodedColumn*>> bound_groups_;
};

}  // namespace corra

#endif  // CORRA_CORE_MULTI_REF_ENCODING_H_
