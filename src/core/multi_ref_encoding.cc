#include "core/multi_ref_encoding.h"

#include <algorithm>
#include <cassert>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra {

Status FormulaTable::Validate() const {
  if (code_bits < 1 || code_bits > 8) {
    return Status::InvalidArgument("code_bits must be in [1, 8]");
  }
  if (groups.empty() || groups.size() > 8) {
    return Status::InvalidArgument("need 1..8 reference groups");
  }
  for (const auto& group : groups) {
    if (group.empty()) {
      return Status::InvalidArgument("empty reference group");
    }
  }
  if (formulas.empty() ||
      formulas.size() > (size_t{1} << code_bits)) {
    return Status::InvalidArgument("formula count must be in [1, 2^bits]");
  }
  const uint8_t mask_limit =
      static_cast<uint8_t>((1u << groups.size()) - 1);
  for (uint8_t mask : formulas) {
    if (mask == 0 || mask > mask_limit) {
      return Status::InvalidArgument("formula mask out of range");
    }
  }
  return Status::OK();
}

namespace {

// Materializes, per group, the per-row sum of its member columns.
Result<std::vector<std::vector<int64_t>>> ComputeGroupSums(
    size_t row_count, const ColumnResolver& resolver,
    const std::vector<std::vector<uint32_t>>& groups) {
  std::vector<std::vector<int64_t>> sums(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    sums[g].assign(row_count, 0);
    for (uint32_t col : groups[g]) {
      const std::span<const int64_t> values = resolver(col);
      if (values.size() != row_count) {
        return Status::InvalidArgument(
            "reference column length mismatch in group");
      }
      for (size_t i = 0; i < row_count; ++i) {
        sums[g][i] += values[i];
      }
    }
  }
  return sums;
}

}  // namespace

MultiRefColumn::MultiRefColumn(FormulaTable table, std::vector<uint8_t> bytes,
                               size_t count, OutlierStore outliers)
    : table_(std::move(table)),
      bytes_(std::move(bytes)),
      codes_(bytes_.data(), table_.code_bits, count),
      outliers_(std::move(outliers)) {}

Result<std::unique_ptr<MultiRefColumn>> MultiRefColumn::Encode(
    std::span<const int64_t> target, const ColumnResolver& resolver,
    const FormulaTable& table, double max_outlier_fraction) {
  CORRA_RETURN_NOT_OK(table.Validate());
  if (target.size() > UINT32_MAX) {
    return Status::InvalidArgument("block too large for multi-ref encoding");
  }
  CORRA_ASSIGN_OR_RETURN(
      auto group_sums,
      ComputeGroupSums(target.size(), resolver, table.groups));

  BitWriter writer(table.code_bits);
  std::vector<uint32_t> outlier_rows;
  std::vector<int64_t> outlier_values;
  for (size_t i = 0; i < target.size(); ++i) {
    int matched_code = -1;
    for (size_t c = 0; c < table.formulas.size(); ++c) {
      const uint8_t mask = table.formulas[c];
      int64_t sum = 0;
      for (size_t g = 0; g < table.groups.size(); ++g) {
        if (mask & (1u << g)) {
          sum += group_sums[g][i];
        }
      }
      if (sum == target[i]) {
        matched_code = static_cast<int>(c);
        break;
      }
    }
    if (matched_code < 0) {
      outlier_rows.push_back(static_cast<uint32_t>(i));
      outlier_values.push_back(target[i]);
      writer.Append(0);  // Placeholder; outlier indices disambiguate.
    } else {
      writer.Append(static_cast<uint64_t>(matched_code));
    }
  }
  if (!target.empty() &&
      static_cast<double>(outlier_rows.size()) /
              static_cast<double>(target.size()) >
          max_outlier_fraction) {
    return Status::InvalidArgument(
        "outlier fraction exceeds limit; formulas do not fit the data");
  }
  CORRA_ASSIGN_OR_RETURN(OutlierStore store,
                         OutlierStore::Build(outlier_rows, outlier_values));
  return std::unique_ptr<MultiRefColumn>(new MultiRefColumn(
      table, std::move(writer).Finish(), target.size(), std::move(store)));
}

Result<FormulaTable> MultiRefColumn::DeriveFormulas(
    std::span<const int64_t> target, const ColumnResolver& resolver,
    std::vector<std::vector<uint32_t>> groups, int code_bits,
    size_t sample_limit) {
  FormulaTable probe;
  probe.groups = groups;
  probe.formulas = {1};  // Dummy; full validation happens below.
  probe.code_bits = code_bits;
  CORRA_RETURN_NOT_OK(probe.Validate());

  const size_t sample =
      std::min(target.size(), std::max<size_t>(sample_limit, 1));
  CORRA_ASSIGN_OR_RETURN(auto group_sums,
                         ComputeGroupSums(target.size(), resolver, groups));

  const size_t mask_count = size_t{1} << groups.size();
  std::vector<size_t> hits(mask_count, 0);
  for (size_t i = 0; i < sample; ++i) {
    for (size_t mask = 1; mask < mask_count; ++mask) {
      int64_t sum = 0;
      for (size_t g = 0; g < groups.size(); ++g) {
        if (mask & (size_t{1} << g)) {
          sum += group_sums[g][i];
        }
      }
      if (sum == target[i]) {
        ++hits[mask];
      }
    }
  }
  // Keep the 2^code_bits most frequent masks (frequency-descending, mask-
  // ascending tiebreak), dropping masks that never matched.
  std::vector<uint8_t> candidates;
  for (size_t mask = 1; mask < mask_count; ++mask) {
    if (hits[mask] > 0) {
      candidates.push_back(static_cast<uint8_t>(mask));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&hits](uint8_t a, uint8_t b) {
              if (hits[a] != hits[b]) {
                return hits[a] > hits[b];
              }
              return a < b;
            });
  if (candidates.empty()) {
    return Status::NotFound("no arithmetic formula matches any sampled row");
  }
  const size_t keep =
      std::min(candidates.size(), size_t{1} << code_bits);
  candidates.resize(keep);

  FormulaTable table;
  table.groups = std::move(groups);
  table.formulas = std::move(candidates);
  table.code_bits = code_bits;
  return table;
}

Result<std::unique_ptr<MultiRefColumn>> MultiRefColumn::Deserialize(
    BufferReader* reader) {
  FormulaTable table;
  uint8_t code_bits = 0;
  uint8_t group_count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&code_bits));
  CORRA_RETURN_NOT_OK(reader->Read(&group_count));
  table.code_bits = code_bits;
  table.groups.resize(group_count);
  for (auto& group : table.groups) {
    CORRA_RETURN_NOT_OK(reader->ReadUint32Array(&group));
  }
  std::span<const uint8_t> formula_bytes;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&formula_bytes));
  table.formulas.assign(formula_bytes.begin(), formula_bytes.end());
  CORRA_RETURN_NOT_OK(table.Validate());

  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, table.code_bits)) {
    return Status::Corruption("multi-ref code payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, table.code_bits), 0);
  // Codes must index into the formula table. Probe the padded copy — the
  // raw span may lack the load slack Get assumes.
  BitReader probe(bytes.data(), table.code_bits, count);
  for (size_t i = 0; i < count; ++i) {
    if (probe.Get(i) >= table.formulas.size()) {
      return Status::Corruption("multi-ref code out of range");
    }
  }
  CORRA_ASSIGN_OR_RETURN(OutlierStore outliers,
                         OutlierStore::Deserialize(reader));
  if (!outliers.empty() && outliers.row(outliers.size() - 1) >= count) {
    return Status::Corruption("multi-ref outlier row out of range");
  }
  return std::unique_ptr<MultiRefColumn>(new MultiRefColumn(
      std::move(table), std::move(bytes), count, std::move(outliers)));
}

std::vector<uint32_t> MultiRefColumn::ReferenceIndices() const {
  std::vector<uint32_t> indices;
  for (const auto& group : table_.groups) {
    indices.insert(indices.end(), group.begin(), group.end());
  }
  return indices;
}

Status MultiRefColumn::BindReferences(
    std::span<const enc::EncodedColumn* const> references) {
  size_t expected = 0;
  for (const auto& group : table_.groups) {
    expected += group.size();
  }
  if (references.size() != expected) {
    return Status::InvalidArgument("multi-ref reference count mismatch");
  }
  bound_groups_.assign(table_.groups.size(), {});
  size_t next = 0;
  for (size_t g = 0; g < table_.groups.size(); ++g) {
    for (size_t c = 0; c < table_.groups[g].size(); ++c, ++next) {
      const enc::EncodedColumn* col = references[next];
      if (col == nullptr || col->size() != size()) {
        return Status::InvalidArgument("bad multi-ref reference column");
      }
      bound_groups_[g].push_back(col);
    }
  }
  return Status::OK();
}

int64_t MultiRefColumn::GroupSum(size_t g, size_t row) const {
  int64_t sum = 0;
  for (const enc::EncodedColumn* col : bound_groups_[g]) {
    sum += col->Get(row);
  }
  return sum;
}

int64_t MultiRefColumn::Get(size_t row) const {
  assert(!bound_groups_.empty() && "references not bound");
  if (const auto v = outliers_.Find(static_cast<uint32_t>(row))) {
    return *v;
  }
  const uint8_t mask = table_.formulas[codes_.Get(row)];
  int64_t sum = 0;
  for (size_t g = 0; g < bound_groups_.size(); ++g) {
    if (mask & (1u << g)) {
      sum += GroupSum(g, row);
    }
  }
  return sum;
}

void MultiRefColumn::GatherRange(std::span<const uint32_t> rows,
                                 int64_t* out) const {
  assert(!bound_groups_.empty() && "references not bound");
  // Column-at-a-time in cache-sized chunks: one positioned GatherRange
  // per reference column per chunk (each scheme's sparse fast path),
  // instead of one virtual Get per (row, column) pair. The formula codes
  // are gathered from the packed stream in bulk too; group sums are
  // accumulated per chunk, then combined per row through the mask.
  constexpr size_t kChunk = 4096;
  const size_t num_groups = bound_groups_.size();
  std::vector<std::vector<int64_t>> group_sums(num_groups);
  for (auto& sums : group_sums) {
    sums.resize(kChunk);
  }
  std::vector<int64_t> scratch(kChunk);
  std::vector<uint64_t> codes(kChunk);
  for (size_t begin = 0; begin < rows.size(); begin += kChunk) {
    const size_t len = std::min(kChunk, rows.size() - begin);
    const auto chunk = rows.subspan(begin, len);
    for (size_t g = 0; g < num_groups; ++g) {
      std::fill_n(group_sums[g].data(), len, 0);
      for (const enc::EncodedColumn* col : bound_groups_[g]) {
        col->GatherRange(chunk, scratch.data());
        for (size_t i = 0; i < len; ++i) {
          group_sums[g][i] += scratch[i];
        }
      }
    }
    simd::GatherBits(bytes_.data(), codes_.bit_width(), chunk.data(), len,
                     codes.data());
    for (size_t i = 0; i < len; ++i) {
      const uint8_t mask = table_.formulas[codes[i]];
      int64_t sum = 0;
      for (size_t g = 0; g < num_groups; ++g) {
        if (mask & (1u << g)) {
          sum += group_sums[g][i];
        }
      }
      out[begin + i] = sum;
    }
  }
  outliers_.Patch(rows, out);
}

void MultiRefColumn::DecodeRange(size_t row_begin, size_t count,
                                 int64_t* out) const {
  assert(!bound_groups_.empty() && "references not bound");
  // Morsel-at-a-time: each reference column contributes one ranged
  // decode per morsel (so the whole working set stays cache-resident),
  // group sums are accumulated per morsel, then combined per row via the
  // formula mask.
  const size_t num_groups = bound_groups_.size();
  std::vector<int64_t> group_sums(num_groups * enc::kMorselRows);
  std::vector<int64_t> scratch(enc::kMorselRows);
  std::vector<uint64_t> codes(enc::kMorselRows);
  while (count > 0) {
    const size_t len = count < enc::kMorselRows ? count : enc::kMorselRows;
    for (size_t g = 0; g < num_groups; ++g) {
      int64_t* sums = group_sums.data() + g * enc::kMorselRows;
      std::fill_n(sums, len, 0);
      for (const enc::EncodedColumn* col : bound_groups_[g]) {
        col->DecodeRange(row_begin, len, scratch.data());
        for (size_t i = 0; i < len; ++i) {
          sums[i] += scratch[i];
        }
      }
    }
    codes_.DecodeRange(row_begin, len, codes.data());
    for (size_t i = 0; i < len; ++i) {
      const uint8_t mask = table_.formulas[codes[i]];
      int64_t sum = 0;
      for (size_t g = 0; g < num_groups; ++g) {
        if (mask & (1u << g)) {
          sum += group_sums[g * enc::kMorselRows + i];
        }
      }
      out[i] = sum;
    }
    outliers_.PatchRange(row_begin, len, out);
    row_begin += len;
    out += len;
    count -= len;
  }
}

size_t MultiRefColumn::SizeBytes() const {
  size_t metadata = 2;  // code_bits + group count
  for (const auto& group : table_.groups) {
    metadata += group.size() * sizeof(uint32_t);
  }
  metadata += table_.formulas.size();
  return bit_util::CeilDiv(codes_.size() * codes_.bit_width(), 8) +
         outliers_.SizeBytes() + metadata;
}

MultiRefColumn::CodeStats MultiRefColumn::ComputeCodeStats() const {
  CodeStats stats;
  stats.code_counts.assign(table_.formulas.size(), 0);
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    ++stats.code_counts[codes_.Get(i)];
  }
  // Outlier rows carry placeholder code 0; reassign them.
  for (size_t o = 0; o < outliers_.size(); ++o) {
    --stats.code_counts[codes_.Get(outliers_.row(o))];
    ++stats.outlier_count;
  }
  return stats;
}

void MultiRefColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(enc::Scheme::kMultiRef));
  writer->Write<uint8_t>(static_cast<uint8_t>(table_.code_bits));
  writer->Write<uint8_t>(static_cast<uint8_t>(table_.groups.size()));
  for (const auto& group : table_.groups) {
    writer->WriteUint32Array(group);
  }
  writer->WriteBytes(std::span<const uint8_t>(table_.formulas.data(),
                                              table_.formulas.size()));
  writer->Write<uint64_t>(codes_.size());
  writer->WriteBytes(bytes_);
  outliers_.Serialize(writer);
}

}  // namespace corra
