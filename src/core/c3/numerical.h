// C3's Numerical scheme: generalizes non-hierarchical diff encoding as an
// affine function. The target is modeled as round(a * ref) + b plus a
// bit-packed residual; a least-squares slope captures affine-like
// correlations (e.g. Taxi dropoff ~ pickup) more tightly than a pure
// difference when the slope is not exactly 1.

#ifndef CORRA_CORE_C3_NUMERICAL_H_
#define CORRA_CORE_C3_NUMERICAL_H_

#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "core/horizontal.h"

namespace corra::c3 {

class NumericalColumn final : public SingleRefColumn {
 public:
  static Result<std::unique_ptr<NumericalColumn>> Encode(
      std::span<const int64_t> target, std::span<const int64_t> reference,
      uint32_t ref_index);

  /// Compressed size without encoding (slope fit + residual scan).
  static size_t EstimateSizeBytes(std::span<const int64_t> target,
                                  std::span<const int64_t> reference);

  static Result<std::unique_ptr<NumericalColumn>> Deserialize(
      BufferReader* reader);

  enc::Scheme scheme() const override { return enc::Scheme::kC3Numerical; }
  size_t size() const override { return packed_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherWithReference(std::span<const uint32_t> rows,
                           const int64_t* ref_values,
                           int64_t* out) const override;
  void DecodeRangeWithReference(size_t row_begin, size_t count,
                                const int64_t* ref_values,
                                int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  double slope() const { return slope_; }
  int bit_width() const { return packed_.bit_width(); }

 private:
  NumericalColumn(uint32_t ref_index, double slope, int64_t base,
                  std::vector<uint8_t> bytes, int bit_width, size_t count);

  int64_t Predict(int64_t ref_value) const;

  double slope_;
  int64_t base_;  // FOR base of the residuals.
  std::vector<uint8_t> bytes_;
  BitReader packed_;
};

}  // namespace corra::c3

#endif  // CORRA_CORE_C3_NUMERICAL_H_
