#include "core/c3/one_to_one.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace corra::c3 {

namespace {

// Dominant (most frequent) target per reference value, plus the rows whose
// target deviates from their reference's dominant value.
struct MappingPlan {
  std::vector<int64_t> keys;
  std::vector<int64_t> mapped;
  std::vector<uint32_t> outlier_rows;
  std::vector<int64_t> outlier_values;
};

MappingPlan BuildMapping(std::span<const int64_t> target,
                         std::span<const int64_t> reference) {
  // Count (ref -> target) frequencies.
  std::unordered_map<int64_t, std::unordered_map<int64_t, uint32_t>> counts;
  for (size_t i = 0; i < target.size(); ++i) {
    ++counts[reference[i]][target[i]];
  }
  std::unordered_map<int64_t, int64_t> dominant;
  dominant.reserve(counts.size());
  for (const auto& [ref, targets] : counts) {
    uint32_t best_count = 0;
    int64_t best_value = 0;
    for (const auto& [value, count] : targets) {
      if (count > best_count ||
          (count == best_count && value < best_value)) {
        best_count = count;
        best_value = value;
      }
    }
    dominant.emplace(ref, best_value);
  }

  MappingPlan plan;
  plan.keys.reserve(dominant.size());
  for (const auto& [ref, value] : dominant) {
    plan.keys.push_back(ref);
  }
  std::sort(plan.keys.begin(), plan.keys.end());
  plan.mapped.reserve(plan.keys.size());
  for (int64_t key : plan.keys) {
    plan.mapped.push_back(dominant.find(key)->second);
  }
  for (size_t i = 0; i < target.size(); ++i) {
    if (dominant.find(reference[i])->second != target[i]) {
      plan.outlier_rows.push_back(static_cast<uint32_t>(i));
      plan.outlier_values.push_back(target[i]);
    }
  }
  return plan;
}

}  // namespace

OneToOneColumn::OneToOneColumn(uint32_t ref_index, std::vector<int64_t> keys,
                               std::vector<int64_t> mapped, size_t count,
                               OutlierStore outliers)
    : SingleRefColumn(ref_index),
      keys_(std::move(keys)),
      mapped_(std::move(mapped)),
      count_(count),
      outliers_(std::move(outliers)) {}

Result<std::unique_ptr<OneToOneColumn>> OneToOneColumn::Encode(
    std::span<const int64_t> target, std::span<const int64_t> reference,
    uint32_t ref_index, double max_outlier_fraction) {
  if (target.size() != reference.size()) {
    return Status::InvalidArgument("target/reference length mismatch");
  }
  if (target.size() > UINT32_MAX) {
    return Status::InvalidArgument("block too large for 1-to-1 encoding");
  }
  MappingPlan plan = BuildMapping(target, reference);
  if (!target.empty() &&
      static_cast<double>(plan.outlier_rows.size()) /
              static_cast<double>(target.size()) >
          max_outlier_fraction) {
    return Status::InvalidArgument(
        "pair is not 1-to-1: too many deviating rows");
  }
  CORRA_ASSIGN_OR_RETURN(
      OutlierStore store,
      OutlierStore::Build(plan.outlier_rows, plan.outlier_values));
  return std::unique_ptr<OneToOneColumn>(
      new OneToOneColumn(ref_index, std::move(plan.keys),
                         std::move(plan.mapped), target.size(),
                         std::move(store)));
}

size_t OneToOneColumn::EstimateSizeBytes(std::span<const int64_t> target,
                                         std::span<const int64_t> reference,
                                         double max_outlier_fraction) {
  if (target.size() != reference.size()) {
    return SIZE_MAX;
  }
  const MappingPlan plan = BuildMapping(target, reference);
  if (!target.empty() &&
      static_cast<double>(plan.outlier_rows.size()) /
              static_cast<double>(target.size()) >
          max_outlier_fraction) {
    return SIZE_MAX;
  }
  // Map (two int64 per key) + outliers (index + ~half-word value).
  return plan.keys.size() * 2 * sizeof(int64_t) +
         plan.outlier_rows.size() * 8;
}

Result<std::unique_ptr<OneToOneColumn>> OneToOneColumn::Deserialize(
    BufferReader* reader) {
  uint32_t ref_index = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&ref_index));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  std::vector<int64_t> keys;
  std::vector<int64_t> mapped;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&keys));
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&mapped));
  if (keys.size() != mapped.size()) {
    return Status::Corruption("1-to-1 map arrays disagree");
  }
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] <= keys[i - 1]) {
      return Status::Corruption("1-to-1 keys not strictly increasing");
    }
  }
  CORRA_ASSIGN_OR_RETURN(OutlierStore outliers,
                         OutlierStore::Deserialize(reader));
  if (!outliers.empty() && outliers.row(outliers.size() - 1) >= count) {
    return Status::Corruption("1-to-1 outlier row out of range");
  }
  return std::unique_ptr<OneToOneColumn>(
      new OneToOneColumn(ref_index, std::move(keys), std::move(mapped),
                         count, std::move(outliers)));
}

size_t OneToOneColumn::SizeBytes() const {
  return keys_.size() * 2 * sizeof(int64_t) + outliers_.SizeBytes();
}

int64_t OneToOneColumn::MapValue(int64_t ref_value) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), ref_value);
  assert(it != keys_.end() && *it == ref_value &&
         "reference value missing from 1-to-1 map");
  return mapped_[static_cast<size_t>(it - keys_.begin())];
}

int64_t OneToOneColumn::Get(size_t row) const {
  assert(ref_ != nullptr && "reference not bound");
  if (const auto v = outliers_.Find(static_cast<uint32_t>(row))) {
    return *v;
  }
  return MapValue(ref_->Get(row));
}

void OneToOneColumn::GatherWithReference(std::span<const uint32_t> rows,
                                         const int64_t* ref_values,
                                         int64_t* out) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] = MapValue(ref_values[i]);
  }
  outliers_.Patch(rows, out);
}

void OneToOneColumn::DecodeRangeWithReference(size_t row_begin, size_t count,
                                              const int64_t* ref_values,
                                              int64_t* out) const {
  for (size_t i = 0; i < count; ++i) {
    out[i] = MapValue(ref_values[i]);
  }
  outliers_.PatchRange(row_begin, count, out);
}

void OneToOneColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(enc::Scheme::kC3OneToOne));
  writer->Write<uint32_t>(ref_index_);
  writer->Write<uint64_t>(count_);
  writer->WriteInt64Array(keys_);
  writer->WriteInt64Array(mapped_);
  outliers_.Serialize(writer);
}

}  // namespace corra::c3
