// C3's DFOR scheme (Glas et al., reimplemented from the description in the
// paper's Table 3): diff-encode against the reference column, then compress
// the diff column with *frame-wise* FOR — each frame of kFrameSize rows has
// its own base and bit width, following BtrBlocks' block-local philosophy.
// Random access stays O(1) through a per-frame bit-offset directory.

#ifndef CORRA_CORE_C3_DFOR_H_
#define CORRA_CORE_C3_DFOR_H_

#include <memory>
#include <span>
#include <vector>

#include "core/horizontal.h"

namespace corra::c3 {

class DforColumn final : public SingleRefColumn {
 public:
  static constexpr size_t kFrameSize = 1024;

  static Result<std::unique_ptr<DforColumn>> Encode(
      std::span<const int64_t> target, std::span<const int64_t> reference,
      uint32_t ref_index);

  /// Compressed size without encoding (frame scan only).
  static size_t EstimateSizeBytes(std::span<const int64_t> target,
                                  std::span<const int64_t> reference);

  static Result<std::unique_ptr<DforColumn>> Deserialize(
      BufferReader* reader);

  enc::Scheme scheme() const override { return enc::Scheme::kC3Dfor; }
  size_t size() const override { return count_; }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherWithReference(std::span<const uint32_t> rows,
                           const int64_t* ref_values,
                           int64_t* out) const override;
  void DecodeRangeWithReference(size_t row_begin, size_t count,
                                const int64_t* ref_values,
                                int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

 private:
  DforColumn(uint32_t ref_index, std::vector<int64_t> frame_bases,
             std::vector<uint8_t> frame_widths,
             std::vector<uint64_t> frame_bit_starts,
             std::vector<uint8_t> payload, size_t count);

  // The packed diff (relative to its frame base) at `row`.
  int64_t DiffAt(size_t row) const;

  std::vector<int64_t> frame_bases_;
  std::vector<uint8_t> frame_widths_;
  std::vector<uint64_t> frame_bit_starts_;  // Bit offset of each frame.
  std::vector<uint8_t> payload_;
  size_t count_ = 0;
};

}  // namespace corra::c3

#endif  // CORRA_CORE_C3_DFOR_H_
