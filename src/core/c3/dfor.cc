#include "core/c3/dfor.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra::c3 {

namespace {

// Appends `width` low bits of `value` at bit position `cursor`.
void AppendBits(std::vector<uint8_t>* bytes, uint64_t* cursor, uint64_t value,
                int width) {
  if (width == 0) {
    return;
  }
  const size_t needed = (*cursor + width + 7) / 8 + 8;
  if (bytes->size() < needed) {
    bytes->resize(needed, 0);
  }
  size_t byte = *cursor >> 3;
  int shift = static_cast<int>(*cursor & 7);
  uint64_t word;
  std::memcpy(&word, bytes->data() + byte, sizeof(word));
  word |= value << shift;
  std::memcpy(bytes->data() + byte, &word, sizeof(word));
  if (shift + width > 64) {
    uint64_t spill = value >> (64 - shift);
    std::memcpy(&word, bytes->data() + byte + 8, sizeof(word));
    word |= spill;
    std::memcpy(bytes->data() + byte + 8, &word, sizeof(word));
  }
  *cursor += width;
}

uint64_t ReadBits(const uint8_t* bytes, uint64_t bit_pos, int width) {
  if (width == 0) {
    return 0;
  }
  const size_t byte = bit_pos >> 3;
  const int shift = static_cast<int>(bit_pos & 7);
  uint64_t word;
  std::memcpy(&word, bytes + byte, sizeof(word));
  uint64_t v = word >> shift;
  if (shift + width > 64) {
    uint64_t next;
    std::memcpy(&next, bytes + byte + 8, sizeof(next));
    v |= next << (64 - shift);
  }
  const uint64_t mask = width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  return v & mask;
}

}  // namespace

DforColumn::DforColumn(uint32_t ref_index, std::vector<int64_t> frame_bases,
                       std::vector<uint8_t> frame_widths,
                       std::vector<uint64_t> frame_bit_starts,
                       std::vector<uint8_t> payload, size_t count)
    : SingleRefColumn(ref_index),
      frame_bases_(std::move(frame_bases)),
      frame_widths_(std::move(frame_widths)),
      frame_bit_starts_(std::move(frame_bit_starts)),
      payload_(std::move(payload)),
      count_(count) {}

Result<std::unique_ptr<DforColumn>> DforColumn::Encode(
    std::span<const int64_t> target, std::span<const int64_t> reference,
    uint32_t ref_index) {
  if (target.size() != reference.size()) {
    return Status::InvalidArgument("target/reference length mismatch");
  }
  std::vector<int64_t> diffs(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    diffs[i] = static_cast<int64_t>(static_cast<uint64_t>(target[i]) -
                                    static_cast<uint64_t>(reference[i]));
  }
  const size_t frames = bit_util::CeilDiv(diffs.size(), kFrameSize);
  std::vector<int64_t> bases(frames);
  std::vector<uint8_t> widths(frames);
  std::vector<uint64_t> starts(frames);
  std::vector<uint8_t> payload;
  uint64_t cursor = 0;
  for (size_t f = 0; f < frames; ++f) {
    const size_t begin = f * kFrameSize;
    const size_t end = std::min(begin + kFrameSize, diffs.size());
    const auto frame =
        std::span<const int64_t>(diffs).subspan(begin, end - begin);
    const auto mm = bit_util::ComputeMinMax(frame);
    bases[f] = mm.min;
    widths[f] = static_cast<uint8_t>(bit_util::BitWidth(
        static_cast<uint64_t>(mm.max) - static_cast<uint64_t>(mm.min)));
    starts[f] = cursor;
    for (int64_t d : frame) {
      AppendBits(&payload, &cursor,
                 static_cast<uint64_t>(d) - static_cast<uint64_t>(mm.min),
                 widths[f]);
    }
  }
  payload.resize((cursor + 7) / 8 + bit_util::kDecodePadBytes, 0);
  return std::unique_ptr<DforColumn>(
      new DforColumn(ref_index, std::move(bases), std::move(widths),
                     std::move(starts), std::move(payload), target.size()));
}

size_t DforColumn::EstimateSizeBytes(std::span<const int64_t> target,
                                     std::span<const int64_t> reference) {
  if (target.size() != reference.size()) {
    return SIZE_MAX;
  }
  size_t total_bits = 0;
  size_t frames = 0;
  for (size_t begin = 0; begin < target.size(); begin += kFrameSize) {
    const size_t end = std::min(begin + kFrameSize, target.size());
    int64_t lo = 0;
    int64_t hi = 0;
    for (size_t i = begin; i < end; ++i) {
      const int64_t d = static_cast<int64_t>(
          static_cast<uint64_t>(target[i]) -
          static_cast<uint64_t>(reference[i]));
      if (i == begin) {
        lo = hi = d;
      } else {
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
    }
    total_bits += (end - begin) *
                  bit_util::BitWidth(static_cast<uint64_t>(hi) -
                                     static_cast<uint64_t>(lo));
    ++frames;
  }
  // Per frame: base (8B) + width (1B) + bit start (8B).
  return bit_util::CeilDiv(total_bits, 8) + frames * 17;
}

Result<std::unique_ptr<DforColumn>> DforColumn::Deserialize(
    BufferReader* reader) {
  uint32_t ref_index = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&ref_index));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  std::vector<int64_t> bases;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&bases));
  std::span<const uint8_t> width_bytes;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&width_bytes));
  std::vector<int64_t> starts_i64;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&starts_i64));
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));

  const size_t frames = bit_util::CeilDiv(count, kFrameSize);
  if (bases.size() != frames || width_bytes.size() != frames ||
      starts_i64.size() != frames) {
    return Status::Corruption("DFOR frame directory size mismatch");
  }
  std::vector<uint8_t> widths(width_bytes.begin(), width_bytes.end());
  std::vector<uint64_t> starts(frames);
  uint64_t expected_bits = 0;
  for (size_t f = 0; f < frames; ++f) {
    if (widths[f] > 64) {
      return Status::Corruption("DFOR width > 64");
    }
    starts[f] = static_cast<uint64_t>(starts_i64[f]);
    if (starts[f] != expected_bits) {
      return Status::Corruption("DFOR frame bit starts inconsistent");
    }
    const size_t rows_in_frame =
        std::min(kFrameSize, static_cast<size_t>(count) - f * kFrameSize);
    expected_bits += rows_in_frame * widths[f];
  }
  if (payload.size() < (expected_bits + 7) / 8) {
    return Status::Corruption("DFOR payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize((expected_bits + 7) / 8 + bit_util::kDecodePadBytes, 0);
  return std::unique_ptr<DforColumn>(
      new DforColumn(ref_index, std::move(bases), std::move(widths),
                     std::move(starts), std::move(bytes), count));
}

size_t DforColumn::SizeBytes() const {
  uint64_t total_bits = 0;
  for (size_t f = 0; f < frame_widths_.size(); ++f) {
    const size_t rows =
        std::min(kFrameSize, count_ - f * kFrameSize);
    total_bits += rows * frame_widths_[f];
  }
  return bit_util::CeilDiv(total_bits, 8) + frame_bases_.size() * 17;
}

int64_t DforColumn::DiffAt(size_t row) const {
  const size_t f = row / kFrameSize;
  const uint64_t bit_pos =
      frame_bit_starts_[f] + (row % kFrameSize) * frame_widths_[f];
  return frame_bases_[f] +
         static_cast<int64_t>(
             ReadBits(payload_.data(), bit_pos, frame_widths_[f]));
}

int64_t DforColumn::Get(size_t row) const {
  assert(ref_ != nullptr && "reference not bound");
  return ref_->Get(row) + DiffAt(row);
}

void DforColumn::GatherWithReference(std::span<const uint32_t> rows,
                                     const int64_t* ref_values,
                                     int64_t* out) const {
  // Frame-grouped positioned gather: positions sharing a frame are
  // rebased to frame-local indices and gathered from the frame's
  // byte-aligned payload slice with one SIMD GatherBits per group, then
  // combined with the reference values and the frame base in one
  // vectorized add. A frame switch (or an out-of-order caller) simply
  // starts a new group.
  uint32_t local[enc::kMorselRows];
  uint64_t offsets[enc::kMorselRows];
  size_t i = 0;
  while (i < rows.size()) {
    const size_t f = rows[i] / kFrameSize;
    const uint32_t frame_first = static_cast<uint32_t>(f * kFrameSize);
    size_t j = i;
    while (j < rows.size() && j - i < enc::kMorselRows &&
           rows[j] / kFrameSize == f) {
      local[j - i] = rows[j] - frame_first;
      ++j;
    }
    const size_t len = j - i;
    simd::GatherBits(payload_.data() + (frame_bit_starts_[f] >> 3),
                     frame_widths_[f], local, len, offsets);
    simd::AddRefAndBase(ref_values + i, offsets, frame_bases_[f], len,
                        out + i);
    i = j;
  }
}

void DforColumn::DecodeRangeWithReference(size_t row_begin, size_t count,
                                          const int64_t* ref_values,
                                          int64_t* out) const {
  // Frame-at-a-time: hoist the frame's base, width, and bit start out of
  // the row loop, then hand the in-frame segment to the SIMD kernel
  // layer. kFrameSize rows x width bits is a whole byte count, so every
  // frame's payload starts byte-aligned and unpacks as its own packed
  // stream; the unpacked offsets are combined with the reference morsel
  // in one vectorized add pass.
  static_assert(kFrameSize % 8 == 0,
                "frame payloads must start byte-aligned");
  uint64_t offsets[enc::kMorselRows];
  size_t i = 0;
  while (i < count) {
    const size_t row = row_begin + i;
    const size_t f = row / kFrameSize;
    const size_t frame_end = (f + 1) * kFrameSize;
    size_t len = std::min<size_t>(count - i, frame_end - row);
    len = std::min(len, enc::kMorselRows);  // Callers pass morsels; be safe.
    simd::UnpackRange(payload_.data() + (frame_bit_starts_[f] >> 3),
                      frame_widths_[f], row % kFrameSize, len, offsets);
    simd::AddRefAndBase(ref_values + i, offsets, frame_bases_[f], len,
                        out + i);
    i += len;
  }
}

void DforColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(enc::Scheme::kC3Dfor));
  writer->Write<uint32_t>(ref_index_);
  writer->Write<uint64_t>(count_);
  writer->WriteInt64Array(frame_bases_);
  writer->WriteBytes(std::span<const uint8_t>(frame_widths_.data(),
                                              frame_widths_.size()));
  std::vector<int64_t> starts(frame_bit_starts_.begin(),
                              frame_bit_starts_.end());
  writer->WriteInt64Array(starts);
  writer->WriteBytes(payload_);
}

}  // namespace corra::c3
