// C3's 1-to-1 scheme: "specialized for the case where one could directly
// infer the diff-encoded column from the reference column" (paper Table 3).
//
// For every distinct reference value the dominant target value is stored in
// a mapping table; rows deviating from their mapped value go to the outlier
// store. When the pair is a true functional dependency the per-row payload
// is zero bits — the entire column collapses into the map.

#ifndef CORRA_CORE_C3_ONE_TO_ONE_H_
#define CORRA_CORE_C3_ONE_TO_ONE_H_

#include <memory>
#include <span>
#include <vector>

#include "core/horizontal.h"
#include "core/outlier_store.h"

namespace corra::c3 {

class OneToOneColumn final : public SingleRefColumn {
 public:
  /// Encodes `target` as a function of `reference`. Fails if the deviating
  /// rows exceed `max_outlier_fraction` (the pair is not 1-to-1-ish).
  static Result<std::unique_ptr<OneToOneColumn>> Encode(
      std::span<const int64_t> target, std::span<const int64_t> reference,
      uint32_t ref_index, double max_outlier_fraction = 0.05);

  /// Compressed size without encoding. SIZE_MAX if the outlier fraction
  /// would exceed `max_outlier_fraction`.
  static size_t EstimateSizeBytes(std::span<const int64_t> target,
                                  std::span<const int64_t> reference,
                                  double max_outlier_fraction = 0.05);

  static Result<std::unique_ptr<OneToOneColumn>> Deserialize(
      BufferReader* reader);

  enc::Scheme scheme() const override { return enc::Scheme::kC3OneToOne; }
  size_t size() const override { return count_; }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherWithReference(std::span<const uint32_t> rows,
                           const int64_t* ref_values,
                           int64_t* out) const override;
  void DecodeRangeWithReference(size_t row_begin, size_t count,
                                const int64_t* ref_values,
                                int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  size_t map_size() const { return keys_.size(); }
  const OutlierStore& outliers() const { return outliers_; }

 private:
  OneToOneColumn(uint32_t ref_index, std::vector<int64_t> keys,
                 std::vector<int64_t> mapped, size_t count,
                 OutlierStore outliers);

  // The mapped value for `ref_value` (binary search over keys_).
  int64_t MapValue(int64_t ref_value) const;

  std::vector<int64_t> keys_;    // Sorted distinct reference values.
  std::vector<int64_t> mapped_;  // Dominant target value per key.
  size_t count_ = 0;
  OutlierStore outliers_;
};

}  // namespace corra::c3

#endif  // CORRA_CORE_C3_ONE_TO_ONE_H_
