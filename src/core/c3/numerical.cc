#include "core/c3/numerical.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra::c3 {

namespace {

// Least-squares slope of target on reference. Returns 1.0 for degenerate
// inputs (constant reference), reducing the scheme to plain diff encoding.
double FitSlope(std::span<const int64_t> target,
                std::span<const int64_t> reference) {
  if (target.empty()) {
    return 1.0;
  }
  const double n = static_cast<double>(target.size());
  double mean_x = 0;
  double mean_y = 0;
  for (size_t i = 0; i < target.size(); ++i) {
    mean_x += static_cast<double>(reference[i]);
    mean_y += static_cast<double>(target[i]);
  }
  mean_x /= n;
  mean_y /= n;
  double cov = 0;
  double var = 0;
  for (size_t i = 0; i < target.size(); ++i) {
    const double dx = static_cast<double>(reference[i]) - mean_x;
    cov += dx * (static_cast<double>(target[i]) - mean_y);
    var += dx * dx;
  }
  if (var == 0.0 || !std::isfinite(cov / var)) {
    return 1.0;
  }
  return cov / var;
}

int64_t PredictWith(double slope, int64_t ref_value) {
  return static_cast<int64_t>(
      std::llround(slope * static_cast<double>(ref_value)));
}

}  // namespace

NumericalColumn::NumericalColumn(uint32_t ref_index, double slope,
                                 int64_t base, std::vector<uint8_t> bytes,
                                 int bit_width, size_t count)
    : SingleRefColumn(ref_index),
      slope_(slope),
      base_(base),
      bytes_(std::move(bytes)),
      packed_(bytes_.data(), bit_width, count) {}

int64_t NumericalColumn::Predict(int64_t ref_value) const {
  return PredictWith(slope_, ref_value);
}

Result<std::unique_ptr<NumericalColumn>> NumericalColumn::Encode(
    std::span<const int64_t> target, std::span<const int64_t> reference,
    uint32_t ref_index) {
  if (target.size() != reference.size()) {
    return Status::InvalidArgument("target/reference length mismatch");
  }
  const double slope = FitSlope(target, reference);
  std::vector<int64_t> residuals(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    residuals[i] = static_cast<int64_t>(
        static_cast<uint64_t>(target[i]) -
        static_cast<uint64_t>(PredictWith(slope, reference[i])));
  }
  const auto mm = bit_util::ComputeMinMax(residuals);
  const int width = bit_util::BitWidth(static_cast<uint64_t>(mm.max) -
                                       static_cast<uint64_t>(mm.min));
  BitWriter writer(width);
  for (int64_t r : residuals) {
    writer.Append(static_cast<uint64_t>(r) - static_cast<uint64_t>(mm.min));
  }
  return std::unique_ptr<NumericalColumn>(
      new NumericalColumn(ref_index, slope, mm.min, std::move(writer).Finish(),
                          width, target.size()));
}

size_t NumericalColumn::EstimateSizeBytes(std::span<const int64_t> target,
                                          std::span<const int64_t> reference) {
  if (target.size() != reference.size()) {
    return SIZE_MAX;
  }
  const double slope = FitSlope(target, reference);
  int64_t lo = 0;
  int64_t hi = 0;
  for (size_t i = 0; i < target.size(); ++i) {
    const int64_t r = static_cast<int64_t>(
        static_cast<uint64_t>(target[i]) -
        static_cast<uint64_t>(PredictWith(slope, reference[i])));
    if (i == 0) {
      lo = hi = r;
    } else {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
  }
  const int width = bit_util::BitWidth(static_cast<uint64_t>(hi) -
                                       static_cast<uint64_t>(lo));
  return bit_util::CeilDiv(target.size() * width, 8) + sizeof(double) +
         sizeof(int64_t);
}

Result<std::unique_ptr<NumericalColumn>> NumericalColumn::Deserialize(
    BufferReader* reader) {
  uint32_t ref_index = 0;
  uint64_t slope_bits = 0;
  int64_t base = 0;
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&ref_index));
  CORRA_RETURN_NOT_OK(reader->Read(&slope_bits));
  CORRA_RETURN_NOT_OK(reader->Read(&base));
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (width > 64) {
    return Status::Corruption("numerical width > 64");
  }
  double slope;
  static_assert(sizeof(slope) == sizeof(slope_bits));
  std::memcpy(&slope, &slope_bits, sizeof(slope));
  if (!std::isfinite(slope)) {
    return Status::Corruption("numerical slope not finite");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("numerical payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  return std::unique_ptr<NumericalColumn>(new NumericalColumn(
      ref_index, slope, base, std::move(bytes), width, count));
}

size_t NumericalColumn::SizeBytes() const {
  return bit_util::CeilDiv(packed_.size() * packed_.bit_width(), 8) +
         sizeof(double) + sizeof(int64_t);
}

int64_t NumericalColumn::Get(size_t row) const {
  assert(ref_ != nullptr && "reference not bound");
  return Predict(ref_->Get(row)) + base_ +
         static_cast<int64_t>(packed_.Get(row));
}

void NumericalColumn::GatherWithReference(std::span<const uint32_t> rows,
                                          const int64_t* ref_values,
                                          int64_t* out) const {
  // Positioned SIMD gather of the packed residuals, then the affine
  // model over the staged chunk.
  uint64_t residuals[enc::kMorselRows];
  const int64_t base = base_;
  size_t done = 0;
  while (done < rows.size()) {
    const size_t len = std::min(rows.size() - done, enc::kMorselRows);
    simd::GatherBits(bytes_.data(), packed_.bit_width(), rows.data() + done,
                     len, residuals);
    for (size_t i = 0; i < len; ++i) {
      out[done + i] = Predict(ref_values[done + i]) + base +
                      static_cast<int64_t>(residuals[i]);
    }
    done += len;
  }
}

void NumericalColumn::DecodeRangeWithReference(size_t row_begin,
                                               size_t count,
                                               const int64_t* ref_values,
                                               int64_t* out) const {
  // Unpack the residual morsel sequentially, then apply the affine model.
  packed_.DecodeRange(row_begin, count, reinterpret_cast<uint64_t*>(out));
  const int64_t base = base_;
  for (size_t i = 0; i < count; ++i) {
    out[i] = Predict(ref_values[i]) + base + out[i];
  }
}

void NumericalColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(enc::Scheme::kC3Numerical));
  writer->Write<uint32_t>(ref_index_);
  uint64_t slope_bits;
  std::memcpy(&slope_bits, &slope_, sizeof(slope_bits));
  writer->Write<uint64_t>(slope_bits);
  writer->Write<int64_t>(base_);
  writer->Write<uint8_t>(static_cast<uint8_t>(packed_.bit_width()));
  writer->Write<uint64_t>(packed_.size());
  writer->WriteBytes(bytes_);
}

}  // namespace corra::c3
