// Base class for horizontal encodings with a single reference column
// (Corra's diff and hierarchical schemes, and the C3 schemes).
//
// Single-reference columns support an additional fast path used when a
// query materializes *both* columns: the scan gathers the reference once
// and hands the values to GatherWithReference, so the reference is not
// fetched a second time. This is exactly why the paper's "query on both
// columns" case shows (almost) no slowdown (Fig. 5).

#ifndef CORRA_CORE_HORIZONTAL_H_
#define CORRA_CORE_HORIZONTAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "encoding/encoded_column.h"

namespace corra {

class SingleRefColumn : public enc::EncodedColumn {
 public:
  /// Block-local index of the reference column.
  uint32_t ref_index() const { return ref_index_; }

  /// The bound reference column (null until BindReferences).
  const enc::EncodedColumn* reference() const { return ref_; }

  std::vector<uint32_t> ReferenceIndices() const override {
    return {ref_index_};
  }

  Status BindReferences(
      std::span<const enc::EncodedColumn* const> references) override {
    if (references.size() != 1 || references[0] == nullptr) {
      return Status::InvalidArgument(
          "single-reference scheme needs exactly one reference");
    }
    if (references[0]->size() != size()) {
      return Status::InvalidArgument("reference row count mismatch");
    }
    ref_ = references[0];
    return Status::OK();
  }

  /// Materializes this column at the sorted positions `rows`, given the
  /// reference values already gathered for the same positions.
  /// `out` must hold rows.size() values.
  virtual void GatherWithReference(std::span<const uint32_t> rows,
                                   const int64_t* ref_values,
                                   int64_t* out) const = 0;

  /// Ranged counterpart of GatherWithReference: materializes the dense
  /// row range [row_begin, row_begin + count), given the reference
  /// values already decoded for the same range. This is the kernel the
  /// morsel pipeline calls — the reference morsel is decoded once and
  /// consumed in a tight typed loop, with no per-row virtual calls.
  virtual void DecodeRangeWithReference(size_t row_begin, size_t count,
                                        const int64_t* ref_values,
                                        int64_t* out) const = 0;

  /// Shared morsel driver for all single-reference schemes: decode the
  /// reference one morsel at a time into a stack buffer, then run the
  /// scheme's ranged kernel over it.
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override {
    int64_t ref_values[enc::kMorselRows];
    while (count > 0) {
      const size_t len = count < enc::kMorselRows ? count : enc::kMorselRows;
      ref_->DecodeRange(row_begin, len, ref_values);
      DecodeRangeWithReference(row_begin, len, ref_values, out);
      row_begin += len;
      out += len;
      count -= len;
    }
  }

  /// Shared sparse-decode driver: gather the reference at morsel-sized
  /// position chunks through its own GatherRange fast path, then run the
  /// scheme's positioned kernel over the staged reference values. The
  /// reference is fetched exactly once per selected row, with no per-row
  /// virtual calls on either column.
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override {
    int64_t ref_values[enc::kMorselRows];
    size_t done = 0;
    while (done < rows.size()) {
      const size_t len = rows.size() - done < enc::kMorselRows
                             ? rows.size() - done
                             : enc::kMorselRows;
      const auto chunk = rows.subspan(done, len);
      ref_->GatherRange(chunk, ref_values);
      GatherWithReference(chunk, ref_values, out + done);
      done += len;
    }
  }

 protected:
  explicit SingleRefColumn(uint32_t ref_index) : ref_index_(ref_index) {}

  uint32_t ref_index_;
  const enc::EncodedColumn* ref_ = nullptr;
};

}  // namespace corra

#endif  // CORRA_CORE_HORIZONTAL_H_
