// Base class for horizontal encodings with a single reference column
// (Corra's diff and hierarchical schemes, and the C3 schemes).
//
// Single-reference columns support an additional fast path used when a
// query materializes *both* columns: the scan gathers the reference once
// and hands the values to GatherWithReference, so the reference is not
// fetched a second time. This is exactly why the paper's "query on both
// columns" case shows (almost) no slowdown (Fig. 5).

#ifndef CORRA_CORE_HORIZONTAL_H_
#define CORRA_CORE_HORIZONTAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "encoding/encoded_column.h"

namespace corra {

class SingleRefColumn : public enc::EncodedColumn {
 public:
  /// Block-local index of the reference column.
  uint32_t ref_index() const { return ref_index_; }

  /// The bound reference column (null until BindReferences).
  const enc::EncodedColumn* reference() const { return ref_; }

  std::vector<uint32_t> ReferenceIndices() const override {
    return {ref_index_};
  }

  Status BindReferences(
      std::span<const enc::EncodedColumn* const> references) override {
    if (references.size() != 1 || references[0] == nullptr) {
      return Status::InvalidArgument(
          "single-reference scheme needs exactly one reference");
    }
    if (references[0]->size() != size()) {
      return Status::InvalidArgument("reference row count mismatch");
    }
    ref_ = references[0];
    return Status::OK();
  }

  /// Materializes this column at the sorted positions `rows`, given the
  /// reference values already gathered for the same positions.
  /// `out` must hold rows.size() values.
  virtual void GatherWithReference(std::span<const uint32_t> rows,
                                   const int64_t* ref_values,
                                   int64_t* out) const = 0;

 protected:
  explicit SingleRefColumn(uint32_t ref_index) : ref_index_(ref_index) {}

  uint32_t ref_index_;
  const enc::EncodedColumn* ref_ = nullptr;
};

}  // namespace corra

#endif  // CORRA_CORE_HORIZONTAL_H_
