#include "core/diff_encoding.h"

#include <algorithm>
#include <cassert>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra {

namespace {

// Approximate cost charged per outlier when picking the packed window:
// 4 bytes of row index plus roughly half a word of packed value.
constexpr size_t kOutlierCostBytes = 8;

// The encoding decision: mode, window parameters, and total cost.
struct DiffLayout {
  DiffMode mode = DiffMode::kRaw;
  int64_t base = 0;       // kWindow only.
  int bit_width = 0;
  size_t cost_bytes = 0;  // Packed payload + outlier estimate.
};

// Paper-faithful layout without outliers: raw widths for non-negative
// diffs, zig-zag otherwise.
DiffLayout PlainLayout(std::span<const int64_t> diffs) {
  DiffLayout layout;
  const auto mm = bit_util::ComputeMinMax(diffs);
  if (mm.min >= 0) {
    layout.mode = DiffMode::kRaw;
    layout.bit_width = bit_util::BitWidth(static_cast<uint64_t>(mm.max));
  } else {
    layout.mode = DiffMode::kZigZag;
    layout.bit_width = bit_util::MaxZigZagBitWidth(diffs);
  }
  layout.cost_bytes = bit_util::CeilDiv(diffs.size() * layout.bit_width, 8);
  return layout;
}

// Extended layout with the outlier store: windowed FOR over the diffs,
// choosing the (window, #outliers) pair by total cost against the plain
// layout.
DiffLayout SelectLayout(std::span<const int64_t> diffs,
                        const DiffOptions& options) {
  DiffLayout best = PlainLayout(diffs);
  if (!options.use_outliers || diffs.size() < 2) {
    return best;
  }
  std::vector<int64_t> sorted(diffs.begin(), diffs.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  const size_t max_outliers = static_cast<size_t>(
      static_cast<double>(n) * options.max_outlier_fraction);

  // Geometric ladder over the outlier budget: the optimum is coarse in k,
  // so probing powers of two keeps this O(n log n) after the sort.
  for (size_t k = 1; k <= max_outliers; k *= 2) {
    uint64_t min_range = ~uint64_t{0};
    size_t best_lo = 0;
    for (size_t lo = 0; lo + (n - k) <= n; ++lo) {
      const uint64_t range = static_cast<uint64_t>(sorted[lo + (n - k) - 1]) -
                             static_cast<uint64_t>(sorted[lo]);
      if (range < min_range) {
        min_range = range;
        best_lo = lo;
      }
    }
    DiffLayout candidate;
    candidate.mode = DiffMode::kWindow;
    candidate.base = sorted[best_lo];
    candidate.bit_width = bit_util::BitWidth(min_range);
    candidate.cost_bytes = bit_util::CeilDiv(n * candidate.bit_width, 8) +
                           k * kOutlierCostBytes + sizeof(int64_t);
    if (candidate.cost_bytes < best.cost_bytes) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace

DiffEncodedColumn::DiffEncodedColumn(uint32_t ref_index, DiffMode mode,
                                     int64_t base,
                                     std::vector<uint8_t> bytes,
                                     int bit_width, size_t count,
                                     OutlierStore outliers)
    : SingleRefColumn(ref_index),
      mode_(mode),
      base_(base),
      bytes_(std::move(bytes)),
      packed_(bytes_.data(), bit_width, count),
      outliers_(std::move(outliers)) {}

Result<std::unique_ptr<DiffEncodedColumn>> DiffEncodedColumn::Encode(
    std::span<const int64_t> target, std::span<const int64_t> reference,
    uint32_t ref_index, const DiffOptions& options) {
  if (target.size() != reference.size()) {
    return Status::InvalidArgument("target/reference length mismatch");
  }
  if (target.size() > UINT32_MAX) {
    return Status::InvalidArgument("block too large for diff encoding");
  }
  std::vector<int64_t> diffs(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    diffs[i] = static_cast<int64_t>(static_cast<uint64_t>(target[i]) -
                                    static_cast<uint64_t>(reference[i]));
  }
  const DiffLayout layout = SelectLayout(diffs, options);

  BitWriter writer(layout.bit_width);
  std::vector<uint32_t> outlier_rows;
  std::vector<int64_t> outlier_values;
  switch (layout.mode) {
    case DiffMode::kRaw:
      for (int64_t d : diffs) {
        writer.Append(static_cast<uint64_t>(d));
      }
      break;
    case DiffMode::kZigZag:
      for (int64_t d : diffs) {
        writer.Append(bit_util::ZigZagEncode(d));
      }
      break;
    case DiffMode::kWindow: {
      // Out-of-window rows store 0 (any in-window code works — the outlier
      // indices, not a sentinel, identify them; cf. Sec. 2.3).
      const uint64_t limit = layout.bit_width >= 64
                                 ? ~uint64_t{0}
                                 : (uint64_t{1} << layout.bit_width) - 1;
      for (size_t i = 0; i < diffs.size(); ++i) {
        const uint64_t offset = static_cast<uint64_t>(diffs[i]) -
                                static_cast<uint64_t>(layout.base);
        if (offset > limit) {
          outlier_rows.push_back(static_cast<uint32_t>(i));
          outlier_values.push_back(target[i]);
          writer.Append(0);
        } else {
          writer.Append(offset);
        }
      }
      break;
    }
  }
  CORRA_ASSIGN_OR_RETURN(OutlierStore store,
                         OutlierStore::Build(outlier_rows, outlier_values));
  return std::unique_ptr<DiffEncodedColumn>(new DiffEncodedColumn(
      ref_index, layout.mode, layout.base, std::move(writer).Finish(),
      layout.bit_width, target.size(), std::move(store)));
}

size_t DiffEncodedColumn::EstimateSizeBytes(
    std::span<const int64_t> target, std::span<const int64_t> reference,
    const DiffOptions& options) {
  if (target.size() != reference.size()) {
    return SIZE_MAX;
  }
  std::vector<int64_t> diffs(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    diffs[i] = static_cast<int64_t>(static_cast<uint64_t>(target[i]) -
                                    static_cast<uint64_t>(reference[i]));
  }
  return SelectLayout(diffs, options).cost_bytes;
}

Result<std::unique_ptr<DiffEncodedColumn>> DiffEncodedColumn::Deserialize(
    BufferReader* reader) {
  uint32_t ref_index = 0;
  uint8_t mode_byte = 0;
  int64_t base = 0;
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&ref_index));
  CORRA_RETURN_NOT_OK(reader->Read(&mode_byte));
  CORRA_RETURN_NOT_OK(reader->Read(&base));
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (mode_byte > static_cast<uint8_t>(DiffMode::kWindow)) {
    return Status::Corruption("bad diff mode");
  }
  if (width > 64) {
    return Status::Corruption("diff width > 64");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("diff payload truncated");
  }
  CORRA_ASSIGN_OR_RETURN(OutlierStore outliers,
                         OutlierStore::Deserialize(reader));
  if (!outliers.empty() && outliers.row(outliers.size() - 1) >= count) {
    return Status::Corruption("diff outlier row out of range");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  return std::unique_ptr<DiffEncodedColumn>(new DiffEncodedColumn(
      ref_index, static_cast<DiffMode>(mode_byte), base, std::move(bytes),
      width, count, std::move(outliers)));
}

size_t DiffEncodedColumn::SizeBytes() const {
  size_t bytes = bit_util::CeilDiv(packed_.size() * packed_.bit_width(), 8) +
                 outliers_.SizeBytes();
  if (mode_ == DiffMode::kWindow) {
    bytes += sizeof(int64_t);  // The window base.
  }
  return bytes;
}

int64_t DiffEncodedColumn::DiffAt(size_t row) const {
  switch (mode_) {
    case DiffMode::kRaw:
      return static_cast<int64_t>(packed_.Get(row));
    case DiffMode::kZigZag:
      return bit_util::ZigZagDecode(packed_.Get(row));
    case DiffMode::kWindow:
      return base_ + static_cast<int64_t>(packed_.Get(row));
  }
  return 0;
}

int64_t DiffEncodedColumn::Get(size_t row) const {
  assert(ref_ != nullptr && "reference not bound");
  if (!outliers_.empty()) {
    if (const auto v = outliers_.Find(static_cast<uint32_t>(row))) {
      return *v;
    }
  }
  return ref_->Get(row) + DiffAt(row);
}

void DiffEncodedColumn::GatherWithReference(std::span<const uint32_t> rows,
                                            const int64_t* ref_values,
                                            int64_t* out) const {
  // Positioned SIMD gather of the packed diff codes, then the same
  // mode-hoisted combine passes as DecodeRangeWithReference; the sparse
  // outlier positions are patched over the result at the end.
  uint64_t codes[enc::kMorselRows];
  size_t done = 0;
  while (done < rows.size()) {
    const size_t len = std::min(rows.size() - done, enc::kMorselRows);
    simd::GatherBits(bytes_.data(), packed_.bit_width(), rows.data() + done,
                     len, codes);
    switch (mode_) {
      case DiffMode::kRaw:
        simd::AddRefAndBase(ref_values + done, codes, 0, len, out + done);
        break;
      case DiffMode::kZigZag:
        simd::AddRefZigZag(ref_values + done, codes, len, out + done);
        break;
      case DiffMode::kWindow:
        simd::AddRefAndBase(ref_values + done, codes, base_, len,
                            out + done);
        break;
    }
    done += len;
  }
  outliers_.Patch(rows, out);
}

void DiffEncodedColumn::DecodeRangeWithReference(size_t row_begin,
                                                 size_t count,
                                                 const int64_t* ref_values,
                                                 int64_t* out) const {
  // Unpack the diff codes of each morsel-sized chunk into a stack
  // buffer, then combine with the reference morsel in one
  // mode-specialized SIMD pass (the mode switch is hoisted out of the
  // row loop, unlike the per-row DiffAt path).
  uint64_t codes[enc::kMorselRows];
  size_t done = 0;
  while (done < count) {
    const size_t len = std::min(count - done, enc::kMorselRows);
    packed_.DecodeRange(row_begin + done, len, codes);
    switch (mode_) {
      case DiffMode::kRaw:
        simd::AddRefAndBase(ref_values + done, codes, 0, len, out + done);
        break;
      case DiffMode::kZigZag:
        simd::AddRefZigZag(ref_values + done, codes, len, out + done);
        break;
      case DiffMode::kWindow:
        simd::AddRefAndBase(ref_values + done, codes, base_, len,
                            out + done);
        break;
    }
    done += len;
  }
  outliers_.PatchRange(row_begin, count, out);
}

void DiffEncodedColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(enc::Scheme::kDiff));
  writer->Write<uint32_t>(ref_index_);
  writer->Write<uint8_t>(static_cast<uint8_t>(mode_));
  writer->Write<int64_t>(base_);
  writer->Write<uint8_t>(static_cast<uint8_t>(packed_.bit_width()));
  writer->Write<uint64_t>(packed_.size());
  writer->WriteBytes(bytes_);
  outliers_.Serialize(writer);
}

}  // namespace corra
