// Process-wide metrics registry — the numeric half of the serving
// telemetry layer (src/obs/).
//
// Three metric kinds, all safe for concurrent use:
//   * Counter   — monotonically increasing. Add() is a relaxed atomic
//                 add on a per-thread cache-line-private shard, so a
//                 hot-path increment never contends or fences; Value()
//                 sums the shards.
//   * Gauge     — a level that moves both ways (resident bytes, pinned
//                 blocks). One atomic; updates are rare next to counter
//                 increments (they happen under the owner's own locks).
//   * Histogram — fixed-bucket latency distribution with p50/p90/p99/
//                 p999 extraction. Record() bins into per-thread shard
//                 arrays with relaxed adds; Snapshot() merges shards.
//
// The Registry owns metrics by name. Lookup (counter()/gauge()/
// histogram()) takes a mutex and is meant to run once per call site —
// cache the returned reference, then increment lock-free forever. The
// reference stays valid for the registry's lifetime (metrics are never
// unregistered). Names may carry one Prometheus-style label suffix,
// e.g. "query.decode_rows{scheme=\"FOR\"}"; the exporters split it.
//
// Snapshots export as JSON (ToJson) and as Prometheus text exposition
// (ToPrometheus; dots become underscores, the label suffix is preserved,
// histograms render cumulative le-buckets). Snapshot reads are relaxed:
// each shard value is exact at the instant it is read, so a snapshot
// racing a recorder can be mid-update across *metrics* but every
// counter is monotone and a quiesced registry snapshots exactly.
//
// Escape hatch: the whole layer obeys CORRA_OBS_OFF.
//   * compile time  -DCORRA_OBS_OFF=ON (CMake) makes Enabled() a
//                   constant false, so instrumentation folds away;
//   * run time      the CORRA_OBS_OFF environment variable (any value
//                   but "0"), read once; SetEnabled() overrides it
//                   (used by the A/B overhead bench and tests).
// Disabled means Add/Set/Record are no-ops and instrumented code paths
// skip their clock reads; the bench-verified bound is <= 2% overhead on
// dense scans with observability ON (see bench/bench_obs_overhead.cc).

#ifndef CORRA_OBS_METRICS_H_
#define CORRA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"

namespace corra::obs {

// --- Enable/disable ---------------------------------------------------------

#ifdef CORRA_OBS_OFF

constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}

#else

namespace internal {
// 0 = uninitialized (consult the environment), 1 = on, -1 = off.
extern std::atomic<int> g_enabled;
bool InitEnabledFromEnv();
}  // namespace internal

/// True unless observability is switched off (env CORRA_OBS_OFF or
/// SetEnabled(false)). One relaxed load on the hot path.
inline bool Enabled() {
  const int e = internal::g_enabled.load(std::memory_order_relaxed);
  if (e == 0) {
    return internal::InitEnabledFromEnv();
  }
  return e > 0;
}

/// Runtime override, strongest of the gates below the compile-time one.
void SetEnabled(bool enabled);

#endif  // CORRA_OBS_OFF

// --- Thread shards ----------------------------------------------------------

/// Shard count for counters and histograms. Each live thread gets a
/// round-robin home shard; with more threads than shards, collisions
/// degrade to (still correct) contended relaxed adds.
inline constexpr size_t kMetricShards = 16;

namespace internal {
size_t AssignThreadSlot();
inline size_t ThreadSlot() {
  thread_local size_t slot = AssignThreadSlot();
  return slot;
}
}  // namespace internal

// --- Counter ----------------------------------------------------------------

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Relaxed add on the calling thread's shard; no-op when disabled.
  void Add(uint64_t n) {
    if (!Enabled()) {
      return;
    }
    slots_[internal::ThreadSlot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum across shards (relaxed; exact once writers quiesce).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Slot& slot : slots_) {
      slot.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };
  std::array<Slot, kMetricShards> slots_{};
};

// --- Gauge ------------------------------------------------------------------

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (Enabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t n) {
    if (Enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  void Sub(int64_t n) { Add(-n); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// --- Histogram --------------------------------------------------------------

/// Default latency bucket upper bounds in microseconds: 1us .. 10s on a
/// 1-2-5 ladder, plus the implicit +Inf overflow bucket.
std::span<const uint64_t> LatencyBucketBoundsUs();

/// Merged, immutable view of a histogram; quantiles are linearly
/// interpolated inside the owning bucket and clamped to the observed
/// maximum (so a one-sample histogram reports that sample at p999 and
/// overflow-bucket samples report max, not infinity).
struct HistogramSnapshot {
  std::vector<uint64_t> bounds;  // Ascending inclusive upper bounds.
  std::vector<uint64_t> counts;  // bounds.size() + 1 (last = overflow).
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  /// q in [0, 1]; returns 0 for an empty histogram.
  double Quantile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class Histogram {
 public:
  /// `bounds` must be ascending and non-empty; values above the last
  /// bound land in the overflow bucket.
  explicit Histogram(std::span<const uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bins `value`, relaxed, on the calling thread's shard.
  void Record(uint64_t value);

  [[nodiscard]] HistogramSnapshot Snapshot() const;
  void Reset();

  std::span<const uint64_t> bounds() const { return bounds_; }

 private:
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;  // bounds + overflow.
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  std::vector<uint64_t> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

// --- Registry ---------------------------------------------------------------

struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count, sum, mean, max, p50, p90, p99, p999}}} — sorted by name.
  [[nodiscard]] std::string ToJson() const;

  /// Prometheus text exposition: corra_<name> with dots flattened to
  /// underscores; histograms emit cumulative _bucket{le=...}, _sum,
  /// _count series.
  [[nodiscard]] std::string ToPrometheus() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrumentation point
  /// records into (tests and embedders may use private instances).
  static Registry& Default();

  /// Finds or creates; the reference lives as long as the registry.
  /// Takes a mutex — resolve once per call site, then increment freely.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration of a name pins its bounds; later calls return
  /// the existing histogram regardless of `bounds`.
  Histogram& histogram(std::string_view name,
                       std::span<const uint64_t> bounds = {});

  [[nodiscard]] RegistrySnapshot Snapshot() const;
  [[nodiscard]] std::string ToJson() const { return Snapshot().ToJson(); }
  [[nodiscard]] std::string ToPrometheus() const {
    return Snapshot().ToPrometheus();
  }

  /// Zeroes every metric; registrations (and cached references) survive.
  void Reset();

 private:
  // mu_ guards the registration maps only; the metric objects behind
  // them are internally synchronized (lock-free atomics) and their
  // references outlive any lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CORRA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CORRA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CORRA_GUARDED_BY(mu_);
};

}  // namespace corra::obs

#endif  // CORRA_OBS_METRICS_H_
