#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace corra::obs {

namespace internal {

#ifndef CORRA_OBS_OFF

std::atomic<int> g_enabled{0};

bool InitEnabledFromEnv() {
  // Racy-but-idempotent init: every racer computes the same value from
  // the same environment, so the winning store does not matter.
  const char* env = std::getenv("CORRA_OBS_OFF");
  const bool off = env != nullptr && std::strcmp(env, "0") != 0;
  int expected = 0;
  g_enabled.compare_exchange_strong(expected, off ? -1 : 1,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) > 0;
}

#endif  // CORRA_OBS_OFF

size_t AssignThreadSlot() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
}

}  // namespace internal

#ifndef CORRA_OBS_OFF
void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled ? 1 : -1, std::memory_order_relaxed);
}
#endif

// --- Latency buckets --------------------------------------------------------

std::span<const uint64_t> LatencyBucketBoundsUs() {
  // 1us .. 10s on a 1-2-5 ladder (22 finite buckets + overflow).
  static constexpr uint64_t kBounds[] = {
      1,       2,       5,       10,      20,      50,       100,     200,
      500,     1000,    2000,    5000,    10000,   20000,    50000,   100000,
      200000,  500000,  1000000, 2000000, 5000000, 10000000};
  return kBounds;
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::span<const uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  if (bounds_.empty()) {
    const auto defaults = LatencyBucketBoundsUs();
    bounds_.assign(defaults.begin(), defaults.end());
  }
  const size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<uint64_t>[]>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) {
    return;
  }
  // First bound >= value owns it; past-the-end = overflow bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[internal::ThreadSlot()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max,
                        shard.max.load(std::memory_order_relaxed));
  }
  for (uint64_t c : snap.counts) {
    snap.count += c;
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t b = 0; b < bounds_.size() + 1; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample holding this quantile, clamped to the first one:
  // even q = 0 reports a position inside the observed data, so a
  // one-sample histogram answers that sample at every q.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) {
      continue;
    }
    const uint64_t next = seen + counts[b];
    if (static_cast<double>(next) >= rank) {
      if (b == bounds.size()) {
        return static_cast<double>(max);  // Overflow bucket: best bound.
      }
      const double lo =
          b == 0 ? 0.0 : static_cast<double>(bounds[b - 1]);
      const double hi = static_cast<double>(bounds[b]);
      const double frac =
          counts[b] == 0
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(counts[b]);
      // Clamp to the observed max so sparse histograms (one sample in
      // a wide bucket) never report a value no one recorded past.
      return std::min(lo + frac * (hi - lo), static_cast<double>(max));
    }
    seen = next;
  }
  return static_cast<double>(max);
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // Never destroyed: cached
                                               // references outlive exit.
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const uint64_t> bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::Snapshot() const {
  MutexLock lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snap;
}

void Registry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

// --- Export -----------------------------------------------------------------

namespace {

void Append(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void Append(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

// Splits "base{label=\"x\"}" into base and the brace suffix (which may
// be empty), then renders a Prometheus series name: corra_ prefix, dots
// and dashes flattened to underscores, labels preserved. `extra_label`
// (e.g. le="5") is merged into the braces.
std::string PromSeries(std::string_view name, std::string_view suffix,
                       std::string_view extra_label) {
  std::string_view base = name;
  std::string_view labels;
  const size_t brace = name.find('{');
  if (brace != std::string_view::npos && name.back() == '}') {
    base = name.substr(0, brace);
    labels = name.substr(brace + 1, name.size() - brace - 2);
  }
  std::string out = "corra_";
  for (char c : base) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out.push_back(word ? c : '_');
  }
  out.append(suffix);
  if (!labels.empty() || !extra_label.empty()) {
    out.push_back('{');
    out.append(labels);
    if (!labels.empty() && !extra_label.empty()) {
      out.push_back(',');
    }
    out.append(extra_label);
    out.push_back('}');
  }
  return out;
}

// The metric family name alone — labels stripped — for # TYPE lines.
std::string PromFamily(std::string_view name) {
  const size_t brace = name.find('{');
  return PromSeries(
      brace == std::string_view::npos ? name : name.substr(0, brace), "",
      "");
}

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    Append(&out, "%s\n    \"%s\": %" PRIu64, i ? "," : "",
           JsonEscaped(counters[i].first).c_str(), counters[i].second);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    Append(&out, "%s\n    \"%s\": %" PRId64, i ? "," : "",
           JsonEscaped(gauges[i].first).c_str(), gauges[i].second);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i].second;
    Append(&out,
           "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
           ", \"mean\": %.3f, \"max\": %" PRIu64
           ", \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, "
           "\"p999\": %.3f}",
           i ? "," : "", JsonEscaped(histograms[i].first).c_str(), h.count,
           h.sum, h.Mean(), h.max, h.Quantile(0.5), h.Quantile(0.9),
           h.Quantile(0.99), h.Quantile(0.999));
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

std::string RegistrySnapshot::ToPrometheus() const {
  std::string out;
  // Labeled series of one family sort adjacently (map order), so one
  // TYPE line per family falls out of remembering the previous one.
  std::string last_family;
  auto type_line = [&](std::string_view name, const char* kind) {
    std::string family = PromFamily(name);
    if (family != last_family) {
      Append(&out, "# TYPE %s %s\n", family.c_str(), kind);
      last_family = std::move(family);
    }
  };
  for (const auto& [name, value] : counters) {
    type_line(name, "counter");
    Append(&out, "%s %" PRIu64 "\n", PromSeries(name, "", "").c_str(),
           value);
  }
  for (const auto& [name, value] : gauges) {
    type_line(name, "gauge");
    Append(&out, "%s %" PRId64 "\n", PromSeries(name, "", "").c_str(),
           value);
  }
  for (const auto& [name, hist] : histograms) {
    type_line(name, "histogram");
    uint64_t cumulative = 0;
    for (size_t b = 0; b < hist.bounds.size(); ++b) {
      cumulative += hist.counts[b];
      char label[48];
      std::snprintf(label, sizeof(label), "le=\"%" PRIu64 "\"",
                    hist.bounds[b]);
      Append(&out, "%s %" PRIu64 "\n",
             PromSeries(name, "_bucket", label).c_str(), cumulative);
    }
    Append(&out, "%s %" PRIu64 "\n",
           PromSeries(name, "_bucket", "le=\"+Inf\"").c_str(), hist.count);
    Append(&out, "%s %" PRIu64 "\n", PromSeries(name, "_sum", "").c_str(),
           hist.sum);
    Append(&out, "%s %" PRIu64 "\n",
           PromSeries(name, "_count", "").c_str(), hist.count);
  }
  return out;
}

}  // namespace corra::obs
