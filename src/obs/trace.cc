#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace corra::obs {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kQueueWait:
      return "queue_wait";
    case Phase::kBlockPrune:
      return "block_prune";
    case Phase::kCachePin:
      return "cache_pin";
    case Phase::kMissFill:
      return "miss_fill";
    case Phase::kDecodeFilter:
      return "decode_filter";
    case Phase::kMerge:
      return "merge";
    case Phase::kScatter:
      return "scatter";
  }
  return "unknown";
}

std::string RequestTrace::ToJson() const {
  char buf[320];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "{\"op\": \"%.*s\", \"total_ns\": %" PRIu64
                ", \"rows_scanned\": %" PRIu64 ", \"rows_matched\": %" PRIu64
                ", \"phases\": {",
                static_cast<int>(op.size()), op.data(), total_ns,
                rows_scanned, rows_matched);
  out += buf;
  for (size_t p = 0; p < kNumPhases; ++p) {
    const std::string_view name = PhaseName(static_cast<Phase>(p));
    std::snprintf(buf, sizeof(buf), "%s\"%.*s\": %" PRIu64, p ? ", " : "",
                  static_cast<int>(name.size()), name.data(), phase_ns[p]);
    out += buf;
  }
  out += "}, \"blocks\": [";
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockSpan& span = blocks[b];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"block\": %u, \"rows\": %" PRIu64
                  ", \"pruned\": %s, \"cache_hit\": %s, \"coalesced\": %s"
                  ", \"retried\": %s, \"queue_ns\": %" PRIu64
                  ", \"pin_ns\": %" PRIu64 ", \"fill_ns\": %" PRIu64
                  ", \"decode_ns\": %" PRIu64 ", \"scatter_ns\": %" PRIu64
                  ", \"schemes\": \"",
                  b ? ", " : "", span.block, span.rows,
                  span.pruned ? "true" : "false",
                  span.cache_hit ? "true" : "false",
                  span.coalesced ? "true" : "false",
                  span.retried ? "true" : "false", span.queue_ns,
                  span.pin_ns, span.fill_ns, span.decode_ns,
                  span.scatter_ns);
    out += buf;
    out += span.schemes;  // "index:scheme" pairs; no JSON metacharacters.
    out += "\"}";
  }
  out += "]}";
  return out;
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void TraceRing::Push(RequestTrace trace) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[pushed_ % capacity_] = std::move(trace);
  }
  ++pushed_;
}

std::vector<RequestTrace> TraceRing::Drain() {
  MutexLock lock(mu_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  // Oldest-first: once the ring has wrapped, the slot at pushed_ %
  // capacity_ holds the oldest retained trace.
  const size_t count = ring_.size();
  const size_t start = count < capacity_ ? 0 : pushed_ % capacity_;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(std::move(ring_[(start + i) % count]));
  }
  ring_.clear();
  return out;
}

std::vector<RequestTrace> TraceRing::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  const size_t count = ring_.size();
  const size_t start = count < capacity_ ? 0 : pushed_ % capacity_;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % count]);
  }
  return out;
}

uint64_t TraceRing::pushed() const {
  MutexLock lock(mu_);
  return pushed_;
}

}  // namespace corra::obs
