// Per-request trace spans — the narrative half of the serving telemetry
// layer (src/obs/).
//
// A RequestTrace attributes one ScanService request end to end: total
// wall latency, a fixed set of timed phases (queue wait, block prune,
// cache pin, miss fill, decode/filter, merge), and one BlockSpan per
// block touched (scheme annotations, rows, pruned/hit flags, per-block
// timings). Phase times are *attributed* time summed across worker
// threads: with a single-threaded (or inline, num_threads = 0) service
// the phases partition the request's wall clock, so they sum to ~total;
// with parallel workers the per-block phases can legitimately sum past
// total because they overlap in real time.
//
// Traces are opt-in on the request (ScanRequest::collect_trace →
// ScanResult::trace) and cost a handful of steady_clock reads per block
// — never per row. Independently of opt-in, the service keeps the last
// N traces that breached its slow threshold in a TraceRing for post-hoc
// dumping (a request you did not think to trace can still be explained
// after the fact).
//
// Everything here is inert when obs::Enabled() is false: the service
// skips its clock reads and produces neither traces nor ring entries.

#ifndef CORRA_OBS_TRACE_H_
#define CORRA_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"

namespace corra::obs {

/// Monotonic nanoseconds (steady_clock). Callers gate on Enabled().
inline uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The timed phases of one serving request, in execution order.
enum class Phase : uint8_t {
  kQueueWait = 0,  // Task enqueue -> worker pickup, summed over tasks.
  kBlockPrune,     // Min/max stats check across the directory.
  kCachePin,       // BlockCache lookup/pin, minus any miss fill.
  kMissFill,       // Loader time: disk read + deserialize (misses only).
  kDecodeFilter,   // Predicate, decode, gather, aggregate kernels.
  kMerge,          // In-order merge of per-block partials.
  kScatter,        // Per-caller scatter out of a coalesced batch's
                   // merged gather (zero for uncoalesced requests).
};
inline constexpr size_t kNumPhases = 7;

std::string_view PhaseName(Phase phase);

/// One block's share of a request.
struct BlockSpan {
  uint32_t block = 0;
  uint64_t rows = 0;       // Rows this block contributed to the request.
  bool pruned = false;     // Skipped via min/max stats; no other fields.
  bool cache_hit = false;  // Pin was served without running the loader.
  /// This block's work piggybacked on another request's batch (the
  /// front door's cross-request coalescing): pin/fill/decode were paid
  /// — and are charged — by the executing request, so this span carries
  /// only queue wait and its own scatter.
  bool coalesced = false;
  /// The fill absorbed read retries (re-issued preads or a checksum
  /// re-read): the block was served, but the medium misbehaved.
  bool retried = false;
  uint64_t queue_ns = 0;
  uint64_t pin_ns = 0;
  uint64_t fill_ns = 0;
  uint64_t decode_ns = 0;
  uint64_t scatter_ns = 0;  // Copy-out from a coalesced merged gather.
  /// Touched columns as "index:scheme", comma-joined (e.g.
  /// "0:FOR,1:Corra-Diff") — which kernels served this block.
  std::string schemes;
};

struct RequestTrace {
  std::string_view op;  // "execute" or "gather" (static storage).
  uint64_t total_ns = 0;
  std::array<uint64_t, kNumPhases> phase_ns{};
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  std::vector<BlockSpan> blocks;  // Block order.

  uint64_t phase(Phase p) const {
    return phase_ns[static_cast<size_t>(p)];
  }
  uint64_t PhaseTotalNs() const {
    uint64_t total = 0;
    for (uint64_t ns : phase_ns) {
      total += ns;
    }
    return total;
  }

  /// One self-contained JSON object (phases keyed by name, blocks as an
  /// array) for logs and the slow-trace dump.
  std::string ToJson() const;
};

/// Fixed-capacity ring retaining the most recent traces pushed into it
/// (the service pushes traces whose total latency breached its slow
/// threshold). Thread-safe; Push is O(1) and never allocates beyond the
/// trace it stores.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 32);

  void Push(RequestTrace trace);

  /// Retained traces, oldest first; leaves the ring empty.
  [[nodiscard]] std::vector<RequestTrace> Drain();

  /// Copy of the retained traces, oldest first.
  [[nodiscard]] std::vector<RequestTrace> Snapshot() const;

  size_t capacity() const { return capacity_; }
  /// Total traces ever pushed (including ones already overwritten).
  uint64_t pushed() const;

 private:
  mutable Mutex mu_;
  const size_t capacity_;
  uint64_t pushed_ CORRA_GUARDED_BY(mu_) = 0;
  // ring_[i] slot reused circularly.
  std::vector<RequestTrace> ring_ CORRA_GUARDED_BY(mu_);
};

}  // namespace corra::obs

#endif  // CORRA_OBS_TRACE_H_
