// Multi-block scans: materialize selections spanning a whole
// CompressedTable by routing global row positions to the owning blocks.
//
// The routing step is exposed on its own (SplitSelectionByBlocks) so
// out-of-core readers — which know only the directory's per-block row
// counts, never a materialized CompressedTable — can route global
// positions to block indices and fetch exactly the blocks they need.

#ifndef CORRA_QUERY_TABLE_SCAN_H_
#define CORRA_QUERY_TABLE_SCAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace corra::query {

/// One block's share of a global selection: the block index, the
/// block-local row positions, and where in the output the slice's
/// values land (slices partition the selection in order).
struct SelectionSlice {
  size_t block = 0;
  size_t out_offset = 0;
  std::vector<uint32_t> local_rows;
};

/// Routes sorted global positions `rows` to blocks. `row_offsets` holds
/// the cumulative row counts: row_offsets[b] is the global position of
/// block b's first row and row_offsets.back() the total row count
/// (num_blocks + 1 entries). Fails on unsorted selections and positions
/// at or beyond the total. Only blocks that own at least one selected
/// row appear in the result.
Result<std::vector<SelectionSlice>> SplitSelectionByBlocks(
    std::span<const uint64_t> row_offsets, std::span<const uint64_t> rows);
Result<std::vector<SelectionSlice>> SplitSelectionByBlocks(
    std::span<const uint64_t> row_offsets, std::span<const uint32_t> rows);

/// Materializes column `col` of `table` at the sorted global positions
/// `rows` (each < table.num_rows()). Fails on out-of-range positions.
Result<std::vector<int64_t>> ScanTableColumn(const CompressedTable& table,
                                             size_t col,
                                             std::span<const uint32_t> rows);

/// Materializes a (reference, target) column pair at sorted global
/// positions, sharing the reference fetch inside each block (the paper's
/// "query on both columns" path).
struct TablePair {
  std::vector<int64_t> reference;
  std::vector<int64_t> target;
};
Result<TablePair> ScanTablePair(const CompressedTable& table,
                                size_t ref_col, size_t target_col,
                                std::span<const uint32_t> rows);

}  // namespace corra::query

#endif  // CORRA_QUERY_TABLE_SCAN_H_
