// Multi-block scans: materialize selections spanning a whole
// CompressedTable by routing global row positions to the owning blocks.

#ifndef CORRA_QUERY_TABLE_SCAN_H_
#define CORRA_QUERY_TABLE_SCAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace corra::query {

/// Materializes column `col` of `table` at the sorted global positions
/// `rows` (each < table.num_rows()). Fails on out-of-range positions.
Result<std::vector<int64_t>> ScanTableColumn(const CompressedTable& table,
                                             size_t col,
                                             std::span<const uint32_t> rows);

/// Materializes a (reference, target) column pair at sorted global
/// positions, sharing the reference fetch inside each block (the paper's
/// "query on both columns" path).
struct TablePair {
  std::vector<int64_t> reference;
  std::vector<int64_t> target;
};
Result<TablePair> ScanTablePair(const CompressedTable& table,
                                size_t ref_col, size_t target_col,
                                std::span<const uint32_t> rows);

}  // namespace corra::query

#endif  // CORRA_QUERY_TABLE_SCAN_H_
